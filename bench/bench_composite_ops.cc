// E2 (DESIGN.md): event-graph detection is demand-driven; per-operator
// throughput, and cost as a function of subscriber fan-out.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "detector/local_detector.h"

namespace sentinel::bench {
namespace {

using detector::EventNode;
using detector::LocalEventDetector;

struct Graph {
  LocalEventDetector det;
  EventNode* a = nullptr;
  EventNode* b = nullptr;
  EventNode* c = nullptr;

  Graph() {
    a = *det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
    b = *det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
    c = *det.DefinePrimitive("c", "C", EventModifier::kEnd, "void fc()");
  }

  void Fire(const char* method, int v) {
    det.Notify("C", 1, EventModifier::kEnd, method, OneIntParam(v), 1);
  }
};

// One benchmark per operator: the canonical detecting stream, one sink in
// RECENT context.
void BM_Operator(benchmark::State& state) {
  Graph g;
  CountingSink sink;
  const int op = static_cast<int>(state.range(0));
  switch (op) {
    case 0:
      (void)g.det.DefineOr("e", g.a, g.b);
      break;
    case 1:
      (void)g.det.DefineAnd("e", g.a, g.b);
      break;
    case 2:
      (void)g.det.DefineSeq("e", g.a, g.b);
      break;
    case 3:
      (void)g.det.DefineNot("e", g.a, g.c, g.b);
      break;
    case 4:
      (void)g.det.DefineAperiodic("e", g.a, g.b, g.c);
      break;
    case 5:
      (void)g.det.DefineAperiodicStar("e", g.a, g.b, g.c);
      break;
  }
  (void)g.det.Subscribe("e", &sink, ParamContext::kRecent);
  int v = 0;
  for (auto _ : state) {
    g.Fire("void fa()", ++v);
    g.Fire("void fb()", ++v);
    g.Fire("void fc()", ++v);
    g.det.FlushAll();
  }
  state.SetItemsProcessed(state.iterations() * 3);
  state.counters["detections"] = static_cast<double>(sink.count);
  state.SetLabel(std::vector<std::string>{"OR", "AND", "SEQ", "NOT", "A",
                                          "A*"}[static_cast<std::size_t>(op)]);
}
BENCHMARK(BM_Operator)->DenseRange(0, 5);

// Fan-out: one primitive event with N sinks subscribed.
void BM_SubscriberFanout(benchmark::State& state) {
  Graph g;
  const int fanout = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<CountingSink>> sinks;
  for (int i = 0; i < fanout; ++i) {
    sinks.push_back(std::make_unique<CountingSink>());
    (void)g.det.Subscribe("a", sinks.back().get(), ParamContext::kRecent);
  }
  int v = 0;
  for (auto _ : state) {
    g.Fire("void fa()", ++v);
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_SubscriberFanout)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Depth: left-deep chain of AND nodes, event propagates to the root.
void BM_ExpressionDepth(benchmark::State& state) {
  Graph g;
  const int depth = static_cast<int>(state.range(0));
  EventNode* current = g.a;
  for (int i = 0; i < depth; ++i) {
    current = *g.det.DefineAnd("and" + std::to_string(i), current, g.b);
  }
  CountingSink sink;
  (void)g.det.Subscribe(current->name(), &sink, ParamContext::kRecent);
  int v = 0;
  for (auto _ : state) {
    g.Fire("void fa()", ++v);
    g.Fire("void fb()", ++v);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["detections"] = static_cast<double>(sink.count);
}
BENCHMARK(BM_ExpressionDepth)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

// Demand-driven claim: cost of a notification that matches NO subscribed
// node stays flat as unrelated (inactive) graph grows.
void BM_InactiveGraphIsFree(benchmark::State& state) {
  Graph g;
  const int unrelated = static_cast<int>(state.range(0));
  for (int i = 0; i < unrelated; ++i) {
    auto p = g.det.DefinePrimitive("p" + std::to_string(i), "Other",
                                   EventModifier::kEnd, "void m()");
    (void)g.det.DefineAnd("x" + std::to_string(i), *p, g.b);
  }
  CountingSink sink;
  (void)g.det.Subscribe("a", &sink, ParamContext::kRecent);
  int v = 0;
  for (auto _ : state) {
    g.Fire("void fa()", ++v);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["graph_nodes"] = static_cast<double>(g.det.node_count());
}
BENCHMARK(BM_InactiveGraphIsFree)->Arg(0)->Arg(64)->Arg(512);

}  // namespace
}  // namespace sentinel::bench
