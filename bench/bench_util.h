#ifndef SENTINEL_BENCH_BENCH_UTIL_H_
#define SENTINEL_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/pool.h"
#include "core/active_database.h"

namespace sentinel::bench {

/// Shorthands used across the benchmark binaries.
using detector::EventModifier;
using detector::ParamContext;
using detector::ParamList;

inline std::shared_ptr<const ParamList> OneIntParam(int v) {
  auto params = common::MakePooled<ParamList>();
  params->Insert("v", oodb::Value::Int(v));
  return params;
}

/// Notifies `db` of one end-of-method invocation on (class_name, method).
inline void FireMethod(core::ActiveDatabase* db, const std::string& class_name,
                       const std::string& method, int v, storage::TxnId txn) {
  db->NotifyMethod(class_name, /*oid=*/1, EventModifier::kEnd, method,
                   OneIntParam(v), txn);
}

/// Sink that counts detections (used where rules would add noise).
class CountingSink : public detector::EventSink {
 public:
  void OnEvent(const detector::Occurrence&, ParamContext) override { ++count; }
  std::size_t count = 0;
};

/// Thread-safe counting sink for multi-threaded Notify benchmarks.
class AtomicCountingSink : public detector::EventSink {
 public:
  void OnEvent(const detector::Occurrence&, ParamContext) override {
    count.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> count{0};
};

}  // namespace sentinel::bench

#endif  // SENTINEL_BENCH_BENCH_UTIL_H_
