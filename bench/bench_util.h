#ifndef SENTINEL_BENCH_BENCH_UTIL_H_
#define SENTINEL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "common/pool.h"
#include "core/active_database.h"

namespace sentinel::bench {

/// Shorthands used across the benchmark binaries.
using detector::EventModifier;
using detector::ParamContext;
using detector::ParamList;

inline std::shared_ptr<const ParamList> OneIntParam(int v) {
  auto params = common::MakePooled<ParamList>();
  params->Insert("v", oodb::Value::Int(v));
  return params;
}

/// Notifies `db` of one end-of-method invocation on (class_name, method).
inline void FireMethod(core::ActiveDatabase* db, const std::string& class_name,
                       const std::string& method, int v, storage::TxnId txn) {
  db->NotifyMethod(class_name, /*oid=*/1, EventModifier::kEnd, method,
                   OneIntParam(v), txn);
}

/// Writes `db`'s pipeline metrics snapshot to
/// $SENTINEL_BENCH_METRICS_DIR/<name>.json when that env var is set; no-op
/// otherwise. Lets a bench run leave per-benchmark observability artifacts
/// (tools/run_benches.sh wires the directory up).
inline void DumpMetricsSnapshot(core::ActiveDatabase* db,
                                const std::string& name) {
  const char* dir = std::getenv("SENTINEL_BENCH_METRICS_DIR");
  if (dir == nullptr || *dir == '\0' || db == nullptr) return;
  std::ofstream out(std::string(dir) + "/" + name + ".json");
  if (out) out << db->StatsJson() << "\n";
}

/// Delta-since-baseline counter capture. Benchmarks must never Reset() the
/// shared pipeline counters mid-run (ShardedCounter::Reset races concurrent
/// writers and loses increments — see obs/metrics.h); instead capture a
/// baseline before the measured loop and report the delta after it:
///
///   CounterBaseline base(db);
///   for (auto _ : state) { ... }
///   base.Report(&db, &state);   // counters["executed"], ["notifications"]
struct CounterBaseline {
  std::uint64_t notifications = 0;
  std::uint64_t detections = 0;
  std::uint64_t executed = 0;

  explicit CounterBaseline(core::ActiveDatabase& db) {
    const auto totals = db.detector()->TotalsSnapshot();
    notifications = totals.notifications;
    detections = totals.detections;
    executed = db.scheduler()->executed_count();
  }

  void Report(core::ActiveDatabase* db, benchmark::State* state) const {
    const auto totals = db->detector()->TotalsSnapshot();
    (*state).counters["notifications"] =
        static_cast<double>(totals.notifications - notifications);
    (*state).counters["detections"] =
        static_cast<double>(totals.detections - detections);
    (*state).counters["rule_execs"] =
        static_cast<double>(db->scheduler()->executed_count() - executed);
  }
};

/// Sink that counts detections (used where rules would add noise).
class CountingSink : public detector::EventSink {
 public:
  void OnEvent(const detector::Occurrence&, ParamContext) override { ++count; }
  std::size_t count = 0;
};

/// Thread-safe counting sink for multi-threaded Notify benchmarks.
class AtomicCountingSink : public detector::EventSink {
 public:
  void OnEvent(const detector::Occurrence&, ParamContext) override {
    count.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> count{0};
};

}  // namespace sentinel::bench

#endif  // SENTINEL_BENCH_BENCH_UTIL_H_
