// E11 (DESIGN.md): the nested transaction manager — subtransaction
// begin/commit cost, lock acquisition with the Moss ancestor rule, lock
// inheritance at commit, and sibling contention.

#include <benchmark/benchmark.h>

#include <string>

#include "txn/nested_txn.h"

namespace sentinel::bench {
namespace {

using storage::LockMode;
using txn::NestedTransactionManager;

void BM_SubTxnBeginCommit(benchmark::State& state) {
  NestedTransactionManager ntm;
  for (auto _ : state) {
    auto sub = ntm.Begin(1);
    benchmark::DoNotOptimize(ntm.Commit(*sub).ok());
  }
  ntm.EndTop(1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubTxnBeginCommit);

void BM_NestedChain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  NestedTransactionManager ntm;
  for (auto _ : state) {
    std::vector<txn::SubTxnId> chain;
    txn::SubTxnId parent = txn::kInvalidSubTxn;
    for (int i = 0; i < depth; ++i) {
      auto sub = ntm.Begin(1, parent);
      chain.push_back(*sub);
      parent = *sub;
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      (void)ntm.Commit(*it);
    }
  }
  ntm.EndTop(1);
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_NestedChain)->Arg(1)->Arg(4)->Arg(8);

void BM_LockAcquire(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  NestedTransactionManager ntm;
  std::vector<std::string> names;
  for (int i = 0; i < keys; ++i) names.push_back("k" + std::to_string(i));
  for (auto _ : state) {
    auto sub = ntm.Begin(1);
    for (const auto& key : names) {
      (void)ntm.Acquire(*sub, key, LockMode::kExclusive);
    }
    (void)ntm.Abort(*sub);  // release without inheritance
  }
  ntm.EndTop(1);
  state.SetItemsProcessed(state.iterations() * keys);
}
BENCHMARK(BM_LockAcquire)->Arg(1)->Arg(16)->Arg(128);

void BM_LockInheritanceAtCommit(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  NestedTransactionManager ntm;
  std::vector<std::string> names;
  for (int i = 0; i < keys; ++i) names.push_back("k" + std::to_string(i));
  for (auto _ : state) {
    auto parent = ntm.Begin(1);
    auto child = ntm.Begin(1, *parent);
    for (const auto& key : names) {
      (void)ntm.Acquire(*child, key, LockMode::kExclusive);
    }
    (void)ntm.Commit(*child);   // locks inherited by parent
    (void)ntm.Commit(*parent);  // retained by top
    ntm.EndTop(1);
  }
  state.SetItemsProcessed(state.iterations() * keys);
}
BENCHMARK(BM_LockInheritanceAtCommit)->Arg(1)->Arg(16)->Arg(128);

void BM_SubTxnFinishWithResidentKeys(benchmark::State& state) {
  // A long-lived sibling keeps `resident` keys locked while a small
  // subtransaction begins, takes one lock, and commits. Finish cost must
  // depend on the finishing subtransaction's own held keys (via its held-key
  // index), not on the total number of keys resident in the lock table.
  const int resident = static_cast<int>(state.range(0));
  NestedTransactionManager ntm;
  auto holder = ntm.Begin(1);
  for (int i = 0; i < resident; ++i) {
    (void)ntm.Acquire(*holder, "res" + std::to_string(i), LockMode::kShared);
  }
  for (auto _ : state) {
    auto sub = ntm.Begin(1);
    (void)ntm.Acquire(*sub, "own", LockMode::kExclusive);
    (void)ntm.Commit(*sub);
  }
  ntm.EndTop(1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubTxnFinishWithResidentKeys)->Arg(16)->Arg(256)->Arg(4096);

void BM_AncestorLockIsFree(benchmark::State& state) {
  // Child acquiring a lock its ancestor already holds (always granted).
  NestedTransactionManager ntm;
  auto parent = ntm.Begin(1);
  (void)ntm.Acquire(*parent, "hot", LockMode::kExclusive);
  for (auto _ : state) {
    auto child = ntm.Begin(1, *parent);
    benchmark::DoNotOptimize(
        ntm.Acquire(*child, "hot", LockMode::kExclusive).ok());
    (void)ntm.Commit(*child);
  }
  ntm.EndTop(1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AncestorLockIsFree);

void BM_SharedSiblingLocks(benchmark::State& state) {
  // All siblings take the same shared lock (compatible).
  const int siblings = static_cast<int>(state.range(0));
  NestedTransactionManager ntm;
  auto parent = ntm.Begin(1);
  for (auto _ : state) {
    std::vector<txn::SubTxnId> subs;
    for (int i = 0; i < siblings; ++i) {
      auto sub = ntm.Begin(1, *parent);
      (void)ntm.Acquire(*sub, "shared", LockMode::kShared);
      subs.push_back(*sub);
    }
    for (auto sub : subs) (void)ntm.Commit(sub);
  }
  ntm.EndTop(1);
  state.SetItemsProcessed(state.iterations() * siblings);
}
BENCHMARK(BM_SharedSiblingLocks)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace sentinel::bench
