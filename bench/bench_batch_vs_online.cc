// E8 (DESIGN.md): online vs. batch (event-log replay) detection — same
// graph, same contexts, same detections; batch adds serialization but
// amortizes scheduling.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "detector/event_log.h"
#include "detector/local_detector.h"

namespace sentinel::bench {
namespace {

using detector::EventLog;
using detector::LocalEventDetector;

void BuildGraph(LocalEventDetector* det) {
  auto a = det->DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det->DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  (void)det->DefineSeq("a_then_b", *a, *b);
}

void BM_OnlineDetection(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    LocalEventDetector det;
    BuildGraph(&det);
    CountingSink sink;
    (void)det.Subscribe("a_then_b", &sink, ParamContext::kChronicle);
    state.ResumeTiming();
    for (int i = 0; i < events; ++i) {
      det.Notify("C", 1, EventModifier::kEnd,
                 (i % 2 == 0) ? "void fa()" : "void fb()", OneIntParam(i), 1);
    }
    benchmark::DoNotOptimize(sink.count);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_OnlineDetection)->Arg(256)->Arg(2048);

void BM_OnlineDetectionWithLogging(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    LocalEventDetector det;
    BuildGraph(&det);
    EventLog log;
    log.AttachTo(&det);
    CountingSink sink;
    (void)det.Subscribe("a_then_b", &sink, ParamContext::kChronicle);
    state.ResumeTiming();
    for (int i = 0; i < events; ++i) {
      det.Notify("C", 1, EventModifier::kEnd,
                 (i % 2 == 0) ? "void fa()" : "void fb()", OneIntParam(i), 1);
    }
    benchmark::DoNotOptimize(log.size());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_OnlineDetectionWithLogging)->Arg(256)->Arg(2048);

void BM_BatchReplay(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  // Record once.
  LocalEventDetector recorder;
  BuildGraph(&recorder);
  CountingSink keep;
  (void)recorder.Subscribe("a_then_b", &keep, ParamContext::kChronicle);
  EventLog log;
  log.AttachTo(&recorder);
  for (int i = 0; i < events; ++i) {
    recorder.Notify("C", 1, EventModifier::kEnd,
                    (i % 2 == 0) ? "void fa()" : "void fb()", OneIntParam(i),
                    1);
  }
  for (auto _ : state) {
    state.PauseTiming();
    LocalEventDetector det;
    BuildGraph(&det);
    CountingSink sink;
    (void)det.Subscribe("a_then_b", &sink, ParamContext::kChronicle);
    state.ResumeTiming();
    benchmark::DoNotOptimize(log.Replay(&det).ok());
    benchmark::DoNotOptimize(sink.count);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_BatchReplay)->Arg(256)->Arg(2048);

void BM_LogSerializationRoundTrip(benchmark::State& state) {
  detector::PrimitiveOccurrence occ;
  occ.event_name = "e";
  occ.class_name = "C";
  occ.method_signature = "void f(int v)";
  occ.at = 42;
  occ.params = OneIntParam(7);
  for (auto _ : state) {
    BytesWriter writer;
    EventLog::Serialize(occ, &writer);
    BytesReader reader(writer.data());
    auto back = EventLog::Deserialize(&reader);
    benchmark::DoNotOptimize(back.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogSerializationRoundTrip);

}  // namespace
}  // namespace sentinel::bench
