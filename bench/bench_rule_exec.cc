// E5 (DESIGN.md): thread-based prioritized rule execution (paper §2.3,
// Fig. 3) — firing cost vs. number of triggered rules, scheduling policy,
// and nesting depth.

#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_util.h"

namespace sentinel::bench {
namespace {

using rules::RuleManager;
using rules::SchedulingPolicy;

void BM_RulesPerEvent(benchmark::State& state) {
  const int num_rules = static_cast<int>(state.range(0));
  const auto policy = static_cast<SchedulingPolicy>(state.range(1));
  core::ActiveDatabase db;
  core::ActiveDatabase::Options options;
  options.scheduler.policy = policy;
  (void)db.OpenInMemory(options);
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  std::atomic<std::uint64_t> executed{0};
  for (int i = 0; i < num_rules; ++i) {
    RuleManager::RuleOptions rule_options;
    rule_options.priority = i % 4;
    (void)db.rule_manager()->DefineRule(
        "r" + std::to_string(i), "e", nullptr,
        [&executed](const rules::RuleContext&) { ++executed; }, rule_options);
  }
  auto txn = db.Begin();
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "C", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations() * num_rules);
  state.counters["rule_execs"] = static_cast<double>(executed.load());
  state.SetLabel(policy == SchedulingPolicy::kSerial       ? "serial"
                 : policy == SchedulingPolicy::kConcurrent ? "concurrent"
                                                           : "priority_classes");
}
BENCHMARK(BM_RulesPerEvent)
    ->ArgsProduct({{1, 4, 16, 64}, {0, 1, 2}});

// Nested triggering: rule i raises the event of rule i+1 (depth-first chain).
void BM_NestedRuleDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  for (int i = 0; i < depth; ++i) {
    (void)db.DeclareEvent("e" + std::to_string(i), "C", EventModifier::kEnd,
                          "void f" + std::to_string(i) + "()");
  }
  std::atomic<std::uint64_t> leaf{0};
  for (int i = 0; i < depth; ++i) {
    rules::ActionFn action;
    if (i + 1 < depth) {
      const std::string next_method = "void f" + std::to_string(i + 1) + "()";
      action = [&db, next_method](const rules::RuleContext& ctx) {
        db.detector()->Notify("C", 1, EventModifier::kEnd, next_method,
                              nullptr, ctx.txn);
      };
    } else {
      action = [&leaf](const rules::RuleContext&) { ++leaf; };
    }
    (void)db.rule_manager()->DefineRule("r" + std::to_string(i),
                                        "e" + std::to_string(i), nullptr,
                                        action);
  }
  auto txn = db.Begin();
  for (auto _ : state) {
    FireMethod(&db, "C", "void f0()", 0, *txn);
  }
  state.SetItemsProcessed(state.iterations() * depth);
  state.counters["max_depth"] =
      static_cast<double>(db.scheduler()->max_depth_seen());
  state.counters["leaf_execs"] = static_cast<double>(leaf.load());
}
BENCHMARK(BM_NestedRuleDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Condition rejection cost: the rule machinery runs but the action doesn't.
void BM_ConditionRejects(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  (void)db.rule_manager()->DefineRule(
      "r", "e", [](const rules::RuleContext&) { return false; },
      [](const rules::RuleContext&) {});
  auto txn = db.Begin();
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "C", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rejections"] =
      static_cast<double>(db.scheduler()->condition_rejections());
}
BENCHMARK(BM_ConditionRejects);

// Rule management operations (BEAST RM-style): enable/disable cycling.
void BM_EnableDisableRule(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  (void)db.rule_manager()->DefineRule("r", "e", nullptr,
                                      [](const rules::RuleContext&) {});
  for (auto _ : state) {
    (void)db.rule_manager()->DisableRule("r");
    (void)db.rule_manager()->EnableRule("r");
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EnableDisableRule);

}  // namespace
}  // namespace sentinel::bench
