// Ablation: the object cache (Open OODB's address-space-manager analogue).
// Compares attribute access through the persistence manager (record read +
// deserialize every time) against the cache's pointer-served hits, and
// measures the OID-index-backed load path.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "oodb/database.h"
#include "oodb/object_cache.h"

namespace sentinel::bench {
namespace {

using oodb::Database;
using oodb::ObjectCache;
using oodb::Oid;
using oodb::PersistentObject;
using oodb::Value;

struct Fixture {
  std::string prefix;
  Database db;
  std::vector<Oid> oids;

  explicit Fixture(int objects) {
    prefix = (std::filesystem::temp_directory_path() /
              ("sentinel_bench_cache_" + std::to_string(::getpid())))
                 .string();
    Cleanup();
    (void)db.Open(prefix);
    auto txn = db.Begin();
    for (int i = 0; i < objects; ++i) {
      PersistentObject obj(oodb::kInvalidOid, "Part");
      obj.Set("v", Value::Int(i));
      obj.Set("name", Value::String("part-" + std::to_string(i)));
      oids.push_back(*db.objects()->Put(*txn, std::move(obj)));
    }
    (void)db.Commit(*txn);
  }
  ~Fixture() {
    (void)db.Close();
    Cleanup();
  }
  void Cleanup() {
    std::remove((prefix + ".db").c_str());
    std::remove((prefix + ".wal").c_str());
  }
};

void BM_UncachedAttributeRead(benchmark::State& state) {
  Fixture fx(256);
  auto txn = fx.db.Begin();
  std::size_t i = 0;
  for (auto _ : state) {
    auto obj = fx.db.objects()->Get(*txn, fx.oids[i++ % fx.oids.size()]);
    benchmark::DoNotOptimize(obj->Get("v")->AsInt());
  }
  (void)fx.db.Commit(*txn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UncachedAttributeRead);

void BM_CachedAttributeRead(benchmark::State& state) {
  Fixture fx(256);
  ObjectCache cache(fx.db.engine(), fx.db.objects(), 512);
  auto txn = fx.db.Begin();
  // Warm.
  for (Oid oid : fx.oids) (void)cache.Get(*txn, oid);
  std::size_t i = 0;
  for (auto _ : state) {
    auto obj = cache.Get(*txn, fx.oids[i++ % fx.oids.size()]);
    benchmark::DoNotOptimize((*obj)->Get("v")->AsInt());
  }
  (void)fx.db.Commit(*txn);
  cache.OnCommit(*txn);
  state.SetItemsProcessed(state.iterations());
  state.counters["hit_rate"] =
      static_cast<double>(cache.hit_count()) /
      static_cast<double>(cache.hit_count() + cache.miss_count());
}
BENCHMARK(BM_CachedAttributeRead);

void BM_CacheThrashing(benchmark::State& state) {
  // Working set larger than capacity: every access evicts.
  Fixture fx(256);
  ObjectCache cache(fx.db.engine(), fx.db.objects(), 16);
  auto txn = fx.db.Begin();
  std::size_t i = 0;
  for (auto _ : state) {
    auto obj = cache.Get(*txn, fx.oids[i++ % fx.oids.size()]);
    benchmark::DoNotOptimize((*obj)->Get("v")->AsInt());
  }
  (void)fx.db.Commit(*txn);
  cache.OnCommit(*txn);
  state.SetItemsProcessed(state.iterations());
  state.counters["hit_rate"] =
      static_cast<double>(cache.hit_count()) /
      static_cast<double>(cache.hit_count() + cache.miss_count());
}
BENCHMARK(BM_CacheThrashing);

void BM_CacheWriteThrough(benchmark::State& state) {
  Fixture fx(64);
  ObjectCache cache(fx.db.engine(), fx.db.objects(), 128);
  auto txn = fx.db.Begin();
  std::size_t i = 0;
  for (auto _ : state) {
    Oid oid = fx.oids[i++ % fx.oids.size()];
    PersistentObject obj(oid, "Part");
    obj.Set("v", Value::Int(static_cast<std::int64_t>(i)));
    benchmark::DoNotOptimize(cache.Put(*txn, std::move(obj)).ok());
  }
  (void)fx.db.Commit(*txn);
  cache.OnCommit(*txn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheWriteThrough);

}  // namespace
}  // namespace sentinel::bench
