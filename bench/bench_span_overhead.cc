// Span tracer overhead (DESIGN.md §10): the causal span tracer must cost a
// single relaxed load when off, stay out of the Notify hot path in the
// default flight-recorder mode, and bound the full-trace cost. Measures the
// two instrumented paths that matter:
//   - Notify dispatch of a declared event with no rule (the PR 2 hot path;
//     compare against BM_NotifyEventDeclaredNoRule in bench_primitive_events),
//   - rule firing through a subtransaction (subtxn + condition + action
//     spans, the heaviest span cluster per event).
// Off-mode numbers are pinned in tools/bench_baseline.json; the >10%
// regression gate in tools/run_benches.sh --strict covers them.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/protocol.h"
#include "obs/span.h"

namespace sentinel::bench {
namespace {

using obs::TraceMode;

/// Notify path: declared primitive, no observers beyond a counting sink —
/// exercises the slow path's span gate without rule-execution noise.
void NotifyWithMode(benchmark::State& state, TraceMode mode) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  db.span_tracer()->set_mode(mode);
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  CountingSink sink;
  (void)db.detector()->Subscribe("e", &sink, ParamContext::kRecent);
  auto txn = db.Begin();
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "C", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["spans"] = static_cast<double>(db.span_tracer()->recorded() +
                                                db.flight_recorder()->recorded());
  state.SetLabel(obs::TraceModeToString(mode));
}

void BM_SpanNotifyTracerOff(benchmark::State& state) {
  NotifyWithMode(state, TraceMode::kOff);
}
void BM_SpanNotifyFlightOnly(benchmark::State& state) {
  NotifyWithMode(state, TraceMode::kFlightOnly);
}
void BM_SpanNotifyFull(benchmark::State& state) {
  NotifyWithMode(state, TraceMode::kFull);
}
BENCHMARK(BM_SpanNotifyTracerOff);
BENCHMARK(BM_SpanNotifyFlightOnly);
BENCHMARK(BM_SpanNotifyFull);

/// Rule-firing path: one immediate rule with a condition, so each event pays
/// the subtxn + condition + action span cluster (plus notify when kFull).
void SubTxnWithMode(benchmark::State& state, TraceMode mode) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  db.span_tracer()->set_mode(mode);
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  std::atomic<std::uint64_t> executed{0};
  (void)db.rule_manager()->DefineRule(
      "r", "e", [](const rules::RuleContext&) { return true; },
      [&executed](const rules::RuleContext&) {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
  auto txn = db.Begin();
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "C", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rule_execs"] = static_cast<double>(executed.load());
  state.SetLabel(obs::TraceModeToString(mode));
}

void BM_SpanSubTxnTracerOff(benchmark::State& state) {
  SubTxnWithMode(state, TraceMode::kOff);
}
void BM_SpanSubTxnFlightOnly(benchmark::State& state) {
  SubTxnWithMode(state, TraceMode::kFlightOnly);
}
void BM_SpanSubTxnFull(benchmark::State& state) {
  SubTxnWithMode(state, TraceMode::kFull);
}
BENCHMARK(BM_SpanSubTxnTracerOff);
BENCHMARK(BM_SpanSubTxnFlightOnly);
BENCHMARK(BM_SpanSubTxnFull);

/// Wire cost of the distributed-trace trailer (DESIGN.md §14): one Notify
/// occurrence encoded in the pre-trailer format vs with the 24-byte
/// trace-context trailer + flags bit. run_benches.sh compares the pair —
/// the trailer must stay within 2% of the baseline encode (10% strict).
detector::PrimitiveOccurrence TrailerBenchOccurrence() {
  detector::PrimitiveOccurrence occ;
  occ.class_name = "Order";
  occ.oid = 1;
  occ.modifier = EventModifier::kEnd;
  occ.method_signature = "void f(int v)";
  occ.txn = 1;
  auto params = std::make_shared<ParamList>();
  params->Insert("v", oodb::Value::Int(7));
  occ.params = params;
  return occ;
}

void BM_SpanNetEncodeBaseline(benchmark::State& state) {
  const detector::PrimitiveOccurrence occ = TrailerBenchOccurrence();
  for (auto _ : state) {
    BytesWriter body;
    net::EncodeOccurrence(occ, &body);
    const std::string wire =
        net::EncodeFrame(net::MessageType::kNotify, body);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanNetEncodeBaseline);

void BM_SpanNetEncodeTrailer(benchmark::State& state) {
  const detector::PrimitiveOccurrence occ = TrailerBenchOccurrence();
  net::TraceContext tc;
  tc.trace_id = 0x1234abcd;
  tc.parent_span = 42;
  tc.origin_ns = 1;
  for (auto _ : state) {
    BytesWriter body;
    net::EncodeOccurrence(occ, &body);
    net::AppendTraceContext(tc, &body);
    const std::string wire = net::EncodeFrame(
        net::MessageType::kNotify, body, net::kFlagTraceContext);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanNetEncodeTrailer);

}  // namespace
}  // namespace sentinel::bench
