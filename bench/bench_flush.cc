// E7 (DESIGN.md): transaction-boundary hygiene — the cost of flushing
// buffered partial detections at commit/abort, per-transaction vs. full vs.
// selective per-expression flush (paper §3.2.2 item 3).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "detector/local_detector.h"

namespace sentinel::bench {
namespace {

using detector::LocalEventDetector;

struct FlushFixture {
  LocalEventDetector det;
  CountingSink sink;

  FlushFixture(int expressions) {
    auto a = det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
    auto b = det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
    for (int i = 0; i < expressions; ++i) {
      (void)det.DefineAnd("e" + std::to_string(i), *a, *b);
      (void)det.Subscribe("e" + std::to_string(i), &sink,
                          ParamContext::kChronicle);
    }
  }

  // Buffers `events` initiators, split across `txns` transactions.
  void Fill(int events, int txns) {
    for (int i = 0; i < events; ++i) {
      det.Notify("C", 1, EventModifier::kEnd, "void fa()", OneIntParam(i),
                 1 + (i % txns));
    }
  }
};

void BM_FlushTxn(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  FlushFixture fx(4);
  for (auto _ : state) {
    state.PauseTiming();
    fx.Fill(events, /*txns=*/4);
    state.ResumeTiming();
    fx.det.FlushTxn(1);  // drops ~1/4 of the buffered occurrences
    state.PauseTiming();
    fx.det.FlushAll();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * events / 4);
}
BENCHMARK(BM_FlushTxn)->Arg(64)->Arg(512)->Arg(4096);

void BM_FlushAll(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  FlushFixture fx(4);
  for (auto _ : state) {
    state.PauseTiming();
    fx.Fill(events, 4);
    state.ResumeTiming();
    fx.det.FlushAll();
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_FlushAll)->Arg(64)->Arg(512)->Arg(4096);

void BM_FlushSelectiveExpression(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  FlushFixture fx(4);
  for (auto _ : state) {
    state.PauseTiming();
    fx.Fill(events, 4);
    state.ResumeTiming();
    (void)fx.det.FlushEvent("e0");  // one expression's subtree only
    state.PauseTiming();
    fx.det.FlushAll();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * events / 4);
}
BENCHMARK(BM_FlushSelectiveExpression)->Arg(64)->Arg(512)->Arg(4096);

// End-to-end: commit cost of a transaction whose events must be flushed by
// the internal flush rule.
void BM_CommitWithFlushRule(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("a", "C", EventModifier::kEnd, "void fa()");
  (void)db.DeclareEvent("b", "C", EventModifier::kEnd, "void fb()");
  auto a = db.detector()->Find("a");
  auto b = db.detector()->Find("b");
  (void)db.detector()->DefineAnd("pair", *a, *b);
  (void)db.rule_manager()->DefineRule("r", "pair", nullptr,
                                      [](const rules::RuleContext&) {});
  for (auto _ : state) {
    auto txn = db.Begin();
    for (int i = 0; i < events; ++i) {
      FireMethod(&db, "C", "void fa()", i, *txn);
    }
    (void)db.Commit(*txn);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_CommitWithFlushRule)->Arg(16)->Arg(128);

}  // namespace
}  // namespace sentinel::bench
