// E6 (DESIGN.md): coupling modes. DEFERRED is rewritten to
// A*(begin_txn, E, pre_commit) and executes exactly once per transaction —
// so for M triggers per transaction, IMMEDIATE pays M rule executions while
// DEFERRED pays M accumulations + 1 execution (the paper's net-effect
// variant). DETACHED decouples entirely.

#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_util.h"

namespace sentinel::bench {
namespace {

using rules::CouplingMode;
using rules::RuleManager;

void RunTxn(core::ActiveDatabase* db, int triggers) {
  auto txn = db->Begin();
  for (int i = 0; i < triggers; ++i) {
    FireMethod(db, "C", "void f(int v)", i, *txn);
  }
  (void)db->Commit(*txn);
}

void BM_TxnNoRules(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  const int triggers = static_cast<int>(state.range(0));
  for (auto _ : state) RunTxn(&db, triggers);
  state.SetItemsProcessed(state.iterations() * triggers);
}
BENCHMARK(BM_TxnNoRules)->Arg(1)->Arg(16)->Arg(128);

void BM_TxnImmediateRule(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  std::atomic<std::uint64_t> executions{0};
  (void)db.rule_manager()->DefineRule(
      "r", "e", nullptr,
      [&executions](const rules::RuleContext&) { ++executions; });
  const int triggers = static_cast<int>(state.range(0));
  for (auto _ : state) RunTxn(&db, triggers);
  state.SetItemsProcessed(state.iterations() * triggers);
  state.counters["rule_execs_per_txn"] =
      static_cast<double>(executions.load()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_TxnImmediateRule)->Arg(1)->Arg(16)->Arg(128);

void BM_TxnDeferredRule(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  std::atomic<std::uint64_t> executions{0};
  RuleManager::RuleOptions options;
  options.coupling = CouplingMode::kDeferred;
  options.context = ParamContext::kCumulative;
  (void)db.rule_manager()->DefineRule(
      "r", "e", nullptr,
      [&executions](const rules::RuleContext&) { ++executions; }, options);
  const int triggers = static_cast<int>(state.range(0));
  for (auto _ : state) RunTxn(&db, triggers);
  state.SetItemsProcessed(state.iterations() * triggers);
  state.counters["rule_execs_per_txn"] =
      static_cast<double>(executions.load()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_TxnDeferredRule)->Arg(1)->Arg(16)->Arg(128);

void BM_TxnDetachedRule(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  std::atomic<std::uint64_t> executions{0};
  RuleManager::RuleOptions options;
  options.coupling = CouplingMode::kDetached;
  (void)db.rule_manager()->DefineRule(
      "r", "e", nullptr,
      [&executions](const rules::RuleContext&) { ++executions; }, options);
  const int triggers = static_cast<int>(state.range(0));
  for (auto _ : state) RunTxn(&db, triggers);
  db.scheduler()->WaitDetached();
  state.SetItemsProcessed(state.iterations() * triggers);
  state.counters["rule_execs"] = static_cast<double>(executions.load());
}
BENCHMARK(BM_TxnDetachedRule)->Arg(1)->Arg(16)->Arg(128);

}  // namespace
}  // namespace sentinel::bench
