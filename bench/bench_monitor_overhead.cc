// Monitoring-plane overhead (DESIGN.md §11): the watchdog samples every
// pipeline counter from its own thread, and the monitor server answers
// scrapes from its own thread — neither may tax the Notify hot path, whose
// cost is a handful of relaxed atomics either way. Three variants of the
// BM_NotifyEventDeclaredNoRule-shaped loop:
//   - Off:               no watchdog, no server (the baseline),
//   - Watchdog:          watchdog sampling at an aggressive 10ms interval
//                        (25x the production default),
//   - ServerAndWatchdog: watchdog plus the HTTP endpoint bound and a
//                        concurrent scraper hammering /metrics, the
//                        worst-case contention a Prometheus deployment adds.
// tools/run_benches.sh folds the three into BENCH_monitor.json and warns
// when either monitored variant drifts more than the noise allowance from
// Off (strict mode fails the run at >10%).

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "bench_util.h"
#include "obs/watchdog.h"

namespace sentinel::bench {
namespace {

enum class Plane { kOff, kWatchdog, kServerAndWatchdog };

/// One GET /metrics against 127.0.0.1:port; discards the body.
void ScrapeOnce(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const char req[] = "GET /metrics HTTP/1.1\r\nHost: b\r\n\r\n";
    (void)::send(fd, req, sizeof(req) - 1, 0);
    char buf[4096];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
  }
  ::close(fd);
}

void NotifyWithPlane(benchmark::State& state, Plane plane) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  CountingSink sink;
  (void)db.detector()->Subscribe("e", &sink, ParamContext::kRecent);

  std::atomic<bool> stop_scraper{false};
  std::thread scraper;
  if (plane != Plane::kOff) {
    obs::Watchdog::Options wd;
    wd.interval = std::chrono::milliseconds(10);
    auto bound =
        db.StartMonitoring(plane == Plane::kWatchdog ? -1 : 0, wd);
    if (!bound.ok()) {
      state.SkipWithError(bound.status().ToString().c_str());
      return;
    }
    if (plane == Plane::kServerAndWatchdog) {
      const int port = *bound;
      scraper = std::thread([port, &stop_scraper] {
        while (!stop_scraper.load(std::memory_order_acquire)) {
          ScrapeOnce(port);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      });
    }
  }

  auto txn = db.Begin();
  CounterBaseline base(db);
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "C", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations());
  base.Report(&db, &state);
  if (db.watchdog() != nullptr) {
    state.counters["watchdog_ticks"] =
        static_cast<double>(db.watchdog()->ticks());
  }
  if (db.monitor_server() != nullptr) {
    state.counters["scrapes"] =
        static_cast<double>(db.monitor_server()->requests());
  }
  if (scraper.joinable()) {
    stop_scraper.store(true, std::memory_order_release);
    scraper.join();
  }
}

void BM_MonitorNotifyOff(benchmark::State& state) {
  NotifyWithPlane(state, Plane::kOff);
}
void BM_MonitorNotifyWatchdog(benchmark::State& state) {
  NotifyWithPlane(state, Plane::kWatchdog);
}
void BM_MonitorNotifyServerAndWatchdog(benchmark::State& state) {
  NotifyWithPlane(state, Plane::kServerAndWatchdog);
}
BENCHMARK(BM_MonitorNotifyOff);
BENCHMARK(BM_MonitorNotifyWatchdog);
BENCHMARK(BM_MonitorNotifyServerAndWatchdog);

}  // namespace
}  // namespace sentinel::bench
