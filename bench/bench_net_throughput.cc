// E12: networked GED event bus — frame codec cost, loopback notify→push
// round-trip latency, and streamed throughput through the full
// admission/dispatch/push pipeline. No baseline entry: socket numbers are
// machine- and kernel-dependent, so run_benches.sh records them in
// BENCH_net.json without gating on them.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "bench_util.h"
#include "ged/global_detector.h"
#include "net/event_bus_server.h"
#include "net/protocol.h"
#include "net/remote_client.h"
#include "obs/span.h"

namespace sentinel::bench {
namespace {

detector::PrimitiveOccurrence BenchOccurrence(int v) {
  detector::PrimitiveOccurrence occ;
  occ.class_name = "Order";
  occ.oid = 1;
  occ.modifier = EventModifier::kEnd;
  occ.method_signature = "void f(int v)";
  occ.txn = 1;
  auto params = std::make_shared<ParamList>();
  params->Insert("v", oodb::Value::Int(v));
  occ.params = params;
  return occ;
}

/// Frame codec alone: encode one Notify occurrence, reassemble, decode.
void BM_NetFrameCodec(benchmark::State& state) {
  const detector::PrimitiveOccurrence occ = BenchOccurrence(7);
  net::FrameAssembler assembler;
  for (auto _ : state) {
    BytesWriter body;
    net::EncodeOccurrence(occ, &body);
    const std::string wire =
        net::EncodeFrame(net::MessageType::kNotify, body);
    assembler.Feed(wire.data(), wire.size());
    net::FrameAssembler::Frame frame;
    auto ready = assembler.Next(&frame);
    if (!ready.ok() || !*ready) {
      state.SkipWithError("framing failed");
      break;
    }
    BytesReader reader(frame.body);
    auto decoded = net::DecodeOccurrence(&reader);
    if (!decoded.ok()) {
      state.SkipWithError("decode failed");
      break;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetFrameCodec);

/// Server + client on loopback, one subscription back to the sender.
/// `traced` turns on full causal span recording in both roles — the
/// distributed-tracing worst case (every frame pays encode/decode/wait
/// spans plus the wire trailer).
struct NetHarness {
  ged::GlobalEventDetector ged;
  net::EventBusServer server{&ged};
  obs::SpanTracer tracer;
  std::unique_ptr<net::RemoteGedClient> client;
  std::atomic<std::uint64_t> received{0};
  bool ok = false;

  explicit NetHarness(bool traced = false) {
    tracer.set_mode(traced ? obs::TraceMode::kFull : obs::TraceMode::kOff);
    if (traced) {
      server.set_span_tracer(&tracer);
      ged.set_span_tracer(&tracer);
    }
    net::EventBusServer::Options options;
    if (!server.Start(options).ok()) return;
    net::RemoteGedClient::Options copts;
    copts.port = server.port();
    copts.app_name = "bench";
    copts.notify_queue_limit = 8192;
    client = std::make_unique<net::RemoteGedClient>(copts);
    if (traced) client->set_span_tracer(&tracer);
    if (!client->Start().ok()) return;
    if (!client->WaitConnected(std::chrono::milliseconds(5000))) return;
    if (!client
             ->DefineGlobalPrimitive("g_bench", "Order", EventModifier::kEnd,
                                     "void f(int v)")
             .ok()) {
      return;
    }
    ok = client
             ->Subscribe("g_bench", ParamContext::kRecent,
                         [this](const std::string&,
                                const detector::Occurrence&) {
                           received.fetch_add(1, std::memory_order_relaxed);
                         })
             .ok();
  }

  ~NetHarness() {
    if (client != nullptr) client->Stop();
    server.Stop();
  }
};

/// Full loop latency: one Notify through TCP → admission → GED → push.
/// The always-on e2e histograms (origin stamp → dispatch / detect / push
/// handler) are exported as counters so BENCH_net.json records the
/// distribution, not just the mean loop time.
void NotifyRoundTrip(benchmark::State& state, bool traced) {
  NetHarness harness(traced);
  if (!harness.ok) {
    state.SkipWithError("net harness failed to start");
    return;
  }
  const detector::PrimitiveOccurrence occ = BenchOccurrence(1);
  for (auto _ : state) {
    const std::uint64_t target = harness.received.load() + 1;
    (void)harness.client->Notify(occ);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (harness.received.load() < target) {
      if (std::chrono::steady_clock::now() > deadline) {
        state.SkipWithError("push did not arrive");
        return;
      }
      std::this_thread::yield();
    }
  }
  state.SetItemsProcessed(state.iterations());
  const auto sstats = harness.server.stats();
  state.counters["e2e_delivery_p50_ns"] =
      static_cast<double>(sstats.e2e_delivery_ns.QuantileNs(0.50));
  state.counters["e2e_delivery_p99_ns"] =
      static_cast<double>(sstats.e2e_delivery_ns.QuantileNs(0.99));
  state.counters["e2e_detect_p99_ns"] =
      static_cast<double>(sstats.e2e_detect_ns.QuantileNs(0.99));
  state.counters["e2e_action_p99_ns"] = static_cast<double>(
      harness.client->stats().e2e_action_ns.QuantileNs(0.99));
  if (traced) {
    state.counters["spans"] = static_cast<double>(harness.tracer.recorded());
  }
  state.SetLabel(traced ? "traced" : "untraced");
}

void BM_NetNotifyRoundTrip(benchmark::State& state) {
  NotifyRoundTrip(state, /*traced=*/false);
}
void BM_NetNotifyRoundTripTraced(benchmark::State& state) {
  NotifyRoundTrip(state, /*traced=*/true);
}
BENCHMARK(BM_NetNotifyRoundTrip);
BENCHMARK(BM_NetNotifyRoundTripTraced);

/// Streamed throughput: a batch in flight per iteration, acknowledged by
/// the detections coming back. At-most-once semantics make lost events
/// possible under pressure; the harness counts what actually returned.
void BM_NetNotifyStream(benchmark::State& state) {
  NetHarness harness;
  if (!harness.ok) {
    state.SkipWithError("net harness failed to start");
    return;
  }
  const int batch = static_cast<int>(state.range(0));
  const detector::PrimitiveOccurrence occ = BenchOccurrence(1);
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    const std::uint64_t before = harness.received.load();
    for (int i = 0; i < batch; ++i) (void)harness.client->Notify(occ);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (harness.received.load() <
           before + static_cast<std::uint64_t>(batch)) {
      if (std::chrono::steady_clock::now() > deadline) break;  // shed/dropped
      std::this_thread::yield();
    }
    delivered += harness.received.load() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  const auto stats = harness.client->stats();
  state.counters["dropped"] = static_cast<double>(stats.notifies_dropped);
  state.counters["sheds"] = static_cast<double>(stats.sheds_received);
  state.counters["server_sheds"] =
      static_cast<double>(harness.server.stats().sheds);
}
BENCHMARK(BM_NetNotifyStream)->Arg(16)->Arg(128);

}  // namespace
}  // namespace sentinel::bench
