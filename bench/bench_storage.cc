// E10 (DESIGN.md): the storage substrate (Exodus substitute) — record
// insert/read/scan throughput, commit cost, buffer pool hit behaviour, and
// recovery replay time as a function of log size.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/btree.h"
#include "storage/recovery.h"
#include "storage/storage_engine.h"

namespace sentinel::bench {
namespace {

using storage::Rid;
using storage::StorageEngine;

std::string TempPrefix(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("sentinel_bench_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

void Cleanup(const std::string& prefix) {
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());
}

std::vector<std::uint8_t> Record(int size, int seed) {
  std::vector<std::uint8_t> rec(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    rec[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed + i);
  }
  return rec;
}

void BM_InsertCommit(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const std::string prefix = TempPrefix("insert");
  Cleanup(prefix);
  StorageEngine engine;
  (void)engine.Open(prefix);
  auto file = engine.CreateHeapFile();
  const auto rec = Record(100, 7);
  for (auto _ : state) {
    auto txn = engine.Begin();
    for (int i = 0; i < batch; ++i) {
      benchmark::DoNotOptimize(engine.Insert(*txn, *file, rec).ok());
    }
    (void)engine.Commit(*txn);
  }
  state.SetItemsProcessed(state.iterations() * batch);
  (void)engine.Close();
  Cleanup(prefix);
}
BENCHMARK(BM_InsertCommit)->Arg(1)->Arg(16)->Arg(128);

void BM_PointRead(benchmark::State& state) {
  const std::string prefix = TempPrefix("read");
  Cleanup(prefix);
  StorageEngine engine;
  (void)engine.Open(prefix);
  auto file = engine.CreateHeapFile();
  std::vector<Rid> rids;
  {
    auto txn = engine.Begin();
    for (int i = 0; i < 1000; ++i) {
      rids.push_back(*engine.Insert(*txn, *file, Record(100, i)));
    }
    (void)engine.Commit(*txn);
  }
  auto txn = engine.Begin();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Read(*txn, *file, rids[i++ % rids.size()]).ok());
  }
  (void)engine.Commit(*txn);
  state.SetItemsProcessed(state.iterations());
  state.counters["bp_hit_rate"] =
      static_cast<double>(engine.buffer_pool()->hit_count()) /
      static_cast<double>(engine.buffer_pool()->hit_count() +
                          engine.buffer_pool()->miss_count() + 1);
  (void)engine.Close();
  Cleanup(prefix);
}
BENCHMARK(BM_PointRead);

void BM_Scan(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  const std::string prefix = TempPrefix("scan");
  Cleanup(prefix);
  StorageEngine engine;
  (void)engine.Open(prefix);
  auto file = engine.CreateHeapFile();
  {
    auto txn = engine.Begin();
    for (int i = 0; i < records; ++i) {
      (void)engine.Insert(*txn, *file, Record(100, i));
    }
    (void)engine.Commit(*txn);
  }
  for (auto _ : state) {
    auto txn = engine.Begin();
    std::size_t count = 0;
    (void)engine.Scan(*txn, *file,
                      [&count](const Rid&, const std::vector<std::uint8_t>&) {
                        ++count;
                        return Status::OK();
                      });
    (void)engine.Commit(*txn);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * records);
  (void)engine.Close();
  Cleanup(prefix);
}
BENCHMARK(BM_Scan)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AbortUndo(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const std::string prefix = TempPrefix("abort");
  Cleanup(prefix);
  StorageEngine engine;
  (void)engine.Open(prefix);
  auto file = engine.CreateHeapFile();
  const auto rec = Record(100, 3);
  for (auto _ : state) {
    auto txn = engine.Begin();
    for (int i = 0; i < batch; ++i) {
      (void)engine.Insert(*txn, *file, rec);
    }
    (void)engine.Abort(*txn);
  }
  state.SetItemsProcessed(state.iterations() * batch);
  (void)engine.Close();
  Cleanup(prefix);
}
BENCHMARK(BM_AbortUndo)->Arg(16)->Arg(128);

void BM_BTreeIndexLookup(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  const std::string prefix = TempPrefix("btree");
  Cleanup(prefix);
  StorageEngine engine;
  (void)engine.Open(prefix);
  auto root = storage::BTree::Create(engine.buffer_pool());
  storage::BTree tree(engine.buffer_pool(), *root);
  for (int i = 0; i < keys; ++i) {
    (void)tree.Insert(static_cast<std::uint64_t>(i),
                      Rid{static_cast<storage::PageId>(i + 1), 0});
  }
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(k++ % static_cast<std::uint64_t>(keys)).ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["height"] = static_cast<double>(*tree.Height());
  (void)engine.Close();
  Cleanup(prefix);
}
BENCHMARK(BM_BTreeIndexLookup)->Arg(100)->Arg(10000)->Arg(100000);

void BM_BTreeInsert(benchmark::State& state) {
  const std::string prefix = TempPrefix("btree_ins");
  Cleanup(prefix);
  StorageEngine engine;
  (void)engine.Open(prefix);
  auto root = storage::BTree::Create(engine.buffer_pool());
  storage::BTree tree(engine.buffer_pool(), *root);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(k++, Rid{1, 0}).ok());
  }
  state.SetItemsProcessed(state.iterations());
  (void)engine.Close();
  Cleanup(prefix);
}
BENCHMARK(BM_BTreeInsert);

void BM_RecoveryReplay(benchmark::State& state) {
  const int committed_txns = static_cast<int>(state.range(0));
  const std::string prefix = TempPrefix("recover");
  for (auto _ : state) {
    state.PauseTiming();
    Cleanup(prefix);
    {
      StorageEngine engine;
      (void)engine.Open(prefix);
      auto file = engine.CreateHeapFile();
      for (int t = 0; t < committed_txns; ++t) {
        auto txn = engine.Begin();
        for (int i = 0; i < 8; ++i) {
          (void)engine.Insert(*txn, *file, Record(64, t * 8 + i));
        }
        (void)engine.Commit(*txn);
      }
      (void)engine.log_manager()->Flush();
      engine.SimulateCrash();  // dirty pages lost
    }
    state.ResumeTiming();
    StorageEngine recovered;
    benchmark::DoNotOptimize(recovered.Open(prefix).ok());
    state.PauseTiming();
    (void)recovered.Close();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * committed_txns * 8);
  Cleanup(prefix);
}
BENCHMARK(BM_RecoveryReplay)->Arg(10)->Arg(100)->Arg(500);

}  // namespace
}  // namespace sentinel::bench
