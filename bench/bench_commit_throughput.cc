// Commit-path throughput: per-commit-fsync baseline vs WAL group commit vs
// async commit, across 1..8 committer threads. Each iteration is one full
// short transaction (Begin, 64-byte Insert, Commit). The benchmark library
// reports per-thread-normalized rates for ->Threads(n) runs, so the
// aggregate commits/sec is items_per_second * threads (tools/run_benches.sh
// annotates this into BENCH_commit.json and gates the group/async speedup
// vs the per-fsync baseline at 8 threads).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "storage/storage_engine.h"

namespace sentinel::bench {
namespace {

using storage::CommitDurability;
using storage::StorageEngine;

struct CommitEnv {
  std::string prefix;
  std::unique_ptr<StorageEngine> engine;
  storage::PageId file = 0;
  std::vector<std::uint8_t> record;
};

CommitEnv* g_env = nullptr;

void CleanupFiles(const std::string& prefix) {
  std::remove((prefix + ".db").c_str());
  std::remove((prefix + ".wal").c_str());
}

void SetupEnv(bool group_commit) {
  auto env = std::make_unique<CommitEnv>();
  env->prefix = (std::filesystem::temp_directory_path() /
                 ("sentinel_bench_commit_" + std::to_string(::getpid())))
                    .string();
  CleanupFiles(env->prefix);
  StorageEngine::Options options;
  options.wal_options.group_commit = group_commit;
  env->engine = std::make_unique<StorageEngine>();
  if (!env->engine->Open(env->prefix, options).ok()) std::abort();
  auto file = env->engine->CreateHeapFile();
  if (!file.ok()) std::abort();
  env->file = *file;
  env->record.assign(64, 0xAB);
  g_env = env.release();
}

void SetupPerFsync(const benchmark::State&) { SetupEnv(false); }
void SetupGroup(const benchmark::State&) { SetupEnv(true); }

void TeardownEnv(const benchmark::State&) {
  // Drain any async-acknowledged commits so every configuration pays for
  // full durability of its work inside the same process lifetime.
  (void)g_env->engine->WaitWalDurable();
  (void)g_env->engine->Close();
  CleanupFiles(g_env->prefix);
  delete g_env;
  g_env = nullptr;
}

void CommitLoop(benchmark::State& state, CommitDurability durability) {
  StorageEngine& engine = *g_env->engine;
  for (auto _ : state) {
    auto txn = engine.Begin();
    if (!txn.ok()) {
      state.SkipWithError("Begin failed");
      break;
    }
    (void)engine.Insert(*txn, g_env->file, g_env->record);
    if (!engine.Commit(*txn, durability).ok()) {
      state.SkipWithError("Commit failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

// Seed behaviour: every commit record pays its own fsync inline.
void BM_CommitPerFsync(benchmark::State& state) {
  CommitLoop(state, CommitDurability::kSync);
}
BENCHMARK(BM_CommitPerFsync)
    ->Setup(SetupPerFsync)
    ->Teardown(TeardownEnv)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Group commit: committers block on the durability watermark while one
// group-commit thread coalesces concurrent commits into a single fsync.
void BM_CommitGroup(benchmark::State& state) {
  CommitLoop(state, CommitDurability::kSync);
}
BENCHMARK(BM_CommitGroup)
    ->Setup(SetupGroup)
    ->Teardown(TeardownEnv)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Async commit: acknowledged on WAL-buffer write; the group-commit thread
// advances the durable watermark behind the acks (drained in Teardown).
void BM_CommitAsync(benchmark::State& state) {
  CommitLoop(state, CommitDurability::kAsync);
}
BENCHMARK(BM_CommitAsync)
    ->Setup(SetupGroup)
    ->Teardown(TeardownEnv)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace sentinel::bench
