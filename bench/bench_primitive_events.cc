// E1 (DESIGN.md): primitive-event detection is a thin wrapper around method
// invocation. Compares a plain call against the Notify path with
// progressively more machinery engaged: no event declared, event declared
// but unsubscribed, event with a no-op immediate rule.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace sentinel::bench {
namespace {

int g_side_effect = 0;

void PlainMethod(int v) { g_side_effect += v; }

void BM_PlainMethodCall(benchmark::State& state) {
  int v = 0;
  for (auto _ : state) {
    PlainMethod(++v);
    benchmark::DoNotOptimize(g_side_effect);
  }
}
BENCHMARK(BM_PlainMethodCall);

void BM_NotifyNoEventDeclared(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  auto txn = db.Begin();
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "Stock", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NotifyNoEventDeclared);

void BM_NotifyEventDeclaredNoRule(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "Stock", EventModifier::kEnd, "void f(int v)");
  auto txn = db.Begin();
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "Stock", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations());
  DumpMetricsSnapshot(&db, "BM_NotifyEventDeclaredNoRule");
}
BENCHMARK(BM_NotifyEventDeclaredNoRule);

void BM_NotifyWithSubscribedSink(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "Stock", EventModifier::kEnd, "void f(int v)");
  CountingSink sink;
  (void)db.detector()->Subscribe("e", &sink, ParamContext::kRecent);
  auto txn = db.Begin();
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "Stock", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["detections"] = static_cast<double>(sink.count);
}
BENCHMARK(BM_NotifyWithSubscribedSink);

void BM_NotifyWithImmediateRule(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "Stock", EventModifier::kEnd, "void f(int v)");
  (void)db.rule_manager()->DefineRule("r", "e", nullptr,
                                      [](const rules::RuleContext&) {});
  auto txn = db.Begin();
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "Stock", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations());
  DumpMetricsSnapshot(&db, "BM_NotifyWithImmediateRule");
}
BENCHMARK(BM_NotifyWithImmediateRule);

// Instance-level filtering: many instance events defined, only one matches.
void BM_NotifyInstanceLevelFilter(benchmark::State& state) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  const int instances = static_cast<int>(state.range(0));
  for (int i = 0; i < instances; ++i) {
    (void)db.detector()->DefinePrimitive("e" + std::to_string(i), "Stock",
                                         EventModifier::kEnd, "void f(int v)",
                                         /*instance=*/i + 1);
  }
  CountingSink sink;
  (void)db.detector()->Subscribe("e0", &sink, ParamContext::kRecent);
  auto txn = db.Begin();
  int v = 0;
  for (auto _ : state) {
    db.NotifyMethod("Stock", /*oid=*/1, EventModifier::kEnd, "void f(int v)",
                    OneIntParam(++v), *txn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NotifyInstanceLevelFilter)->Arg(1)->Arg(16)->Arg(256);

}  // namespace
}  // namespace sentinel::bench
