// E4 (DESIGN.md): common sub-expressions are represented once (paper §3.1),
// reducing node count and per-notification work. Compares K rules over one
// shared expression vs. K rules over K duplicated expressions.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "detector/local_detector.h"

namespace sentinel::bench {
namespace {

using detector::LocalEventDetector;

void BM_SharedExpression(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  LocalEventDetector det;
  auto a = det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  (void)det.DefineAnd("shared", *a, *b);
  std::vector<std::unique_ptr<CountingSink>> sinks;
  for (int i = 0; i < k; ++i) {
    sinks.push_back(std::make_unique<CountingSink>());
    (void)det.Subscribe("shared", sinks.back().get(), ParamContext::kRecent);
  }
  int v = 0;
  for (auto _ : state) {
    det.Notify("C", 1, EventModifier::kEnd, "void fa()", OneIntParam(++v), 1);
    det.Notify("C", 1, EventModifier::kEnd, "void fb()", OneIntParam(++v), 1);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["graph_nodes"] = static_cast<double>(det.node_count());
}
BENCHMARK(BM_SharedExpression)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_DuplicatedExpressions(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  LocalEventDetector det;
  auto a = det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  std::vector<std::unique_ptr<CountingSink>> sinks;
  for (int i = 0; i < k; ++i) {
    (void)det.DefineAnd("dup" + std::to_string(i), *a, *b);
    sinks.push_back(std::make_unique<CountingSink>());
    (void)det.Subscribe("dup" + std::to_string(i), sinks.back().get(),
                        ParamContext::kRecent);
  }
  int v = 0;
  for (auto _ : state) {
    det.Notify("C", 1, EventModifier::kEnd, "void fa()", OneIntParam(++v), 1);
    det.Notify("C", 1, EventModifier::kEnd, "void fb()", OneIntParam(++v), 1);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["graph_nodes"] = static_cast<double>(det.node_count());
}
BENCHMARK(BM_DuplicatedExpressions)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

// Late binding of contexts (paper §3.1): one event definition reused by
// rules in different contexts — vs. duplicating the event per context.
void BM_LateContextBinding(benchmark::State& state) {
  LocalEventDetector det;
  auto a = det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  (void)det.DefineAnd("e", *a, *b);
  CountingSink recent, chronicle, cumulative;
  (void)det.Subscribe("e", &recent, ParamContext::kRecent);
  (void)det.Subscribe("e", &chronicle, ParamContext::kChronicle);
  (void)det.Subscribe("e", &cumulative, ParamContext::kCumulative);
  int v = 0;
  for (auto _ : state) {
    det.Notify("C", 1, EventModifier::kEnd, "void fa()", OneIntParam(++v), 1);
    det.Notify("C", 1, EventModifier::kEnd, "void fb()", OneIntParam(++v), 1);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["graph_nodes"] = static_cast<double>(det.node_count());
}
BENCHMARK(BM_LateContextBinding);

}  // namespace
}  // namespace sentinel::bench
