// E9 (DESIGN.md): global (inter-application) event detection — forwarding
// throughput and cross-application composite detection as the number of
// applications grows (paper Fig. 2).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.h"
#include "ged/global_detector.h"

namespace sentinel::bench {
namespace {

struct Fleet {
  std::vector<std::unique_ptr<core::ActiveDatabase>> apps;
  ged::GlobalEventDetector ged;

  explicit Fleet(int n) {
    for (int i = 0; i < n; ++i) {
      apps.push_back(std::make_unique<core::ActiveDatabase>());
      (void)apps.back()->OpenInMemory();
      (void)ged.RegisterApplication("app" + std::to_string(i),
                                    apps.back().get());
    }
  }
};

void BM_ForwardingThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fleet fleet(n);
  int v = 0;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      FireMethod(fleet.apps[i].get(), "C", "void f(int v)", ++v, 1);
    }
    fleet.ged.WaitQuiescent();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["forwarded"] =
      static_cast<double>(fleet.ged.forwarded_count());
}
BENCHMARK(BM_ForwardingThroughput)->Arg(2)->Arg(4)->Arg(8);

void BM_CrossApplicationSeq(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fleet fleet(n);
  // Chain: app0.f then app1.f then ... then app{n-1}.f
  std::vector<detector::EventNode*> prims;
  for (int i = 0; i < n; ++i) {
    prims.push_back(*fleet.ged.DefineGlobalPrimitive(
        "g" + std::to_string(i), "app" + std::to_string(i), "C",
        EventModifier::kEnd, "void f(int v)"));
  }
  detector::EventNode* chain = prims[0];
  for (int i = 1; i < n; ++i) {
    chain = *fleet.ged.graph()->DefineSeq("seq" + std::to_string(i), chain,
                                          prims[i]);
  }
  CountingSink sink;
  (void)fleet.ged.Subscribe(chain->name(), &sink, ParamContext::kChronicle);
  int v = 0;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      FireMethod(fleet.apps[i].get(), "C", "void f(int v)", ++v, 1);
    }
    fleet.ged.WaitQuiescent();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["detections"] = static_cast<double>(sink.count);
}
BENCHMARK(BM_CrossApplicationSeq)->Arg(2)->Arg(4)->Arg(8);

void BM_DeliverToDetachedRule(benchmark::State& state) {
  Fleet fleet(2);
  (void)fleet.ged.DefineGlobalPrimitive("g0", "app0", "C",
                                        EventModifier::kEnd, "void f(int v)");
  (void)fleet.apps[1]->detector()->DefineExplicit("incoming");
  std::atomic<std::uint64_t> handled{0};
  rules::RuleManager::RuleOptions options;
  options.coupling = rules::CouplingMode::kDetached;
  (void)fleet.apps[1]->rule_manager()->DefineRule(
      "h", "incoming", nullptr,
      [&handled](const rules::RuleContext&) { ++handled; }, options);
  (void)fleet.ged.DeliverTo("g0", "app1", "incoming");
  int v = 0;
  for (auto _ : state) {
    FireMethod(fleet.apps[0].get(), "C", "void f(int v)", ++v, 1);
    fleet.ged.WaitQuiescent();
    fleet.apps[1]->scheduler()->WaitDetached();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["handled"] = static_cast<double>(handled.load());
}
BENCHMARK(BM_DeliverToDetachedRule);

}  // namespace
}  // namespace sentinel::bench
