// B1–B5 (DESIGN.md): BEAST-style active-DBMS benchmark (Gatziu et al.,
// "007 Meets the BEAST") adapted to Sentinel. BEAST measures an active
// system along three axes over an OO7-like schema (modules, composite
// parts, atomic parts, documents):
//
//   ED — event detection   (primitive, conjunction, sequence, negation,
//                           repeated occurrences, per context)
//   RM — rule management   (firing one rule out of a large rule base)
//   RE — rule execution    (single rule, multiple prioritized rules,
//                           cascades of nested triggers)

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace sentinel::bench {
namespace {

using rules::RuleContext;
using rules::RuleManager;

/// OO7-like workload: a module of composite parts, each owning atomic parts
/// whose `change()` method is the event source (BEAST drives OO7 update
/// operations as its event generators).
class Beast {
 public:
  explicit Beast(int atomic_parts) : atomic_parts_(atomic_parts) {
    (void)db_.OpenInMemory();
    (void)db_.DeclareEvent("ap_change", "AtomicPart", EventModifier::kEnd,
                           "void change(int delta)");
    (void)db_.DeclareEvent("ap_connect", "AtomicPart", EventModifier::kEnd,
                           "void connect(int to)");
    (void)db_.DeclareEvent("cp_rotate", "CompositePart", EventModifier::kEnd,
                           "void rotate()");
    (void)db_.DeclareEvent("doc_update", "Document", EventModifier::kEnd,
                           "void update_text()");
  }

  void ChangeAtomicPart(int part, storage::TxnId txn) {
    db_.NotifyMethod("AtomicPart", static_cast<oodb::Oid>(part % atomic_parts_ + 1),
                     EventModifier::kEnd, "void change(int delta)",
                     OneIntParam(part), txn);
  }
  void ConnectAtomicPart(int part, storage::TxnId txn) {
    db_.NotifyMethod("AtomicPart", static_cast<oodb::Oid>(part % atomic_parts_ + 1),
                     EventModifier::kEnd, "void connect(int to)",
                     OneIntParam(part), txn);
  }
  void RotateComposite(storage::TxnId txn) {
    db_.NotifyMethod("CompositePart", 1, EventModifier::kEnd, "void rotate()",
                     OneIntParam(0), txn);
  }

  core::ActiveDatabase* db() { return &db_; }

 private:
  core::ActiveDatabase db_;
  int atomic_parts_;
};

// ---- ED: event detection ---------------------------------------------------------

// ED-P1: primitive (method) event on atomic-part update.
void BM_BEAST_ED_P1_Primitive(benchmark::State& state) {
  Beast beast(100);
  CountingSink sink;
  (void)beast.db()->detector()->Subscribe("ap_change", &sink,
                                          ParamContext::kRecent);
  auto txn = beast.db()->Begin();
  int i = 0;
  for (auto _ : state) beast.ChangeAtomicPart(++i, *txn);
  state.SetItemsProcessed(state.iterations());
  state.counters["detections"] = static_cast<double>(sink.count);
}
BENCHMARK(BM_BEAST_ED_P1_Primitive);

// ED-C1: conjunction (change ^ rotate), per context.
void BM_BEAST_ED_C1_Conjunction(benchmark::State& state) {
  const auto context = static_cast<ParamContext>(state.range(0));
  Beast beast(100);
  auto det = beast.db()->detector();
  (void)det->DefineAnd("c1", *det->Find("ap_change"), *det->Find("cp_rotate"));
  CountingSink sink;
  (void)det->Subscribe("c1", &sink, context);
  auto txn = beast.db()->Begin();
  int i = 0;
  for (auto _ : state) {
    beast.ChangeAtomicPart(++i, *txn);
    beast.RotateComposite(*txn);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["detections"] = static_cast<double>(sink.count);
  state.SetLabel(detector::ParamContextToString(context));
}
BENCHMARK(BM_BEAST_ED_C1_Conjunction)->DenseRange(0, 3);

// ED-C2: sequence (connect then change).
void BM_BEAST_ED_C2_Sequence(benchmark::State& state) {
  Beast beast(100);
  auto det = beast.db()->detector();
  (void)det->DefineSeq("c2", *det->Find("ap_connect"), *det->Find("ap_change"));
  CountingSink sink;
  (void)det->Subscribe("c2", &sink, ParamContext::kChronicle);
  auto txn = beast.db()->Begin();
  int i = 0;
  for (auto _ : state) {
    beast.ConnectAtomicPart(++i, *txn);
    beast.ChangeAtomicPart(++i, *txn);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["detections"] = static_cast<double>(sink.count);
}
BENCHMARK(BM_BEAST_ED_C2_Sequence);

// ED-C3: negation — rotate with no connect between two changes.
void BM_BEAST_ED_C3_Negation(benchmark::State& state) {
  Beast beast(100);
  auto det = beast.db()->detector();
  (void)det->DefineNot("c3", *det->Find("ap_change"), *det->Find("ap_connect"),
                       *det->Find("cp_rotate"));
  CountingSink sink;
  (void)det->Subscribe("c3", &sink, ParamContext::kRecent);
  auto txn = beast.db()->Begin();
  int i = 0;
  for (auto _ : state) {
    beast.ChangeAtomicPart(++i, *txn);
    beast.RotateComposite(*txn);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["detections"] = static_cast<double>(sink.count);
}
BENCHMARK(BM_BEAST_ED_C3_Negation);

// ED-C4: repeated occurrences — A*(rotate, change, rotate) accumulation.
void BM_BEAST_ED_C4_History(benchmark::State& state) {
  const int occurrences = static_cast<int>(state.range(0));
  Beast beast(100);
  auto det = beast.db()->detector();
  (void)det->DefineAperiodicStar("c4", *det->Find("cp_rotate"),
                                 *det->Find("ap_change"),
                                 *det->Find("cp_rotate"));
  CountingSink sink;
  (void)det->Subscribe("c4", &sink, ParamContext::kCumulative);
  auto txn = beast.db()->Begin();
  int i = 0;
  for (auto _ : state) {
    beast.RotateComposite(*txn);
    for (int k = 0; k < occurrences; ++k) beast.ChangeAtomicPart(++i, *txn);
    beast.RotateComposite(*txn);
  }
  state.SetItemsProcessed(state.iterations() * (occurrences + 2));
  state.counters["detections"] = static_cast<double>(sink.count);
}
BENCHMARK(BM_BEAST_ED_C4_History)->Arg(3)->Arg(25);

// ---- RM: rule management ------------------------------------------------------------

// RM-1: fire ONE rule while the rule base holds N others (retrieval scaling).
void BM_BEAST_RM_1_RuleBaseScaling(benchmark::State& state) {
  const int rule_base = static_cast<int>(state.range(0));
  Beast beast(100);
  std::atomic<std::uint64_t> fired{0};
  // N inactive rules on other events.
  for (int i = 0; i < rule_base; ++i) {
    (void)beast.db()->rule_manager()->DefineRule(
        "idle" + std::to_string(i), "doc_update", nullptr,
        [](const RuleContext&) {});
  }
  (void)beast.db()->rule_manager()->DefineRule(
      "hot", "ap_change", nullptr,
      [&fired](const RuleContext&) { ++fired; });
  auto txn = beast.db()->Begin();
  int i = 0;
  for (auto _ : state) beast.ChangeAtomicPart(++i, *txn);
  state.SetItemsProcessed(state.iterations());
  state.counters["rule_base"] = rule_base;
  state.counters["fired"] = static_cast<double>(fired.load());
}
BENCHMARK(BM_BEAST_RM_1_RuleBaseScaling)->Arg(10)->Arg(100)->Arg(1000);

// ---- RE: rule execution -----------------------------------------------------------

// RE-1/RE-2: k prioritized rules per event.
void BM_BEAST_RE_2_MultipleRules(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Beast beast(100);
  std::atomic<std::uint64_t> fired{0};
  for (int i = 0; i < k; ++i) {
    RuleManager::RuleOptions options;
    options.priority = i;
    (void)beast.db()->rule_manager()->DefineRule(
        "r" + std::to_string(i), "ap_change", nullptr,
        [&fired](const RuleContext&) { ++fired; }, options);
  }
  auto txn = beast.db()->Begin();
  int i = 0;
  for (auto _ : state) beast.ChangeAtomicPart(++i, *txn);
  state.SetItemsProcessed(state.iterations() * k);
  state.counters["fired"] = static_cast<double>(fired.load());
}
BENCHMARK(BM_BEAST_RE_2_MultipleRules)->Arg(1)->Arg(4)->Arg(16);

// RE-3: cascade — a rule whose action updates another part, triggering the
// next rule, to the given depth.
void BM_BEAST_RE_3_Cascade(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Beast beast(100);
  auto det = beast.db()->detector();
  for (int i = 0; i < depth; ++i) {
    (void)det->DefineExplicit("cascade" + std::to_string(i));
  }
  std::atomic<std::uint64_t> leaf{0};
  for (int i = 0; i < depth; ++i) {
    rules::ActionFn action;
    if (i + 1 < depth) {
      const std::string next = "cascade" + std::to_string(i + 1);
      action = [det, next](const RuleContext& ctx) {
        (void)det->RaiseExplicit(next, nullptr, ctx.txn);
      };
    } else {
      action = [&leaf](const RuleContext&) { ++leaf; };
    }
    (void)beast.db()->rule_manager()->DefineRule(
        "c" + std::to_string(i), "cascade" + std::to_string(i), nullptr,
        action);
  }
  auto txn = beast.db()->Begin();
  for (auto _ : state) {
    (void)beast.db()->RaiseEvent("cascade0", nullptr, *txn);
  }
  state.SetItemsProcessed(state.iterations() * depth);
  state.counters["leaf"] = static_cast<double>(leaf.load());
  state.counters["max_depth"] =
      static_cast<double>(beast.db()->scheduler()->max_depth_seen());
}
BENCHMARK(BM_BEAST_RE_3_Cascade)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
}  // namespace sentinel::bench
