// Profiling-plane overhead (DESIGN.md §15): every profiler feed is gated on
// one relaxed load of the mode, so the Notify hot path must cost the same
// whether the profiler object exists or not while profiling is off — and
// stay cheap (sharded-counter adds plus four clock reads per firing) while
// it is on. Two loop shapes, each off/on:
//   - DeclaredNoRule: the BM_NotifyEventDeclaredNoRule shape (primitive
//     dispatch into a counting sink, no rule),
//   - ImmediateRule:  the BM_NotifyWithImmediateRule shape (condition +
//     action + commit seams all recorded per firing).
// tools/run_benches.sh folds the four into BENCH_profile.json and compares
// each On variant against its Off twin within the run: >2% drift on the
// off-path warns, >10% fails strict mode.

#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_util.h"
#include "obs/profiler.h"
#include "rules/rule_manager.h"

namespace sentinel::bench {
namespace {

void NotifyDeclaredNoRule(benchmark::State& state, bool profiling) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  CountingSink sink;
  (void)db.detector()->Subscribe("e", &sink, ParamContext::kRecent);
  if (profiling) db.profiler()->Start();

  auto txn = db.Begin();
  CounterBaseline base(db);
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "C", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations());
  base.Report(&db, &state);
  state.counters["profile_samples"] =
      static_cast<double>(db.profiler()->samples());
}

void NotifyWithImmediateRule(benchmark::State& state, bool profiling) {
  core::ActiveDatabase db;
  (void)db.OpenInMemory();
  (void)db.DeclareEvent("e", "C", EventModifier::kEnd, "void f(int v)");
  std::atomic<std::uint64_t> fired{0};
  (void)db.rule_manager()->DefineRule(
      "r_bench", "e", nullptr,
      [&](const rules::RuleContext&) {
        fired.fetch_add(1, std::memory_order_relaxed);
      });
  if (profiling) db.profiler()->Start();

  auto txn = db.Begin();
  CounterBaseline base(db);
  int v = 0;
  for (auto _ : state) {
    FireMethod(&db, "C", "void f(int v)", ++v, *txn);
  }
  state.SetItemsProcessed(state.iterations());
  base.Report(&db, &state);
  state.counters["fired"] = static_cast<double>(fired.load());
}

void BM_ProfileNotifyDeclaredNoRuleOff(benchmark::State& state) {
  NotifyDeclaredNoRule(state, false);
}
void BM_ProfileNotifyDeclaredNoRuleOn(benchmark::State& state) {
  NotifyDeclaredNoRule(state, true);
}
void BM_ProfileNotifyImmediateRuleOff(benchmark::State& state) {
  NotifyWithImmediateRule(state, false);
}
void BM_ProfileNotifyImmediateRuleOn(benchmark::State& state) {
  NotifyWithImmediateRule(state, true);
}
BENCHMARK(BM_ProfileNotifyDeclaredNoRuleOff);
BENCHMARK(BM_ProfileNotifyDeclaredNoRuleOn);
BENCHMARK(BM_ProfileNotifyImmediateRuleOff);
BENCHMARK(BM_ProfileNotifyImmediateRuleOn);

}  // namespace
}  // namespace sentinel::bench
