// E3 (DESIGN.md): the four parameter contexts on a single shared graph —
// CPU cost and occurrence-buffer storage. The paper picks RECENT as the
// default "due to its low storage requirements"; the buffered_peak counter
// shows why.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "detector/local_detector.h"

namespace sentinel::bench {
namespace {

using detector::LocalEventDetector;

const char* ContextName(int c) {
  return detector::ParamContextToString(static_cast<ParamContext>(c));
}

// Skewed stream: many initiators per terminator — the regime where context
// choice matters most.
void BM_ContextDetection(benchmark::State& state) {
  const auto context = static_cast<ParamContext>(state.range(0));
  const int initiators_per_terminator = static_cast<int>(state.range(1));
  LocalEventDetector det;
  auto a = det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  (void)det.DefineAnd("e", *a, *b);
  CountingSink sink;
  (void)det.Subscribe("e", &sink, context);

  std::size_t buffered_peak = 0;
  int v = 0;
  for (auto _ : state) {
    for (int i = 0; i < initiators_per_terminator; ++i) {
      det.Notify("C", 1, EventModifier::kEnd, "void fa()", OneIntParam(++v), 1);
    }
    buffered_peak = std::max(buffered_peak, det.BufferedCount());
    det.Notify("C", 1, EventModifier::kEnd, "void fb()", OneIntParam(++v), 1);
    // Transaction-boundary flush: bounds per-iteration state (CHRONICLE
    // would otherwise accumulate unconsumed initiators without limit —
    // exactly the storage behaviour buffered_peak reports).
    det.FlushTxn(1);
  }
  state.SetItemsProcessed(state.iterations() *
                          (initiators_per_terminator + 1));
  state.counters["detections"] = static_cast<double>(sink.count);
  state.counters["buffered_peak"] = static_cast<double>(buffered_peak);
  state.SetLabel(ContextName(static_cast<int>(context)));
}
BENCHMARK(BM_ContextDetection)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 16, 128}});

// The same event detected in k contexts simultaneously on ONE graph
// (paper §3.2.2 item 1: multiple contexts in a single event graph).
void BM_SimultaneousContexts(benchmark::State& state) {
  const int num_contexts = static_cast<int>(state.range(0));
  LocalEventDetector det;
  auto a = det.DefinePrimitive("a", "C", EventModifier::kEnd, "void fa()");
  auto b = det.DefinePrimitive("b", "C", EventModifier::kEnd, "void fb()");
  (void)det.DefineAnd("e", *a, *b);
  std::vector<std::unique_ptr<CountingSink>> sinks;
  for (int c = 0; c < num_contexts; ++c) {
    sinks.push_back(std::make_unique<CountingSink>());
    (void)det.Subscribe("e", sinks.back().get(), static_cast<ParamContext>(c));
  }
  int v = 0;
  for (auto _ : state) {
    det.Notify("C", 1, EventModifier::kEnd, "void fa()", OneIntParam(++v), 1);
    det.Notify("C", 1, EventModifier::kEnd, "void fb()", OneIntParam(++v), 1);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["graph_nodes"] = static_cast<double>(det.node_count());
}
BENCHMARK(BM_SimultaneousContexts)->DenseRange(1, 4);

}  // namespace
}  // namespace sentinel::bench
