// Ablation (paper §2.3): Sentinel uses lightweight threads with a free-
// thread pool because "the overhead involved in creating threads and
// inter-task communication is low". This bench quantifies the design
// choices: thread-per-task vs. the reusable pool the scheduler uses, and
// process-style isolation cost approximated by fork().

#include <benchmark/benchmark.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "rules/thread_pool.h"

namespace sentinel::bench {
namespace {

void BM_ThreadSpawnPerTask(benchmark::State& state) {
  std::atomic<int> done{0};
  for (auto _ : state) {
    std::thread t([&done] { ++done; });
    t.join();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThreadSpawnPerTask);

void BM_ThreadPoolTask(benchmark::State& state) {
  rules::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (auto _ : state) {
    pool.Submit([&done] { ++done; });
    pool.WaitIdle();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThreadPoolTask);

void BM_ThreadPoolBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  rules::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      pool.Submit([&done] { ++done; });
    }
    pool.WaitIdle();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ThreadPoolBatch)->Arg(4)->Arg(16)->Arg(64);

// The alternative Sentinel rejected: a process per rule execution. fork()
// without exec, child exits immediately — the cheapest possible "process".
void BM_ProcessPerTask(benchmark::State& state) {
  for (auto _ : state) {
    pid_t pid = fork();
    if (pid == 0) {
      _exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProcessPerTask)->Iterations(2000);

}  // namespace
}  // namespace sentinel::bench
