// Ablation (paper §2.3): Sentinel uses lightweight threads with a free-
// thread pool because "the overhead involved in creating threads and
// inter-task communication is low". This bench quantifies the design
// choices: thread-per-task vs. the reusable pool the scheduler uses, and
// process-style isolation cost approximated by fork().

#include <benchmark/benchmark.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "rules/thread_pool.h"

namespace sentinel::bench {
namespace {

void BM_ThreadSpawnPerTask(benchmark::State& state) {
  std::atomic<int> done{0};
  for (auto _ : state) {
    std::thread t([&done] { ++done; });
    t.join();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThreadSpawnPerTask);

void BM_ThreadPoolTask(benchmark::State& state) {
  rules::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (auto _ : state) {
    pool.Submit([&done] { ++done; });
    pool.WaitIdle();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThreadPoolTask);

void BM_ThreadPoolBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  rules::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      pool.Submit([&done] { ++done; });
    }
    pool.WaitIdle();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ThreadPoolBatch)->Arg(4)->Arg(16)->Arg(64);

// The alternative Sentinel rejected: a process per rule execution. fork()
// without exec, child exits immediately — the cheapest possible "process".
void BM_ProcessPerTask(benchmark::State& state) {
  for (auto _ : state) {
    pid_t pid = fork();
    if (pid == 0) {
      _exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProcessPerTask)->Iterations(2000);

// ---- Concurrent Notify scaling ---------------------------------------------
//
// Measures the detector's shared-lock dispatch path under contention: N
// benchmark threads notify methods on distinct classes of one shared
// ActiveDatabase. With the lock-striped detector, throughput should scale
// with threads instead of serializing on a global mutex.

constexpr int kNotifyClasses = 16;

struct ConcurrentNotifyFixture {
  core::ActiveDatabase db;
  std::vector<AtomicCountingSink> sinks{kNotifyClasses};
  storage::TxnId txn = storage::kInvalidTxnId;

  ConcurrentNotifyFixture() {
    (void)db.OpenInMemory();
    for (int i = 0; i < kNotifyClasses; ++i) {
      const std::string cls = "Stock" + std::to_string(i);
      (void)db.DeclareEvent("e" + std::to_string(i), cls, EventModifier::kEnd,
                            "void f(int v)");
      (void)db.detector()->Subscribe("e" + std::to_string(i), &sinks[i],
                                     ParamContext::kRecent);
    }
    txn = *db.Begin();
  }

  // Shared by every benchmark thread; leaked so thread teardown order is
  // irrelevant.
  static ConcurrentNotifyFixture& Get() {
    static ConcurrentNotifyFixture* fixture = new ConcurrentNotifyFixture();
    return *fixture;
  }
};

// Each thread fires on its own class, every notification delivered to a
// subscribed sink (the full dispatch path).
void BM_NotifyConcurrent(benchmark::State& state) {
  ConcurrentNotifyFixture& f = ConcurrentNotifyFixture::Get();
  const int cls_idx = state.thread_index() % kNotifyClasses;
  const std::string cls = "Stock" + std::to_string(cls_idx);
  int v = 0;
  for (auto _ : state) {
    FireMethod(&f.db, cls, "void f(int v)", ++v, f.txn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NotifyConcurrent)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

// Each thread fires on a class with no declared events: the negative-cache
// fast path, which should scale near-linearly (no locks taken).
void BM_NotifyConcurrentQuiescent(benchmark::State& state) {
  ConcurrentNotifyFixture& f = ConcurrentNotifyFixture::Get();
  const std::string cls = "Quiet" + std::to_string(state.thread_index());
  int v = 0;
  for (auto _ : state) {
    FireMethod(&f.db, cls, "void f(int v)", ++v, f.txn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NotifyConcurrentQuiescent)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

}  // namespace
}  // namespace sentinel::bench
