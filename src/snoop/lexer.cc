#include "snoop/lexer.h"

#include <cctype>

namespace sentinel::snoop {

Lexer::Lexer(std::string source) : src_(std::move(source)) {
  current_ = Lex();
}

Token Lexer::Next() {
  Token token = current_;
  current_ = Lex();
  return token;
}

void Lexer::SkipWhitespaceAndComments() {
  for (;;) {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
      while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      continue;
    }
    if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '*') {
      pos_ += 2;
      while (pos_ + 1 < src_.size() &&
             !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      pos_ = pos_ + 2 <= src_.size() ? pos_ + 2 : src_.size();
      continue;
    }
    return;
  }
}

Token Lexer::Lex() {
  SkipWhitespaceAndComments();
  current_start_ = pos_;
  current_line_start_ = line_;
  Token token;
  token.line = line_;
  if (pos_ >= src_.size()) {
    token.kind = TokenKind::kEnd;
    return token;
  }
  const char c = src_[pos_];
  auto single = [&](TokenKind kind) {
    token.kind = kind;
    token.text = std::string(1, c);
    ++pos_;
    return token;
  };
  switch (c) {
    case '(':
      return single(TokenKind::kLParen);
    case ')':
      return single(TokenKind::kRParen);
    case '{':
      return single(TokenKind::kLBrace);
    case '}':
      return single(TokenKind::kRBrace);
    case '[':
      return single(TokenKind::kLBracket);
    case ']':
      return single(TokenKind::kRBracket);
    case ',':
      return single(TokenKind::kComma);
    case ';':
      return single(TokenKind::kSemicolon);
    case ':':
      return single(TokenKind::kColon);
    case '=':
      return single(TokenKind::kEquals);
    case '^':
      return single(TokenKind::kCaret);
    case '|':
      return single(TokenKind::kPipe);
    case '*':
      return single(TokenKind::kStar);
    case '&':
      if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '&') {
        token.kind = TokenKind::kAmpAmp;
        token.text = "&&";
        pos_ += 2;
        return token;
      }
      return single(TokenKind::kAmpAmp);  // lone & treated as &&
    default:
      break;
  }
  if (c == '"') {
    ++pos_;
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      text.push_back(src_[pos_++]);
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
    token.kind = TokenKind::kString;
    token.text = std::move(text);
    return token;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::uint64_t value = 0;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      value = value * 10 + static_cast<std::uint64_t>(src_[pos_] - '0');
      ++pos_;
    }
    // Optional "ms" suffix.
    if (pos_ + 1 < src_.size() && src_[pos_] == 'm' && src_[pos_ + 1] == 's') {
      pos_ += 2;
    }
    token.kind = TokenKind::kNumber;
    token.number = value;
    token.text = std::to_string(value);
    return token;
  }
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '-') {
    std::string text;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_' || src_[pos_] == '-')) {
      text.push_back(src_[pos_++]);
    }
    token.kind = TokenKind::kIdent;
    token.text = std::move(text);
    return token;
  }
  // Unknown character: emit as a one-char identifier so the parser reports a
  // sensible error.
  token.kind = TokenKind::kIdent;
  token.text = std::string(1, c);
  ++pos_;
  return token;
}

Result<std::string> Lexer::CaptureUntilSemicolon() {
  // The capture starts at the current (already lexed) token's first char.
  std::size_t start = current_start_;
  std::size_t end = src_.find(';', start);
  if (end == std::string::npos) {
    return Status::ParseError("expected ';' after method signature (line " +
                              std::to_string(current_line_start_) + ")");
  }
  std::string captured = src_.substr(start, end - start);
  // Trim trailing whitespace.
  while (!captured.empty() &&
         std::isspace(static_cast<unsigned char>(captured.back()))) {
    captured.pop_back();
  }
  // Re-sync the lexer past the ';'.
  pos_ = end + 1;
  current_ = Lex();
  return captured;
}

}  // namespace sentinel::snoop
