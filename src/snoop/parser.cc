#include "snoop/parser.h"

namespace sentinel::snoop {

namespace {

Result<oodb::ValueType> ParseType(const std::string& name) {
  if (name == "int") return oodb::ValueType::kInt;
  if (name == "double" || name == "float") return oodb::ValueType::kDouble;
  if (name == "string") return oodb::ValueType::kString;
  if (name == "bool") return oodb::ValueType::kBool;
  if (name == "oid") return oodb::ValueType::kOid;
  return Status::ParseError("unknown attribute type: " + name);
}

Result<detector::ParamContext> ParseContext(const std::string& name) {
  if (name == "RECENT") return detector::ParamContext::kRecent;
  if (name == "CHRONICLE") return detector::ParamContext::kChronicle;
  if (name == "CONTINUOUS") return detector::ParamContext::kContinuous;
  if (name == "CUMULATIVE") return detector::ParamContext::kCumulative;
  return Status::ParseError("unknown parameter context: " + name);
}

Result<rules::CouplingMode> ParseCoupling(const std::string& name) {
  if (name == "IMMEDIATE") return rules::CouplingMode::kImmediate;
  if (name == "DEFERRED") return rules::CouplingMode::kDeferred;
  if (name == "DETACHED") return rules::CouplingMode::kDetached;
  return Status::ParseError("unknown coupling mode: " + name);
}

Result<rules::TriggerMode> ParseTrigger(const std::string& name) {
  if (name == "NOW") return rules::TriggerMode::kNow;
  if (name == "PREVIOUS") return rules::TriggerMode::kPrevious;
  return Status::ParseError("unknown trigger mode: " + name);
}

bool IsContextName(const std::string& n) {
  return n == "RECENT" || n == "CHRONICLE" || n == "CONTINUOUS" ||
         n == "CUMULATIVE";
}
bool IsCouplingName(const std::string& n) {
  return n == "IMMEDIATE" || n == "DEFERRED" || n == "DETACHED";
}
bool IsTriggerName(const std::string& n) {
  return n == "NOW" || n == "PREVIOUS";
}

}  // namespace

std::string EventExpr::ToString() const {
  switch (kind) {
    case Kind::kRef:
      return ref_name;
    case Kind::kPrimitive: {
      std::string s = modifier == detector::EventModifier::kBegin ? "begin("
                                                                  : "end(";
      s += "\"" + class_name + "\"";
      if (!instance_name.empty()) s += ":\"" + instance_name + "\"";
      s += ", \"" + signature + "\")";
      return s;
    }
    case Kind::kOr:
      return "(" + children[0]->ToString() + " | " + children[1]->ToString() +
             ")";
    case Kind::kAnd:
      return "(" + children[0]->ToString() + " ^ " + children[1]->ToString() +
             ")";
    case Kind::kSeq:
      return "(" + children[0]->ToString() + " ; " + children[1]->ToString() +
             ")";
    case Kind::kNot:
      return "NOT(" + children[1]->ToString() + ")[" +
             children[0]->ToString() + ", " + children[2]->ToString() + "]";
    case Kind::kAperiodic:
      return "A(" + children[0]->ToString() + ", " + children[1]->ToString() +
             ", " + children[2]->ToString() + ")";
    case Kind::kAperiodicStar:
      return "A*(" + children[0]->ToString() + ", " +
             children[1]->ToString() + ", " + children[2]->ToString() + ")";
    case Kind::kPlus:
      return "PLUS(" + children[0]->ToString() + ", " +
             std::to_string(time_ms) + ")";
    case Kind::kPeriodic:
      return "P(" + children[0]->ToString() + ", " + std::to_string(time_ms) +
             ", " + children[1]->ToString() + ")";
    case Kind::kPeriodicStar:
      return "P*(" + children[0]->ToString() + ", " + std::to_string(time_ms) +
             ", " + children[1]->ToString() + ")";
    case Kind::kAny: {
      std::string s = "ANY(" + std::to_string(any_threshold);
      for (const auto& child : children) s += ", " + child->ToString();
      return s + ")";
    }
  }
  return "?";
}

Status Parser::Error(const std::string& message) const {
  return Status::ParseError(message + " (line " +
                            std::to_string(lexer_.Peek().line) + ")");
}

Status Parser::Expect(TokenKind kind, const std::string& what) {
  if (lexer_.Peek().kind != kind) {
    return Error("expected " + what + ", got '" + lexer_.Peek().text + "'");
  }
  lexer_.Next();
  return Status::OK();
}

Result<Spec> Parser::Parse(const std::string& source) {
  Parser parser(source);
  Spec spec;
  Status st = parser.ParseSpec(&spec);
  if (!st.ok()) return st;
  return spec;
}

Result<std::unique_ptr<EventExpr>> Parser::ParseExpression(
    const std::string& source) {
  Parser parser(source);
  return parser.ParseExpr();
}

Status Parser::ParseSpec(Spec* spec) {
  while (lexer_.Peek().kind != TokenKind::kEnd) {
    const Token& token = lexer_.Peek();
    if (token.kind != TokenKind::kIdent) {
      return Error("expected 'class', 'event' or 'rule'");
    }
    if (token.text == "class") {
      auto cls = ParseClass();
      if (!cls.ok()) return cls.status();
      spec->classes.push_back(std::move(*cls));
    } else if (token.text == "event") {
      auto event = ParseNamedEvent();
      if (!event.ok()) return event.status();
      SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
      spec->events.push_back(std::move(*event));
    } else if (token.text == "rule") {
      auto rule = ParseRule();
      if (!rule.ok()) return rule.status();
      SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
      spec->rules.push_back(std::move(*rule));
    } else {
      return Error("expected 'class', 'event' or 'rule', got '" + token.text +
                   "'");
    }
  }
  return Status::OK();
}

Result<ClassDecl> Parser::ParseClass() {
  lexer_.Next();  // 'class'
  ClassDecl decl;
  if (lexer_.Peek().kind != TokenKind::kIdent) {
    return Error("expected class name");
  }
  decl.name = lexer_.Next().text;
  if (lexer_.Peek().kind == TokenKind::kColon) {
    lexer_.Next();
    // Allow "public REACTIVE" for C++ flavour.
    if (lexer_.Peek().kind == TokenKind::kIdent &&
        lexer_.Peek().text == "public") {
      lexer_.Next();
    }
    if (lexer_.Peek().kind != TokenKind::kIdent) {
      return Error("expected base class name");
    }
    decl.base = lexer_.Next().text;
  }
  SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kLBrace, "'{'"));

  while (lexer_.Peek().kind != TokenKind::kRBrace) {
    const Token& token = lexer_.Peek();
    if (token.kind == TokenKind::kEnd) return Error("unterminated class body");
    if (token.kind != TokenKind::kIdent) {
      return Error("unexpected token '" + token.text + "' in class body");
    }
    if (token.text == "attr") {
      lexer_.Next();
      AttributeDecl attr;
      if (lexer_.Peek().kind != TokenKind::kIdent) {
        return Error("expected attribute name");
      }
      attr.name = lexer_.Next().text;
      SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kColon, "':'"));
      if (lexer_.Peek().kind != TokenKind::kIdent) {
        return Error("expected attribute type");
      }
      auto type = ParseType(lexer_.Next().text);
      if (!type.ok()) return type.status();
      attr.type = *type;
      SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
      decl.attributes.push_back(std::move(attr));
    } else if (token.text == "event") {
      lexer_.Next();
      // Two forms: interface declaration (begin/end binding before a raw
      // signature) or a named event definition (IDENT '=').
      if (lexer_.Peek().kind == TokenKind::kIdent &&
          (lexer_.Peek().text == "begin" || lexer_.Peek().text == "end")) {
        // modbind { '&&' modbind } raw-signature ';'
        EventInterfaceDecl::Binding first;
        first.modifier = lexer_.Next().text == "begin"
                             ? detector::EventModifier::kBegin
                             : detector::EventModifier::kEnd;
        SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
        if (lexer_.Peek().kind != TokenKind::kIdent) {
          return Error("expected event name");
        }
        first.event_name = lexer_.Next().text;
        SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        auto iface = ParseEventInterface(std::move(first));
        if (!iface.ok()) return iface.status();
        decl.event_interface.push_back(std::move(*iface));
      } else {
        // Named event definition: IDENT '=' expr ';'
        if (lexer_.Peek().kind != TokenKind::kIdent) {
          return Error("expected event name");
        }
        NamedEventDef def;
        def.name = lexer_.Next().text;
        SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kEquals, "'='"));
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        def.expr = std::move(*expr);
        SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
        decl.events.push_back(std::move(def));
      }
    } else if (token.text == "rule") {
      auto rule = ParseRule();
      if (!rule.ok()) return rule.status();
      SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
      decl.rules.push_back(std::move(*rule));
    } else {
      return Error("expected 'attr', 'event' or 'rule', got '" + token.text +
                   "'");
    }
  }
  lexer_.Next();  // '}'
  if (lexer_.Peek().kind == TokenKind::kSemicolon) lexer_.Next();
  return decl;
}

Result<EventInterfaceDecl> Parser::ParseEventInterface(
    EventInterfaceDecl::Binding first) {
  EventInterfaceDecl decl;
  decl.bindings.push_back(std::move(first));
  while (lexer_.Peek().kind == TokenKind::kAmpAmp) {
    lexer_.Next();
    if (lexer_.Peek().kind != TokenKind::kIdent ||
        (lexer_.Peek().text != "begin" && lexer_.Peek().text != "end")) {
      return Error("expected 'begin' or 'end'");
    }
    EventInterfaceDecl::Binding binding;
    binding.modifier = lexer_.Next().text == "begin"
                           ? detector::EventModifier::kBegin
                           : detector::EventModifier::kEnd;
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    if (lexer_.Peek().kind != TokenKind::kIdent) {
      return Error("expected event name");
    }
    binding.event_name = lexer_.Next().text;
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    decl.bindings.push_back(std::move(binding));
  }
  // Whatever follows, up to ';', is the raw C++ method signature.
  auto signature = lexer_.CaptureUntilSemicolon();
  if (!signature.ok()) return signature.status();
  if (signature->empty()) return Error("empty method signature");
  decl.method_signature = std::move(*signature);
  return decl;
}

Result<NamedEventDef> Parser::ParseNamedEvent() {
  lexer_.Next();  // 'event'
  NamedEventDef def;
  if (lexer_.Peek().kind != TokenKind::kIdent) {
    return Error("expected event name");
  }
  def.name = lexer_.Next().text;
  SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kEquals, "'='"));
  auto expr = ParseExpr();
  if (!expr.ok()) return expr.status();
  def.expr = std::move(*expr);
  return def;
}

Result<RuleDef> Parser::ParseRule() {
  lexer_.Next();  // 'rule'
  RuleDef rule;
  if (lexer_.Peek().kind != TokenKind::kIdent) {
    return Error("expected rule name");
  }
  rule.name = lexer_.Next().text;
  SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
  if (lexer_.Peek().kind != TokenKind::kIdent) {
    return Error("expected event name");
  }
  rule.event_name = lexer_.Next().text;
  SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
  if (lexer_.Peek().kind != TokenKind::kIdent) {
    return Error("expected condition function name");
  }
  rule.condition_fn = lexer_.Next().text;
  SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
  if (lexer_.Peek().kind != TokenKind::kIdent) {
    return Error("expected action function name");
  }
  rule.action_fn = lexer_.Next().text;

  // Optional trailing arguments, in paper order:
  // [, context][, coupling][, priority][, trigger]
  while (lexer_.Peek().kind == TokenKind::kComma) {
    lexer_.Next();
    const Token& token = lexer_.Peek();
    if (token.kind == TokenKind::kNumber) {
      rule.priority = static_cast<int>(lexer_.Next().number);
    } else if (token.kind == TokenKind::kIdent && IsContextName(token.text)) {
      auto ctx = ParseContext(lexer_.Next().text);
      if (!ctx.ok()) return ctx.status();
      rule.context = *ctx;
    } else if (token.kind == TokenKind::kIdent && IsCouplingName(token.text)) {
      auto coupling = ParseCoupling(lexer_.Next().text);
      if (!coupling.ok()) return coupling.status();
      rule.coupling = *coupling;
    } else if (token.kind == TokenKind::kIdent && IsTriggerName(token.text)) {
      auto trigger = ParseTrigger(lexer_.Next().text);
      if (!trigger.ok()) return trigger.status();
      rule.trigger = *trigger;
    } else {
      return Error("unexpected rule argument '" + token.text + "'");
    }
  }
  SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
  return rule;
}

Result<std::unique_ptr<EventExpr>> Parser::ParseExpr() {
  // SEQ is spelled 'then' (see ParseAnd) because ';' doubles as the
  // statement terminator; Snoop's ';' sequence operator maps onto it 1:1.
  return ParseOr();
}

Result<std::unique_ptr<EventExpr>> Parser::ParseOr() {
  auto left = ParseAnd();
  if (!left.ok()) return left;
  while (lexer_.Peek().kind == TokenKind::kPipe) {
    lexer_.Next();
    auto right = ParseAnd();
    if (!right.ok()) return right;
    auto node = std::make_unique<EventExpr>();
    node->kind = EventExpr::Kind::kOr;
    node->children.push_back(std::move(*left));
    node->children.push_back(std::move(*right));
    left = std::move(node);
  }
  return left;
}

Result<std::unique_ptr<EventExpr>> Parser::ParseAnd() {
  auto left = ParsePrimary();
  if (!left.ok()) return left;
  for (;;) {
    if (lexer_.Peek().kind == TokenKind::kCaret) {
      lexer_.Next();
      auto right = ParsePrimary();
      if (!right.ok()) return right;
      auto node = std::make_unique<EventExpr>();
      node->kind = EventExpr::Kind::kAnd;
      node->children.push_back(std::move(*left));
      node->children.push_back(std::move(*right));
      left = std::move(node);
    } else if (lexer_.Peek().kind == TokenKind::kIdent &&
               lexer_.Peek().text == "then") {
      // 'then' spells SEQ without colliding with the ';' terminator.
      lexer_.Next();
      auto right = ParsePrimary();
      if (!right.ok()) return right;
      auto node = std::make_unique<EventExpr>();
      node->kind = EventExpr::Kind::kSeq;
      node->children.push_back(std::move(*left));
      node->children.push_back(std::move(*right));
      left = std::move(node);
    } else {
      return left;
    }
  }
}

Result<std::unique_ptr<EventExpr>> Parser::ParsePrimary() {
  const Token& token = lexer_.Peek();
  if (token.kind == TokenKind::kLParen) {
    lexer_.Next();
    auto expr = ParseExpr();
    if (!expr.ok()) return expr;
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return expr;
  }
  if (token.kind != TokenKind::kIdent) {
    return Error("expected event expression, got '" + token.text + "'");
  }

  // begin(...)/end(...) primitive specification.
  if (token.text == "begin" || token.text == "end") {
    const auto modifier = token.text == "begin"
                              ? detector::EventModifier::kBegin
                              : detector::EventModifier::kEnd;
    lexer_.Next();
    return ParsePrimitive(modifier);
  }

  if (token.text == "NOT") {
    lexer_.Next();
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    auto canceller = ParseExpr();
    if (!canceller.ok()) return canceller;
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kLBracket, "'['"));
    auto opener = ParseExpr();
    if (!opener.ok()) return opener;
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
    auto closer = ParseExpr();
    if (!closer.ok()) return closer;
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
    auto node = std::make_unique<EventExpr>();
    node->kind = EventExpr::Kind::kNot;
    node->children.push_back(std::move(*opener));
    node->children.push_back(std::move(*canceller));
    node->children.push_back(std::move(*closer));
    return node;
  }

  if (token.text == "A" || token.text == "P") {
    const bool aperiodic = token.text == "A";
    lexer_.Next();
    bool star = false;
    if (lexer_.Peek().kind == TokenKind::kStar) {
      lexer_.Next();
      star = true;
    }
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    auto first = ParseExpr();
    if (!first.ok()) return first;
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
    auto node = std::make_unique<EventExpr>();
    node->children.push_back(std::move(*first));
    if (aperiodic) {
      auto middle = ParseExpr();
      if (!middle.ok()) return middle;
      SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
      auto closer = ParseExpr();
      if (!closer.ok()) return closer;
      SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      node->kind =
          star ? EventExpr::Kind::kAperiodicStar : EventExpr::Kind::kAperiodic;
      node->children.push_back(std::move(*middle));
      node->children.push_back(std::move(*closer));
    } else {
      if (lexer_.Peek().kind != TokenKind::kNumber) {
        return Error("expected period in milliseconds");
      }
      node->time_ms = lexer_.Next().number;
      SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
      auto closer = ParseExpr();
      if (!closer.ok()) return closer;
      SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      node->kind =
          star ? EventExpr::Kind::kPeriodicStar : EventExpr::Kind::kPeriodic;
      node->children.push_back(std::move(*closer));
    }
    return node;
  }

  if (token.text == "ANY") {
    lexer_.Next();
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    if (lexer_.Peek().kind != TokenKind::kNumber) {
      return Error("expected ANY threshold");
    }
    auto node = std::make_unique<EventExpr>();
    node->kind = EventExpr::Kind::kAny;
    node->any_threshold = static_cast<std::size_t>(lexer_.Next().number);
    while (lexer_.Peek().kind == TokenKind::kComma) {
      lexer_.Next();
      auto child = ParseExpr();
      if (!child.ok()) return child;
      node->children.push_back(std::move(*child));
    }
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    if (node->children.size() < 2) {
      return Error("ANY needs at least two constituent events");
    }
    if (node->any_threshold == 0 ||
        node->any_threshold > node->children.size()) {
      return Error("ANY threshold out of range");
    }
    return node;
  }

  if (token.text == "PLUS") {
    lexer_.Next();
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    auto base = ParseExpr();
    if (!base.ok()) return base;
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
    if (lexer_.Peek().kind != TokenKind::kNumber) {
      return Error("expected delay in milliseconds");
    }
    auto node = std::make_unique<EventExpr>();
    node->kind = EventExpr::Kind::kPlus;
    node->time_ms = lexer_.Next().number;
    node->children.push_back(std::move(*base));
    SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return node;
  }

  // Plain reference to a previously defined event.
  auto node = std::make_unique<EventExpr>();
  node->kind = EventExpr::Kind::kRef;
  node->ref_name = lexer_.Next().text;
  return node;
}

Result<std::unique_ptr<EventExpr>> Parser::ParsePrimitive(
    detector::EventModifier modifier) {
  SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
  if (lexer_.Peek().kind != TokenKind::kString) {
    return Error("expected class name string");
  }
  auto node = std::make_unique<EventExpr>();
  node->kind = EventExpr::Kind::kPrimitive;
  node->modifier = modifier;
  node->class_name = lexer_.Next().text;
  if (lexer_.Peek().kind == TokenKind::kColon) {
    lexer_.Next();
    if (lexer_.Peek().kind != TokenKind::kString) {
      return Error("expected instance name string");
    }
    node->instance_name = lexer_.Next().text;
  }
  SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
  if (lexer_.Peek().kind != TokenKind::kString) {
    return Error("expected method signature string");
  }
  node->signature = lexer_.Next().text;
  SENTINEL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
  return node;
}

}  // namespace sentinel::snoop
