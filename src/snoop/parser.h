#ifndef SENTINEL_SNOOP_PARSER_H_
#define SENTINEL_SNOOP_PARSER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "snoop/ast.h"
#include "snoop/lexer.h"

namespace sentinel::snoop {

/// Recursive-descent parser for the Sentinel specification language
/// (paper §3.1). Grammar sketch:
///
///   spec        := { class_decl | named_event ';' | rule ';' }
///   class_decl  := 'class' IDENT [':' IDENT] '{' { item } '}' [';']
///   item        := 'attr' IDENT ':' type ';'
///                | 'event' modbind { '&&' modbind } raw-signature ';'
///                | named_event ';'
///                | rule ';'
///   modbind     := ('begin'|'end') '(' IDENT ')'
///   named_event := 'event' IDENT '=' expr
///   rule        := 'rule' IDENT '(' IDENT ',' IDENT ',' IDENT
///                    [',' context] [',' coupling] [',' number] [',' trigger] ')'
///   expr        := or { ';' or }          (sequence, lowest precedence)
///   or          := and { '|' and }
///   and         := primary { '^' primary }
///   primary     := '(' expr ')'
///                | 'NOT' '(' expr ')' '[' expr ',' expr ']'
///                | 'A' ['*'] '(' expr ',' expr ',' expr ')'
///                | 'P' ['*'] '(' expr ',' NUMBER ',' expr ')'
///                | 'PLUS' '(' expr ',' NUMBER ')'
///                | ('begin'|'end') '(' STRING [':' STRING] ',' STRING ')'
///                | IDENT                  (reference to a defined event)
class Parser {
 public:
  /// Parses a whole specification file.
  static Result<Spec> Parse(const std::string& source);

  /// Parses a single event expression (handy for tests and tools).
  static Result<std::unique_ptr<EventExpr>> ParseExpression(
      const std::string& source);

 private:
  explicit Parser(std::string source) : lexer_(std::move(source)) {}

  Status ParseSpec(Spec* spec);
  Result<ClassDecl> ParseClass();
  Result<NamedEventDef> ParseNamedEvent();
  Result<EventInterfaceDecl> ParseEventInterface(
      EventInterfaceDecl::Binding first);
  Result<RuleDef> ParseRule();
  Result<std::unique_ptr<EventExpr>> ParseExpr();
  Result<std::unique_ptr<EventExpr>> ParseOr();
  Result<std::unique_ptr<EventExpr>> ParseAnd();
  Result<std::unique_ptr<EventExpr>> ParsePrimary();
  Result<std::unique_ptr<EventExpr>> ParsePrimitive(
      detector::EventModifier modifier);

  Status Expect(TokenKind kind, const std::string& what);
  Status Error(const std::string& message) const;

  Lexer lexer_;
};

}  // namespace sentinel::snoop

#endif  // SENTINEL_SNOOP_PARSER_H_
