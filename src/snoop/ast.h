#ifndef SENTINEL_SNOOP_AST_H_
#define SENTINEL_SNOOP_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "detector/event_types.h"
#include "rules/rule.h"

namespace sentinel::snoop {

/// Snoop event expression (paper §3.1, [5]). Operators:
///   e1 ^ e2           AND          e1 | e2        OR
///   e1 ; e2           SEQUENCE
///   NOT(e2)[e1, e3]   non-occurrence of e2 in (e1, e3)
///   A(e1, e2, e3)     aperiodic    A*(e1, e2, e3) cumulative aperiodic
///   P(e1, t, e3)      periodic     P*(e1, t, e3)  cumulative periodic
///   PLUS(e1, t)       e1 + t
///   ANY(m, e1..en)    m of the n distinct events, any order
struct EventExpr {
  enum class Kind {
    kRef,        // reference to a previously defined event name
    kPrimitive,  // begin("Class"[:"instance"], "signature") / end(...)
    kOr,
    kAnd,
    kSeq,
    kNot,
    kAperiodic,
    kAperiodicStar,
    kPlus,
    kPeriodic,
    kPeriodicStar,
    kAny,
  };

  Kind kind = Kind::kRef;
  std::string ref_name;  // kRef

  // kPrimitive:
  std::string class_name;
  std::string instance_name;  // name-manager binding; empty == class level
  std::string signature;
  detector::EventModifier modifier = detector::EventModifier::kEnd;

  std::vector<std::unique_ptr<EventExpr>> children;
  std::uint64_t time_ms = 0;       // kPlus / kPeriodic*
  std::size_t any_threshold = 0;   // kAny: the m in ANY(m, ...)

  /// Canonical textual form (used for generated node names and codegen).
  std::string ToString() const;
};

/// Class-level event interface entry (paper §3.1):
///   event end(e1) int sell_stock(int qty);
///   event begin(e2) && end(e3) void set_price(float price);
struct EventInterfaceDecl {
  struct Binding {
    detector::EventModifier modifier;
    std::string event_name;
  };
  std::vector<Binding> bindings;
  std::string method_signature;
};

struct AttributeDecl {
  std::string name;
  oodb::ValueType type = oodb::ValueType::kNull;
};

/// event <name> = <expr>;
struct NamedEventDef {
  std::string name;
  std::unique_ptr<EventExpr> expr;
};

/// rule R1(e4, cond1, action1 [, context [, coupling [, priority [, trigger]]]]);
struct RuleDef {
  std::string name;
  std::string event_name;
  std::string condition_fn;  // registered function name; "true" == none
  std::string action_fn;
  std::optional<detector::ParamContext> context;
  std::optional<rules::CouplingMode> coupling;
  std::optional<int> priority;
  std::optional<rules::TriggerMode> trigger;
};

/// class STOCK : REACTIVE { ... }
struct ClassDecl {
  std::string name;
  std::string base;  // empty or base class (REACTIVE implies reactivity)
  std::vector<AttributeDecl> attributes;
  std::vector<EventInterfaceDecl> event_interface;
  std::vector<NamedEventDef> events;
  std::vector<RuleDef> rules;

  bool is_reactive() const { return base == "REACTIVE" || !base.empty(); }
};

/// A whole specification file.
struct Spec {
  std::vector<ClassDecl> classes;
  std::vector<NamedEventDef> events;  // top-level (application) events
  std::vector<RuleDef> rules;         // top-level (application) rules
};

}  // namespace sentinel::snoop

#endif  // SENTINEL_SNOOP_AST_H_
