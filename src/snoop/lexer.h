#ifndef SENTINEL_SNOOP_LEXER_H_
#define SENTINEL_SNOOP_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sentinel::snoop {

enum class TokenKind : std::uint8_t {
  kIdent,
  kString,   // "..."
  kNumber,   // integer literal
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kEquals,
  kCaret,     // ^  (AND)
  kPipe,      // |  (OR)
  kStar,      // *  (A*, P*)
  kAmpAmp,    // && (begin && end)
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::uint64_t number = 0;
  int line = 1;
};

/// Hand-written lexer for the Sentinel specification language. `//` and
/// `/* */` comments are skipped. The parser additionally uses
/// CaptureUntilSemicolon() for raw method signatures.
class Lexer {
 public:
  explicit Lexer(std::string source);

  /// Current token (does not consume).
  const Token& Peek() const { return current_; }
  /// Consumes and returns the current token.
  Token Next();

  /// Raw-capture mode: returns the source text from the *start of the
  /// current token* up to (not including) the next ';', consuming it. Used
  /// for C++ method signatures inside event interface declarations.
  Result<std::string> CaptureUntilSemicolon();

  int line() const { return current_.line; }

 private:
  void SkipWhitespaceAndComments();
  Token Lex();

  std::string src_;
  std::size_t pos_ = 0;          // first unconsumed char *after* current_
  std::size_t current_start_ = 0;  // where current_ begins in src_
  int line_ = 1;
  int current_line_start_ = 1;
  Token current_;
};

}  // namespace sentinel::snoop

#endif  // SENTINEL_SNOOP_LEXER_H_
