#include "oodb/persistence_manager.h"

#include "common/logging.h"

namespace sentinel::oodb {

Status PersistenceManager::Bootstrap() {
  std::lock_guard<std::mutex> lock(mu_);
  overlays_.clear();
  Oid max_oid = 0;
  if (engine_->WasCleanShutdown()) {
    // The index was flushed at the previous clean close: trust it and only
    // recover the OID counter from the last (largest) key.
    SENTINEL_RETURN_NOT_OK(
        index_.Scan(0, UINT64_MAX, [&max_oid](std::uint64_t key,
                                              const storage::Rid&) {
          if (key > max_oid) max_oid = key;
          return Status::OK();
        }));
  } else {
    // Crash: rebuild the index from the object heap (the WAL already
    // recovered the heap itself).
    SENTINEL_RETURN_NOT_OK(index_.Clear());
    auto txn = engine_->Begin();
    if (!txn.ok()) return txn.status();
    Status st = engine_->Scan(
        *txn, file_,
        [&](const storage::Rid& rid, const std::vector<std::uint8_t>& rec) {
          BytesReader reader(rec);
          auto obj = PersistentObject::Deserialize(&reader);
          if (!obj.ok()) return obj.status();
          SENTINEL_RETURN_NOT_OK(index_.Insert(obj->oid(), rid));
          if (obj->oid() > max_oid) max_oid = obj->oid();
          return Status::OK();
        });
    Status end = st.ok() ? engine_->Commit(*txn) : engine_->Abort(*txn);
    SENTINEL_RETURN_NOT_OK(st);
    SENTINEL_RETURN_NOT_OK(end);
  }
  next_oid_.store(max_oid + 1);
  return Status::OK();
}

std::optional<storage::Rid> PersistenceManager::Locate(TxnId txn,
                                                       Oid oid) const {
  auto overlay_it = overlays_.find(txn);
  if (overlay_it != overlays_.end()) {
    auto entry = overlay_it->second.find(oid);
    if (entry != overlay_it->second.end()) return entry->second;
  }
  auto rid = index_.Lookup(oid);
  if (!rid.ok()) return std::nullopt;
  return *rid;
}

Result<Oid> PersistenceManager::Put(TxnId txn, PersistentObject object) {
  if (object.oid() == kInvalidOid) {
    object.set_oid(next_oid_.fetch_add(1));
  }
  BytesWriter writer;
  object.Serialize(&writer);
  const std::vector<std::uint8_t>& bytes = writer.data();

  std::unique_lock<std::mutex> lock(mu_);
  auto existing = Locate(txn, object.oid());
  lock.unlock();

  if (existing.has_value()) {
    SENTINEL_RETURN_NOT_OK(engine_->Update(txn, file_, *existing, bytes));
    return object.oid();
  }
  auto rid = engine_->Insert(txn, file_, bytes);
  if (!rid.ok()) return rid.status();
  lock.lock();
  overlays_[txn][object.oid()] = *rid;
  return object.oid();
}

Result<PersistentObject> PersistenceManager::Get(TxnId txn, Oid oid) {
  std::unique_lock<std::mutex> lock(mu_);
  auto rid = Locate(txn, oid);
  lock.unlock();
  if (!rid.has_value()) {
    return Status::NotFound("no object with oid " + std::to_string(oid));
  }
  auto rec = engine_->Read(txn, file_, *rid);
  if (!rec.ok()) return rec.status();
  BytesReader reader(*rec);
  return PersistentObject::Deserialize(&reader);
}

Status PersistenceManager::Delete(TxnId txn, Oid oid) {
  std::unique_lock<std::mutex> lock(mu_);
  auto rid = Locate(txn, oid);
  lock.unlock();
  if (!rid.has_value()) {
    return Status::NotFound("no object with oid " + std::to_string(oid));
  }
  SENTINEL_RETURN_NOT_OK(engine_->Delete(txn, file_, *rid));
  lock.lock();
  overlays_[txn][oid] = std::nullopt;
  return Status::OK();
}

bool PersistenceManager::Exists(TxnId txn, Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  return Locate(txn, oid).has_value();
}

Result<storage::Rid> PersistenceManager::RidOf(TxnId txn, Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto rid = Locate(txn, oid);
  if (!rid.has_value()) {
    return Status::NotFound("no object with oid " + std::to_string(oid));
  }
  return *rid;
}

Status PersistenceManager::ScanClass(
    TxnId txn, const std::string& class_name,
    const std::function<Status(const PersistentObject&)>& fn) {
  return engine_->Scan(
      txn, file_,
      [&](const storage::Rid& rid, const std::vector<std::uint8_t>& rec) {
        (void)rid;
        BytesReader reader(rec);
        auto obj = PersistentObject::Deserialize(&reader);
        if (!obj.ok()) return obj.status();
        if (!class_name.empty() && obj->class_name() != class_name) {
          return Status::OK();
        }
        return fn(*obj);
      });
}

void PersistenceManager::OnCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = overlays_.find(txn);
  if (it == overlays_.end()) return;
  for (const auto& [oid, rid] : it->second) {
    Status st;
    if (rid.has_value()) {
      st = index_.Insert(oid, *rid);
    } else {
      st = index_.Delete(oid);
    }
    if (!st.ok() && !st.IsNotFound()) {
      SENTINEL_LOG(kWarn) << "OID index update failed for oid " << oid << ": "
                          << st.ToString();
    }
  }
  overlays_.erase(it);
}

void PersistenceManager::OnAbort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  overlays_.erase(txn);
}

std::size_t PersistenceManager::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto size = index_.Size();
  return size.ok() ? *size : 0;
}

}  // namespace sentinel::oodb
