#include "oodb/name_manager.h"

#include "common/bytes.h"

namespace sentinel::oodb {

namespace {
std::vector<std::uint8_t> EncodeBinding(const std::string& name, Oid oid) {
  BytesWriter writer;
  writer.PutString(name);
  writer.PutU64(oid);
  return writer.Release();
}
}  // namespace

Status NameManager::Bootstrap() {
  std::lock_guard<std::mutex> lock(mu_);
  bindings_.clear();
  overlays_.clear();
  auto txn = engine_->Begin();
  if (!txn.ok()) return txn.status();
  Status st = engine_->Scan(
      *txn, file_,
      [&](const storage::Rid& rid, const std::vector<std::uint8_t>& rec) {
        BytesReader reader(rec);
        auto name = reader.ReadString();
        if (!name.ok()) return name.status();
        auto oid = reader.ReadU64();
        if (!oid.ok()) return oid.status();
        bindings_[*name] = Binding{*oid, rid};
        return Status::OK();
      });
  Status end = st.ok() ? engine_->Commit(*txn) : engine_->Abort(*txn);
  SENTINEL_RETURN_NOT_OK(st);
  return end;
}

std::optional<NameManager::Binding> NameManager::Locate(
    storage::TxnId txn, const std::string& name) const {
  auto overlay_it = overlays_.find(txn);
  if (overlay_it != overlays_.end()) {
    auto entry = overlay_it->second.find(name);
    if (entry != overlay_it->second.end()) return entry->second;
  }
  auto it = bindings_.find(name);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

Status NameManager::Bind(storage::TxnId txn, const std::string& name,
                         Oid oid) {
  std::unique_lock<std::mutex> lock(mu_);
  auto existing = Locate(txn, name);
  lock.unlock();
  auto bytes = EncodeBinding(name, oid);
  if (existing.has_value()) {
    SENTINEL_RETURN_NOT_OK(engine_->Update(txn, file_, existing->rid, bytes));
    lock.lock();
    overlays_[txn][name] = Binding{oid, existing->rid};
    return Status::OK();
  }
  auto rid = engine_->Insert(txn, file_, bytes);
  if (!rid.ok()) return rid.status();
  lock.lock();
  overlays_[txn][name] = Binding{oid, *rid};
  return Status::OK();
}

Result<Oid> NameManager::Lookup(storage::TxnId txn,
                                const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto binding = Locate(txn, name);
  if (!binding.has_value()) {
    return Status::NotFound("no binding for name: " + name);
  }
  return binding->oid;
}

Status NameManager::Unbind(storage::TxnId txn, const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  auto binding = Locate(txn, name);
  lock.unlock();
  if (!binding.has_value()) {
    return Status::NotFound("no binding for name: " + name);
  }
  SENTINEL_RETURN_NOT_OK(engine_->Delete(txn, file_, binding->rid));
  lock.lock();
  overlays_[txn][name] = std::nullopt;
  return Status::OK();
}

void NameManager::OnCommit(storage::TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = overlays_.find(txn);
  if (it == overlays_.end()) return;
  for (const auto& [name, binding] : it->second) {
    if (binding.has_value()) {
      bindings_[name] = *binding;
    } else {
      bindings_.erase(name);
    }
  }
  overlays_.erase(it);
}

void NameManager::OnAbort(storage::TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  overlays_.erase(txn);
}

std::size_t NameManager::binding_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bindings_.size();
}

}  // namespace sentinel::oodb
