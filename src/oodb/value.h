#ifndef SENTINEL_OODB_VALUE_H_
#define SENTINEL_OODB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/result.h"

namespace sentinel::oodb {

/// Object identifier. 0 is invalid/null.
using Oid = std::uint64_t;
constexpr Oid kInvalidOid = 0;

enum class ValueType : std::uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  kOid = 5,
};

const char* ValueTypeToString(ValueType type);

/// Typed atomic value: attribute values of persistent objects and event
/// parameters. The paper restricts composite-event parameters to atomic
/// values plus the OID of the signalling object (§2.1, §3.2.2 item 2);
/// Value models exactly that domain.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Data(v)); }
  static Value Int(std::int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }
  static Value OfOid(Oid v) { return Value(Data(OidBox{v})); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; the caller must check type() first (assert otherwise).
  bool AsBool() const { return std::get<bool>(data_); }
  std::int64_t AsInt() const { return std::get<std::int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  Oid AsOid() const { return std::get<OidBox>(data_).oid; }

  /// Numeric view: int and double both convert; TypeMismatch otherwise.
  Result<double> AsNumber() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

  std::string ToString() const;

  void Serialize(BytesWriter* out) const;
  static Result<Value> Deserialize(BytesReader* in);

 private:
  struct OidBox {
    Oid oid;
    bool operator==(const OidBox&) const = default;
  };
  using Data =
      std::variant<std::monostate, bool, std::int64_t, double, std::string, OidBox>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

}  // namespace sentinel::oodb

#endif  // SENTINEL_OODB_VALUE_H_
