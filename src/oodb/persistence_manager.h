#ifndef SENTINEL_OODB_PERSISTENCE_MANAGER_H_
#define SENTINEL_OODB_PERSISTENCE_MANAGER_H_

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "oodb/object.h"
#include "storage/btree.h"
#include "storage/storage_engine.h"

namespace sentinel::oodb {

using TxnId = storage::TxnId;

/// Object store over one heap file: serializes PersistentObjects to records,
/// assigns OIDs, and maintains a durable OID -> RID B+-tree index.
///
/// The index is transaction-aware: changes made by a transaction live in a
/// per-transaction overlay (visible to that transaction only) and are
/// applied to the B+-tree at commit, or discarded at abort — record-level
/// isolation itself is enforced by the storage engine's 2PL.
///
/// The index is not WAL-logged; Bootstrap() trusts it after a clean
/// shutdown and rebuilds it from a heap scan after a crash.
class PersistenceManager {
 public:
  PersistenceManager(storage::StorageEngine* engine, storage::PageId file,
                     storage::PageId index_root)
      : engine_(engine), file_(file), index_(engine->buffer_pool(), index_root) {}

  PersistenceManager(const PersistenceManager&) = delete;
  PersistenceManager& operator=(const PersistenceManager&) = delete;

  /// Prepares the OID index (trust or rebuild) and recovers the OID counter.
  Status Bootstrap();

  /// Inserts (oid unset) or updates (oid set) an object; returns its OID.
  Result<Oid> Put(TxnId txn, PersistentObject object);

  Result<PersistentObject> Get(TxnId txn, Oid oid);
  Status Delete(TxnId txn, Oid oid);
  bool Exists(TxnId txn, Oid oid);

  /// RID currently backing `oid` as visible to `txn` (overlay-aware).
  Result<storage::Rid> RidOf(TxnId txn, Oid oid);

  /// Invokes `fn` for every object of class `class_name` (empty matches all).
  Status ScanClass(TxnId txn, const std::string& class_name,
                   const std::function<Status(const PersistentObject&)>& fn);

  /// Transaction lifecycle notifications from the Database facade.
  void OnCommit(TxnId txn);
  void OnAbort(TxnId txn);

  /// Number of committed objects (walks the index leaf chain).
  std::size_t object_count() const;
  storage::PageId file() const { return file_; }
  const storage::BTree& index() const { return index_; }

 private:
  // nullopt == deleted by this transaction.
  using Overlay = std::map<Oid, std::optional<storage::Rid>>;

  std::optional<storage::Rid> Locate(TxnId txn, Oid oid) const;

  storage::StorageEngine* engine_;
  storage::PageId file_;

  mutable std::mutex mu_;
  mutable storage::BTree index_;
  std::unordered_map<TxnId, Overlay> overlays_;
  std::atomic<Oid> next_oid_{1};
};

}  // namespace sentinel::oodb

#endif  // SENTINEL_OODB_PERSISTENCE_MANAGER_H_
