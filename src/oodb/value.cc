#include "oodb/value.h"

namespace sentinel::oodb {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kOid:
      return "oid";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

Result<double> Value::AsNumber() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::TypeMismatch(std::string("not numeric: ") +
                                  ValueTypeToString(type()));
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return std::to_string(AsDouble());
    case ValueType::kString:
      return "\"" + AsString() + "\"";
    case ValueType::kOid:
      return "oid:" + std::to_string(AsOid());
  }
  return "?";
}

void Value::Serialize(BytesWriter* out) const {
  out->PutU8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->PutBool(AsBool());
      break;
    case ValueType::kInt:
      out->PutI64(AsInt());
      break;
    case ValueType::kDouble:
      out->PutF64(AsDouble());
      break;
    case ValueType::kString:
      out->PutString(AsString());
      break;
    case ValueType::kOid:
      out->PutU64(AsOid());
      break;
  }
}

Result<Value> Value::Deserialize(BytesReader* in) {
  auto tag = in->ReadU8();
  if (!tag.ok()) return tag.status();
  switch (static_cast<ValueType>(*tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      auto v = in->ReadBool();
      if (!v.ok()) return v.status();
      return Value::Bool(*v);
    }
    case ValueType::kInt: {
      auto v = in->ReadI64();
      if (!v.ok()) return v.status();
      return Value::Int(*v);
    }
    case ValueType::kDouble: {
      auto v = in->ReadF64();
      if (!v.ok()) return v.status();
      return Value::Double(*v);
    }
    case ValueType::kString: {
      auto v = in->ReadString();
      if (!v.ok()) return v.status();
      return Value::String(std::move(*v));
    }
    case ValueType::kOid: {
      auto v = in->ReadU64();
      if (!v.ok()) return v.status();
      return Value::OfOid(*v);
    }
  }
  return Status::Corruption("unknown value type tag " + std::to_string(*tag));
}

}  // namespace sentinel::oodb
