#include "oodb/object_cache.h"

namespace sentinel::oodb {

Result<std::shared_ptr<const PersistentObject>> ObjectCache::Get(TxnId txn,
                                                                 Oid oid) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // This transaction's own writes win.
    auto overlay_it = overlays_.find(txn);
    if (overlay_it != overlays_.end()) {
      auto entry = overlay_it->second.find(oid);
      if (entry != overlay_it->second.end()) {
        if (entry->second == nullptr) {
          return Status::NotFound("object deleted in this transaction");
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        return entry->second;
      }
    }
  }

  // Committed cache: a hit still takes the record's shared lock so 2PL
  // isolation is identical to the uncached path. The lock is taken WITHOUT
  // holding the cache mutex; the entry is then re-checked, because an
  // in-flight writer invalidates it at write time (so waking up behind a
  // committed writer falls through to a fresh load).
  auto rid = objects_->RidOf(txn, oid);
  if (!rid.ok()) return rid.status();
  bool maybe_cached;
  {
    std::lock_guard<std::mutex> lock(mu_);
    maybe_cached = cache_.find(oid) != cache_.end();
  }
  if (maybe_cached) {
    SENTINEL_RETURN_NOT_OK(engine_->lock_manager()->Acquire(
        txn, storage::StorageEngine::RecordLockKey(*rid),
        storage::LockMode::kShared));
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(oid);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      TouchLocked(oid);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  auto loaded = objects_->Get(txn, oid);
  if (!loaded.ok()) return loaded.status();
  auto shared = std::make_shared<const PersistentObject>(std::move(*loaded));
  std::lock_guard<std::mutex> lock(mu_);
  InsertCommittedLocked(oid, shared);
  return shared;
}

namespace {
void EraseLru(std::list<Oid>* lru,
              std::unordered_map<Oid, std::list<Oid>::iterator>* pos,
              Oid oid) {
  auto it = pos->find(oid);
  if (it != pos->end()) {
    lru->erase(it->second);
    pos->erase(it);
  }
}
}  // namespace

Result<Oid> ObjectCache::Put(TxnId txn, PersistentObject object) {
  auto oid = objects_->Put(txn, object);
  if (!oid.ok()) return oid;
  object.set_oid(*oid);
  auto shared = std::make_shared<const PersistentObject>(std::move(object));
  std::lock_guard<std::mutex> lock(mu_);
  overlays_[txn][*oid] = std::move(shared);
  // Invalidate the committed entry: until this transaction resolves, other
  // readers must go through the locked load path.
  EraseLru(&lru_, &lru_pos_, *oid);
  cache_.erase(*oid);
  return oid;
}

Status ObjectCache::Delete(TxnId txn, Oid oid) {
  SENTINEL_RETURN_NOT_OK(objects_->Delete(txn, oid));
  std::lock_guard<std::mutex> lock(mu_);
  overlays_[txn][oid] = nullptr;
  EraseLru(&lru_, &lru_pos_, oid);
  cache_.erase(oid);
  return Status::OK();
}

void ObjectCache::OnCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = overlays_.find(txn);
  if (it == overlays_.end()) return;
  for (auto& [oid, object] : it->second) {
    if (object == nullptr) {
      EraseLru(&lru_, &lru_pos_, oid);
      cache_.erase(oid);
    } else {
      InsertCommittedLocked(oid, std::move(object));
    }
  }
  overlays_.erase(it);
}

void ObjectCache::OnAbort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  overlays_.erase(txn);
}

void ObjectCache::InsertCommittedLocked(Oid oid, ObjectPtr object) {
  cache_[oid] = std::move(object);
  TouchLocked(oid);
  while (cache_.size() > capacity_ && !lru_.empty()) {
    Oid victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    cache_.erase(victim);
  }
}

void ObjectCache::TouchLocked(Oid oid) {
  auto pos = lru_pos_.find(oid);
  if (pos != lru_pos_.end()) lru_.erase(pos->second);
  lru_.push_front(oid);
  lru_pos_[oid] = lru_.begin();
}

std::size_t ObjectCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace sentinel::oodb
