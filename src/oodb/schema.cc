#include "oodb/schema.h"

namespace sentinel::oodb {

const AttributeDef* ClassDef::FindAttribute(const std::string& attr_name) const {
  for (const auto& attr : attributes_) {
    if (attr.name == attr_name) return &attr;
  }
  return nullptr;
}

const MethodDef* ClassDef::FindMethod(const std::string& signature) const {
  for (const auto& method : methods_) {
    if (method.signature == signature) return &method;
  }
  return nullptr;
}

Status ClassRegistry::Register(ClassDef def) {
  std::lock_guard<std::mutex> lock(mu_);
  if (classes_.count(def.name()) != 0) {
    return Status::AlreadyExists("class already registered: " + def.name());
  }
  if (!def.base_name().empty() && classes_.count(def.base_name()) == 0) {
    return Status::NotFound("base class not registered: " + def.base_name());
  }
  classes_.emplace(def.name(), std::move(def));
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Result<ClassDef> ClassRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(name);
  if (it == classes_.end()) {
    return Status::NotFound("class not registered: " + name);
  }
  return it->second;
}

bool ClassRegistry::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return classes_.count(name) != 0;
}

bool ClassRegistry::IsSubclassOf(const std::string& cls,
                                 const std::string& ancestor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string current = cls;
  while (!current.empty()) {
    if (current == ancestor) return true;
    auto it = classes_.find(current);
    if (it == classes_.end()) return false;
    current = it->second.base_name();
  }
  return false;
}

Result<MethodDef> ClassRegistry::ResolveMethod(
    const std::string& cls, const std::string& signature) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string current = cls;
  while (!current.empty()) {
    auto it = classes_.find(current);
    if (it == classes_.end()) break;
    const MethodDef* method = it->second.FindMethod(signature);
    if (method != nullptr) return *method;
    current = it->second.base_name();
  }
  return Status::NotFound("method " + signature + " not found on " + cls);
}

Result<std::vector<AttributeDef>> ClassRegistry::AllAttributes(
    const std::string& cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Collect the inheritance chain root-first.
  std::vector<const ClassDef*> chain;
  std::string current = cls;
  while (!current.empty()) {
    auto it = classes_.find(current);
    if (it == classes_.end()) {
      return Status::NotFound("class not registered: " + current);
    }
    chain.push_back(&it->second);
    current = it->second.base_name();
  }
  std::vector<AttributeDef> result;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const auto& attr : (*it)->attributes()) result.push_back(attr);
  }
  return result;
}

std::vector<std::string> ClassRegistry::ClassNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(classes_.size());
  for (const auto& [name, def] : classes_) {
    (void)def;
    names.push_back(name);
  }
  return names;
}

}  // namespace sentinel::oodb
