#ifndef SENTINEL_OODB_NAME_MANAGER_H_
#define SENTINEL_OODB_NAME_MANAGER_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "oodb/value.h"
#include "storage/storage_engine.h"

namespace sentinel::oodb {

/// Open OODB's name manager: durable bindings from symbolic names to OIDs
/// ("IBM" -> oid 7). Backed by its own heap file; bindings made by a
/// transaction become globally visible at commit (same overlay discipline as
/// the PersistenceManager).
class NameManager {
 public:
  NameManager(storage::StorageEngine* engine, storage::PageId file)
      : engine_(engine), file_(file) {}

  NameManager(const NameManager&) = delete;
  NameManager& operator=(const NameManager&) = delete;

  /// Rebuilds the binding table from the heap file (called at open).
  Status Bootstrap();

  Status Bind(storage::TxnId txn, const std::string& name, Oid oid);
  Result<Oid> Lookup(storage::TxnId txn, const std::string& name) const;
  Status Unbind(storage::TxnId txn, const std::string& name);

  void OnCommit(storage::TxnId txn);
  void OnAbort(storage::TxnId txn);

  std::size_t binding_count() const;

 private:
  struct Binding {
    Oid oid;
    storage::Rid rid;
  };
  // nullopt == unbound by this transaction.
  using Overlay = std::map<std::string, std::optional<Binding>>;

  std::optional<Binding> Locate(storage::TxnId txn,
                                const std::string& name) const;

  storage::StorageEngine* engine_;
  storage::PageId file_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Binding> bindings_;
  std::unordered_map<storage::TxnId, Overlay> overlays_;
};

}  // namespace sentinel::oodb

#endif  // SENTINEL_OODB_NAME_MANAGER_H_
