#ifndef SENTINEL_OODB_SCHEMA_H_
#define SENTINEL_OODB_SCHEMA_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "oodb/value.h"

namespace sentinel::oodb {

/// One attribute of a class.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// One method of a class, identified by its full signature string — the same
/// identity the paper uses in Notify calls, e.g. "void set_price(float price)".
struct MethodDef {
  std::string signature;
  /// Declared formal parameter names, in order (used by the method wrapper to
  /// label collected parameters).
  std::vector<std::string> param_names;
};

/// Schema of one persistent class.
class ClassDef {
 public:
  ClassDef() = default;
  ClassDef(std::string name, std::string base_name)
      : name_(std::move(name)), base_name_(std::move(base_name)) {}

  const std::string& name() const { return name_; }
  const std::string& base_name() const { return base_name_; }

  ClassDef& AddAttribute(std::string attr_name, ValueType type) {
    attributes_.push_back(AttributeDef{std::move(attr_name), type});
    return *this;
  }
  ClassDef& AddMethod(std::string signature,
                      std::vector<std::string> param_names = {}) {
    methods_.push_back(MethodDef{std::move(signature), std::move(param_names)});
    return *this;
  }

  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  const std::vector<MethodDef>& methods() const { return methods_; }

  const AttributeDef* FindAttribute(const std::string& attr_name) const;
  const MethodDef* FindMethod(const std::string& signature) const;

 private:
  std::string name_;
  std::string base_name_;  // empty == no base
  std::vector<AttributeDef> attributes_;
  std::vector<MethodDef> methods_;
};

/// In-memory catalog of class definitions with single inheritance.
/// Registered once at application start (the paper's preprocessor emits the
/// class interface; here the application or the spec compiler registers it).
class ClassRegistry {
 public:
  Status Register(ClassDef def);
  Result<ClassDef> Get(const std::string& name) const;
  bool Exists(const std::string& name) const;

  /// True if `cls` equals `ancestor` or transitively derives from it.
  bool IsSubclassOf(const std::string& cls, const std::string& ancestor) const;

  /// Looks up `signature` on `cls` or any ancestor (method inheritance).
  Result<MethodDef> ResolveMethod(const std::string& cls,
                                  const std::string& signature) const;

  /// All attributes of `cls` including inherited ones, base-first.
  Result<std::vector<AttributeDef>> AllAttributes(const std::string& cls) const;

  std::vector<std::string> ClassNames() const;

  /// Monotonic counter bumped on every successful Register. The event
  /// detector stamps its dispatch index with this so cached inheritance
  /// walks are invalidated when the class hierarchy grows.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, ClassDef> classes_;
  std::atomic<std::uint64_t> version_{1};
};

}  // namespace sentinel::oodb

#endif  // SENTINEL_OODB_SCHEMA_H_
