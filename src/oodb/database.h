#ifndef SENTINEL_OODB_DATABASE_H_
#define SENTINEL_OODB_DATABASE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "oodb/name_manager.h"
#include "oodb/persistence_manager.h"
#include "oodb/schema.h"
#include "storage/storage_engine.h"

namespace sentinel::oodb {

/// The passive OODBMS facade (the Open OODB substitute): a storage engine
/// plus persistence manager, name manager and class registry, with top-level
/// transaction management.
///
/// This layer is deliberately event-free. The active layer
/// (core::ActiveDatabase) wraps it and raises begin_transaction /
/// pre_commit / abort system events around these calls — exactly how
/// Sentinel made Open OODB's system class REACTIVE (§3.2).
class Database {
 public:
  struct Options {
    storage::StorageEngine::Options storage;
  };

  Database() = default;
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Opens (creating if needed) the database at `path_prefix` and bootstraps
  /// the object and name catalogs.
  Status Open(const std::string& path_prefix, const Options& options);
  Status Open(const std::string& path_prefix);
  Status Close();
  bool is_open() const { return engine_ != nullptr; }

  /// Test hook: simulated process crash (see StorageEngine::SimulateCrash).
  void SimulateCrash();

  Result<TxnId> Begin();
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  ClassRegistry* classes() { return &classes_; }
  PersistenceManager* objects() { return objects_.get(); }
  NameManager* names() { return names_.get(); }
  storage::StorageEngine* engine() { return engine_.get(); }

 private:
  bool HasCatalogFiles();

  std::unique_ptr<storage::StorageEngine> engine_;
  std::unique_ptr<PersistenceManager> objects_;
  std::unique_ptr<NameManager> names_;
  ClassRegistry classes_;
};

}  // namespace sentinel::oodb

#endif  // SENTINEL_OODB_DATABASE_H_
