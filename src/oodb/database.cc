#include "oodb/database.h"

namespace sentinel::oodb {

namespace {
// The object and name catalogs live in the first two heap files ever
// created, which deterministically occupy pages 1 and 2 (page 0 is the disk
// manager's header); the OID index's B+-tree root is the third allocation,
// page 3. On reopen the same handles are reused.
constexpr storage::PageId kObjectsFile = 1;
constexpr storage::PageId kNamesFile = 2;
constexpr storage::PageId kOidIndexRoot = 3;
}  // namespace

Database::~Database() { (void)Close(); }

Status Database::Open(const std::string& path_prefix) {
  return Open(path_prefix, Options());
}

Status Database::Open(const std::string& path_prefix, const Options& options) {
  if (engine_ != nullptr) {
    return Status::InvalidArgument("database already open");
  }
  engine_ = std::make_unique<storage::StorageEngine>();
  SENTINEL_RETURN_NOT_OK(engine_->Open(path_prefix, options.storage));

  if (!HasCatalogFiles()) {
    auto objects_file = engine_->CreateHeapFile();
    if (!objects_file.ok()) return objects_file.status();
    auto names_file = engine_->CreateHeapFile();
    if (!names_file.ok()) return names_file.status();
    auto index_root = storage::BTree::Create(engine_->buffer_pool());
    if (!index_root.ok()) return index_root.status();
    SENTINEL_RETURN_NOT_OK(engine_->buffer_pool()->FlushPage(*index_root));
    if (*objects_file != kObjectsFile || *names_file != kNamesFile ||
        *index_root != kOidIndexRoot) {
      return Status::Internal("catalog files not at expected pages");
    }
  }
  objects_ = std::make_unique<PersistenceManager>(engine_.get(), kObjectsFile,
                                                  kOidIndexRoot);
  names_ = std::make_unique<NameManager>(engine_.get(), kNamesFile);
  SENTINEL_RETURN_NOT_OK(objects_->Bootstrap());
  SENTINEL_RETURN_NOT_OK(names_->Bootstrap());
  return Status::OK();
}

bool Database::HasCatalogFiles() {
  // Pages 1..3 exist iff a previous open created the catalogs + OID index.
  auto page = engine_->buffer_pool()->FetchPage(kOidIndexRoot);
  if (!page.ok()) return false;
  (void)engine_->buffer_pool()->UnpinPage(kOidIndexRoot, false);
  return true;
}

void Database::SimulateCrash() {
  if (engine_ == nullptr) return;
  engine_->SimulateCrash();
  engine_.reset();
  objects_.reset();
  names_.reset();
}

Status Database::Close() {
  if (engine_ == nullptr) return Status::OK();
  Status st = engine_->Close();
  engine_.reset();
  objects_.reset();
  names_.reset();
  return st;
}

Result<TxnId> Database::Begin() { return engine_->Begin(); }

Status Database::Commit(TxnId txn) {
  SENTINEL_RETURN_NOT_OK(engine_->Commit(txn));
  objects_->OnCommit(txn);
  names_->OnCommit(txn);
  return Status::OK();
}

Status Database::Abort(TxnId txn) {
  Status st = engine_->Abort(txn);
  objects_->OnAbort(txn);
  names_->OnAbort(txn);
  return st;
}

}  // namespace sentinel::oodb
