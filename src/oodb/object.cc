#include "oodb/object.h"

namespace sentinel::oodb {

void PersistentObject::Serialize(BytesWriter* out) const {
  out->PutU64(oid_);
  out->PutString(class_name_);
  out->PutU32(static_cast<std::uint32_t>(attrs_.size()));
  for (const auto& [name, value] : attrs_) {
    out->PutString(name);
    value.Serialize(out);
  }
}

Result<PersistentObject> PersistentObject::Deserialize(BytesReader* in) {
  PersistentObject obj;
  auto oid = in->ReadU64();
  if (!oid.ok()) return oid.status();
  obj.oid_ = *oid;
  auto cls = in->ReadString();
  if (!cls.ok()) return cls.status();
  obj.class_name_ = std::move(*cls);
  auto count = in->ReadU32();
  if (!count.ok()) return count.status();
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto name = in->ReadString();
    if (!name.ok()) return name.status();
    auto value = Value::Deserialize(in);
    if (!value.ok()) return value.status();
    obj.attrs_[std::move(*name)] = std::move(*value);
  }
  return obj;
}

}  // namespace sentinel::oodb
