#ifndef SENTINEL_OODB_OBJECT_CACHE_H_
#define SENTINEL_OODB_OBJECT_CACHE_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "oodb/persistence_manager.h"

namespace sentinel::oodb {

/// Open OODB's address-space-manager / object-translation analogue
/// (Fig. 1): keeps recently used objects deserialized in memory so repeated
/// access avoids record reads and decoding.
///
/// Isolation is preserved: a cache hit still acquires the record's shared
/// lock through the storage engine's lock manager, so a reader blocks
/// behind a concurrent writer exactly as an uncached read would. The main
/// cache holds only committed versions; a transaction's own writes live in
/// a per-transaction overlay promoted at commit and dropped at abort.
class ObjectCache {
 public:
  ObjectCache(storage::StorageEngine* engine, PersistenceManager* objects,
              std::size_t capacity)
      : engine_(engine), objects_(objects), capacity_(capacity) {}

  ObjectCache(const ObjectCache&) = delete;
  ObjectCache& operator=(const ObjectCache&) = delete;

  /// Reads an object (cache first, store on miss). The returned pointer is
  /// an immutable snapshot; modify via Put().
  Result<std::shared_ptr<const PersistentObject>> Get(TxnId txn, Oid oid);

  /// Writes through to the persistence manager and updates this
  /// transaction's overlay.
  Result<Oid> Put(TxnId txn, PersistentObject object);

  Status Delete(TxnId txn, Oid oid);

  /// Transaction lifecycle (call alongside the persistence manager's).
  void OnCommit(TxnId txn);
  void OnAbort(TxnId txn);

  std::size_t size() const;
  // Counters are written under mu_ but read lock-free by stats surfaces, so
  // they are relaxed atomics.
  std::uint64_t hit_count() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t miss_count() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  using ObjectPtr = std::shared_ptr<const PersistentObject>;

  void InsertCommittedLocked(Oid oid, ObjectPtr object);
  void TouchLocked(Oid oid);

  storage::StorageEngine* engine_;
  PersistenceManager* objects_;
  std::size_t capacity_;

  mutable std::mutex mu_;
  std::unordered_map<Oid, ObjectPtr> cache_;
  std::list<Oid> lru_;  // front == most recent
  std::unordered_map<Oid, std::list<Oid>::iterator> lru_pos_;
  // Per-transaction overlay: nullptr value == deleted by this txn.
  std::unordered_map<TxnId, std::map<Oid, ObjectPtr>> overlays_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace sentinel::oodb

#endif  // SENTINEL_OODB_OBJECT_CACHE_H_
