#ifndef SENTINEL_OODB_OBJECT_H_
#define SENTINEL_OODB_OBJECT_H_

#include <map>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "oodb/value.h"

namespace sentinel::oodb {

/// Persistent object state: an OID, a class name, and attribute values.
/// The in-memory C++ face of an object (a Reactive subclass instance) loads
/// from and stores to this representation via the PersistenceManager.
class PersistentObject {
 public:
  PersistentObject() = default;
  PersistentObject(Oid oid, std::string class_name)
      : oid_(oid), class_name_(std::move(class_name)) {}

  Oid oid() const { return oid_; }
  void set_oid(Oid oid) { oid_ = oid; }
  const std::string& class_name() const { return class_name_; }
  void set_class_name(std::string name) { class_name_ = std::move(name); }

  void Set(const std::string& attr, Value value) {
    attrs_[attr] = std::move(value);
  }
  Result<Value> Get(const std::string& attr) const {
    auto it = attrs_.find(attr);
    if (it == attrs_.end()) {
      return Status::NotFound("attribute not set: " + attr);
    }
    return it->second;
  }
  bool Has(const std::string& attr) const { return attrs_.count(attr) != 0; }
  const std::map<std::string, Value>& attributes() const { return attrs_; }

  void Serialize(BytesWriter* out) const;
  static Result<PersistentObject> Deserialize(BytesReader* in);

 private:
  Oid oid_ = kInvalidOid;
  std::string class_name_;
  std::map<std::string, Value> attrs_;
};

}  // namespace sentinel::oodb

#endif  // SENTINEL_OODB_OBJECT_H_
