#include "preproc/compiler.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace sentinel::preproc {

namespace {

/// Extracts formal parameter names from a C++ method signature, e.g.
/// "void set_price(float price)" -> {"price"}. Best effort: the last
/// identifier of each comma-separated parameter.
std::vector<std::string> ParamNames(const std::string& signature) {
  std::vector<std::string> names;
  auto open = signature.find('(');
  auto close = signature.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close <= open) {
    return names;
  }
  std::string params = signature.substr(open + 1, close - open - 1);
  std::stringstream ss(params);
  std::string part;
  while (std::getline(ss, part, ',')) {
    // Last identifier in the piece.
    int end = static_cast<int>(part.size()) - 1;
    while (end >= 0 && !(std::isalnum(static_cast<unsigned char>(part[end])) ||
                         part[end] == '_')) {
      --end;
    }
    int begin = end;
    while (begin >= 0 &&
           (std::isalnum(static_cast<unsigned char>(part[begin])) ||
            part[begin] == '_')) {
      --begin;
    }
    if (end > begin) {
      names.push_back(part.substr(begin + 1, end - begin));
    }
  }
  return names;
}

}  // namespace

Result<rules::ConditionFn> FunctionRegistry::Condition(
    const std::string& name) const {
  if (name == "true" || name == "TRUE" || name == "none") {
    return rules::ConditionFn(nullptr);
  }
  auto it = conditions_.find(name);
  if (it == conditions_.end()) {
    return Status::NotFound("condition function not registered: " + name);
  }
  return it->second;
}

Result<rules::ActionFn> FunctionRegistry::Action(const std::string& name) const {
  if (name == "none" || name == "noop") {
    return rules::ActionFn(nullptr);
  }
  auto it = actions_.find(name);
  if (it == actions_.end()) {
    return Status::NotFound("action function not registered: " + name);
  }
  return it->second;
}

std::string SpecCompiler::NodeNameFor(const snoop::EventExpr& expr) {
  if (expr.kind == snoop::EventExpr::Kind::kRef) return expr.ref_name;
  return "__expr:" + expr.ToString();
}

Status SpecCompiler::LoadString(const std::string& source) {
  auto spec = snoop::Parser::Parse(source);
  if (!spec.ok()) return spec.status();
  return Install(*spec);
}

Status SpecCompiler::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open spec file " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return LoadString(buffer.str());
}

namespace {
// Hidden class holding persisted specification sources.
constexpr char kSpecClass[] = "__sentinel_spec";
}  // namespace

Status SpecCompiler::InstallAndPersist(const std::string& source) {
  if (db_->database() == nullptr) {
    return Status::InvalidArgument(
        "InstallAndPersist requires a persistent database");
  }
  SENTINEL_RETURN_NOT_OK(LoadString(source));
  if (!db_->database()->classes()->Exists(kSpecClass)) {
    SENTINEL_RETURN_NOT_OK(db_->database()->classes()->Register(
        oodb::ClassDef(kSpecClass, "")
            .AddAttribute("source", oodb::ValueType::kString)));
  }
  auto txn = db_->database()->Begin();
  if (!txn.ok()) return txn.status();
  oodb::PersistentObject obj(oodb::kInvalidOid, kSpecClass);
  obj.Set("source", oodb::Value::String(source));
  auto put = db_->database()->objects()->Put(*txn, std::move(obj));
  if (!put.ok()) {
    (void)db_->database()->Abort(*txn);
    return put.status();
  }
  return db_->database()->Commit(*txn);
}

Status SpecCompiler::LoadPersisted() {
  if (db_->database() == nullptr) {
    return Status::InvalidArgument(
        "LoadPersisted requires a persistent database");
  }
  auto txn = db_->database()->Begin();
  if (!txn.ok()) return txn.status();
  // Collect sources in OID (definition) order.
  std::vector<std::pair<oodb::Oid, std::string>> sources;
  Status st = db_->database()->objects()->ScanClass(
      *txn, kSpecClass, [&](const oodb::PersistentObject& obj) {
        auto source = obj.Get("source");
        if (!source.ok()) return source.status();
        sources.emplace_back(obj.oid(), source->AsString());
        return Status::OK();
      });
  Status end = st.ok() ? db_->database()->Commit(*txn)
                       : db_->database()->Abort(*txn);
  SENTINEL_RETURN_NOT_OK(st);
  SENTINEL_RETURN_NOT_OK(end);
  std::sort(sources.begin(), sources.end());
  for (const auto& [oid, source] : sources) {
    (void)oid;
    SENTINEL_RETURN_NOT_OK(LoadString(source));
  }
  return Status::OK();
}

Status SpecCompiler::Install(const snoop::Spec& spec) {
  for (const auto& cls : spec.classes) {
    SENTINEL_RETURN_NOT_OK(InstallClass(cls));
  }
  for (const auto& event : spec.events) {
    SENTINEL_RETURN_NOT_OK(InstallNamedEvent(event, ""));
  }
  for (const auto& rule : spec.rules) {
    SENTINEL_RETURN_NOT_OK(InstallRule(rule));
  }
  return Status::OK();
}

Status SpecCompiler::InstallClass(const snoop::ClassDecl& decl) {
  // Register the schema (persistent databases only).
  if (db_->database() != nullptr) {
    oodb::ClassDef def(decl.name,
                       decl.base == "REACTIVE" ? "" : decl.base);
    for (const auto& attr : decl.attributes) {
      def.AddAttribute(attr.name, attr.type);
    }
    for (const auto& iface : decl.event_interface) {
      def.AddMethod(iface.method_signature, ParamNames(iface.method_signature));
    }
    Status st = db_->database()->classes()->Register(std::move(def));
    if (!st.ok() && !st.IsAlreadyExists()) return st;
  }
  // Event interface: one primitive event node per (modifier, name) binding.
  for (const auto& iface : decl.event_interface) {
    for (const auto& binding : iface.bindings) {
      SENTINEL_RETURN_NOT_OK(db_->DeclareEvent(binding.event_name, decl.name,
                                               binding.modifier,
                                               iface.method_signature)
                                 .status());
    }
  }
  for (const auto& event : decl.events) {
    SENTINEL_RETURN_NOT_OK(InstallNamedEvent(event, decl.name));
  }
  for (const auto& rule : decl.rules) {
    SENTINEL_RETURN_NOT_OK(InstallRule(rule));
  }
  return Status::OK();
}

Status SpecCompiler::InstallNamedEvent(const snoop::NamedEventDef& def,
                                       const std::string& class_scope) {
  (void)class_scope;
  return BuildExpr(*def.expr, def.name).status();
}

Result<detector::EventNode*> SpecCompiler::BuildExpr(
    const snoop::EventExpr& expr, const std::string& name_hint) {
  detector::LocalEventDetector* det = db_->detector();
  using Kind = snoop::EventExpr::Kind;

  if (expr.kind == Kind::kRef) {
    return det->Find(expr.ref_name);
  }

  // Common sub-expression sharing: identical expressions (by canonical
  // name) reuse the already installed node (§3.1).
  const std::string name =
      name_hint.empty() ? NodeNameFor(expr) : name_hint;
  if (name_hint.empty() && det->Exists(name)) {
    return det->Find(name);
  }

  switch (expr.kind) {
    case Kind::kRef:
      break;  // handled above
    case Kind::kPrimitive: {
      oodb::Oid instance = oodb::kInvalidOid;
      if (!expr.instance_name.empty()) {
        // Instance-level event: resolve the bound name to an OID.
        if (db_->database() == nullptr) {
          return Status::InvalidArgument(
              "instance-level event requires a persistent database: " + name);
        }
        auto txn = db_->database()->Begin();
        if (!txn.ok()) return txn.status();
        auto oid = db_->database()->names()->Lookup(*txn, expr.instance_name);
        (void)db_->database()->Commit(*txn);
        if (!oid.ok()) {
          return Status::NotFound("instance name not bound: " +
                                  expr.instance_name);
        }
        instance = *oid;
      }
      return det->DefinePrimitive(name, expr.class_name, expr.modifier,
                                  expr.signature, instance);
    }
    case Kind::kOr:
    case Kind::kAnd:
    case Kind::kSeq: {
      auto left = BuildExpr(*expr.children[0], "");
      if (!left.ok()) return left;
      auto right = BuildExpr(*expr.children[1], "");
      if (!right.ok()) return right;
      if (expr.kind == Kind::kOr) return det->DefineOr(name, *left, *right);
      if (expr.kind == Kind::kAnd) return det->DefineAnd(name, *left, *right);
      return det->DefineSeq(name, *left, *right);
    }
    case Kind::kNot:
    case Kind::kAperiodic:
    case Kind::kAperiodicStar: {
      auto opener = BuildExpr(*expr.children[0], "");
      if (!opener.ok()) return opener;
      auto middle = BuildExpr(*expr.children[1], "");
      if (!middle.ok()) return middle;
      auto closer = BuildExpr(*expr.children[2], "");
      if (!closer.ok()) return closer;
      if (expr.kind == Kind::kNot) {
        return det->DefineNot(name, *opener, *middle, *closer);
      }
      if (expr.kind == Kind::kAperiodic) {
        return det->DefineAperiodic(name, *opener, *middle, *closer);
      }
      return det->DefineAperiodicStar(name, *opener, *middle, *closer);
    }
    case Kind::kPlus: {
      auto base = BuildExpr(*expr.children[0], "");
      if (!base.ok()) return base;
      return det->DefinePlus(name, *base, expr.time_ms);
    }
    case Kind::kAny: {
      std::vector<detector::EventNode*> children;
      children.reserve(expr.children.size());
      for (const auto& child : expr.children) {
        auto node = BuildExpr(*child, "");
        if (!node.ok()) return node;
        children.push_back(*node);
      }
      return det->DefineAny(name, expr.any_threshold, std::move(children));
    }
    case Kind::kPeriodic:
    case Kind::kPeriodicStar: {
      auto opener = BuildExpr(*expr.children[0], "");
      if (!opener.ok()) return opener;
      auto closer = BuildExpr(*expr.children[1], "");
      if (!closer.ok()) return closer;
      if (expr.kind == Kind::kPeriodic) {
        return det->DefinePeriodic(name, *opener, expr.time_ms, *closer);
      }
      return det->DefinePeriodicStar(name, *opener, expr.time_ms, *closer);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Status SpecCompiler::InstallRule(const snoop::RuleDef& def) {
  auto condition = functions_->Condition(def.condition_fn);
  if (!condition.ok()) return condition.status();
  auto action = functions_->Action(def.action_fn);
  if (!action.ok()) return action.status();

  rules::RuleManager::RuleOptions options;
  if (def.context) options.context = *def.context;
  if (def.coupling) options.coupling = *def.coupling;
  if (def.priority) options.priority = *def.priority;
  if (def.trigger) options.trigger_mode = *def.trigger;
  return db_->rule_manager()
      ->DefineRule(def.name, def.event_name, *condition, *action, options)
      .status();
}

// ---- Code generation (paper §3.2 style) -----------------------------------------

std::string SpecCompiler::GenerateCpp(const snoop::Spec& spec) {
  std::ostringstream out;
  out << "/* Generated by the Sentinel pre/post-processor. */\n";
  out << "#include \"core/active_database.h\"\n\n";

  // Wrapper methods (post-processor output, §3.2.1).
  for (const auto& cls : spec.classes) {
    for (const auto& iface : cls.event_interface) {
      const auto params = ParamNames(iface.method_signature);
      out << "/* wrapper for " << cls.name << "::" << iface.method_signature
          << " */\n";
      out << iface.method_signature << " {\n";
      out << "  PARA_LIST* para_list = new PARA_LIST();\n";
      for (const auto& p : params) {
        out << "  para_list->insert(\"" << p << "\", " << p << ");\n";
      }
      bool has_begin = false, has_end = false;
      for (const auto& b : iface.bindings) {
        has_begin |= b.modifier == detector::EventModifier::kBegin;
        has_end |= b.modifier == detector::EventModifier::kEnd;
      }
      if (has_begin) {
        out << "  Notify(this, \"" << cls.name << "\", \""
            << iface.method_signature << "\", \"begin\", para_list);\n";
      }
      out << "  user_" << iface.method_signature << ";\n";
      if (has_end) {
        out << "  Notify(this, \"" << cls.name << "\", \""
            << iface.method_signature << "\", \"end\", para_list);\n";
      }
      out << "}\n\n";
    }
  }

  // Main-program event graph construction (§3.2.2).
  out << "int main() {\n";
  out << "  LOCAL_EVENT_DETECTOR* Event_detector = new "
         "LOCAL_EVENT_DETECTOR();\n";
  for (const auto& cls : spec.classes) {
    for (const auto& iface : cls.event_interface) {
      for (const auto& b : iface.bindings) {
        out << "  EVENT* " << cls.name << "_" << b.event_name
            << " = new PRIMITIVE(\"" << b.event_name << "\", \"" << cls.name
            << "\", \""
            << (b.modifier == detector::EventModifier::kBegin ? "begin" : "end")
            << "\", \"" << iface.method_signature << "\");\n";
      }
    }
    for (const auto& event : cls.events) {
      out << "  EVENT* " << cls.name << "_" << event.name
          << " = /* " << event.expr->ToString() << " */;\n";
    }
    for (const auto& rule : cls.rules) {
      out << "  RULE* " << rule.name << " = new RULE(\"" << rule.name
          << "\", " << rule.event_name << ", " << rule.condition_fn << ", "
          << rule.action_fn << ");\n";
    }
  }
  for (const auto& event : spec.events) {
    out << "  EVENT* " << event.name << " = /* " << event.expr->ToString()
        << " */;\n";
  }
  for (const auto& rule : spec.rules) {
    out << "  RULE* " << rule.name << " = new RULE(\"" << rule.name << "\", "
        << rule.event_name << ", " << rule.condition_fn << ", "
        << rule.action_fn << ");\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace sentinel::preproc
