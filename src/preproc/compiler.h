#ifndef SENTINEL_PREPROC_COMPILER_H_
#define SENTINEL_PREPROC_COMPILER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/active_database.h"
#include "snoop/ast.h"
#include "snoop/parser.h"

namespace sentinel::preproc {

/// Named condition/action functions, mirroring the paper's restriction that
/// conditions and actions are global C++ functions referenced by name in the
/// rule specification (§3.1 footnote 2). The host application registers its
/// functions before loading a spec.
class FunctionRegistry {
 public:
  void RegisterCondition(const std::string& name, rules::ConditionFn fn) {
    conditions_[name] = std::move(fn);
  }
  void RegisterAction(const std::string& name, rules::ActionFn fn) {
    actions_[name] = std::move(fn);
  }

  /// "true" (any case) and "none" resolve to a null condition (always fires).
  Result<rules::ConditionFn> Condition(const std::string& name) const;
  /// "none"/"noop" resolve to a null action.
  Result<rules::ActionFn> Action(const std::string& name) const;

 private:
  std::map<std::string, rules::ConditionFn> conditions_;
  std::map<std::string, rules::ActionFn> actions_;
};

/// The Sentinel pre-processor (paper §2.3, §3.1): translates the high-level
/// event/rule specification into the runtime calls that build the event
/// graph and rule objects.
///
/// Two backends:
///   - Install(): interpret the spec directly against an ActiveDatabase —
///     registering classes, defining primitive/composite events (sharing
///     common sub-expressions), and defining rules with their contexts,
///     coupling modes, priorities and trigger modes.
///   - GenerateCpp(): emit the C++ registration code the paper shows in
///     §3.2 (wrapper methods with Notify calls plus the main-program event
///     graph construction) as a documentation/codegen artifact.
class SpecCompiler {
 public:
  SpecCompiler(core::ActiveDatabase* db, const FunctionRegistry* functions)
      : db_(db), functions_(functions) {}

  /// Parses and installs a whole specification.
  Status LoadString(const std::string& source);
  Status LoadFile(const std::string& path);

  /// Installs an already parsed specification.
  Status Install(const snoop::Spec& spec);

  /// Installs the specification AND stores its source durably in the
  /// database, so a later LoadPersisted() re-creates the same events and
  /// rules. This gives Sentinel persistent rule/event definitions — the
  /// paper treats rules as first-class objects created from the
  /// preprocessed specification (§3.1); storing the specification source is
  /// the equivalent durable representation.
  Status InstallAndPersist(const std::string& source);

  /// Re-installs every specification previously stored with
  /// InstallAndPersist, in original definition order. Call after opening a
  /// database (condition/action functions must already be registered).
  Status LoadPersisted();

  /// Emits paper-style C++ registration code for the specification.
  static std::string GenerateCpp(const snoop::Spec& spec);

  /// Name under which a sub-expression's node is (or would be) installed.
  /// Equal sub-expressions map to the same node (common sub-expression
  /// sharing, §3.1).
  static std::string NodeNameFor(const snoop::EventExpr& expr);

 private:
  Status InstallClass(const snoop::ClassDecl& decl);
  Status InstallNamedEvent(const snoop::NamedEventDef& def,
                           const std::string& class_scope);
  Status InstallRule(const snoop::RuleDef& def);
  /// Builds (or reuses) the detector node for `expr`; returns it.
  Result<detector::EventNode*> BuildExpr(const snoop::EventExpr& expr,
                                         const std::string& name_hint);

  core::ActiveDatabase* db_;
  const FunctionRegistry* functions_;
};

}  // namespace sentinel::preproc

#endif  // SENTINEL_PREPROC_COMPILER_H_
