#ifndef SENTINEL_DEBUG_RULE_DEBUGGER_H_
#define SENTINEL_DEBUG_RULE_DEBUGGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/active_database.h"

namespace sentinel::debug {

/// The Sentinel rule debugger ([12], paper §2.3): records the interactions
/// among events and rules and renders them for inspection —
///   - a chronological trace of signalled events and executed rules
///     (indented by nesting depth),
///   - a DOT rendering of the event graph (primitive/operator nodes, child
///     edges, rule subscriptions),
///   - a DOT rendering of the rule-interaction graph derived from the trace
///     (rule A's action raised an event that triggered rule B).
class RuleDebugger {
 public:
  struct TraceEntry {
    enum class Kind { kEvent, kRule };
    Kind kind = Kind::kEvent;
    std::uint64_t seq = 0;
    // kEvent:
    std::string event_name;
    std::string class_name;
    std::string method;
    oodb::Oid oid = oodb::kInvalidOid;
    // kRule:
    std::string rule_name;
    bool condition_held = true;
    int depth = 0;
    std::string triggering_event;
    storage::TxnId txn = storage::kInvalidTxnId;
  };

  /// Attaches observers to `db`'s detector and scheduler. Attach once.
  void Attach(core::ActiveDatabase* db);

  std::vector<TraceEntry> Trace() const;
  void Clear();

  /// Human-readable chronological trace.
  std::string RenderTrace() const;

  /// Event graph of `db`'s detector in Graphviz DOT.
  static std::string EventGraphDot(core::ActiveDatabase* db);

  /// Rule-interaction graph (from the recorded trace) in DOT.
  std::string RuleInteractionDot() const;

  std::size_t event_count() const;
  std::size_t rule_execution_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEntry> trace_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace sentinel::debug

#endif  // SENTINEL_DEBUG_RULE_DEBUGGER_H_
