#include "debug/rule_debugger.h"

#include <map>
#include <set>
#include <sstream>

#include "detector/operator_nodes.h"

namespace sentinel::debug {

void RuleDebugger::Attach(core::ActiveDatabase* db) {
  db->detector()->AddRawObserver(
      [this](const detector::PrimitiveOccurrence& occ) {
        std::lock_guard<std::mutex> lock(mu_);
        TraceEntry entry;
        entry.kind = TraceEntry::Kind::kEvent;
        entry.seq = next_seq_++;
        entry.event_name = occ.event_name;
        entry.class_name = occ.class_name;
        entry.method = occ.method_signature;
        entry.oid = occ.oid;
        entry.txn = occ.txn;
        trace_.push_back(std::move(entry));
      });
  db->scheduler()->SetExecutionObserver(
      [this](const rules::Firing& firing, bool condition_held, Status status) {
        (void)status;
        std::lock_guard<std::mutex> lock(mu_);
        TraceEntry entry;
        entry.kind = TraceEntry::Kind::kRule;
        entry.seq = next_seq_++;
        entry.rule_name = firing.rule != nullptr ? firing.rule->name() : "?";
        entry.condition_held = condition_held;
        entry.depth = firing.depth;
        entry.triggering_event = firing.occurrence.event_name;
        entry.txn = firing.txn;
        trace_.push_back(std::move(entry));
      });
}

std::vector<RuleDebugger::TraceEntry> RuleDebugger::Trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

void RuleDebugger::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  trace_.clear();
  next_seq_ = 1;
}

std::string RuleDebugger::RenderTrace() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const TraceEntry& entry : trace_) {
    out << entry.seq << "  ";
    if (entry.kind == TraceEntry::Kind::kEvent) {
      out << "event " << entry.class_name << "." << entry.method << " (oid "
          << entry.oid << ", txn " << entry.txn << ")\n";
    } else {
      for (int i = 0; i < entry.depth; ++i) out << "  ";
      out << "rule " << entry.rule_name << " on " << entry.triggering_event
          << (entry.condition_held ? " [fired]" : " [condition false]")
          << " depth=" << entry.depth << "\n";
    }
  }
  return out.str();
}

std::string RuleDebugger::EventGraphDot(core::ActiveDatabase* db) {
  detector::LocalEventDetector* det = db->detector();
  std::ostringstream out;
  out << "digraph event_graph {\n  rankdir=BT;\n";
  for (const std::string& name : det->EventNames()) {
    auto node = det->Find(name);
    if (!node.ok()) continue;
    std::string label = name;
    std::string shape = "box";
    if (auto* op = dynamic_cast<detector::OperatorNode*>(*node)) {
      label += "\\n" + std::string(OperatorKindToString(op->kind()));
      shape = "ellipse";
    } else if (dynamic_cast<detector::PrimitiveEventNode*>(*node) != nullptr) {
      shape = "box";
    }
    out << "  \"" << name << "\" [shape=" << shape << ", label=\"" << label
        << "\"];\n";
    for (detector::EventNode* child : (*node)->Children()) {
      if (child == nullptr) continue;
      out << "  \"" << child->name() << "\" -> \"" << name << "\";\n";
    }
    if ((*node)->sink_count() > 0) {
      out << "  \"" << name << "_rules\" [shape=note, label=\""
          << (*node)->sink_count() << " subscriber(s)\"];\n";
      out << "  \"" << name << "\" -> \"" << name << "_rules\";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string RuleDebugger::RuleInteractionDot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "digraph rule_interaction {\n";
  // Edge rule -> rule when a deeper rule execution immediately follows a
  // shallower one (nested triggering recorded depth-first).
  std::map<int, std::string> last_at_depth;
  std::set<std::pair<std::string, std::string>> edges;
  std::set<std::string> rules;
  for (const TraceEntry& entry : trace_) {
    if (entry.kind != TraceEntry::Kind::kRule) continue;
    rules.insert(entry.rule_name);
    if (entry.depth > 1) {
      auto parent = last_at_depth.find(entry.depth - 1);
      if (parent != last_at_depth.end()) {
        edges.emplace(parent->second, entry.rule_name);
      }
    }
    last_at_depth[entry.depth] = entry.rule_name;
  }
  for (const std::string& rule : rules) {
    out << "  \"" << rule << "\" [shape=box];\n";
  }
  for (const auto& [from, to] : edges) {
    out << "  \"" << from << "\" -> \"" << to << "\" [label=triggers];\n";
  }
  out << "}\n";
  return out.str();
}

std::size_t RuleDebugger::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& entry : trace_) {
    if (entry.kind == TraceEntry::Kind::kEvent) ++n;
  }
  return n;
}

std::size_t RuleDebugger::rule_execution_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& entry : trace_) {
    if (entry.kind == TraceEntry::Kind::kRule) ++n;
  }
  return n;
}

}  // namespace sentinel::debug
