#ifndef SENTINEL_NET_EVENT_BUS_SERVER_H_
#define SENTINEL_NET_EVENT_BUS_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "detector/event_types.h"
#include "ged/global_detector.h"
#include "net/protocol.h"
#include "net/socket_util.h"
#include "obs/metrics.h"

namespace sentinel::obs {
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::net {

/// Per-session heartbeat timing (DESIGN.md §14): RTT histogram in
/// MICROseconds plus the EWMA-smoothed steady-clock offset of the peer
/// relative to this server (positive = peer's steady clock is ahead).
struct SessionClockStats {
  std::uint64_t session_id = 0;
  std::string app;
  std::uint64_t rtt_samples = 0;
  std::int64_t clock_offset_us = 0;
  obs::LatencyHistogram::Snapshot rtt_us;
};

/// Counter/gauge snapshot of the event-bus server (the sentinel_net_*
/// Prometheus families). Counters are cumulative since Start.
struct EventBusServerStats {
  std::uint64_t accepted = 0;            // connections accepted
  std::uint64_t rejected_sessions = 0;   // refused at the session limit
  std::uint64_t superseded_sessions = 0; // kicked by a reconnect of same app
  std::uint64_t open_sessions = 0;       // gauge
  std::uint64_t notifies_received = 0;   // NOTIFY frames decoded
  std::uint64_t dispatched = 0;          // occurrences handed to the GED
  std::uint64_t sheds = 0;               // notifies dropped by admission ctl
  std::uint64_t frame_errors = 0;        // framing/CRC violations observed
  std::uint64_t slow_consumer_disconnects = 0;
  std::uint64_t idle_disconnects = 0;
  std::uint64_t pushes_sent = 0;         // EVENT_PUSH frames queued
  std::uint64_t pings_sent = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t admission_depth = 0;     // gauge
  std::uint64_t admission_peak = 0;
  std::uint64_t outbound_queued_bytes = 0;  // gauge, summed over sessions
  bool overloaded = false;               // admission queue past high water
  std::uint64_t rtt_samples = 0;         // timed pongs folded into rtt_us
  /// Heartbeat round trips, aggregated over all sessions (µs buckets; the
  /// per-session split lives in SessionClocks()).
  obs::LatencyHistogram::Snapshot rtt_us;
  /// End-to-end latency (ns), measured against the ORIGINATING client's
  /// wall-clock Notify timestamp: at GED dispatch, and at global detection
  /// (the moment a push is cut). Always on — origin stamps ride the wire
  /// even with tracing off.
  obs::LatencyHistogram::Snapshot e2e_delivery_ns;
  obs::LatencyHistogram::Snapshot e2e_detect_ns;
};

/// TCP front end that turns a GlobalEventDetector into a multi-client
/// daemon: remote applications register, declare global primitives, stream
/// Notify frames in, and subscribe to server-pushed global detections —
/// the paper's Fig. 2 arrows carried over the socket transport it left as
/// future work.
///
/// Robustness contract (DESIGN.md §12):
///   - every queue is bounded: the admission queue sheds NOTIFY traffic
///     with a typed RETRY_LATER verdict instead of growing, and a session
///     whose outbound queue exceeds its byte budget is disconnected as a
///     slow consumer rather than wedging the push path;
///   - sessions are limited (connection admission) and heartbeated: a peer
///     that stops responding is reaped by the idle timeout;
///   - a framing violation (bad magic, CRC mismatch, oversized length)
///     drops that connection only — the daemon itself never trusts a byte
///     it has not validated;
///   - overload is observable: `overloaded()` flips when the admission
///     queue passes its high-water mark (3/4, clearing at 1/4) and feeds
///     the health watchdog, so /healthz reports degraded while the server
///     sheds instead of the process dying.
///
/// Threads: one poll-based I/O thread owns every socket; one dispatcher
/// thread drains the admission queue into the GED bus, blocking while the
/// bus backlog exceeds `ged_bus_soft_cap` (backpressure end to end).
/// Subscription sinks run on the GED bus thread and only append to the
/// per-session outbound queues.
class EventBusServer {
 public:
  struct Options {
    /// 127.0.0.1 port; 0 picks an ephemeral port (tests).
    int port = 0;
    std::size_t max_sessions = 64;
    /// Admission queue capacity, in occurrences. Past 3/4 the server is
    /// `overloaded()`; at capacity NOTIFY traffic sheds with RETRY_LATER.
    std::size_t admission_capacity = 1024;
    /// Dispatcher pauses while the GED bus backlog is at or above this.
    std::size_t ged_bus_soft_cap = 256;
    /// Per-session outbound byte budget; past it the session is dropped as
    /// a slow consumer.
    std::size_t outbound_max_bytes = 256 * 1024;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    std::chrono::milliseconds heartbeat_interval{2000};
    std::chrono::milliseconds idle_timeout{10000};
    /// Advisory backoff carried in RETRY_LATER shed notices.
    std::uint32_t retry_after_ms = 50;
  };

  /// `ged` must outlive the server and stay un-shut-down while it runs.
  explicit EventBusServer(ged::GlobalEventDetector* ged);
  ~EventBusServer();

  EventBusServer(const EventBusServer&) = delete;
  EventBusServer& operator=(const EventBusServer&) = delete;

  Status Start(const Options& options);
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port after a successful Start (resolves ephemeral requests).
  int port() const { return port_.load(std::memory_order_acquire); }
  /// True while the admission queue sits past its high-water mark — the
  /// watchdog turns this into a degraded /healthz verdict.
  bool overloaded() const {
    return overloaded_.load(std::memory_order_acquire);
  }
  std::size_t session_count() const;

  EventBusServerStats stats() const;
  std::string StatsJson() const;

  /// Heartbeat timing per live session (shell `ged stats`, /metrics
  /// per-session RTT/offset series).
  std::vector<SessionClockStats> SessionClocks() const;

  /// Attaches the causal span tracer: the I/O and dispatcher threads record
  /// kNet* spans (frame decode, admission wait, outbound wait, socket
  /// write) and push-encode spans adopt the remote trace context. May be
  /// set at any time; nullptr detaches.
  void set_span_tracer(obs::SpanTracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }

 private:
  struct Session;
  class PushSink;

  /// One admitted NOTIFY waiting for the dispatcher. Carries the decode
  /// span id so the admission-wait span (recorded at dequeue — it spans two
  /// threads) parents into the decode span, and the enqueue timestamp that
  /// wait is measured from.
  struct AdmissionItem {
    std::string app;
    detector::PrimitiveOccurrence occ;
    std::uint64_t enqueued_ns = 0;
    std::uint64_t decode_span = 0;
  };

  /// One encoded frame in a session's outbound queue. The trace linkage
  /// lets the outbound-wait span (recorded when the frame finishes
  /// flushing) hang off the push-encode span that produced it.
  struct OutFrame {
    std::string bytes;
    std::uint64_t enqueued_ns = 0;
    std::uint64_t trace = 0;
    std::uint64_t parent_span = 0;
    bool is_push = false;
  };

  void IoLoop();
  void DispatchLoop();

  void AcceptPending();
  void ReadSession(const std::shared_ptr<Session>& session);
  void FlushSession(const std::shared_ptr<Session>& session);
  void HandleFrame(const std::shared_ptr<Session>& session,
                   FrameAssembler::Frame& frame);
  void HandleHello(const std::shared_ptr<Session>& session,
                   const HelloMsg& msg);
  void HandleNotify(const std::shared_ptr<Session>& session,
                    BytesReader* body, std::uint16_t flags);
  void HandlePong(const std::shared_ptr<Session>& session, BytesReader* body);
  /// Appends a frame to the session's outbound queue; dooms the session as
  /// a slow consumer when the byte budget would be exceeded. Safe from any
  /// thread. `trace`/`parent_span` annotate the outbound-wait span.
  void EnqueueFrame(const std::shared_ptr<Session>& session,
                    std::string frame, bool is_push,
                    std::uint64_t trace = 0, std::uint64_t parent_span = 0);
  void Reply(const std::shared_ptr<Session>& session, std::uint32_t seq,
             WireCode code, std::uint32_t retry_after_ms,
             const std::string& message);
  void Doom(const std::shared_ptr<Session>& session, const std::string& why);
  bool IsDoomed(const std::shared_ptr<Session>& session) const;
  /// Hysteresis: overloaded_ sets at 3/4 of admission capacity, clears at
  /// 1/4 — so the health verdict doesn't flap at the boundary.
  void UpdateOverload(std::size_t depth);
  void CheckTimers(std::uint64_t now_ns);
  void ReapDoomed();
  void CloseSessionLocked(Session& session);
  /// Tears down GED-side state (subscriptions, app registration) of a
  /// session being closed. Must be called WITHOUT sessions_mu_ held.
  void DetachFromGed(Session& session);

  ged::GlobalEventDetector* const ged_;
  Options options_;

  int listen_fd_ = -1;
  WakePipe wake_;
  std::mutex lifecycle_mu_;  // serializes Start/Stop (and the joins)
  std::thread io_thread_;
  std::thread dispatch_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int> port_{0};

  // Sessions. sessions_mu_ guards the map and each session's outbound
  // queue + doom flag (the only fields other threads touch); everything
  // else in a Session belongs to the I/O thread.
  mutable std::mutex sessions_mu_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;

  // Admission-control queue (bounded; see Options::admission_capacity).
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  std::deque<AdmissionItem> admission_;
  bool dispatch_stop_ = false;

  std::atomic<bool> overloaded_{false};

  std::atomic<obs::SpanTracer*> tracer_{nullptr};

  // Always-on latency layer (see EventBusServerStats).
  obs::LatencyHistogram rtt_us_;  // aggregate; per-session copies in Session
  std::atomic<std::uint64_t> rtt_samples_{0};
  obs::LatencyHistogram e2e_delivery_ns_;
  obs::LatencyHistogram e2e_detect_ns_;

  // Counters (relaxed; snapshotted by stats()).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_sessions_{0};
  std::atomic<std::uint64_t> superseded_sessions_{0};
  std::atomic<std::uint64_t> notifies_received_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::uint64_t> slow_consumer_disconnects_{0};
  std::atomic<std::uint64_t> idle_disconnects_{0};
  std::atomic<std::uint64_t> pushes_sent_{0};
  std::atomic<std::uint64_t> pings_sent_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> admission_peak_{0};
};

}  // namespace sentinel::net

#endif  // SENTINEL_NET_EVENT_BUS_SERVER_H_
