#ifndef SENTINEL_NET_REMOTE_CLIENT_H_
#define SENTINEL_NET_REMOTE_CLIENT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "detector/event_types.h"
#include "detector/local_detector.h"
#include "net/protocol.h"
#include "net/socket_util.h"
#include "obs/metrics.h"

namespace sentinel::obs {
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::net {

/// Client side of the GED event bus: connects an application process to a
/// remote net::EventBusServer, registers its name, declares global
/// primitives, streams Notify frames, and receives server-pushed global
/// detections.
///
/// Robustness contract (DESIGN.md §12):
///   - the send buffer is bounded: Notify never blocks the caller; when the
///     buffer is full the *oldest* queued event is dropped (and counted), so
///     a dead or slow server costs bounded memory, not a wedged app thread;
///   - a lost connection is re-dialed with exponential backoff plus
///     deterministic jitter, and the session is rebuilt idempotently: the
///     client replays its journal of acknowledged Hello/Define/Subscribe
///     requests, which the server accepts as no-ops if state survived;
///   - delivery is **at-most-once**, end to end. An event is sent exactly
///     once or dropped (queue overflow, connection loss with frames in
///     flight, server-side shed). Nothing is retransmitted, so a detection
///     can be missed but never double-fired — the right default for ECA
///     rules with irreversible actions; and
///   - a server RETRY_LATER shed notice pauses the notify stream for the
///     advertised backoff instead of hammering an overloaded daemon.
///
/// One worker thread owns the socket. Control calls (Define/Subscribe)
/// block the caller until the server's ack or `request_timeout`; Notify is
/// fire-and-forget. Push handlers run on the worker thread and must not
/// call back into blocking client methods.
class RemoteGedClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    /// Application name registered with the GED (must be unique per server).
    std::string app_name;
    /// Bounded send buffer, in frames; overflowing drops the oldest.
    std::size_t notify_queue_limit = 1024;
    std::chrono::milliseconds request_timeout{2000};
    std::chrono::milliseconds backoff_base{50};
    std::chrono::milliseconds backoff_max{2000};
    /// Seed for the deterministic backoff jitter (tests pin it).
    std::uint64_t jitter_seed = 0x5eed;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Client-side heartbeat cadence: each ping's pong yields an RTT and a
    /// clock-offset sample for this process's trace export. 0 disables.
    std::chrono::milliseconds ping_interval{1000};
  };

  struct Stats {
    std::uint64_t connect_attempts = 0;
    std::uint64_t sessions_established = 0;  // Hello acked (1 + reconnects)
    std::uint64_t disconnects = 0;
    std::uint64_t notifies_sent = 0;
    std::uint64_t notifies_dropped = 0;  // bounded-buffer overflow
    std::uint64_t pushes_received = 0;
    std::uint64_t sheds_received = 0;    // server RETRY_LATER notices
    std::uint64_t journal_replays = 0;   // entries re-sent after reconnect
    bool connected = false;              // Hello acked on the live socket
    std::uint64_t rtt_samples = 0;
    /// EWMA steady-clock offset of the SERVER relative to this client
    /// (positive = server's steady clock is ahead); feeds the trace
    /// export's clock_offset_ns so merge_traces.py can align timelines.
    std::int64_t clock_offset_us = 0;
    obs::LatencyHistogram::Snapshot rtt_us;
    /// Always-on e2e: origin-stamp → push-handler completion (ns). For a
    /// single client this closes the loop notify → global detect → action.
    obs::LatencyHistogram::Snapshot e2e_action_ns;
  };

  using PushHandler = std::function<void(const std::string& event,
                                         const detector::Occurrence&)>;

  explicit RemoteGedClient(Options options);
  ~RemoteGedClient();

  RemoteGedClient(const RemoteGedClient&) = delete;
  RemoteGedClient& operator=(const RemoteGedClient&) = delete;

  /// Spawns the worker and starts dialing. Returns immediately; use
  /// WaitConnected to block until the session is established.
  Status Start();
  void Stop();

  bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }
  /// Blocks until the session is registered or the timeout expires.
  bool WaitConnected(std::chrono::milliseconds timeout);
  /// Last connection-level error, for diagnostics ("" if none).
  std::string last_error() const;

  /// Declares a global primitive mirroring this application's local
  /// primitive. Blocks for the server ack; journaled for replay on
  /// reconnect once acknowledged.
  Status DefineGlobalPrimitive(const std::string& name,
                               const std::string& class_name,
                               detector::EventModifier modifier,
                               const std::string& method_signature);

  /// Subscribes to a global event; detections arrive on the worker thread
  /// via `handler`. One handler per event (a second Subscribe for the same
  /// event replaces it locally and is a server-side no-op).
  Status Subscribe(const std::string& event, detector::ParamContext context,
                   PushHandler handler);

  /// Queues one occurrence for the server (fire-and-forget, at-most-once).
  /// Fails only when the client is stopped; backpressure shows up as
  /// `notifies_dropped`, never as blocking.
  Status Notify(const detector::PrimitiveOccurrence& occurrence);

  /// Convenience: builds and queues a method-interface occurrence.
  Status NotifyMethod(const std::string& class_name, std::uint64_t oid,
                      detector::EventModifier modifier,
                      const std::string& method_signature,
                      std::shared_ptr<detector::ParamList> params,
                      storage::TxnId txn);

  /// Forwards every raw primitive occurrence of `det` to the server — the
  /// remote analogue of GlobalEventDetector::RegisterApplication. The
  /// observer hook has no removal path, so `det` must not signal events
  /// after this client is destroyed.
  void BindLocalDetector(detector::LocalEventDetector* det);

  Stats stats() const;
  std::string StatsJson() const;

  /// Attaches the causal span tracer: Notify opens a frame-encode span
  /// whose id crosses the wire as the server's remote parent, and pushes
  /// open a frame-decode span that adopts the server's trace context so
  /// handler-side condition/action spans join the originating tree.
  void set_span_tracer(obs::SpanTracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }

  /// Smoothed steady-clock offset of the server relative to this process
  /// (ns); pass it as ExportMeta::clock_offset_ns when exporting this
  /// process's trace with the server as the reference timeline.
  std::int64_t clock_offset_ns() const {
    return clock_offset_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    bool done = false;
    Status result = Status::OK();
    bool internal = false;  // journal replay; nobody is waiting
  };
  struct JournalEntry {
    enum class Kind { kDefine, kSubscribe } kind;
    DefinePrimitiveMsg define;  // kDefine
    SubscribeMsg subscribe;     // kSubscribe
  };

  void WorkerLoop();
  /// One connected session: pumps frames until error/stop. Returns the
  /// reason the session ended.
  std::string StreamLoop(int fd);
  void CompletePending(std::uint32_t seq, Status result);
  void FailAllPending(const std::string& why);
  /// Blocks the calling application thread until `seq` completes.
  Status AwaitReply(std::uint32_t seq);
  void EnqueueControlLocked(std::string frame);
  void ReplayJournalLocked();
  /// Interruptible exponential-backoff sleep; returns false when stopping.
  bool BackoffSleep();

  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;         // app threads: pending completions
  std::condition_variable worker_cv_;  // worker: backoff sleep interrupt
  bool stop_ = false;
  bool started_ = false;
  std::deque<std::string> control_out_;  // encoded frames, send-first
  std::deque<std::string> notify_out_;   // encoded frames, bounded
  std::map<std::uint32_t, Pending> pending_;
  std::uint32_t next_seq_ = 1;
  std::vector<JournalEntry> journal_;
  std::map<std::string, PushHandler> handlers_;
  std::uint64_t backoff_attempt_ = 0;
  std::uint64_t jitter_state_ = 0;
  std::uint64_t pause_until_ns_ = 0;  // RETRY_LATER notify-stream pause
  std::string last_error_;

  std::atomic<bool> connected_{false};
  WakePipe wake_;
  std::thread worker_;

  std::atomic<std::uint64_t> connect_attempts_{0};
  std::atomic<std::uint64_t> sessions_established_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> notifies_sent_{0};
  std::atomic<std::uint64_t> notifies_dropped_{0};
  std::atomic<std::uint64_t> pushes_received_{0};
  std::atomic<std::uint64_t> sheds_received_{0};
  std::atomic<std::uint64_t> journal_replays_{0};

  // Tracing + heartbeat timing (DESIGN.md §14). EWMA state is worker-only;
  // the histograms/atomics are scraped from app threads.
  std::atomic<obs::SpanTracer*> tracer_{nullptr};
  obs::LatencyHistogram rtt_us_;
  obs::LatencyHistogram e2e_action_ns_;
  std::atomic<std::uint64_t> rtt_samples_{0};
  std::atomic<std::int64_t> clock_offset_ns_{0};
  std::int64_t offset_ewma_ns_ = 0;  // worker thread only
  bool offset_primed_ = false;       // worker thread only
  std::atomic<std::uint64_t> trace_counter_{0};
  std::uint64_t trace_seed_ = 0;  // set once in Start()
};

}  // namespace sentinel::net

#endif  // SENTINEL_NET_REMOTE_CLIENT_H_
