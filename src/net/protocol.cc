#include "net/protocol.h"

#include <cstring>

#include "common/crc32.h"

namespace sentinel::net {

namespace {

/// Encodes the optional ParamList as u32 count + (name, Value) entries
/// (count 0 = absent — the paper's occurrences always carry at least the
/// signalling OID, but explicit events may be parameterless).
void EncodeParams(const std::shared_ptr<const detector::ParamList>& params,
                  BytesWriter* out) {
  if (params == nullptr) {
    out->PutU32(0);
    return;
  }
  out->PutU32(static_cast<std::uint32_t>(params->size()));
  for (const auto& [name, value] : *params) {
    out->PutString(name);
    value.Serialize(out);
  }
}

Result<std::shared_ptr<const detector::ParamList>> DecodeParams(
    BytesReader* in) {
  auto count = in->ReadU32();
  if (!count.ok()) return count.status();
  if (*count == 0) return std::shared_ptr<const detector::ParamList>();
  auto params = std::make_shared<detector::ParamList>();
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto name = in->ReadString();
    if (!name.ok()) return name.status();
    auto value = oodb::Value::Deserialize(in);
    if (!value.ok()) return value.status();
    params->Insert(std::move(*name), std::move(*value));
  }
  return std::shared_ptr<const detector::ParamList>(std::move(params));
}

std::string TakeFrame(MessageType type, const std::uint8_t* body,
                      std::size_t body_len, std::uint16_t flags = 0) {
  BytesWriter header;
  header.PutU32(kFrameMagic);
  header.PutU8(kProtocolVersion);
  header.PutU8(static_cast<std::uint8_t>(type));
  header.PutU16(flags);
  header.PutU32(static_cast<std::uint32_t>(body_len));
  header.PutU32(Crc32(body, body_len));
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body_len);
  frame.append(reinterpret_cast<const char*>(header.data().data()),
               header.size());
  frame.append(reinterpret_cast<const char*>(body), body_len);
  return frame;
}

}  // namespace

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kHello:
      return "HELLO";
    case MessageType::kStatusReply:
      return "STATUS";
    case MessageType::kDefinePrimitive:
      return "DEFINE_PRIMITIVE";
    case MessageType::kSubscribe:
      return "SUBSCRIBE";
    case MessageType::kNotify:
      return "NOTIFY";
    case MessageType::kEventPush:
      return "EVENT_PUSH";
    case MessageType::kPing:
      return "PING";
    case MessageType::kPong:
      return "PONG";
    case MessageType::kBye:
      return "BYE";
  }
  return "?";
}

Result<FrameHeader> FrameHeader::Parse(const std::uint8_t* data,
                                       std::size_t max_frame_bytes) {
  BytesReader in(data, kFrameHeaderBytes);
  const std::uint32_t magic = *in.ReadU32();
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic — peer is not speaking the "
                              "Sentinel event-bus protocol");
  }
  const std::uint8_t version = *in.ReadU8();
  if (version != kProtocolVersion) {
    return Status::Corruption("unsupported protocol version " +
                              std::to_string(version));
  }
  const std::uint8_t raw_type = *in.ReadU8();
  if (raw_type < static_cast<std::uint8_t>(MessageType::kHello) ||
      raw_type > static_cast<std::uint8_t>(MessageType::kBye)) {
    return Status::Corruption("unknown message type " +
                              std::to_string(raw_type));
  }
  const std::uint16_t flags = *in.ReadU16();
  FrameHeader header;
  header.type = static_cast<MessageType>(raw_type);
  // Flags are per-frame capability bits: keep the ones we know AND the ones
  // we don't — unknown bits are a newer peer's optional extras, never an
  // error (decoders check individual bits and skip the rest).
  header.flags = flags;
  header.body_len = *in.ReadU32();
  header.body_crc = *in.ReadU32();
  if (header.body_len > max_frame_bytes) {
    return Status::Corruption("frame body of " +
                              std::to_string(header.body_len) +
                              " bytes exceeds the frame size bound");
  }
  return header;
}

std::string EncodeFrame(MessageType type, const BytesWriter& body,
                        std::uint16_t flags) {
  return TakeFrame(type, body.data().data(), body.size(), flags);
}

std::string EncodeFrame(MessageType type) {
  return TakeFrame(type, nullptr, 0);
}

void AppendTraceContext(const TraceContext& tc, BytesWriter* out) {
  out->PutU64(tc.trace_id);
  out->PutU64(tc.parent_span);
  out->PutU64(tc.origin_ns);
}

TraceContext ReadTraceContext(std::uint16_t flags, BytesReader* in) {
  TraceContext tc;
  if ((flags & kFlagTraceContext) == 0) return tc;
  // Tolerate a flagged frame without the bytes (foreign bit reuse, buggy
  // peer): an absent trailer is "no context", never a decode failure.
  if (in->remaining() < 24) return tc;
  tc.trace_id = *in->ReadU64();
  tc.parent_span = *in->ReadU64();
  tc.origin_ns = *in->ReadU64();
  return tc;
}

std::string EncodePing(std::uint64_t now_ns) {
  BytesWriter w;
  w.PutU64(now_ns);
  return EncodeFrame(MessageType::kPing, w);
}

std::string EncodePong(std::uint64_t echo_t0_ns, std::uint64_t now_ns) {
  BytesWriter w;
  w.PutU64(echo_t0_ns);
  w.PutU64(now_ns);
  return EncodeFrame(MessageType::kPong, w);
}

std::uint64_t ReadPingT0(BytesReader* in) {
  if (in->remaining() < 8) return 0;  // pre-PR9 empty ping
  return *in->ReadU64();
}

bool ReadPongTimes(BytesReader* in, std::uint64_t* echo_t0_ns,
                   std::uint64_t* responder_ns) {
  *echo_t0_ns = 0;
  *responder_ns = 0;
  if (in->remaining() < 16) return false;  // pre-PR9 empty pong
  *echo_t0_ns = *in->ReadU64();
  *responder_ns = *in->ReadU64();
  return *echo_t0_ns != 0;
}

std::string HelloMsg::Encode() const {
  BytesWriter w;
  w.PutU32(seq);
  w.PutString(app_name);
  return EncodeFrame(MessageType::kHello, w);
}

Result<HelloMsg> HelloMsg::Decode(BytesReader* in) {
  HelloMsg msg;
  auto seq = in->ReadU32();
  if (!seq.ok()) return seq.status();
  msg.seq = *seq;
  auto app = in->ReadString();
  if (!app.ok()) return app.status();
  msg.app_name = std::move(*app);
  return msg;
}

std::string StatusReplyMsg::Encode() const {
  BytesWriter w;
  w.PutU32(seq);
  w.PutU8(static_cast<std::uint8_t>(code));
  w.PutU32(retry_after_ms);
  w.PutString(message);
  return EncodeFrame(MessageType::kStatusReply, w);
}

Result<StatusReplyMsg> StatusReplyMsg::Decode(BytesReader* in) {
  StatusReplyMsg msg;
  auto seq = in->ReadU32();
  if (!seq.ok()) return seq.status();
  msg.seq = *seq;
  auto code = in->ReadU8();
  if (!code.ok()) return code.status();
  if (*code > static_cast<std::uint8_t>(WireCode::kError)) {
    return Status::Corruption("unknown wire status code");
  }
  msg.code = static_cast<WireCode>(*code);
  auto retry = in->ReadU32();
  if (!retry.ok()) return retry.status();
  msg.retry_after_ms = *retry;
  auto text = in->ReadString();
  if (!text.ok()) return text.status();
  msg.message = std::move(*text);
  return msg;
}

std::string DefinePrimitiveMsg::Encode() const {
  BytesWriter w;
  w.PutU32(seq);
  w.PutString(name);
  w.PutString(app_name);
  w.PutString(class_name);
  w.PutU8(static_cast<std::uint8_t>(modifier));
  w.PutString(method_signature);
  return EncodeFrame(MessageType::kDefinePrimitive, w);
}

Result<DefinePrimitiveMsg> DefinePrimitiveMsg::Decode(BytesReader* in) {
  DefinePrimitiveMsg msg;
  auto seq = in->ReadU32();
  if (!seq.ok()) return seq.status();
  msg.seq = *seq;
  auto name = in->ReadString();
  if (!name.ok()) return name.status();
  msg.name = std::move(*name);
  auto app = in->ReadString();
  if (!app.ok()) return app.status();
  msg.app_name = std::move(*app);
  auto cls = in->ReadString();
  if (!cls.ok()) return cls.status();
  msg.class_name = std::move(*cls);
  auto modifier = in->ReadU8();
  if (!modifier.ok()) return modifier.status();
  if (*modifier > static_cast<std::uint8_t>(detector::EventModifier::kEnd)) {
    return Status::Corruption("unknown event modifier");
  }
  msg.modifier = static_cast<detector::EventModifier>(*modifier);
  auto sig = in->ReadString();
  if (!sig.ok()) return sig.status();
  msg.method_signature = std::move(*sig);
  return msg;
}

std::string SubscribeMsg::Encode() const {
  BytesWriter w;
  w.PutU32(seq);
  w.PutString(event);
  w.PutU8(static_cast<std::uint8_t>(context));
  return EncodeFrame(MessageType::kSubscribe, w);
}

Result<SubscribeMsg> SubscribeMsg::Decode(BytesReader* in) {
  SubscribeMsg msg;
  auto seq = in->ReadU32();
  if (!seq.ok()) return seq.status();
  msg.seq = *seq;
  auto event = in->ReadString();
  if (!event.ok()) return event.status();
  msg.event = std::move(*event);
  auto context = in->ReadU8();
  if (!context.ok()) return context.status();
  if (*context >= detector::kNumContexts) {
    return Status::Corruption("unknown parameter context");
  }
  msg.context = static_cast<detector::ParamContext>(*context);
  return msg;
}

std::string ByeMsg::Encode() const {
  BytesWriter w;
  w.PutString(reason);
  return EncodeFrame(MessageType::kBye, w);
}

Result<ByeMsg> ByeMsg::Decode(BytesReader* in) {
  ByeMsg msg;
  auto reason = in->ReadString();
  if (!reason.ok()) return reason.status();
  msg.reason = std::move(*reason);
  return msg;
}

void EncodeOccurrence(const detector::PrimitiveOccurrence& occ,
                      BytesWriter* out) {
  out->PutString(occ.event_name);
  out->PutString(occ.class_name);
  out->PutU64(occ.oid);
  out->PutU8(static_cast<std::uint8_t>(occ.modifier));
  out->PutString(occ.method_signature);
  out->PutU64(occ.at);
  out->PutU64(occ.at_ms);
  out->PutU64(occ.txn);
  EncodeParams(occ.params, out);
}

Result<detector::PrimitiveOccurrence> DecodeOccurrence(BytesReader* in) {
  detector::PrimitiveOccurrence occ;
  auto event = in->ReadString();
  if (!event.ok()) return event.status();
  occ.event_name = std::move(*event);
  auto cls = in->ReadString();
  if (!cls.ok()) return cls.status();
  occ.class_name = std::move(*cls);
  auto oid = in->ReadU64();
  if (!oid.ok()) return oid.status();
  occ.oid = *oid;
  auto modifier = in->ReadU8();
  if (!modifier.ok()) return modifier.status();
  if (*modifier > static_cast<std::uint8_t>(detector::EventModifier::kEnd)) {
    return Status::Corruption("unknown event modifier");
  }
  occ.modifier = static_cast<detector::EventModifier>(*modifier);
  auto sig = in->ReadString();
  if (!sig.ok()) return sig.status();
  occ.method_signature = std::move(*sig);
  auto at = in->ReadU64();
  if (!at.ok()) return at.status();
  occ.at = *at;
  auto at_ms = in->ReadU64();
  if (!at_ms.ok()) return at_ms.status();
  occ.at_ms = *at_ms;
  auto txn = in->ReadU64();
  if (!txn.ok()) return txn.status();
  occ.txn = *txn;
  auto params = DecodeParams(in);
  if (!params.ok()) return params.status();
  occ.params = std::move(*params);
  return occ;
}

std::string EventPushMsg::Encode() const {
  BytesWriter w;
  w.PutString(event);
  w.PutString(occurrence.event_name);
  w.PutU64(occurrence.t_start);
  w.PutU64(occurrence.t_end);
  w.PutU64(occurrence.at_ms);
  w.PutU64(occurrence.txn);
  w.PutU32(static_cast<std::uint32_t>(occurrence.constituents.size()));
  for (const auto& constituent : occurrence.constituents) {
    EncodeOccurrence(*constituent, &w);
  }
  if (trace.traced() || trace.has_origin()) {
    AppendTraceContext(trace, &w);
    return EncodeFrame(MessageType::kEventPush, w, kFlagTraceContext);
  }
  return EncodeFrame(MessageType::kEventPush, w);
}

Result<EventPushMsg> EventPushMsg::Decode(BytesReader* in,
                                          std::uint16_t flags) {
  EventPushMsg msg;
  auto event = in->ReadString();
  if (!event.ok()) return event.status();
  msg.event = std::move(*event);
  auto name = in->ReadString();
  if (!name.ok()) return name.status();
  msg.occurrence.event_name = std::move(*name);
  auto t_start = in->ReadU64();
  if (!t_start.ok()) return t_start.status();
  msg.occurrence.t_start = *t_start;
  auto t_end = in->ReadU64();
  if (!t_end.ok()) return t_end.status();
  msg.occurrence.t_end = *t_end;
  auto at_ms = in->ReadU64();
  if (!at_ms.ok()) return at_ms.status();
  msg.occurrence.at_ms = *at_ms;
  auto txn = in->ReadU64();
  if (!txn.ok()) return txn.status();
  msg.occurrence.txn = *txn;
  auto count = in->ReadU32();
  if (!count.ok()) return count.status();
  // Constituent count is bounded by the already-validated frame size; each
  // constituent consumes at least a dozen body bytes, so a hostile count
  // fails decoding below rather than ballooning the vector reserve.
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto occ = DecodeOccurrence(in);
    if (!occ.ok()) return occ.status();
    msg.occurrence.constituents.push_back(
        std::make_shared<detector::PrimitiveOccurrence>(std::move(*occ)));
  }
  msg.trace = ReadTraceContext(flags, in);
  return msg;
}

void FrameAssembler::Feed(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

Result<bool> FrameAssembler::Next(Frame* out) {
  if (poisoned_) {
    return Status::Corruption("frame stream already failed validation");
  }
  // Reclaim consumed prefix lazily, once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
  if (buf_.size() - consumed_ < kFrameHeaderBytes) return false;
  auto header = FrameHeader::Parse(buf_.data() + consumed_, max_frame_bytes_);
  if (!header.ok()) {
    poisoned_ = true;
    return header.status();
  }
  if (buf_.size() - consumed_ < kFrameHeaderBytes + header->body_len) {
    return false;  // body still in flight
  }
  const std::uint8_t* body = buf_.data() + consumed_ + kFrameHeaderBytes;
  if (Crc32(body, header->body_len) != header->body_crc) {
    poisoned_ = true;
    return Status::Corruption("frame body CRC mismatch (torn or corrupted)");
  }
  out->type = header->type;
  out->flags = header->flags;
  out->body.assign(body, body + header->body_len);
  consumed_ += kFrameHeaderBytes + header->body_len;
  return true;
}

}  // namespace sentinel::net
