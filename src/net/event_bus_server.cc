#include "net/event_bus_server.h"

#include <poll.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "common/logging.h"
#include "detector/event_node.h"
#include "obs/json.h"
#include "obs/span.h"

namespace sentinel::net {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock ns: the e2e latency anchor (occurrence origin stamps are
/// wall time so either end of the wire can subtract without knowing the
/// peer's steady-clock offset).
std::uint64_t WallNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t ToNs(std::chrono::milliseconds ms) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(ms).count());
}

}  // namespace

struct EventBusServer::Session {
  explicit Session(std::size_t max_frame_bytes)
      : assembler(max_frame_bytes) {}

  std::uint64_t id = 0;
  int fd = -1;

  // I/O-thread-owned state.
  std::string app_name;
  bool app_registered = false;  // this session owns the GED registration
  FrameAssembler assembler;
  std::uint64_t last_recv_ns = 0;
  std::uint64_t last_ping_ns = 0;
  std::uint64_t last_shed_notice_ns = 0;
  struct Sub {
    std::string event;
    detector::ParamContext context;
    std::unique_ptr<PushSink> sink;
  };
  std::vector<Sub> subs;

  // Heartbeat timing (DESIGN.md §14). The histogram and the published
  // atomics are read by stats scrapers from other threads; the EWMA state
  // (offset_ewma_ns / offset_primed) is I/O-thread-only.
  obs::LatencyHistogram rtt_us;
  std::atomic<std::uint64_t> rtt_samples{0};
  std::atomic<std::int64_t> clock_offset_ns{0};
  std::int64_t offset_ewma_ns = 0;
  bool offset_primed = false;

  // Guarded by EventBusServer::sessions_mu_.
  std::deque<OutFrame> out;
  std::size_t out_bytes = 0;
  std::size_t out_offset = 0;  // flushed prefix of out.front()
  bool doomed = false;
  std::string doom_reason;
};

/// Subscription sink living on the GED bus thread: encodes each detection
/// and appends it to the owning session's outbound queue. Holds the session
/// weakly — the session owns the sink, not vice versa.
class EventBusServer::PushSink : public detector::EventSink {
 public:
  PushSink(EventBusServer* server, std::weak_ptr<Session> session,
           std::string event, detector::ParamContext context)
      : server_(server),
        session_(std::move(session)),
        event_(std::move(event)),
        context_(context) {}

  void OnEvent(const detector::Occurrence& occurrence,
               detector::ParamContext context) override {
    if (context != context_) return;
    std::shared_ptr<Session> session = session_.lock();
    if (session == nullptr) return;
    EventPushMsg msg;
    msg.event = event_;
    msg.occurrence = occurrence;
    // Trace/origin context of the detection: the trace of the newest traced
    // constituent, and the newest origin stamp (a composite's e2e latency is
    // measured from its completing — most recent — constituent).
    for (const auto& constituent : occurrence.constituents) {
      if (constituent->trace_id != 0) msg.trace.trace_id = constituent->trace_id;
      if (constituent->origin_ns > msg.trace.origin_ns) {
        msg.trace.origin_ns = constituent->origin_ns;
      }
    }
    if (msg.trace.has_origin()) {
      const std::uint64_t now = WallNs();
      if (now > msg.trace.origin_ns) {
        server_->e2e_detect_ns_.Record(now - msg.trace.origin_ns);
      }
    }
    // Push-encode span: runs on the GED bus thread inside the ged_forward /
    // composite_detect scopes, so it parents locally; its id crosses the
    // wire as the push's remote parent.
    obs::SpanScope encode_span;
    if (obs::SpanTracer* st =
            server_->tracer_.load(std::memory_order_acquire);
        st != nullptr && st->enabled_for(obs::SpanKind::kNetFrameEncode)) {
      encode_span.Start(st, obs::SpanKind::kNetFrameEncode, occurrence.txn,
                        "push " + event_);
      if (msg.trace.trace_id != 0) {
        encode_span.AnnotateRemote(msg.trace.trace_id, 0);
      }
      msg.trace.parent_span = encode_span.id();
    }
    std::string frame = msg.Encode();
    encode_span.End();
    server_->EnqueueFrame(session, std::move(frame), /*is_push=*/true,
                          msg.trace.trace_id, msg.trace.parent_span);
  }

 private:
  EventBusServer* const server_;
  const std::weak_ptr<Session> session_;
  const std::string event_;
  const detector::ParamContext context_;
};

EventBusServer::EventBusServer(ged::GlobalEventDetector* ged) : ged_(ged) {}

EventBusServer::~EventBusServer() { Stop(); }

Status EventBusServer::Start(const Options& options) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("event-bus server already running");
  }
  options_ = options;
  IgnoreSigpipe();
  SENTINEL_ASSIGN_OR_RETURN(int fd, ListenTcp(options_.port));
  auto port = BoundPort(fd);
  if (!port.ok()) {
    CloseQuietly(fd);
    return port.status();
  }
  Status wake_st = wake_.Open();
  if (!wake_st.ok()) {
    CloseQuietly(fd);
    return wake_st;
  }
  SetNonBlocking(fd);
  listen_fd_ = fd;
  port_.store(*port, std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    dispatch_stop_ = false;
  }
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

void EventBusServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  wake_.Signal();
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    dispatch_stop_ = true;
  }
  admission_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  CloseQuietly(listen_fd_);
  listen_fd_ = -1;
  wake_.Close();
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    admission_.clear();  // undelivered notifies drop: at-most-once
  }
  overloaded_.store(false, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

std::size_t EventBusServer::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

// ---------------------------------------------------------------------------
// I/O thread

void EventBusServer::IoLoop() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Session>> polled;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    polled.clear();
    pfds.push_back(pollfd{wake_.read_fd(), POLLIN, 0});
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [id, session] : sessions_) {
        short events = POLLIN;
        if (!session->out.empty()) events |= POLLOUT;
        pfds.push_back(pollfd{session->fd, events, 0});
        polled.push_back(session);
      }
    }
    // 100ms cap so heartbeat/idle timers fire even on a silent wire.
    int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);
    if (rc < 0 && errno != EINTR) {
      SENTINEL_LOG(kError) << "event-bus poll failed: "
                           << std::strerror(errno);
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if ((pfds[0].revents & POLLIN) != 0) wake_.Drain();
    if ((pfds[1].revents & POLLIN) != 0) AcceptPending();
    for (std::size_t i = 0; i < polled.size(); ++i) {
      const short revents = pfds[i + 2].revents;
      const std::shared_ptr<Session>& session = polled[i];
      if ((revents & POLLIN) != 0) ReadSession(session);
      if ((revents & POLLOUT) != 0 && !IsDoomed(session)) {
        FlushSession(session);
      }
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        Doom(session, "socket error");
      }
    }
    CheckTimers(NowNs());
    ReapDoomed();
  }
  // Shutdown: say goodbye to everyone, tear down GED state, close sockets.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, session] : sessions_) {
      if (!session->doomed) {
        session->doomed = true;
        session->doom_reason = "server shutting down";
      }
    }
  }
  ReapDoomed();
  // The listen socket and wake pipe stay open until Stop() has joined this
  // thread: Stop() signals the pipe concurrently, so closing here would race
  // the fd with that write.
}

void EventBusServer::AcceptPending() {
  for (;;) {
    int fd = AcceptRetry(listen_fd_);
    if (fd < 0) return;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    std::size_t count;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      count = sessions_.size();
    }
    if (count >= options_.max_sessions) {
      // Connection admission control: refuse politely with a typed verdict
      // instead of letting the accept backlog absorb the overload.
      rejected_sessions_.fetch_add(1, std::memory_order_relaxed);
      StatusReplyMsg reply;
      reply.seq = 0;
      reply.code = WireCode::kRetryLater;
      reply.retry_after_ms = options_.retry_after_ms;
      reply.message = "session limit reached";
      const std::string frame = reply.Encode();
      (void)SendSome(fd, frame.data(), frame.size(), "net.server.write");
      // The client's HELLO may already sit unread in our receive buffer; a
      // plain close() would RST and discard the verdict before the client
      // reads it. Half-close and drain briefly instead.
      ShutdownDrainClose(fd);
      continue;
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    auto session = std::make_shared<Session>(options_.max_frame_bytes);
    session->fd = fd;
    session->last_recv_ns = NowNs();
    // Stamp the ping clock too: the first heartbeat PING comes one full
    // interval after accept, never racing ahead of the HELLO/STATUS
    // handshake (raw peers read the ack as their first frame).
    session->last_ping_ns = session->last_recv_ns;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      session->id = next_session_id_++;
      sessions_[session->id] = session;
    }
  }
}

void EventBusServer::ReadSession(const std::shared_ptr<Session>& session) {
  char buf[16 * 1024];
  for (;;) {
    IoResult r = RecvSome(session->fd, buf, sizeof(buf), "net.server.read");
    if (r.kind == IoResult::Kind::kWouldBlock) return;
    if (r.kind == IoResult::Kind::kClosed) {
      Doom(session, "peer closed connection");
      return;
    }
    if (r.kind == IoResult::Kind::kError) {
      Doom(session, "read failed: " + r.error);
      return;
    }
    bytes_in_.fetch_add(r.bytes, std::memory_order_relaxed);
    session->last_recv_ns = NowNs();
    session->assembler.Feed(buf, r.bytes);
    for (;;) {
      FrameAssembler::Frame frame;
      auto more = session->assembler.Next(&frame);
      if (!more.ok()) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        Doom(session, "protocol error: " + more.status().ToString());
        return;
      }
      if (!*more) break;
      HandleFrame(session, frame);
      if (IsDoomed(session)) return;
    }
    if (r.bytes < sizeof(buf)) return;  // short read: socket is drained
  }
}

void EventBusServer::FlushSession(const std::shared_ptr<Session>& session) {
  std::string doom_why;
  obs::SpanTracer* st = tracer_.load(std::memory_order_acquire);
  const bool trace_waits =
      st != nullptr && st->enabled_for(obs::SpanKind::kNetOutboundWait);
  const bool trace_write =
      st != nullptr && st->enabled_for(obs::SpanKind::kNetWrite);
  // Queue-wait metadata of frames that finish flushing, recorded as spans
  // only after sessions_mu_ is released.
  std::vector<OutFrame> done;
  const std::uint64_t write_start_ns = trace_write ? NowNs() : 0;
  std::size_t wrote = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    while (!session->out.empty()) {
      const OutFrame& front = session->out.front();
      IoResult r = SendSome(session->fd,
                            front.bytes.data() + session->out_offset,
                            front.bytes.size() - session->out_offset,
                            "net.server.write");
      if (r.kind == IoResult::Kind::kWouldBlock) break;
      if (r.kind != IoResult::Kind::kOk) {
        doom_why = r.kind == IoResult::Kind::kClosed
                       ? "peer closed connection"
                       : "write failed: " + r.error;
        break;
      }
      bytes_out_.fetch_add(r.bytes, std::memory_order_relaxed);
      wrote += r.bytes;
      session->out_offset += r.bytes;
      if (session->out_offset == front.bytes.size()) {
        session->out_bytes -= front.bytes.size();
        if (trace_waits) {
          OutFrame meta;
          meta.enqueued_ns = front.enqueued_ns;
          meta.trace = front.trace;
          meta.parent_span = front.parent_span;
          meta.is_push = front.is_push;
          done.push_back(std::move(meta));
        }
        session->out.pop_front();
        session->out_offset = 0;
      }
    }
  }
  if (st != nullptr && (trace_waits || trace_write)) {
    const std::uint64_t now = NowNs();
    for (const OutFrame& f : done) {
      st->RecordTimedSpan(obs::SpanKind::kNetOutboundWait, f.enqueued_ns, now,
                          storage::kInvalidTxnId,
                          f.is_push ? "push" : "control",
                          /*parent=*/f.parent_span, /*trace=*/f.trace);
    }
    if (trace_write && wrote > 0) {
      st->RecordTimedSpan(obs::SpanKind::kNetWrite, write_start_ns, now,
                          storage::kInvalidTxnId,
                          session->app_name.empty() ? "flush"
                                                    : session->app_name,
                          /*parent=*/0);
    }
  }
  if (!doom_why.empty()) Doom(session, doom_why);
}

// ---------------------------------------------------------------------------
// Frame handling (I/O thread)

void EventBusServer::HandleFrame(const std::shared_ptr<Session>& session,
                                 FrameAssembler::Frame& frame) {
  BytesReader reader(frame.body);
  switch (frame.type) {
    case MessageType::kHello: {
      auto msg = HelloMsg::Decode(&reader);
      if (!msg.ok()) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        Doom(session, "bad HELLO: " + msg.status().ToString());
        return;
      }
      HandleHello(session, *msg);
      return;
    }
    case MessageType::kDefinePrimitive: {
      auto msg = DefinePrimitiveMsg::Decode(&reader);
      if (!msg.ok()) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        Doom(session, "bad DEFINE_PRIMITIVE: " + msg.status().ToString());
        return;
      }
      if (!session->app_registered) {
        Reply(session, msg->seq, WireCode::kError, 0,
              "HELLO required before DEFINE_PRIMITIVE");
        return;
      }
      // Idempotent re-declaration: a reconnecting client replays its
      // definition journal, and the graph keeps nodes across sessions — an
      // existing node is accepted only when its stored spec matches the
      // request exactly. The stored class name embeds the owning app
      // ("app::class"), so a mismatch also catches one client trying to
      // alias another application's primitive (DESIGN.md §12).
      if (auto existing = ged_->graph()->Find(msg->name); existing.ok()) {
        const auto* prim =
            dynamic_cast<const detector::PrimitiveEventNode*>(*existing);
        const bool same_spec =
            prim != nullptr &&
            prim->class_name() == ged::GlobalEventDetector::NamespacedClass(
                                      msg->app_name, msg->class_name) &&
            prim->modifier() == msg->modifier &&
            prim->method_signature() == msg->method_signature;
        if (same_spec) {
          Reply(session, msg->seq, WireCode::kOk, 0, "");
        } else {
          Reply(session, msg->seq, WireCode::kError, 0,
                "event already defined with a different specification: " +
                    msg->name);
        }
        return;
      }
      auto node = ged_->DefineGlobalPrimitive(msg->name, msg->app_name,
                                              msg->class_name, msg->modifier,
                                              msg->method_signature);
      if (!node.ok()) {
        Reply(session, msg->seq, WireCode::kError, 0,
              node.status().ToString());
      } else {
        Reply(session, msg->seq, WireCode::kOk, 0, "");
      }
      return;
    }
    case MessageType::kSubscribe: {
      auto msg = SubscribeMsg::Decode(&reader);
      if (!msg.ok()) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        Doom(session, "bad SUBSCRIBE: " + msg.status().ToString());
        return;
      }
      if (!session->app_registered) {
        Reply(session, msg->seq, WireCode::kError, 0,
              "HELLO required before SUBSCRIBE");
        return;
      }
      for (const auto& sub : session->subs) {
        if (sub.event == msg->event && sub.context == msg->context) {
          Reply(session, msg->seq, WireCode::kOk, 0, "");  // idempotent
          return;
        }
      }
      auto sink = std::make_unique<PushSink>(
          this, std::weak_ptr<Session>(session), msg->event, msg->context);
      Status st = ged_->Subscribe(msg->event, sink.get(), msg->context);
      if (!st.ok()) {
        Reply(session, msg->seq, WireCode::kError, 0, st.ToString());
        return;
      }
      session->subs.push_back(
          Session::Sub{msg->event, msg->context, std::move(sink)});
      Reply(session, msg->seq, WireCode::kOk, 0, "");
      return;
    }
    case MessageType::kNotify: {
      notifies_received_.fetch_add(1, std::memory_order_relaxed);
      if (!session->app_registered) {
        Doom(session, "NOTIFY before HELLO");
        return;
      }
      HandleNotify(session, &reader, frame.flags);
      return;
    }
    case MessageType::kPing:
      // Echo the peer's send time and add our steady clock so it can derive
      // RTT + clock offset (empty pre-PR9 pings echo a zero, which the peer
      // skips as a sample).
      EnqueueFrame(session, EncodePong(ReadPingT0(&reader), NowNs()),
                   /*is_push=*/false);
      return;
    case MessageType::kPong:
      HandlePong(session, &reader);
      return;  // last_recv_ns already refreshed by ReadSession
    case MessageType::kBye:
      Doom(session, "client closed the session");
      return;
    case MessageType::kStatusReply:
    case MessageType::kEventPush:
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      Doom(session, std::string("unexpected client frame: ") +
                        MessageTypeToString(frame.type));
      return;
  }
  frame_errors_.fetch_add(1, std::memory_order_relaxed);
  Doom(session, "unknown frame type");
}

void EventBusServer::HandleHello(const std::shared_ptr<Session>& session,
                                 const HelloMsg& msg) {
  if (msg.app_name.empty()) {
    Reply(session, msg.seq, WireCode::kError, 0, "empty application name");
    return;
  }
  if (session->app_registered) {
    if (session->app_name == msg.app_name) {
      Reply(session, msg.seq, WireCode::kOk, 0, "");  // idempotent
    } else {
      Reply(session, msg.seq, WireCode::kError, 0,
            "session already registered as " + session->app_name);
    }
    return;
  }
  // A live session already holding the name is superseded: the common case
  // is a client reconnecting before the server noticed its old socket die.
  std::shared_ptr<Session> old;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, s] : sessions_) {
      if (s != session && !s->doomed && s->app_name == msg.app_name) {
        old = s;
        break;
      }
    }
  }
  if (old != nullptr) {
    superseded_sessions_.fetch_add(1, std::memory_order_relaxed);
    DetachFromGed(*old);  // frees the name before re-registering below
    Doom(old, "superseded by a reconnect of " + msg.app_name);
  }
  Status st = ged_->RegisterRemoteApplication(msg.app_name);
  if (st.IsRetryLater()) {
    Reply(session, msg.seq, WireCode::kRetryLater, options_.retry_after_ms,
          st.ToString());
    return;
  }
  if (!st.ok()) {
    // e.g. an in-process application owns the name.
    Reply(session, msg.seq, WireCode::kError, 0, st.ToString());
    return;
  }
  session->app_name = msg.app_name;
  session->app_registered = true;
  Reply(session, msg.seq, WireCode::kOk, 0, "");
}

void EventBusServer::HandleNotify(const std::shared_ptr<Session>& session,
                                  BytesReader* body, std::uint16_t flags) {
  const std::uint64_t decode_start_ns = NowNs();
  auto occ = DecodeOccurrence(body);
  if (!occ.ok()) {
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    Doom(session, "bad NOTIFY: " + occ.status().ToString());
    return;
  }
  // Trace trailer (absent → zeros). origin_ns rides into the occurrence
  // unconditionally — the e2e layer is always on; the span linkage only
  // materializes when a tracer is attached and recording.
  const TraceContext tc = ReadTraceContext(flags, body);
  occ->origin_ns = tc.origin_ns;
  std::uint64_t decode_span = 0;
  if (obs::SpanTracer* st = tracer_.load(std::memory_order_acquire);
      st != nullptr && st->enabled_for(obs::SpanKind::kNetFrameDecode)) {
    // The remote parent is the CLIENT's encode span id — resolvable only by
    // the cross-file merge, hence remote_parent, not parent.
    decode_span = st->RecordTimedSpan(
        obs::SpanKind::kNetFrameDecode, decode_start_ns, NowNs(), occ->txn,
        "notify " + occ->event_name, /*parent=*/0, tc.trace_id,
        tc.parent_span);
    occ->trace_id = tc.trace_id;
    occ->trace_parent = decode_span;
  }
  bool shed = false;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    if (admission_.size() >= options_.admission_capacity) {
      shed = true;
      depth = admission_.size();
    } else {
      AdmissionItem item;
      item.app = session->app_name;
      item.occ = std::move(*occ);
      item.enqueued_ns = NowNs();
      item.decode_span = decode_span;
      admission_.push_back(std::move(item));
      depth = admission_.size();
    }
  }
  UpdateOverload(depth);
  if (shed) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    // Unsolicited typed shed notice, rate-limited per session so a
    // firehosing client doesn't get a notice per dropped event.
    const std::uint64_t now = NowNs();
    if (now - session->last_shed_notice_ns > 10'000'000ull) {
      session->last_shed_notice_ns = now;
      Reply(session, 0, WireCode::kRetryLater, options_.retry_after_ms,
            "admission queue full; event dropped");
    }
    return;
  }
  if (depth > admission_peak_.load(std::memory_order_relaxed)) {
    admission_peak_.store(depth, std::memory_order_relaxed);
  }
  admission_cv_.notify_one();
}

void EventBusServer::HandlePong(const std::shared_ptr<Session>& session,
                                BytesReader* body) {
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  if (!ReadPongTimes(body, &t0, &t1)) return;  // old peer: empty pong
  const std::uint64_t t2 = NowNs();
  if (t2 <= t0) return;  // clock went backwards / bogus echo
  const std::uint64_t rtt_ns = t2 - t0;
  session->rtt_us.Record(rtt_ns / 1000);
  rtt_us_.Record(rtt_ns / 1000);
  session->rtt_samples.fetch_add(1, std::memory_order_relaxed);
  rtt_samples_.fetch_add(1, std::memory_order_relaxed);
  // NTP-style offset sample: responder clock minus the midpoint of our
  // send/receive pair, EWMA-smoothed (alpha 1/8) against jitter. Both
  // clocks are steady — the offset aligns span timelines, not wall time.
  const std::int64_t sample =
      static_cast<std::int64_t>(t1) -
      static_cast<std::int64_t>(t0 + (rtt_ns / 2));
  if (!session->offset_primed) {
    session->offset_primed = true;
    session->offset_ewma_ns = sample;
  } else {
    session->offset_ewma_ns += (sample - session->offset_ewma_ns) / 8;
  }
  session->clock_offset_ns.store(session->offset_ewma_ns,
                                 std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Dispatcher thread

void EventBusServer::DispatchLoop() {
  for (;;) {
    AdmissionItem item;
    std::size_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(admission_mu_);
      admission_cv_.wait(
          lock, [this] { return dispatch_stop_ || !admission_.empty(); });
      // Undelivered occurrences drop on shutdown: at-most-once delivery.
      if (dispatch_stop_) return;
      item = std::move(admission_.front());
      admission_.pop_front();
      depth = admission_.size();
    }
    UpdateOverload(depth);
    // Admission-queue wait: starts on the I/O thread, ends here, so it is
    // recorded as an already-timed span parented into the decode span.
    if (obs::SpanTracer* st = tracer_.load(std::memory_order_acquire);
        st != nullptr &&
        st->enabled_for(obs::SpanKind::kNetAdmissionWait) &&
        item.decode_span != 0) {
      const std::uint64_t wait_span = st->RecordTimedSpan(
          obs::SpanKind::kNetAdmissionWait, item.enqueued_ns, NowNs(),
          item.occ.txn, "admission", item.decode_span, item.occ.trace_id);
      item.occ.trace_parent = wait_span;
    }
    if (FailPointRegistry::AnyActive()) {
      // net.server.dispatch: delay stalls the dispatcher (forces admission
      // backlog for overload tests); error drops the occurrence.
      FailPointAction action =
          FailPointRegistry::Instance().Evaluate("net.server.dispatch");
      if (action.fired()) continue;
    }
    // End-to-end backpressure: the GED bus is unbounded, so pause here
    // while its backlog is deep instead of letting it absorb what the
    // admission queue exists to bound.
    while (!ged_->WaitBusBelow(options_.ged_bus_soft_cap,
                               std::chrono::milliseconds(50))) {
      std::lock_guard<std::mutex> lock(admission_mu_);
      if (dispatch_stop_) return;
      if (ged_->shut_down()) break;
    }
    Status st = ged_->InjectRemote(item.app, item.occ);
    if (st.ok()) {
      dispatched_.fetch_add(1, std::memory_order_relaxed);
      if (item.occ.origin_ns != 0) {
        const std::uint64_t now = WallNs();
        if (now > item.occ.origin_ns) {
          e2e_delivery_ns_.Record(now - item.occ.origin_ns);
        }
      }
    }
    // NotFound (session torn down mid-flight) and RetryLater (GED shut
    // down) both drop the occurrence — at-most-once delivery.
  }
}

// ---------------------------------------------------------------------------
// Session plumbing

void EventBusServer::EnqueueFrame(const std::shared_ptr<Session>& session,
                                  std::string frame, bool is_push,
                                  std::uint64_t trace,
                                  std::uint64_t parent_span) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (session->doomed || session->fd < 0) return;
    if (session->out_bytes + frame.size() > options_.outbound_max_bytes) {
      session->doomed = true;
      session->doom_reason =
          "slow consumer: outbound queue exceeded " +
          std::to_string(options_.outbound_max_bytes) + " bytes";
      slow_consumer_disconnects_.fetch_add(1, std::memory_order_relaxed);
    } else {
      session->out_bytes += frame.size();
      OutFrame out;
      out.bytes = std::move(frame);
      out.enqueued_ns = NowNs();
      out.trace = trace;
      out.parent_span = parent_span;
      out.is_push = is_push;
      session->out.push_back(std::move(out));
      if (is_push) pushes_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  wake_.Signal();  // the I/O thread re-polls with POLLOUT (or reaps)
}

void EventBusServer::Reply(const std::shared_ptr<Session>& session,
                           std::uint32_t seq, WireCode code,
                           std::uint32_t retry_after_ms,
                           const std::string& message) {
  StatusReplyMsg reply;
  reply.seq = seq;
  reply.code = code;
  reply.retry_after_ms = retry_after_ms;
  reply.message = message;
  EnqueueFrame(session, reply.Encode(), /*is_push=*/false);
}

void EventBusServer::Doom(const std::shared_ptr<Session>& session,
                          const std::string& why) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (session->doomed) return;
  session->doomed = true;
  session->doom_reason = why;
}

bool EventBusServer::IsDoomed(
    const std::shared_ptr<Session>& session) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return session->doomed;
}

void EventBusServer::CheckTimers(std::uint64_t now_ns) {
  const std::uint64_t heartbeat_ns = ToNs(options_.heartbeat_interval);
  const std::uint64_t idle_ns = ToNs(options_.idle_timeout);
  std::vector<std::shared_ptr<Session>> to_ping;
  std::vector<std::shared_ptr<Session>> to_idle_out;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, session] : sessions_) {
      if (session->doomed) continue;
      const std::uint64_t quiet = now_ns - session->last_recv_ns;
      if (idle_ns > 0 && quiet > idle_ns) {
        to_idle_out.push_back(session);
      } else if (heartbeat_ns > 0 &&
                 now_ns - session->last_ping_ns > heartbeat_ns) {
        // Ping on every heartbeat interval, busy wire or not: each pong is
        // an RTT + clock-offset sample, so the estimate keeps converging
        // while traffic flows (liveness alone would only need quiet pings).
        to_ping.push_back(session);
      }
    }
  }
  for (auto& session : to_idle_out) {
    idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
    Doom(session, "idle timeout: no frames or pongs");
  }
  for (auto& session : to_ping) {
    session->last_ping_ns = now_ns;
    pings_sent_.fetch_add(1, std::memory_order_relaxed);
    EnqueueFrame(session, EncodePing(NowNs()), /*is_push=*/false);
  }
}

void EventBusServer::ReapDoomed() {
  std::vector<std::shared_ptr<Session>> doomed;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->doomed) {
        doomed.push_back(it->second);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& session : doomed) {
    // Unsubscribe/unregister first so no push lands in the queue of a
    // session whose socket is closing, and so a half-registered app node
    // can never outlive its connection.
    DetachFromGed(*session);
    // Best-effort goodbye so the client can tell a policy disconnect from
    // a crash; the socket may be dead, which is fine.
    ByeMsg bye;
    bye.reason = session->doom_reason;
    const std::string frame = bye.Encode();
    (void)SendSome(session->fd, frame.data(), frame.size(), nullptr);
    CloseQuietly(session->fd);
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      session->fd = -1;
    }
    SENTINEL_LOG(kInfo) << "event-bus session closed (app="
                        << (session->app_name.empty() ? "<anonymous>"
                                                      : session->app_name)
                        << "): " << session->doom_reason;
  }
}

void EventBusServer::DetachFromGed(Session& session) {
  for (auto& sub : session.subs) {
    (void)ged_->graph()->Unsubscribe(sub.event, sub.sink.get(), sub.context);
  }
  session.subs.clear();
  if (session.app_registered) {
    session.app_registered = false;
    (void)ged_->UnregisterApplication(session.app_name);
  }
}

void EventBusServer::UpdateOverload(std::size_t depth) {
  const std::size_t high =
      options_.admission_capacity - options_.admission_capacity / 4;
  const std::size_t low = options_.admission_capacity / 4;
  if (depth >= high) {
    overloaded_.store(true, std::memory_order_release);
  } else if (depth <= low) {
    overloaded_.store(false, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Introspection

EventBusServerStats EventBusServer::stats() const {
  EventBusServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_sessions = rejected_sessions_.load(std::memory_order_relaxed);
  s.superseded_sessions =
      superseded_sessions_.load(std::memory_order_relaxed);
  s.notifies_received = notifies_received_.load(std::memory_order_relaxed);
  s.dispatched = dispatched_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  s.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  s.slow_consumer_disconnects =
      slow_consumer_disconnects_.load(std::memory_order_relaxed);
  s.idle_disconnects = idle_disconnects_.load(std::memory_order_relaxed);
  s.pushes_sent = pushes_sent_.load(std::memory_order_relaxed);
  s.pings_sent = pings_sent_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.admission_peak = admission_peak_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_acquire);
  s.rtt_samples = rtt_samples_.load(std::memory_order_relaxed);
  s.rtt_us = rtt_us_.TakeSnapshot();
  s.e2e_delivery_ns = e2e_delivery_ns_.TakeSnapshot();
  s.e2e_detect_ns = e2e_detect_ns_.TakeSnapshot();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    s.open_sessions = sessions_.size();
    for (const auto& [id, session] : sessions_) {
      s.outbound_queued_bytes += session->out_bytes;
    }
  }
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    s.admission_depth = admission_.size();
  }
  return s;
}

std::vector<SessionClockStats> EventBusServer::SessionClocks() const {
  std::vector<SessionClockStats> out;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    if (session->doomed) continue;
    SessionClockStats c;
    c.session_id = id;
    c.app = session->app_name;
    c.rtt_samples = session->rtt_samples.load(std::memory_order_relaxed);
    c.clock_offset_us =
        session->clock_offset_ns.load(std::memory_order_relaxed) / 1000;
    c.rtt_us = session->rtt_us.TakeSnapshot();
    out.push_back(std::move(c));
  }
  return out;
}

std::string EventBusServer::StatsJson() const {
  const EventBusServerStats s = stats();
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("running", running());
  w.Field("port", port());
  w.Field("accepted", s.accepted);
  w.Field("rejected_sessions", s.rejected_sessions);
  w.Field("superseded_sessions", s.superseded_sessions);
  w.Field("open_sessions", s.open_sessions);
  w.Field("notifies_received", s.notifies_received);
  w.Field("dispatched", s.dispatched);
  w.Field("sheds", s.sheds);
  w.Field("frame_errors", s.frame_errors);
  w.Field("slow_consumer_disconnects", s.slow_consumer_disconnects);
  w.Field("idle_disconnects", s.idle_disconnects);
  w.Field("pushes_sent", s.pushes_sent);
  w.Field("pings_sent", s.pings_sent);
  w.Field("bytes_in", s.bytes_in);
  w.Field("bytes_out", s.bytes_out);
  w.Field("admission_depth", s.admission_depth);
  w.Field("admission_peak", s.admission_peak);
  w.Field("outbound_queued_bytes", s.outbound_queued_bytes);
  w.Field("overloaded", s.overloaded);
  w.Field("rtt_samples", s.rtt_samples);
  w.Field("rtt_p50_us", s.rtt_us.QuantileNs(0.5));
  w.Field("rtt_p99_us", s.rtt_us.QuantileNs(0.99));
  w.Field("e2e_delivery_p50_ns", s.e2e_delivery_ns.QuantileNs(0.5));
  w.Field("e2e_delivery_p99_ns", s.e2e_delivery_ns.QuantileNs(0.99));
  w.Field("e2e_detect_p50_ns", s.e2e_detect_ns.QuantileNs(0.5));
  w.Field("e2e_detect_p99_ns", s.e2e_detect_ns.QuantileNs(0.99));
  w.Key("session_clocks");
  w.BeginArray();
  for (const SessionClockStats& c : SessionClocks()) {
    w.BeginObject();
    w.Field("session", c.session_id);
    w.Field("app", c.app);
    w.Field("rtt_samples", c.rtt_samples);
    w.Field("rtt_p50_us", c.rtt_us.QuantileNs(0.5));
    w.Field("rtt_p99_us", c.rtt_us.QuantileNs(0.99));
    w.Field("clock_offset_us", c.clock_offset_us);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace sentinel::net
