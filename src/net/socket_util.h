#ifndef SENTINEL_NET_SOCKET_UTIL_H_
#define SENTINEL_NET_SOCKET_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace sentinel::net {

/// Shared plain-POSIX socket plumbing for every Sentinel server and client
/// (the obs monitor endpoint and the GED event bus both build on it). All
/// helpers retry EINTR, suppress SIGPIPE (MSG_NOSIGNAL / explicit ignore),
/// and are threaded through the failpoint framework so chaos tests can
/// inject partial reads/writes, torn frames, stalled peers, and refused
/// connects at any I/O site without a real flaky network.

/// Ignores SIGPIPE process-wide (idempotent). A peer that disappears
/// between poll() and send() must surface as EPIPE, never as a signal that
/// kills the daemon. Called by ListenTcp/ConnectTcp; safe to call directly.
void IgnoreSigpipe();

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 = ephemeral) with
/// SO_REUSEADDR, listening with `backlog`. Returns the fd.
Result<int> ListenTcp(int port, int backlog = 64);

/// The port a bound socket actually listens on (resolves ephemeral binds).
Result<int> BoundPort(int fd);

/// accept(2) with EINTR retried. Returns the connection fd, -1 when the
/// accept would block or failed transiently (EMFILE, ECONNABORTED, ...);
/// the caller's poll loop simply tries again. Hits failpoint `net.accept`
/// (error mode models accept failure under fd pressure).
int AcceptRetry(int listen_fd);

/// Blocking connect to host:port with EINTR retried. Hits failpoint
/// `net.connect` first, so chaos tests can model a refused/unreachable
/// server without binding real ports.
Result<int> ConnectTcp(const std::string& host, int port);

Status SetNonBlocking(int fd);
/// Disables Nagle; latency-sensitive frames should not wait for coalescing.
void SetNoDelay(int fd);
/// close(2) with EINTR ignored; tolerates fd < 0.
void CloseQuietly(int fd);

/// Half-closes the write side (SHUT_WR), then drains inbound bytes for up
/// to `max_wait_ms` (or until EOF) before closing. Use after writing a
/// final verdict to a socket whose receive buffer may still hold unread
/// client bytes: a plain close() there turns into an RST that can discard
/// the verdict in flight, so the peer sees a bare connection reset instead
/// of the typed reply. The wait is bounded so an accept/poll loop calling
/// this cannot be stalled by an unresponsive peer.
void ShutdownDrainClose(int fd, int max_wait_ms = 50);

/// Outcome of one non-blocking I/O attempt.
struct IoResult {
  enum class Kind : std::uint8_t {
    kOk = 0,      // `bytes` transferred (> 0)
    kWouldBlock,  // EAGAIN/EWOULDBLOCK — retry after poll
    kClosed,      // orderly peer shutdown (recv returned 0)
    kError,       // hard error (or injected fault); drop the connection
  };
  Kind kind = Kind::kOk;
  std::size_t bytes = 0;
  std::string error;

  bool ok() const { return kind == Kind::kOk; }
};

/// One recv(2) attempt, EINTR retried. `failpoint` (e.g. "net.server.read")
/// is evaluated first: error mode yields kError (models a reset peer),
/// delay mode stalls the reader.
IoResult RecvSome(int fd, void* buf, std::size_t n,
                  const char* failpoint = nullptr);

/// One send(2) attempt with MSG_NOSIGNAL, EINTR retried. Failpoint modes:
/// error → kError without writing; torn → a prefix (spec `bytes`, default
/// n/2) really reaches the wire and then kError — the peer observes a torn
/// frame followed by a close, the exact failure a mid-write crash produces.
IoResult SendSome(int fd, const void* buf, std::size_t n,
                  const char* failpoint = nullptr);

/// Self-pipe used to wake a poll loop from other threads (subscription
/// pushes, stop requests). Signal() is async-signal-safe-ish (one write);
/// Drain() empties the pipe on the poll thread.
class WakePipe {
 public:
  WakePipe() = default;
  ~WakePipe();

  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  Status Open();
  void Close();
  int read_fd() const { return fds_[0]; }
  void Signal();
  void Drain();

 private:
  int fds_[2] = {-1, -1};
};

}  // namespace sentinel::net

#endif  // SENTINEL_NET_SOCKET_UTIL_H_
