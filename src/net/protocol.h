#ifndef SENTINEL_NET_PROTOCOL_H_
#define SENTINEL_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "detector/event_types.h"

namespace sentinel::net {

/// GED event-bus wire protocol: length-prefixed, CRC-framed binary frames
/// over TCP (the socket transport the paper leaves as future work).
///
/// Frame layout (little-endian, 16-byte header):
///
///   +--------+---------+--------+---------+-----------+-----------+------+
///   | u32    | u8      | u8     | u16     | u32       | u32       | ...  |
///   | magic  | version | type   | flags   | body_len  | body_crc  | body |
///   +--------+---------+--------+---------+-----------+-----------+------+
///
/// magic = 0x53'4E'45'54 ("SNET"), version = 1. `flags` is a bitfield of
/// OPTIONAL per-frame capabilities: a receiver processes the bits it knows
/// and MUST ignore the rest (forward compatibility — unknown bits never
/// poison the stream; only magic/version/size/CRC violations do). Bit 0
/// (kFlagTraceContext) marks a trace-context trailer appended after the
/// regular kNotify/kEventPush body; old decoders read their fixed fields
/// and never look at trailing bytes, so flagged frames stay readable.
/// body_crc is CRC-32 (IEEE) of the body bytes, so a torn or bit-flipped
/// frame is detected before any field is parsed — the receiving side treats
/// any header/CRC violation as a protocol error and drops the connection
/// (frames carry no resync marker; TCP framing is all-or-nothing here).
///
/// Control messages (Hello / DefinePrimitive / Subscribe) carry a client-
/// assigned u32 `seq` and are answered by a StatusReply echoing it. Notify
/// is fire-and-forget (seq 0): the at-most-once delivery contract (see
/// DESIGN.md §12) makes per-event acks pointless. A StatusReply with seq 0
/// is an *unsolicited* server verdict — today only RETRY_LATER, the typed
/// load-shed notice.

constexpr std::uint32_t kFrameMagic = 0x53'4E'45'54;  // "SNET"
constexpr std::uint8_t kProtocolVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 16;
/// Header flags bit: the body carries a TraceContext trailer after the
/// message's regular fields (kNotify / kEventPush only).
constexpr std::uint16_t kFlagTraceContext = 0x0001;
/// Upper bound a receiver enforces on body_len before buffering: a corrupt
/// length prefix must not make the peer allocate gigabytes.
constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

enum class MessageType : std::uint8_t {
  kHello = 1,            // c→s: register application `app_name`
  kStatusReply = 2,      // s→c: verdict for `seq` (0 = unsolicited shed)
  kDefinePrimitive = 3,  // c→s: declare a global primitive event
  kSubscribe = 4,        // c→s: stream detections of `event` to this session
  kNotify = 5,           // c→s: one PrimitiveOccurrence (fire-and-forget)
  kEventPush = 6,        // s→c: one global detection for a subscription
  kPing = 7,             // either: liveness probe
  kPong = 8,             // either: probe answer
  kBye = 9,              // s→c: server is closing this session (reason)
};

const char* MessageTypeToString(MessageType type);

/// Wire status codes carried by StatusReply (a stable subset of StatusCode;
/// the full enum is process-internal and free to grow).
enum class WireCode : std::uint8_t {
  kOk = 0,
  kRetryLater = 1,  // admission control shed this request; back off
  kError = 2,       // request refused (message says why)
};

struct FrameHeader {
  MessageType type = MessageType::kPing;
  std::uint16_t flags = 0;
  std::uint32_t body_len = 0;
  std::uint32_t body_crc = 0;

  /// Parses and validates a 16-byte header (magic, version, size bound).
  /// Unknown flag bits are preserved, never rejected.
  static Result<FrameHeader> Parse(const std::uint8_t* data,
                                   std::size_t max_frame_bytes);
};

/// Encodes one complete frame (header + body) ready for the wire.
std::string EncodeFrame(MessageType type, const BytesWriter& body,
                        std::uint16_t flags = 0);
std::string EncodeFrame(MessageType type);  // empty body (ping/pong)

// -- Trace-context trailer (DESIGN.md §14) -----------------------------------

/// Compact distributed-trace trailer appended to kNotify/kEventPush bodies
/// when kFlagTraceContext is set: 3 little-endian u64s (24 bytes).
///
///   trace_id    groups every span of one cross-process causal chain
///               (0 when span tracing is off at the sender);
///   parent_span the sender-side span id the receiver's first span should
///               causally parent to (0 = none);
///   origin_ns   wall-clock (system_clock) nanoseconds at the ORIGINATING
///               client's Notify() call — the always-on end-to-end latency
///               anchor, carried unchanged through the GED into pushes.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t origin_ns = 0;

  bool has_origin() const { return origin_ns != 0; }
  bool traced() const { return trace_id != 0; }
};

void AppendTraceContext(const TraceContext& tc, BytesWriter* out);

/// Reads the trailer when `flags` advertises one and the 24 bytes are
/// actually present; otherwise returns an all-zero context. Never fails:
/// a short or absent trailer (old peer, foreign flag use) just yields zeros.
TraceContext ReadTraceContext(std::uint16_t flags, BytesReader* in);

// -- Timestamped heartbeats ---------------------------------------------------

/// Ping bodies carry the sender's steady-clock nanoseconds; Pong echoes that
/// t0 and adds the responder's own steady clock, so the pinger derives
/// RTT = t2 - t0 and the NTP-style offset t1 - (t0 + t2)/2 (responder clock
/// minus the midpoint of the local send/receive pair). Empty bodies — the
/// PR 6 wire form — remain legal: decoders return zeros and the sample is
/// simply skipped, so old and new peers interoperate.
std::string EncodePing(std::uint64_t now_ns);
std::string EncodePong(std::uint64_t echo_t0_ns, std::uint64_t now_ns);
/// Reads the optional u64 of a Ping body (0 when absent/short).
std::uint64_t ReadPingT0(BytesReader* in);
/// Reads the optional (t0 echo, responder now) of a Pong body; returns false
/// (zeros) when the body is empty or short.
bool ReadPongTimes(BytesReader* in, std::uint64_t* echo_t0_ns,
                   std::uint64_t* responder_ns);

// -- Message bodies ----------------------------------------------------------

struct HelloMsg {
  std::uint32_t seq = 0;
  std::string app_name;

  std::string Encode() const;
  static Result<HelloMsg> Decode(BytesReader* in);
};

struct StatusReplyMsg {
  std::uint32_t seq = 0;  // 0 = unsolicited (load shed)
  WireCode code = WireCode::kOk;
  std::uint32_t retry_after_ms = 0;  // advisory backoff for kRetryLater
  std::string message;

  std::string Encode() const;
  static Result<StatusReplyMsg> Decode(BytesReader* in);
};

struct DefinePrimitiveMsg {
  std::uint32_t seq = 0;
  std::string name;       // global event name
  std::string app_name;   // application whose primitive is mirrored
  std::string class_name;
  detector::EventModifier modifier = detector::EventModifier::kEnd;
  std::string method_signature;

  std::string Encode() const;
  static Result<DefinePrimitiveMsg> Decode(BytesReader* in);
};

struct SubscribeMsg {
  std::uint32_t seq = 0;
  std::string event;
  detector::ParamContext context = detector::ParamContext::kRecent;

  std::string Encode() const;
  static Result<SubscribeMsg> Decode(BytesReader* in);
};

struct ByeMsg {
  std::string reason;

  std::string Encode() const;
  static Result<ByeMsg> Decode(BytesReader* in);
};

/// PrimitiveOccurrence on the wire (Notify body). Interned symbols are
/// process-local and never serialized; the receiving detector re-interns.
void EncodeOccurrence(const detector::PrimitiveOccurrence& occ,
                      BytesWriter* out);
Result<detector::PrimitiveOccurrence> DecodeOccurrence(BytesReader* in);

/// Composite Occurrence on the wire (EventPush body): the detection plus
/// flattened copies of its constituent primitives.
struct EventPushMsg {
  std::string event;  // subscribed global event that detected
  detector::Occurrence occurrence;
  /// Trace trailer (zero-valued = absent). Encode() appends it and sets
  /// kFlagTraceContext when it carries anything; Decode() fills it from the
  /// trailer when `flags` advertises one.
  TraceContext trace;

  std::string Encode() const;
  static Result<EventPushMsg> Decode(BytesReader* in,
                                     std::uint16_t flags = 0);
};

/// Incremental frame parser: feed raw bytes as they arrive, pop complete
/// frames. Any framing violation (bad magic/version, oversized length, CRC
/// mismatch) is sticky: the stream cannot be trusted past the first bad
/// byte, so the owner must drop the connection.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  struct Frame {
    MessageType type = MessageType::kPing;
    std::uint16_t flags = 0;
    std::vector<std::uint8_t> body;
  };

  /// Appends newly received bytes to the reassembly buffer.
  void Feed(const void* data, std::size_t size);

  /// Pops the next complete frame: true + frame, false when more bytes are
  /// needed, or a Corruption status on a framing violation.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed (a permanently growing value here
  /// means a peer is streaming garbage).
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  const std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace sentinel::net

#endif  // SENTINEL_NET_PROTOCOL_H_
