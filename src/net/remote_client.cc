#include "net/remote_client.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>

#include "common/logging.h"
#include "obs/json.h"

namespace sentinel::net {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RemoteGedClient::RemoteGedClient(Options options)
    : options_(std::move(options)) {}

RemoteGedClient::~RemoteGedClient() { Stop(); }

Status RemoteGedClient::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::InvalidArgument("client already started");
    if (options_.app_name.empty()) {
      return Status::InvalidArgument("app_name is required");
    }
  }
  IgnoreSigpipe();
  SENTINEL_RETURN_NOT_OK(wake_.Open());
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stop_ = false;
    backoff_attempt_ = 0;
    jitter_state_ = options_.jitter_seed | 1;  // LCG state must be nonzero
  }
  worker_ = std::thread([this] { WorkerLoop(); });
  return Status::OK();
}

void RemoteGedClient::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  worker_cv_.notify_all();
  cv_.notify_all();
  wake_.Signal();
  if (worker_.joinable()) worker_.join();
  connected_.store(false, std::memory_order_release);
  wake_.Close();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

bool RemoteGedClient::WaitConnected(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [this] {
    return stop_ || connected_.load(std::memory_order_acquire);
  });
  return connected_.load(std::memory_order_acquire);
}

std::string RemoteGedClient::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

// ---------------------------------------------------------------------------
// Application-thread API

Status RemoteGedClient::DefineGlobalPrimitive(
    const std::string& name, const std::string& class_name,
    detector::EventModifier modifier, const std::string& method_signature) {
  DefinePrimitiveMsg msg;
  msg.name = name;
  msg.app_name = options_.app_name;
  msg.class_name = class_name;
  msg.modifier = modifier;
  msg.method_signature = method_signature;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) return Status::IOError("client not running");
    msg.seq = next_seq_++;
    pending_[msg.seq] = Pending{};
    EnqueueControlLocked(msg.Encode());
  }
  wake_.Signal();
  Status st = AwaitReply(msg.seq);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    JournalEntry entry;
    entry.kind = JournalEntry::Kind::kDefine;
    entry.define = msg;
    journal_.push_back(std::move(entry));
  }
  return st;
}

Status RemoteGedClient::Subscribe(const std::string& event,
                                  detector::ParamContext context,
                                  PushHandler handler) {
  SubscribeMsg msg;
  msg.event = event;
  msg.context = context;
  PushHandler previous;
  bool had_previous = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) return Status::IOError("client not running");
    msg.seq = next_seq_++;
    pending_[msg.seq] = Pending{};
    // Install the handler before the frame goes out: the server activates
    // the subscription before its ack reaches us, so a push racing the ack
    // must already find a handler or it is silently dropped.
    auto it = handlers_.find(event);
    if (it != handlers_.end()) {
      had_previous = true;
      previous = it->second;
    }
    handlers_[event] = std::move(handler);
    EnqueueControlLocked(msg.Encode());
  }
  wake_.Signal();
  Status st = AwaitReply(msg.seq);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (st.ok()) {
      JournalEntry entry;
      entry.kind = JournalEntry::Kind::kSubscribe;
      entry.subscribe = msg;
      journal_.push_back(std::move(entry));
    } else if (had_previous) {
      handlers_[event] = std::move(previous);
    } else {
      handlers_.erase(event);
    }
  }
  return st;
}

Status RemoteGedClient::Notify(
    const detector::PrimitiveOccurrence& occurrence) {
  BytesWriter body;
  EncodeOccurrence(occurrence, &body);
  std::string frame = EncodeFrame(MessageType::kNotify, body);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) return Status::IOError("client not running");
    if (notify_out_.size() >= options_.notify_queue_limit) {
      // Bounded send buffer: shed the *oldest* event — at-most-once says
      // drop, and recent events are worth more to composite detection.
      notify_out_.pop_front();
      notifies_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    notify_out_.push_back(std::move(frame));
  }
  wake_.Signal();
  return Status::OK();
}

Status RemoteGedClient::NotifyMethod(
    const std::string& class_name, std::uint64_t oid,
    detector::EventModifier modifier, const std::string& method_signature,
    std::shared_ptr<detector::ParamList> params, storage::TxnId txn) {
  detector::PrimitiveOccurrence occ;
  occ.class_name = class_name;
  occ.oid = oid;
  occ.modifier = modifier;
  occ.method_signature = method_signature;
  occ.params = std::move(params);
  occ.txn = txn;
  occ.at = 0;  // the GED re-stamps on bus arrival
  occ.at_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  return Notify(occ);
}

void RemoteGedClient::BindLocalDetector(detector::LocalEventDetector* det) {
  det->AddRawObserver([this](const detector::PrimitiveOccurrence& occ) {
    (void)Notify(occ);
  });
}

// ---------------------------------------------------------------------------
// Worker thread

void RemoteGedClient::WorkerLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    connect_attempts_.fetch_add(1, std::memory_order_relaxed);
    auto fd_result = ConnectTcp(options_.host, options_.port);
    if (!fd_result.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        last_error_ = fd_result.status().ToString();
      }
      if (!BackoffSleep()) return;
      continue;
    }
    const int fd = *fd_result;
    SetNonBlocking(fd);
    SetNoDelay(fd);
    std::string why = StreamLoop(fd);
    CloseQuietly(fd);
    if (connected_.exchange(false, std::memory_order_acq_rel)) {
      disconnects_.fetch_add(1, std::memory_order_relaxed);
    }
    FailAllPending(why);
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_error_ = why;
      if (stop_) return;
    }
    SENTINEL_LOG(kInfo) << "remote GED session ended (" << why
                        << "); reconnecting with backoff";
    if (!BackoffSleep()) return;
  }
}

std::string RemoteGedClient::StreamLoop(int fd) {
  FrameAssembler assembler(options_.max_frame_bytes);
  std::string wire;  // bytes staged for the socket
  std::size_t wire_off = 0;
  bool registered = false;
  std::uint32_t hello_seq = 0;
  {
    // The Hello goes out ahead of anything queued; TCP ordering then
    // guarantees the server sees registration before any control frame
    // that was waiting while we were disconnected.
    std::lock_guard<std::mutex> lock(mu_);
    hello_seq = next_seq_++;
    HelloMsg hello;
    hello.seq = hello_seq;
    hello.app_name = options_.app_name;
    wire = hello.Encode();
  }
  for (;;) {
    // Compact the flushed prefix *before* staging: under sustained traffic
    // the queues are never empty, so waiting for a full drain would let the
    // prefix — every byte ever sent — accumulate without bound.
    if (wire_off == wire.size()) {
      wire.clear();
      wire_off = 0;
    } else if (wire_off >= 64 * 1024) {
      wire.erase(0, wire_off);
      wire_off = 0;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return "client stopping";
      // Stage outbound bytes: control first; notifies only once the
      // session is registered and not paused by a shed notice.
      const std::uint64_t now = NowNs();
      while (wire.size() - wire_off < 64 * 1024) {
        if (!control_out_.empty()) {
          wire += control_out_.front();
          control_out_.pop_front();
        } else if (registered && now >= pause_until_ns_ &&
                   !notify_out_.empty()) {
          wire += notify_out_.front();
          notify_out_.pop_front();
          notifies_sent_.fetch_add(1, std::memory_order_relaxed);
        } else {
          break;
        }
      }
    }
    pollfd pfds[2];
    pfds[0] = pollfd{wake_.read_fd(), POLLIN, 0};
    short events = POLLIN;
    if (wire.size() > wire_off) events |= POLLOUT;
    pfds[1] = pollfd{fd, events, 0};
    // 100ms cap so a shed pause expiring (or Stop) is noticed promptly.
    int rc = ::poll(pfds, 2, 100);
    if (rc < 0 && errno != EINTR) return "poll failed";
    if ((pfds[0].revents & POLLIN) != 0) wake_.Drain();
    if ((pfds[1].revents & POLLOUT) != 0 && wire.size() > wire_off) {
      IoResult r = SendSome(fd, wire.data() + wire_off,
                            wire.size() - wire_off, "net.client.write");
      if (r.kind == IoResult::Kind::kClosed) return "server closed connection";
      if (r.kind == IoResult::Kind::kError) {
        return "write failed: " + r.error;
      }
      if (r.kind == IoResult::Kind::kOk) wire_off += r.bytes;
    }
    if ((pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    char buf[16 * 1024];
    for (;;) {
      IoResult r = RecvSome(fd, buf, sizeof(buf), "net.client.read");
      if (r.kind == IoResult::Kind::kWouldBlock) break;
      if (r.kind == IoResult::Kind::kClosed) return "server closed connection";
      if (r.kind == IoResult::Kind::kError) {
        return "read failed: " + r.error;
      }
      assembler.Feed(buf, r.bytes);
      for (;;) {
        FrameAssembler::Frame frame;
        auto more = assembler.Next(&frame);
        if (!more.ok()) {
          return "protocol error: " + more.status().ToString();
        }
        if (!*more) break;
        BytesReader reader(frame.body);
        switch (frame.type) {
          case MessageType::kStatusReply: {
            auto msg = StatusReplyMsg::Decode(&reader);
            if (!msg.ok()) {
              return "bad STATUS_REPLY: " + msg.status().ToString();
            }
            if (msg->seq == 0) {
              // Unsolicited shed notice: pause the notify stream for the
              // advertised backoff instead of hammering the server.
              sheds_received_.fetch_add(1, std::memory_order_relaxed);
              std::lock_guard<std::mutex> lock(mu_);
              pause_until_ns_ =
                  NowNs() + static_cast<std::uint64_t>(msg->retry_after_ms) *
                                1'000'000ull;
            } else if (msg->seq == hello_seq) {
              if (msg->code != WireCode::kOk) {
                return "registration refused: " + msg->message;
              }
              registered = true;
              sessions_established_.fetch_add(1, std::memory_order_relaxed);
              {
                // connected_ flips under mu_: WaitConnected checks its
                // predicate with mu_ held, so a store outside the lock could
                // land between the check and the wait and the notify would
                // be missed for the full timeout.
                std::lock_guard<std::mutex> lock(mu_);
                backoff_attempt_ = 0;
                ReplayJournalLocked();
                connected_.store(true, std::memory_order_release);
              }
              cv_.notify_all();  // WaitConnected waiters
            } else {
              Status result = Status::OK();
              if (msg->code == WireCode::kRetryLater) {
                result = Status::RetryLater(msg->message.empty()
                                                ? "server asked to retry"
                                                : msg->message);
              } else if (msg->code != WireCode::kOk) {
                result = Status::Internal(msg->message.empty()
                                              ? "server refused request"
                                              : msg->message);
              }
              CompletePending(msg->seq, result);
            }
            break;
          }
          case MessageType::kEventPush: {
            auto msg = EventPushMsg::Decode(&reader);
            if (!msg.ok()) {
              return "bad EVENT_PUSH: " + msg.status().ToString();
            }
            pushes_received_.fetch_add(1, std::memory_order_relaxed);
            PushHandler handler;
            {
              std::lock_guard<std::mutex> lock(mu_);
              auto it = handlers_.find(msg->event);
              if (it != handlers_.end()) handler = it->second;
            }
            if (handler) handler(msg->event, msg->occurrence);
            break;
          }
          case MessageType::kPing: {
            std::lock_guard<std::mutex> lock(mu_);
            control_out_.push_back(EncodeFrame(MessageType::kPong));
            break;
          }
          case MessageType::kPong:
            break;
          case MessageType::kBye: {
            auto msg = ByeMsg::Decode(&reader);
            return "server closed session: " +
                   (msg.ok() ? msg->reason : std::string("<garbled>"));
          }
          default:
            return std::string("unexpected server frame: ") +
                   MessageTypeToString(frame.type);
        }
      }
      if (r.bytes < sizeof(buf)) break;  // short read: socket drained
    }
  }
}

void RemoteGedClient::CompletePending(std::uint32_t seq, Status result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;  // caller timed out and gave up
    if (it->second.internal) {
      if (!result.ok()) {
        SENTINEL_LOG(kWarn) << "journal replay entry refused: "
                            << result.ToString();
      }
      pending_.erase(it);
      return;
    }
    it->second.done = true;
    it->second.result = std::move(result);
  }
  cv_.notify_all();
}

void RemoteGedClient::FailAllPending(const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.internal) {
        it = pending_.erase(it);
        continue;
      }
      it->second.done = true;
      it->second.result = Status::IOError("connection lost: " + why);
      ++it;
    }
  }
  cv_.notify_all();
}

Status RemoteGedClient::AwaitReply(std::uint32_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, options_.request_timeout, [this, seq] {
    auto it = pending_.find(seq);
    return it == pending_.end() || it->second.done;
  });
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    return Status::IOError("request slot vanished");
  }
  if (!it->second.done) {
    pending_.erase(it);
    return Status::IOError("request timed out");
  }
  Status st = std::move(it->second.result);
  pending_.erase(it);
  return st;
}

void RemoteGedClient::EnqueueControlLocked(std::string frame) {
  control_out_.push_back(std::move(frame));
}

void RemoteGedClient::ReplayJournalLocked() {
  for (const auto& entry : journal_) {
    const std::uint32_t seq = next_seq_++;
    if (entry.kind == JournalEntry::Kind::kDefine) {
      DefinePrimitiveMsg msg = entry.define;
      msg.seq = seq;
      control_out_.push_back(msg.Encode());
    } else {
      SubscribeMsg msg = entry.subscribe;
      msg.seq = seq;
      control_out_.push_back(msg.Encode());
    }
    Pending p;
    p.internal = true;
    pending_[seq] = p;
    journal_replays_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool RemoteGedClient::BackoffSleep() {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) return false;
  const std::uint64_t shift = std::min<std::uint64_t>(backoff_attempt_, 16);
  const std::uint64_t base =
      static_cast<std::uint64_t>(options_.backoff_base.count()) << shift;
  const std::uint64_t cap =
      static_cast<std::uint64_t>(options_.backoff_max.count());
  const std::uint64_t full = std::min(std::max<std::uint64_t>(base, 1), cap);
  // Deterministic jitter in [full/2, full): spreads reconnect storms while
  // keeping tests reproducible via Options::jitter_seed.
  jitter_state_ =
      jitter_state_ * 6364136223846793005ull + 1442695040888963407ull;
  const std::uint64_t frac = (jitter_state_ >> 33) % 1000;
  const std::uint64_t sleep_ms = full / 2 + (full / 2 * frac) / 1000;
  ++backoff_attempt_;
  worker_cv_.wait_for(lock, std::chrono::milliseconds(sleep_ms),
                      [this] { return stop_; });
  return !stop_;
}

// ---------------------------------------------------------------------------
// Introspection

RemoteGedClient::Stats RemoteGedClient::stats() const {
  Stats s;
  s.connect_attempts = connect_attempts_.load(std::memory_order_relaxed);
  s.sessions_established =
      sessions_established_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.notifies_sent = notifies_sent_.load(std::memory_order_relaxed);
  s.notifies_dropped = notifies_dropped_.load(std::memory_order_relaxed);
  s.pushes_received = pushes_received_.load(std::memory_order_relaxed);
  s.sheds_received = sheds_received_.load(std::memory_order_relaxed);
  s.journal_replays = journal_replays_.load(std::memory_order_relaxed);
  s.connected = connected_.load(std::memory_order_acquire);
  return s;
}

std::string RemoteGedClient::StatsJson() const {
  const Stats s = stats();
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("connected", s.connected);
  w.Field("connect_attempts", s.connect_attempts);
  w.Field("sessions_established", s.sessions_established);
  w.Field("disconnects", s.disconnects);
  w.Field("notifies_sent", s.notifies_sent);
  w.Field("notifies_dropped", s.notifies_dropped);
  w.Field("pushes_received", s.pushes_received);
  w.Field("sheds_received", s.sheds_received);
  w.Field("journal_replays", s.journal_replays);
  w.Field("last_error", last_error());
  w.EndObject();
  return w.Take();
}

}  // namespace sentinel::net
