#include "net/remote_client.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/span.h"

namespace sentinel::net {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock ns: the always-on e2e origin stamp (either end of the wire
/// can subtract without knowing the peer's steady-clock offset).
std::uint64_t WallNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RemoteGedClient::RemoteGedClient(Options options)
    : options_(std::move(options)) {}

RemoteGedClient::~RemoteGedClient() { Stop(); }

Status RemoteGedClient::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::InvalidArgument("client already started");
    if (options_.app_name.empty()) {
      return Status::InvalidArgument("app_name is required");
    }
  }
  IgnoreSigpipe();
  SENTINEL_RETURN_NOT_OK(wake_.Open());
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stop_ = false;
    backoff_attempt_ = 0;
    jitter_state_ = options_.jitter_seed | 1;  // LCG state must be nonzero
    // Trace ids must be distinct across processes: mix the app name with
    // the wall clock at start, then count.
    trace_seed_ = std::hash<std::string>{}(options_.app_name) ^ WallNs();
  }
  worker_ = std::thread([this] { WorkerLoop(); });
  return Status::OK();
}

void RemoteGedClient::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  worker_cv_.notify_all();
  cv_.notify_all();
  wake_.Signal();
  if (worker_.joinable()) worker_.join();
  connected_.store(false, std::memory_order_release);
  wake_.Close();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

bool RemoteGedClient::WaitConnected(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [this] {
    return stop_ || connected_.load(std::memory_order_acquire);
  });
  return connected_.load(std::memory_order_acquire);
}

std::string RemoteGedClient::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

// ---------------------------------------------------------------------------
// Application-thread API

Status RemoteGedClient::DefineGlobalPrimitive(
    const std::string& name, const std::string& class_name,
    detector::EventModifier modifier, const std::string& method_signature) {
  DefinePrimitiveMsg msg;
  msg.name = name;
  msg.app_name = options_.app_name;
  msg.class_name = class_name;
  msg.modifier = modifier;
  msg.method_signature = method_signature;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) return Status::IOError("client not running");
    msg.seq = next_seq_++;
    pending_[msg.seq] = Pending{};
    EnqueueControlLocked(msg.Encode());
  }
  wake_.Signal();
  Status st = AwaitReply(msg.seq);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    JournalEntry entry;
    entry.kind = JournalEntry::Kind::kDefine;
    entry.define = msg;
    journal_.push_back(std::move(entry));
  }
  return st;
}

Status RemoteGedClient::Subscribe(const std::string& event,
                                  detector::ParamContext context,
                                  PushHandler handler) {
  SubscribeMsg msg;
  msg.event = event;
  msg.context = context;
  PushHandler previous;
  bool had_previous = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) return Status::IOError("client not running");
    msg.seq = next_seq_++;
    pending_[msg.seq] = Pending{};
    // Install the handler before the frame goes out: the server activates
    // the subscription before its ack reaches us, so a push racing the ack
    // must already find a handler or it is silently dropped.
    auto it = handlers_.find(event);
    if (it != handlers_.end()) {
      had_previous = true;
      previous = it->second;
    }
    handlers_[event] = std::move(handler);
    EnqueueControlLocked(msg.Encode());
  }
  wake_.Signal();
  Status st = AwaitReply(msg.seq);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (st.ok()) {
      JournalEntry entry;
      entry.kind = JournalEntry::Kind::kSubscribe;
      entry.subscribe = msg;
      journal_.push_back(std::move(entry));
    } else if (had_previous) {
      handlers_[event] = std::move(previous);
    } else {
      handlers_.erase(event);
    }
  }
  return st;
}

Status RemoteGedClient::Notify(
    const detector::PrimitiveOccurrence& occurrence) {
  // Always-on e2e anchor: stamp the origin here (wall clock), unless the
  // caller already carries one (an occurrence relayed from elsewhere).
  TraceContext tc;
  tc.origin_ns =
      occurrence.origin_ns != 0 ? occurrence.origin_ns : WallNs();
  // Frame-encode span: the client-side root of the wire hop. Its id rides
  // the trailer as the server decode span's remote parent; its own parent
  // resolves locally (scope stack / open-txn anchor), hanging the whole
  // remote chain off the originating transaction.
  obs::SpanScope encode_span;
  obs::SpanTracer* st = tracer_.load(std::memory_order_acquire);
  if (st != nullptr && st->enabled_for(obs::SpanKind::kNetFrameEncode)) {
    tc.trace_id = occurrence.trace_id != 0
                      ? occurrence.trace_id
                      : trace_seed_ * 0x9E3779B97F4A7C15ull +
                            trace_counter_.fetch_add(
                                1, std::memory_order_relaxed) +
                            1;
    if (tc.trace_id == 0) tc.trace_id = 1;
    encode_span.Start(st, obs::SpanKind::kNetFrameEncode, occurrence.txn,
                      "notify " + occurrence.class_name + "::" +
                          occurrence.method_signature);
    encode_span.AnnotateRemote(tc.trace_id, 0);
    tc.parent_span = encode_span.id();
  }
  BytesWriter body;
  EncodeOccurrence(occurrence, &body);
  // The trailer is ALWAYS appended (origin stamps power the server's e2e
  // histograms even with tracing off); trace_id/parent are zero then.
  AppendTraceContext(tc, &body);
  std::string frame =
      EncodeFrame(MessageType::kNotify, body, kFlagTraceContext);
  encode_span.End();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) return Status::IOError("client not running");
    if (notify_out_.size() >= options_.notify_queue_limit) {
      // Bounded send buffer: shed the *oldest* event — at-most-once says
      // drop, and recent events are worth more to composite detection.
      notify_out_.pop_front();
      notifies_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    notify_out_.push_back(std::move(frame));
  }
  wake_.Signal();
  return Status::OK();
}

Status RemoteGedClient::NotifyMethod(
    const std::string& class_name, std::uint64_t oid,
    detector::EventModifier modifier, const std::string& method_signature,
    std::shared_ptr<detector::ParamList> params, storage::TxnId txn) {
  detector::PrimitiveOccurrence occ;
  occ.class_name = class_name;
  occ.oid = oid;
  occ.modifier = modifier;
  occ.method_signature = method_signature;
  occ.params = std::move(params);
  occ.txn = txn;
  occ.at = 0;  // the GED re-stamps on bus arrival
  occ.at_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  return Notify(occ);
}

void RemoteGedClient::BindLocalDetector(detector::LocalEventDetector* det) {
  det->AddRawObserver([this](const detector::PrimitiveOccurrence& occ) {
    (void)Notify(occ);
  });
}

// ---------------------------------------------------------------------------
// Worker thread

void RemoteGedClient::WorkerLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    connect_attempts_.fetch_add(1, std::memory_order_relaxed);
    auto fd_result = ConnectTcp(options_.host, options_.port);
    if (!fd_result.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        last_error_ = fd_result.status().ToString();
      }
      if (!BackoffSleep()) return;
      continue;
    }
    const int fd = *fd_result;
    SetNonBlocking(fd);
    SetNoDelay(fd);
    std::string why = StreamLoop(fd);
    CloseQuietly(fd);
    if (connected_.exchange(false, std::memory_order_acq_rel)) {
      disconnects_.fetch_add(1, std::memory_order_relaxed);
    }
    FailAllPending(why);
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_error_ = why;
      if (stop_) return;
    }
    SENTINEL_LOG(kInfo) << "remote GED session ended (" << why
                        << "); reconnecting with backoff";
    if (!BackoffSleep()) return;
  }
}

std::string RemoteGedClient::StreamLoop(int fd) {
  FrameAssembler assembler(options_.max_frame_bytes);
  std::string wire;  // bytes staged for the socket
  std::size_t wire_off = 0;
  bool registered = false;
  std::uint32_t hello_seq = 0;
  {
    // The Hello goes out ahead of anything queued; TCP ordering then
    // guarantees the server sees registration before any control frame
    // that was waiting while we were disconnected.
    std::lock_guard<std::mutex> lock(mu_);
    hello_seq = next_seq_++;
    HelloMsg hello;
    hello.seq = hello_seq;
    hello.app_name = options_.app_name;
    wire = hello.Encode();
  }
  const std::uint64_t ping_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.ping_interval)
          .count());
  std::uint64_t last_ping_ns = NowNs();
  for (;;) {
    // Compact the flushed prefix *before* staging: under sustained traffic
    // the queues are never empty, so waiting for a full drain would let the
    // prefix — every byte ever sent — accumulate without bound.
    if (wire_off == wire.size()) {
      wire.clear();
      wire_off = 0;
    } else if (wire_off >= 64 * 1024) {
      wire.erase(0, wire_off);
      wire_off = 0;
    }
    // Client-side heartbeat: unlike the server's quiet-wire liveness probe,
    // these pings exist for their pongs — each one is an RTT + clock-offset
    // sample feeding this process's trace export.
    if (registered && ping_ns > 0 && NowNs() - last_ping_ns >= ping_ns) {
      last_ping_ns = NowNs();
      wire += EncodePing(last_ping_ns);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return "client stopping";
      // Stage outbound bytes: control first; notifies only once the
      // session is registered and not paused by a shed notice.
      const std::uint64_t now = NowNs();
      while (wire.size() - wire_off < 64 * 1024) {
        if (!control_out_.empty()) {
          wire += control_out_.front();
          control_out_.pop_front();
        } else if (registered && now >= pause_until_ns_ &&
                   !notify_out_.empty()) {
          wire += notify_out_.front();
          notify_out_.pop_front();
          notifies_sent_.fetch_add(1, std::memory_order_relaxed);
        } else {
          break;
        }
      }
    }
    pollfd pfds[2];
    pfds[0] = pollfd{wake_.read_fd(), POLLIN, 0};
    short events = POLLIN;
    if (wire.size() > wire_off) events |= POLLOUT;
    pfds[1] = pollfd{fd, events, 0};
    // 100ms cap so a shed pause expiring (or Stop) is noticed promptly.
    int rc = ::poll(pfds, 2, 100);
    if (rc < 0 && errno != EINTR) return "poll failed";
    if ((pfds[0].revents & POLLIN) != 0) wake_.Drain();
    if ((pfds[1].revents & POLLOUT) != 0 && wire.size() > wire_off) {
      IoResult r = SendSome(fd, wire.data() + wire_off,
                            wire.size() - wire_off, "net.client.write");
      if (r.kind == IoResult::Kind::kClosed) return "server closed connection";
      if (r.kind == IoResult::Kind::kError) {
        return "write failed: " + r.error;
      }
      if (r.kind == IoResult::Kind::kOk) wire_off += r.bytes;
    }
    if ((pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    char buf[16 * 1024];
    for (;;) {
      IoResult r = RecvSome(fd, buf, sizeof(buf), "net.client.read");
      if (r.kind == IoResult::Kind::kWouldBlock) break;
      if (r.kind == IoResult::Kind::kClosed) return "server closed connection";
      if (r.kind == IoResult::Kind::kError) {
        return "read failed: " + r.error;
      }
      assembler.Feed(buf, r.bytes);
      for (;;) {
        FrameAssembler::Frame frame;
        auto more = assembler.Next(&frame);
        if (!more.ok()) {
          return "protocol error: " + more.status().ToString();
        }
        if (!*more) break;
        BytesReader reader(frame.body);
        switch (frame.type) {
          case MessageType::kStatusReply: {
            auto msg = StatusReplyMsg::Decode(&reader);
            if (!msg.ok()) {
              return "bad STATUS_REPLY: " + msg.status().ToString();
            }
            if (msg->seq == 0) {
              // Unsolicited shed notice: pause the notify stream for the
              // advertised backoff instead of hammering the server.
              sheds_received_.fetch_add(1, std::memory_order_relaxed);
              std::lock_guard<std::mutex> lock(mu_);
              pause_until_ns_ =
                  NowNs() + static_cast<std::uint64_t>(msg->retry_after_ms) *
                                1'000'000ull;
            } else if (msg->seq == hello_seq) {
              if (msg->code != WireCode::kOk) {
                return "registration refused: " + msg->message;
              }
              registered = true;
              sessions_established_.fetch_add(1, std::memory_order_relaxed);
              {
                // connected_ flips under mu_: WaitConnected checks its
                // predicate with mu_ held, so a store outside the lock could
                // land between the check and the wait and the notify would
                // be missed for the full timeout.
                std::lock_guard<std::mutex> lock(mu_);
                backoff_attempt_ = 0;
                ReplayJournalLocked();
                connected_.store(true, std::memory_order_release);
              }
              cv_.notify_all();  // WaitConnected waiters
            } else {
              Status result = Status::OK();
              if (msg->code == WireCode::kRetryLater) {
                result = Status::RetryLater(msg->message.empty()
                                                ? "server asked to retry"
                                                : msg->message);
              } else if (msg->code != WireCode::kOk) {
                result = Status::Internal(msg->message.empty()
                                              ? "server refused request"
                                              : msg->message);
              }
              CompletePending(msg->seq, result);
            }
            break;
          }
          case MessageType::kEventPush: {
            auto msg = EventPushMsg::Decode(&reader, frame.flags);
            if (!msg.ok()) {
              return "bad EVENT_PUSH: " + msg.status().ToString();
            }
            pushes_received_.fetch_add(1, std::memory_order_relaxed);
            PushHandler handler;
            {
              std::lock_guard<std::mutex> lock(mu_);
              auto it = handlers_.find(msg->event);
              if (it != handlers_.end()) handler = it->second;
            }
            // The push-decode span adopts the server's trace context (its
            // push-encode span is the remote parent) and stays open across
            // the handler, so handler-raised condition/action/subtxn spans
            // parent into the originating cross-process tree.
            obs::SpanScope push_span;
            if (obs::SpanTracer* st =
                    tracer_.load(std::memory_order_acquire);
                st != nullptr &&
                st->enabled_for(obs::SpanKind::kNetFrameDecode)) {
              push_span.Start(st, obs::SpanKind::kNetFrameDecode,
                              msg->occurrence.txn, "push " + msg->event);
              if (msg->trace.trace_id != 0) {
                push_span.AnnotateRemote(msg->trace.trace_id,
                                         msg->trace.parent_span);
              }
            }
            if (handler) handler(msg->event, msg->occurrence);
            push_span.End();
            if (msg->trace.has_origin()) {
              const std::uint64_t now_wall = WallNs();
              if (now_wall > msg->trace.origin_ns) {
                e2e_action_ns_.Record(now_wall - msg->trace.origin_ns);
              }
            }
            break;
          }
          case MessageType::kPing: {
            // Echo the server's send time plus our steady clock so it can
            // sample RTT/offset for this session.
            const std::string pong =
                EncodePong(ReadPingT0(&reader), NowNs());
            std::lock_guard<std::mutex> lock(mu_);
            control_out_.push_back(pong);
            break;
          }
          case MessageType::kPong: {
            std::uint64_t t0 = 0;
            std::uint64_t t1 = 0;
            if (!ReadPongTimes(&reader, &t0, &t1)) break;  // old server
            const std::uint64_t t2 = NowNs();
            if (t2 <= t0) break;
            const std::uint64_t rtt_ns = t2 - t0;
            rtt_us_.Record(rtt_ns / 1000);
            rtt_samples_.fetch_add(1, std::memory_order_relaxed);
            // NTP-style sample of the server's steady clock minus ours,
            // EWMA-smoothed (alpha 1/8); exported with this process's
            // trace so merge_traces.py can shift it onto one timeline.
            const std::int64_t sample =
                static_cast<std::int64_t>(t1) -
                static_cast<std::int64_t>(t0 + rtt_ns / 2);
            if (!offset_primed_) {
              offset_primed_ = true;
              offset_ewma_ns_ = sample;
            } else {
              offset_ewma_ns_ += (sample - offset_ewma_ns_) / 8;
            }
            clock_offset_ns_.store(offset_ewma_ns_,
                                   std::memory_order_relaxed);
            break;
          }
          case MessageType::kBye: {
            auto msg = ByeMsg::Decode(&reader);
            return "server closed session: " +
                   (msg.ok() ? msg->reason : std::string("<garbled>"));
          }
          default:
            return std::string("unexpected server frame: ") +
                   MessageTypeToString(frame.type);
        }
      }
      if (r.bytes < sizeof(buf)) break;  // short read: socket drained
    }
  }
}

void RemoteGedClient::CompletePending(std::uint32_t seq, Status result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;  // caller timed out and gave up
    if (it->second.internal) {
      if (!result.ok()) {
        SENTINEL_LOG(kWarn) << "journal replay entry refused: "
                            << result.ToString();
      }
      pending_.erase(it);
      return;
    }
    it->second.done = true;
    it->second.result = std::move(result);
  }
  cv_.notify_all();
}

void RemoteGedClient::FailAllPending(const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.internal) {
        it = pending_.erase(it);
        continue;
      }
      it->second.done = true;
      it->second.result = Status::IOError("connection lost: " + why);
      ++it;
    }
  }
  cv_.notify_all();
}

Status RemoteGedClient::AwaitReply(std::uint32_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, options_.request_timeout, [this, seq] {
    auto it = pending_.find(seq);
    return it == pending_.end() || it->second.done;
  });
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    return Status::IOError("request slot vanished");
  }
  if (!it->second.done) {
    pending_.erase(it);
    return Status::IOError("request timed out");
  }
  Status st = std::move(it->second.result);
  pending_.erase(it);
  return st;
}

void RemoteGedClient::EnqueueControlLocked(std::string frame) {
  control_out_.push_back(std::move(frame));
}

void RemoteGedClient::ReplayJournalLocked() {
  for (const auto& entry : journal_) {
    const std::uint32_t seq = next_seq_++;
    if (entry.kind == JournalEntry::Kind::kDefine) {
      DefinePrimitiveMsg msg = entry.define;
      msg.seq = seq;
      control_out_.push_back(msg.Encode());
    } else {
      SubscribeMsg msg = entry.subscribe;
      msg.seq = seq;
      control_out_.push_back(msg.Encode());
    }
    Pending p;
    p.internal = true;
    pending_[seq] = p;
    journal_replays_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool RemoteGedClient::BackoffSleep() {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) return false;
  const std::uint64_t shift = std::min<std::uint64_t>(backoff_attempt_, 16);
  const std::uint64_t base =
      static_cast<std::uint64_t>(options_.backoff_base.count()) << shift;
  const std::uint64_t cap =
      static_cast<std::uint64_t>(options_.backoff_max.count());
  const std::uint64_t full = std::min(std::max<std::uint64_t>(base, 1), cap);
  // Deterministic jitter in [full/2, full): spreads reconnect storms while
  // keeping tests reproducible via Options::jitter_seed.
  jitter_state_ =
      jitter_state_ * 6364136223846793005ull + 1442695040888963407ull;
  const std::uint64_t frac = (jitter_state_ >> 33) % 1000;
  const std::uint64_t sleep_ms = full / 2 + (full / 2 * frac) / 1000;
  ++backoff_attempt_;
  worker_cv_.wait_for(lock, std::chrono::milliseconds(sleep_ms),
                      [this] { return stop_; });
  return !stop_;
}

// ---------------------------------------------------------------------------
// Introspection

RemoteGedClient::Stats RemoteGedClient::stats() const {
  Stats s;
  s.connect_attempts = connect_attempts_.load(std::memory_order_relaxed);
  s.sessions_established =
      sessions_established_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.notifies_sent = notifies_sent_.load(std::memory_order_relaxed);
  s.notifies_dropped = notifies_dropped_.load(std::memory_order_relaxed);
  s.pushes_received = pushes_received_.load(std::memory_order_relaxed);
  s.sheds_received = sheds_received_.load(std::memory_order_relaxed);
  s.journal_replays = journal_replays_.load(std::memory_order_relaxed);
  s.connected = connected_.load(std::memory_order_acquire);
  s.rtt_samples = rtt_samples_.load(std::memory_order_relaxed);
  s.clock_offset_us = clock_offset_ns_.load(std::memory_order_relaxed) / 1000;
  s.rtt_us = rtt_us_.TakeSnapshot();
  s.e2e_action_ns = e2e_action_ns_.TakeSnapshot();
  return s;
}

std::string RemoteGedClient::StatsJson() const {
  const Stats s = stats();
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("connected", s.connected);
  w.Field("connect_attempts", s.connect_attempts);
  w.Field("sessions_established", s.sessions_established);
  w.Field("disconnects", s.disconnects);
  w.Field("notifies_sent", s.notifies_sent);
  w.Field("notifies_dropped", s.notifies_dropped);
  w.Field("pushes_received", s.pushes_received);
  w.Field("sheds_received", s.sheds_received);
  w.Field("journal_replays", s.journal_replays);
  w.Field("rtt_samples", s.rtt_samples);
  w.Field("rtt_p50_us", s.rtt_us.QuantileNs(0.5));
  w.Field("rtt_p99_us", s.rtt_us.QuantileNs(0.99));
  w.Field("clock_offset_us", s.clock_offset_us);
  w.Field("e2e_action_p50_ns", s.e2e_action_ns.QuantileNs(0.5));
  w.Field("e2e_action_p99_ns", s.e2e_action_ns.QuantileNs(0.99));
  w.Field("last_error", last_error());
  w.EndObject();
  return w.Take();
}

}  // namespace sentinel::net
