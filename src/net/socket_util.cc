#include "net/socket_util.h"

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>

#include "common/failpoint.h"

namespace sentinel::net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Returns the fired action for `failpoint` (inert when unarmed or null).
FailPointAction EvalFailpoint(const char* failpoint) {
  if (failpoint == nullptr || !FailPointRegistry::AnyActive()) return {};
  return FailPointRegistry::Instance().Evaluate(failpoint);
}

}  // namespace

void IgnoreSigpipe() {
  // Process-wide, done exactly once: a worker writing to a half-closed
  // session must see EPIPE, not die. MSG_NOSIGNAL covers send(), but
  // explicit ignore also covers any future write()-based path.
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

Result<int> ListenTcp(int port, int backlog) {
  IgnoreSigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(Errno("socket"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err =
        Errno(("bind 127.0.0.1:" + std::to_string(port)).c_str());
    CloseQuietly(fd);
    return Status::IOError(err);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string err = Errno("listen");
    CloseQuietly(fd);
    return Status::IOError(err);
  }
  return fd;
}

Result<int> BoundPort(int fd) {
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Status::IOError(Errno("getsockname"));
  }
  return static_cast<int>(ntohs(bound.sin_port));
}

int AcceptRetry(int listen_fd) {
  const FailPointAction injected = EvalFailpoint("net.accept");
  if (injected.fired()) return -1;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;  // signal between poll() and accept()
    // EAGAIN (the connection vanished), ECONNABORTED, EMFILE under fd
    // pressure: all transient from the accept loop's point of view.
    return -1;
  }
}

Result<int> ConnectTcp(const std::string& host, int port) {
  IgnoreSigpipe();
  {
    const FailPointAction injected = EvalFailpoint("net.connect");
    if (injected.fired()) return injected.ToStatus("net.connect");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(Errno("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseQuietly(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string err =
        Errno(("connect " + host + ":" + std::to_string(port)).c_str());
    CloseQuietly(fd);
    return Status::IOError(err);
  }
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(Errno("fcntl O_NONBLOCK"));
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void CloseQuietly(int fd) {
  if (fd < 0) return;
  ::close(fd);  // retrying close on EINTR double-closes on Linux; do not
}

void ShutdownDrainClose(int fd, int max_wait_ms) {
  if (fd < 0) return;
  (void)::shutdown(fd, SHUT_WR);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(max_wait_ms);
  char buf[512];
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) break;
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) break;  // timeout or poll failure: give up, just close
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got > 0) continue;
    if (got < 0 && errno == EINTR) continue;
    break;  // EOF (peer closed after reading the verdict) or error
  }
  CloseQuietly(fd);
}

IoResult RecvSome(int fd, void* buf, std::size_t n, const char* failpoint) {
  const FailPointAction injected = EvalFailpoint(failpoint);
  if (injected.fired()) {
    return {IoResult::Kind::kError, 0,
            injected.message.empty() ? "injected read fault"
                                     : injected.message};
  }
  for (;;) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got > 0) return {IoResult::Kind::kOk, static_cast<std::size_t>(got)};
    if (got == 0) return {IoResult::Kind::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoResult::Kind::kWouldBlock, 0};
    }
    return {IoResult::Kind::kError, 0, Errno("recv")};
  }
}

IoResult SendSome(int fd, const void* buf, std::size_t n,
                  const char* failpoint) {
  std::size_t limit = n;
  bool tear_after = false;
  const FailPointAction injected = EvalFailpoint(failpoint);
  if (injected.fired()) {
    if (injected.mode == FailPointMode::kTornWrite && n > 0) {
      // A real prefix reaches the wire, then the "crash": the peer sees a
      // torn frame followed by a close.
      limit = injected.torn_bytes > 0
                  ? std::min<std::size_t>(injected.torn_bytes, n)
                  : n / 2;
      tear_after = true;
      if (limit == 0) {
        return {IoResult::Kind::kError, 0, "injected torn write (0 bytes)"};
      }
    } else {
      return {IoResult::Kind::kError, 0,
              injected.message.empty() ? "injected write fault"
                                       : injected.message};
    }
  }
  for (;;) {
    const ssize_t sent = ::send(fd, buf, limit, MSG_NOSIGNAL);
    if (sent >= 0) {
      if (tear_after) {
        return {IoResult::Kind::kError, static_cast<std::size_t>(sent),
                "injected torn write"};
      }
      return {IoResult::Kind::kOk, static_cast<std::size_t>(sent)};
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoResult::Kind::kWouldBlock, 0};
    }
    return {IoResult::Kind::kError, 0, Errno("send")};
  }
}

WakePipe::~WakePipe() { Close(); }

Status WakePipe::Open() {
  if (::pipe(fds_) != 0) return Status::IOError(Errno("pipe"));
  for (int fd : fds_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  return Status::OK();
}

void WakePipe::Close() {
  CloseQuietly(fds_[0]);
  CloseQuietly(fds_[1]);
  fds_[0] = fds_[1] = -1;
}

void WakePipe::Signal() {
  if (fds_[1] < 0) return;
  const char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)!::write(fds_[1], &byte, 1);
}

void WakePipe::Drain() {
  if (fds_[0] < 0) return;
  char buf[64];
  while (::read(fds_[0], buf, sizeof(buf)) > 0) {
  }
}

}  // namespace sentinel::net
