#ifndef SENTINEL_RULES_SCHEDULER_H_
#define SENTINEL_RULES_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "rules/rule.h"
#include "rules/thread_pool.h"

namespace sentinel::obs {
class Profiler;
class ProvenanceTracer;
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::rules {

/// How triggered rules are ordered (paper §2.2 "Rule scheduling"):
///   kSerial           — strict prioritized serial execution.
///   kConcurrent       — all triggered rules run concurrently.
///   kPriorityClasses  — global order among priority classes, concurrent
///                       execution within a class (the paper's combination).
enum class SchedulingPolicy : std::uint8_t {
  kSerial = 0,
  kConcurrent = 1,
  kPriorityClasses = 2,
};

/// What happens to the *triggering* transaction when a rule fails (its
/// condition/action throws, or its subtransaction cannot commit). The
/// failing rule's own subtransaction is always aborted; the policy decides
/// how far the failure propagates (HiPAC-style contingency handling):
///   kSkipRule — contain the failure to the rule: its subtransaction is
///               aborted, the top-level transaction and sibling rules
///               proceed (default).
///   kAbortTop — the failure dooms the triggering top-level transaction:
///               its remaining queued firings are dropped and the
///               transaction is aborted.
enum class ContingencyPolicy : std::uint8_t {
  kSkipRule = 0,
  kAbortTop = 1,
};

const char* ContingencyPolicyToString(ContingencyPolicy policy);

/// A triggered rule waiting to execute.
struct Firing {
  Rule* rule = nullptr;
  detector::Occurrence occurrence;
  detector::ParamContext context = detector::ParamContext::kRecent;
  storage::TxnId txn = storage::kInvalidTxnId;
  txn::SubTxnId parent_subtxn = txn::kInvalidSubTxn;
  /// Effective priority: the triggering rule's path extended with this
  /// rule's priority class. Lexicographically larger = runs earlier; a
  /// longer path extending a prefix runs earlier (depth-first nested
  /// execution, §3.2.3).
  std::vector<int> priority_path;
  int depth = 1;
  /// Span id of the composite_detect (or notify) span live when the rule
  /// triggered; the firing's subtxn span parents under it so the causal
  /// chain survives the hop onto a scheduler thread.
  std::uint64_t trigger_span = 0;
};

/// Executes rule firings as prioritized subtransactions on a thread pool
/// (paper Fig. 3): condition and action are packaged as the thread body; the
/// triggering application thread suspends in Drain() until all immediate
/// rules (including nested ones) have completed, then resumes.
class RuleScheduler {
 public:
  struct Options {
    SchedulingPolicy policy = SchedulingPolicy::kPriorityClasses;
    std::size_t workers = 4;
    ContingencyPolicy contingency = ContingencyPolicy::kSkipRule;
  };

  RuleScheduler(txn::NestedTransactionManager* nested, oodb::Database* db,
                const Options& options);
  ~RuleScheduler();

  RuleScheduler(const RuleScheduler&) = delete;
  RuleScheduler& operator=(const RuleScheduler&) = delete;

  /// Queues an immediate/deferred firing. Inside an active BatchScope on
  /// this thread the firing is buffered locally and handed over in bulk at
  /// scope exit.
  void Enqueue(Firing firing);

  /// Queues many firings with a single lock acquisition and one
  /// pending-count store (vs one of each per Enqueue call).
  void EnqueueBatch(std::vector<Firing> firings);

  /// RAII batching window: while alive on the current thread, Enqueue()
  /// calls against this scheduler collect into a thread-local buffer that
  /// is flushed as one EnqueueBatch when the scope ends. The pre-commit
  /// hand-off of deferred firings wraps its event raise in one of these so
  /// N deferred rules reach the queue under one lock acquisition. Scopes
  /// nest (inner flushes first).
  class BatchScope {
   public:
    explicit BatchScope(RuleScheduler* scheduler);
    ~BatchScope();

    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

   private:
    friend class RuleScheduler;
    RuleScheduler* scheduler_;
    BatchScope* prev_;
    std::vector<Firing> buffered_;
  };

  /// Queues a detached firing: executed asynchronously in its own top-level
  /// transaction by the detached worker.
  void EnqueueDetached(Firing firing);

  /// Runs queued firings to completion (nested firings included). Called by
  /// the application thread after signalling; it blocks — the paper's
  /// "main application is suspended and the rule scheduler is invoked".
  void Drain();

  /// Blocks until the detached queue is empty (tests and shutdown).
  void WaitDetached();

  /// Per-thread frame describing the firing currently executing on this
  /// thread; used to derive nested firings' parent/priority/depth.
  struct Frame {
    storage::TxnId txn = storage::kInvalidTxnId;
    txn::SubTxnId subtxn = txn::kInvalidSubTxn;
    std::vector<int> priority_path;
    int depth = 0;
  };
  static const Frame* CurrentFrame();

  std::uint64_t executed_count() const { return executed_; }
  /// Pending-queue depth (the lock-free mirror the Drain early-out reads);
  /// a live gauge for the monitoring plane.
  std::size_t pending_count() const {
    return pending_count_.load(std::memory_order_acquire);
  }
  /// Detached-queue depth: queued detached firings plus the one currently
  /// executing on the detached worker.
  std::size_t detached_pending_count() const {
    return detached_count_.load(std::memory_order_acquire);
  }
  /// EnqueueBatch calls (BatchScope flushes included) — each one replaced
  /// buffered.size() individual lock round-trips with one.
  std::uint64_t batch_enqueues() const {
    return batch_enqueues_.load(std::memory_order_relaxed);
  }
  std::uint64_t condition_rejections() const { return rejected_; }
  /// Firings whose condition/action threw or whose subtransaction failed.
  /// Failures are contained: the rule's subtransaction is aborted and the
  /// process keeps serving (never std::terminate).
  std::uint64_t failed_count() const { return failed_; }
  /// Times the kAbortTop contingency aborted a triggering transaction.
  std::uint64_t abort_top_count() const { return abort_top_; }
  int max_depth_seen() const { return max_depth_; }
  // Policy knobs are atomics: the shell (or any admin surface) may flip them
  // while worker threads are popping batches and executing firings.
  SchedulingPolicy policy() const {
    return policy_.load(std::memory_order_relaxed);
  }
  void set_policy(SchedulingPolicy policy) {
    policy_.store(policy, std::memory_order_relaxed);
  }
  ContingencyPolicy contingency() const {
    return contingency_.load(std::memory_order_relaxed);
  }
  void set_contingency(ContingencyPolicy policy) {
    contingency_.store(policy, std::memory_order_relaxed);
  }

  /// Attaches the provenance tracer; firing→subtransaction edges are
  /// recorded while it is enabled.
  void set_tracer(obs::ProvenanceTracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }

  /// Attaches the causal span tracer; each firing records a subtxn span
  /// (with condition/action child spans) parented under its trigger_span.
  void set_span_tracer(obs::SpanTracer* tracer) {
    span_tracer_.store(tracer, std::memory_order_release);
  }

  /// Attaches the continuous profiler; while it is enabled, each firing's
  /// condition/action/commit seams record CPU+wall cost into per-rule and
  /// per-class-symbol accounts and the executing thread is annotated for
  /// the wall-clock sampler.
  void set_profiler(obs::Profiler* profiler) {
    profiler_.store(profiler, std::memory_order_release);
  }

  /// Invoked (with the doomed transaction id) when the kAbortTop contingency
  /// fires, before the transaction is aborted — the active layer hooks the
  /// crash-postmortem dump here.
  using PostmortemHook = std::function<void(storage::TxnId)>;
  void set_postmortem_hook(PostmortemHook hook) {
    std::lock_guard<std::mutex> lock(mu_);
    postmortem_hook_ = std::move(hook);
  }

  /// Record of one executed firing, for the rule debugger and for the
  /// reactive-RULE-class events. Multiple observers may be attached.
  using ExecutionObserver = std::function<void(
      const Firing&, bool condition_held, Status execution_status)>;
  void SetExecutionObserver(ExecutionObserver observer) {
    observers_.push_back(std::move(observer));
  }

 private:
  // Pops the next batch to run according to the policy. Empty == idle.
  std::vector<Firing> PopBatch();
  void Execute(Firing firing);
  void DetachedLoop();
  // kAbortTop contingency: drop queued firings of `txn` and abort it.
  void AbortTop(storage::TxnId txn);

  std::atomic<SchedulingPolicy> policy_;
  std::atomic<ContingencyPolicy> contingency_;
  txn::NestedTransactionManager* nested_;
  oodb::Database* db_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<obs::ProvenanceTracer*> tracer_{nullptr};
  std::atomic<obs::SpanTracer*> span_tracer_{nullptr};
  std::atomic<obs::Profiler*> profiler_{nullptr};
  PostmortemHook postmortem_hook_;  // guarded by mu_

  std::mutex mu_;
  std::deque<Firing> pending_;
  // Mirrors pending_.size(); lets Drain() return without locking when no
  // rule fired (the common case on the Notify hot path, which calls Drain
  // after every notification).
  std::atomic<std::size_t> pending_count_{0};

  std::mutex detached_mu_;
  std::condition_variable detached_cv_;
  std::deque<Firing> detached_pending_;
  // Mirrors detached_pending_.size() + detached_busy_ for lock-free gauge
  // reads by the watchdog sampler.
  std::atomic<std::size_t> detached_count_{0};
  std::size_t detached_busy_ = 0;
  bool stop_detached_ = false;
  std::thread detached_worker_;

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> batch_enqueues_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> abort_top_{0};
  std::atomic<int> max_depth_{0};
  std::vector<ExecutionObserver> observers_;
};

}  // namespace sentinel::rules

#endif  // SENTINEL_RULES_SCHEDULER_H_
