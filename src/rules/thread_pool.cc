#include "rules/thread_pool.h"

#include "common/logging.h"

namespace sentinel::rules {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    // An exception leaving a worker would std::terminate the process; the
    // scheduler contains rule failures upstream, this is the last line of
    // defence for any other task.
    try {
      task();
    } catch (const std::exception& e) {
      SENTINEL_LOG(kError) << "thread pool task threw (contained): "
                           << e.what();
    } catch (...) {
      SENTINEL_LOG(kError) << "thread pool task threw a non-standard "
                              "exception (contained)";
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
      if (queue_.empty() && busy_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace sentinel::rules
