#include "rules/scheduler.h"

#include <algorithm>
#include <chrono>

#include "common/failpoint.h"
#include "common/logging.h"
#include "detector/local_detector.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace sentinel::rules {

namespace {

thread_local RuleScheduler::Frame* t_frame = nullptr;
thread_local RuleScheduler::BatchScope* t_batch_scope = nullptr;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Lexicographic priority order: larger element wins; a path extending a
/// prefix wins over the prefix (depth-first).
bool PathLess(const std::vector<int>& a, const std::vector<int>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return a.size() < b.size();
}

}  // namespace

const char* ContingencyPolicyToString(ContingencyPolicy policy) {
  switch (policy) {
    case ContingencyPolicy::kSkipRule:
      return "SKIP_RULE";
    case ContingencyPolicy::kAbortTop:
      return "ABORT_TOP";
  }
  return "?";
}

const RuleScheduler::Frame* RuleScheduler::CurrentFrame() { return t_frame; }

RuleScheduler::RuleScheduler(txn::NestedTransactionManager* nested,
                             oodb::Database* db, const Options& options)
    : policy_(options.policy),
      contingency_(options.contingency),
      nested_(nested),
      db_(db),
      pool_(std::make_unique<ThreadPool>(options.workers)) {
  detached_worker_ = std::thread([this] { DetachedLoop(); });
}

RuleScheduler::~RuleScheduler() {
  {
    std::lock_guard<std::mutex> lock(detached_mu_);
    stop_detached_ = true;
  }
  detached_cv_.notify_all();
  detached_worker_.join();
  pool_.reset();
}

RuleScheduler::BatchScope::BatchScope(RuleScheduler* scheduler)
    : scheduler_(scheduler), prev_(t_batch_scope) {
  t_batch_scope = this;
}

RuleScheduler::BatchScope::~BatchScope() {
  t_batch_scope = prev_;
  if (!buffered_.empty()) scheduler_->EnqueueBatch(std::move(buffered_));
}

void RuleScheduler::Enqueue(Firing firing) {
  if (t_batch_scope != nullptr && t_batch_scope->scheduler_ == this) {
    t_batch_scope->buffered_.push_back(std::move(firing));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(std::move(firing));
  pending_count_.store(pending_.size(), std::memory_order_release);
}

void RuleScheduler::EnqueueBatch(std::vector<Firing> firings) {
  if (firings.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (Firing& firing : firings) pending_.push_back(std::move(firing));
  pending_count_.store(pending_.size(), std::memory_order_release);
  batch_enqueues_.fetch_add(1, std::memory_order_relaxed);
}

void RuleScheduler::EnqueueDetached(Firing firing) {
  // A detached firing outlives the Notify call that raised it, but its
  // constituent occurrences may reference caller-owned parameter lists that
  // are only guaranteed to live for the duration of that call. Pin them by
  // deep-copying every constituent (and its ParamList) onto fresh
  // heap-owned storage before the firing crosses onto the detached queue.
  for (auto& constituent : firing.occurrence.constituents) {
    if (constituent == nullptr) continue;
    auto copy = std::make_shared<detector::PrimitiveOccurrence>(*constituent);
    if (copy->params != nullptr) {
      copy->params = std::make_shared<detector::ParamList>(*copy->params);
    }
    constituent = std::move(copy);
  }
  {
    std::lock_guard<std::mutex> lock(detached_mu_);
    detached_pending_.push_back(std::move(firing));
    detached_count_.store(detached_pending_.size() + detached_busy_,
                          std::memory_order_release);
  }
  detached_cv_.notify_one();
}

std::vector<Firing> RuleScheduler::PopBatch() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Firing> batch;
  if (pending_.empty()) return batch;

  // Index of the highest-priority pending firing.
  std::size_t best = 0;
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    if (PathLess(pending_[best].priority_path, pending_[i].priority_path)) {
      best = i;
    }
  }
  switch (policy()) {
    case SchedulingPolicy::kSerial: {
      batch.push_back(std::move(pending_[best]));
      pending_.erase(pending_.begin() + static_cast<long>(best));
      break;
    }
    case SchedulingPolicy::kConcurrent: {
      for (Firing& f : pending_) batch.push_back(std::move(f));
      pending_.clear();
      break;
    }
    case SchedulingPolicy::kPriorityClasses: {
      // Everything sharing the top priority path runs concurrently.
      const std::vector<int> top = pending_[best].priority_path;
      std::deque<Firing> keep;
      for (Firing& f : pending_) {
        if (f.priority_path == top) {
          batch.push_back(std::move(f));
        } else {
          keep.push_back(std::move(f));
        }
      }
      pending_ = std::move(keep);
      break;
    }
  }
  pending_count_.store(pending_.size(), std::memory_order_release);
  return batch;
}

void RuleScheduler::Drain() {
  for (;;) {
    // Drain is called after every notification; when no rule fired there is
    // nothing queued — return without touching the queue lock.
    if (pending_count_.load(std::memory_order_acquire) == 0) return;
    std::vector<Firing> batch = PopBatch();
    if (batch.empty()) return;
    if (batch.size() == 1) {
      Execute(std::move(batch[0]));
      continue;
    }
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::size_t remaining = batch.size();
    for (Firing& firing : batch) {
      pool_->Submit([this, f = std::move(firing), &done_mu, &done_cv,
                     &remaining]() mutable {
        Execute(std::move(f));
        std::lock_guard<std::mutex> lock(done_mu);
        if (--remaining == 0) done_cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&remaining] { return remaining == 0; });
  }
}

void RuleScheduler::Execute(Firing firing) {
  Rule* rule = firing.rule;
  if (rule == nullptr || !rule->enabled()) return;

  obs::ProvenanceTracer* tracer = tracer_.load(std::memory_order_acquire);
  const bool tracing = tracer != nullptr && tracer->enabled();
  obs::SpanTracer* span_tracer = span_tracer_.load(std::memory_order_acquire);
  const bool spans =
      span_tracer != nullptr &&
      span_tracer->enabled_for(obs::SpanKind::kSubTxn);

  // Continuous profiling (one relaxed load when off): the condition/action/
  // commit seams below reuse the wall timestamps already taken for the rule
  // histograms and add a thread-CPU clock reading, so the profiler's
  // per-rule accounts agree with the histograms by construction.
  obs::Profiler* profiler = profiler_.load(std::memory_order_acquire);
  const bool profiling = profiler != nullptr && profiler->enabled();
  obs::Profiler::CostDelta prof_condition;
  obs::Profiler::CostDelta prof_action;
  obs::Profiler::CostDelta prof_commit;
  obs::Profiler::ThreadAnnotations* annotations = nullptr;
  const char* rule_frame = nullptr;
  if (profiling) {
    annotations = profiler->EnsureThisThread("rule-exec");
    rule_frame = profiler->InternFrame(rule->name());
  }
  obs::Profiler::AnnotationScope exec_frame(profiler, annotations, rule_frame);

  RuleContext ctx;
  ctx.occurrence = &firing.occurrence;
  ctx.context = firing.context;
  ctx.txn = firing.txn;
  ctx.db = db_;

  // Package condition+action as a subtransaction (paper Fig. 3).
  txn::SubTxnId sub = txn::kInvalidSubTxn;
  Status sub_status;
  if (nested_ != nullptr && firing.txn != storage::kInvalidTxnId) {
    auto begun = nested_->Begin(firing.txn, firing.parent_subtxn);
    if (!begun.ok() && firing.parent_subtxn != txn::kInvalidSubTxn) {
      // The triggering rule's subtransaction has already committed (its
      // locks were inherited upward), so attach this nested rule directly
      // under the top-level transaction — it shares the retained locks.
      begun = nested_->Begin(firing.txn, txn::kInvalidSubTxn);
    }
    if (begun.ok()) {
      sub = *begun;
      if (tracing) {
        tracer->Record(obs::EdgeKind::kSubTxn, rule->name(), "begin",
                       firing.txn, firing.context, sub);
      }
    } else {
      sub_status = begun.status();
      SENTINEL_LOG(kWarn) << "subtransaction begin failed for rule "
                          << rule->name() << ": " << sub_status.ToString();
    }
  }
  ctx.subtxn = sub;

  // Subtxn span: parented under the triggering detection's span (captured
  // into the firing when it was enqueued — the execution usually happens on
  // a different thread, so the per-thread scope stack cannot supply it).
  // The scope stays open across commit/abort below so the span covers the
  // whole firing lifecycle; condition/action child spans nest inside it via
  // this thread's scope stack.
  obs::SpanScope subtxn_span;
  if (spans) {
    subtxn_span.Start(span_tracer, obs::SpanKind::kSubTxn, firing.txn,
                      rule->name(), sub, firing.trigger_span);
  }

  // Publish this firing as the current frame so nested triggers (raised from
  // the action) inherit txn/priority/depth.
  Frame frame;
  frame.txn = firing.txn;
  frame.subtxn = sub;
  frame.priority_path = firing.priority_path;
  frame.depth = firing.depth;
  Frame* prev_frame = t_frame;
  t_frame = &frame;

  int seen = max_depth_.load(std::memory_order_relaxed);
  while (firing.depth > seen &&
         !max_depth_.compare_exchange_weak(seen, firing.depth)) {
  }

  // Run condition + action inside a containment boundary (paper §2.3: rule
  // failures are isolated in their subtransaction). A thrown exception or
  // an injected fault aborts only this rule's subtransaction — it must
  // never escape into the worker thread and kill the process.
  bool condition_held = true;
  Status failure;
  if (FailPointRegistry::AnyActive()) {
    FailPointAction action =
        FailPointRegistry::Instance().Evaluate("scheduler.execute");
    if (action.fired()) failure = action.ToStatus("scheduler.execute");
  }
  if (failure.ok()) {
    try {
      if (rule->condition()) {
        // Conditions are side-effect free: suppress event signalling while
        // the condition function runs (§3.2.1).
        detector::LocalEventDetector::SuppressScope guard;
        obs::SpanScope cond_span;
        if (spans && span_tracer->enabled_for(obs::SpanKind::kCondition)) {
          cond_span.Start(span_tracer, obs::SpanKind::kCondition, firing.txn,
                          rule->name() + ".condition", sub);
        }
        obs::Profiler::AnnotationScope cond_frame(profiler, annotations,
                                                  "condition");
        const std::uint64_t cpu0 =
            profiling ? obs::Profiler::ThreadCpuNs() : 0;
        const std::uint64_t t0 = NowNs();
        condition_held = rule->condition()(ctx);
        const std::uint64_t wall = NowNs() - t0;
        rule->metrics().condition_ns.Record(wall);
        if (profiling) {
          prof_condition = {obs::Profiler::ThreadCpuNs() - cpu0, wall, true};
        }
      }
      if (condition_held && rule->action()) {
        obs::SpanScope action_span;
        if (spans && span_tracer->enabled_for(obs::SpanKind::kAction)) {
          action_span.Start(span_tracer, obs::SpanKind::kAction, firing.txn,
                            rule->name() + ".action", sub);
        }
        obs::Profiler::AnnotationScope action_frame(profiler, annotations,
                                                    "action");
        const std::uint64_t cpu0 =
            profiling ? obs::Profiler::ThreadCpuNs() : 0;
        const std::uint64_t t0 = NowNs();
        rule->action()(ctx);
        const std::uint64_t wall = NowNs() - t0;
        rule->metrics().action_ns.Record(wall);
        if (profiling) {
          prof_action = {obs::Profiler::ThreadCpuNs() - cpu0, wall, true};
        }
      }
    } catch (const std::exception& e) {
      failure = Status::Internal("rule " + rule->name() +
                                 " threw: " + e.what());
    } catch (...) {
      failure =
          Status::Internal("rule " + rule->name() + " threw a non-standard "
                           "exception");
    }
  }

  t_frame = prev_frame;

  if (sub != txn::kInvalidSubTxn) {
    // The time this subtransaction spent blocked acquiring nested locks is
    // accumulated by the lock table; harvest it before the subtxn finishes.
    rule->metrics().lock_wait_ns.Record(nested_->LockWaitNs(sub));
    if (failure.ok()) {
      const std::uint64_t cpu0 = profiling ? obs::Profiler::ThreadCpuNs() : 0;
      const std::uint64_t t0 = NowNs();
      Status commit = nested_->Commit(sub);
      const std::uint64_t commit_wall = NowNs() - t0;
      rule->metrics().commit_ns.Record(commit_wall);
      if (profiling) {
        prof_commit = {obs::Profiler::ThreadCpuNs() - cpu0, commit_wall,
                       true};
      }
      if (tracing) {
        tracer->Record(obs::EdgeKind::kSubTxn, rule->name(),
                       commit.ok() ? "commit" : "commit-failed", firing.txn,
                       firing.context, sub);
      }
      if (!commit.ok()) {
        SENTINEL_LOG(kWarn) << "subtransaction commit failed for rule "
                            << rule->name() << ": " << commit.ToString();
        sub_status = commit;
      }
    } else {
      const std::uint64_t t0 = NowNs();
      Status aborted = nested_->Abort(sub);
      rule->metrics().abort_ns.Record(NowNs() - t0);
      if (tracing) {
        tracer->Record(obs::EdgeKind::kSubTxn, rule->name(), "abort",
                       firing.txn, firing.context, sub);
      }
      if (!aborted.ok()) {
        SENTINEL_LOG(kWarn) << "subtransaction abort failed for rule "
                            << rule->name() << ": " << aborted.ToString();
      }
    }
  }

  if (profiling) {
    profiler->RecordRuleFiring(rule->name(), &firing.occurrence,
                               prof_condition, prof_action, prof_commit);
  }

  if (failure.ok()) {
    if (condition_held) {
      rule->CountFiring();
      executed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    sub_status = failure;
    const ContingencyPolicy contingency = this->contingency();
    SENTINEL_LOG(kWarn) << "rule " << rule->name() << " failed (contained, "
                        << ContingencyPolicyToString(contingency)
                        << "): " << failure.ToString();
    if (contingency == ContingencyPolicy::kAbortTop &&
        firing.txn != storage::kInvalidTxnId) {
      AbortTop(firing.txn);
    }
  }
  for (const ExecutionObserver& observer : observers_) {
    observer(firing, condition_held, sub_status);
  }
}

void RuleScheduler::AbortTop(storage::TxnId txn) {
  abort_top_.fetch_add(1, std::memory_order_relaxed);
  PostmortemHook hook;
  {
    // Drop this transaction's queued firings: its effects are being rolled
    // back, so running more of its rules would be wasted (and unsafe) work.
    std::lock_guard<std::mutex> lock(mu_);
    hook = postmortem_hook_;
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [txn](const Firing& f) {
                                    return f.txn == txn;
                                  }),
                   pending_.end());
    pending_count_.store(pending_.size(), std::memory_order_release);
  }
  // Dump the postmortem before the abort tears down the transaction state
  // it describes (open spans, in-flight subtransactions, held locks).
  if (hook) hook(txn);
  if (db_ != nullptr) {
    Status st = db_->Abort(txn);
    if (!st.ok()) {
      SENTINEL_LOG(kWarn) << "contingency abort of txn " << txn
                          << " failed: " << st.ToString();
    }
  }
}

void RuleScheduler::DetachedLoop() {
  for (;;) {
    Firing firing;
    {
      std::unique_lock<std::mutex> lock(detached_mu_);
      detached_cv_.wait(lock, [this] {
        return stop_detached_ || !detached_pending_.empty();
      });
      if (stop_detached_ && detached_pending_.empty()) return;
      firing = std::move(detached_pending_.front());
      detached_pending_.pop_front();
      ++detached_busy_;
      detached_count_.store(detached_pending_.size() + detached_busy_,
                            std::memory_order_release);
    }
    // Detached rules run in their own top-level transaction, causally
    // independent of the triggering one (paper §2.2, §4).
    storage::TxnId detached_txn = storage::kInvalidTxnId;
    if (db_ != nullptr) {
      auto begun = db_->Begin();
      if (begun.ok()) detached_txn = *begun;
    }
    firing.txn = detached_txn;
    firing.parent_subtxn = txn::kInvalidSubTxn;
    Execute(std::move(firing));
    if (detached_txn != storage::kInvalidTxnId) {
      Status st = db_->Commit(detached_txn);
      if (!st.ok()) {
        SENTINEL_LOG(kWarn) << "detached txn commit failed: " << st.ToString();
      }
    }
    // Nested triggers raised by a detached action execute inline here.
    Drain();
    {
      std::lock_guard<std::mutex> lock(detached_mu_);
      --detached_busy_;
      detached_count_.store(detached_pending_.size() + detached_busy_,
                            std::memory_order_release);
      if (detached_pending_.empty() && detached_busy_ == 0) {
        detached_cv_.notify_all();
      }
    }
  }
}

void RuleScheduler::WaitDetached() {
  // A detached rule's action may itself delete rules (which waits on this
  // queue); waiting for the queue to drain from the worker that is draining
  // it would self-deadlock.
  if (std::this_thread::get_id() == detached_worker_.get_id()) return;
  std::unique_lock<std::mutex> lock(detached_mu_);
  detached_cv_.wait(lock, [this] {
    return detached_pending_.empty() && detached_busy_ == 0;
  });
}

}  // namespace sentinel::rules
