#ifndef SENTINEL_RULES_RULE_H_
#define SENTINEL_RULES_RULE_H_

#include <atomic>
#include <functional>
#include <string>

#include "common/clock.h"
#include "detector/event_types.h"
#include "obs/metrics.h"
#include "oodb/database.h"
#include "txn/nested_txn.h"

namespace sentinel::rules {

/// When the condition-action pair executes relative to the triggering
/// transaction (HiPAC coupling modes, paper §2.2). DEFERRED is implemented
/// by the pre-processor rewrite to A*(begin_txn, E, pre_commit) (§2.3);
/// DETACHED runs in a separate top-level transaction.
enum class CouplingMode : std::uint8_t {
  kImmediate = 0,
  kDeferred = 1,
  kDetached = 2,
};

const char* CouplingModeToString(CouplingMode mode);

/// Whether event occurrences that temporally precede the rule definition may
/// trigger it (paper §3.1: NOW is the default).
enum class TriggerMode : std::uint8_t { kNow = 0, kPrevious = 1 };

/// Rule visibility (paper §4 lists "public, private, and protected rules"
/// as planned rule-management support). Scopes govern who may manage
/// (enable/disable/delete/reprioritize) a rule:
///   kPublic    — any principal;
///   kProtected — the owner and principals in the owner's group;
///   kPrivate   — the owner only.
enum class RuleVisibility : std::uint8_t {
  kPublic = 0,
  kProtected = 1,
  kPrivate = 2,
};

const char* RuleVisibilityToString(RuleVisibility visibility);

/// Everything a condition/action function may touch. Conditions must be
/// side-effect free (event signalling is suppressed while they run); actions
/// may invoke reactive methods, raising nested rule triggers.
struct RuleContext {
  const detector::Occurrence* occurrence = nullptr;
  detector::ParamContext context = detector::ParamContext::kRecent;
  storage::TxnId txn = storage::kInvalidTxnId;
  txn::SubTxnId subtxn = txn::kInvalidSubTxn;
  oodb::Database* db = nullptr;

  /// Convenience passthrough to the triggering occurrence's parameters.
  Result<oodb::Value> Param(const std::string& name) const {
    if (occurrence == nullptr) return Status::NotFound("no occurrence");
    return occurrence->Param(name);
  }
};

using ConditionFn = std::function<bool(const RuleContext&)>;
using ActionFn = std::function<void(const RuleContext&)>;

class RuleManager;

/// One ECA rule. Subscribes to its event expression as an EventSink; when
/// the event is detected in the rule's parameter context, the rule manager
/// packages the condition and action into a prioritized subtransaction
/// (paper Fig. 3).
class Rule : public detector::EventSink {
 public:
  Rule(std::string name, std::string event_name, ConditionFn condition,
       ActionFn action);

  const std::string& name() const { return name_; }
  /// The event the rule is subscribed to after any coupling-mode rewrite
  /// (for a DEFERRED rule this is the generated A* event).
  const std::string& event_name() const { return event_name_; }
  /// The event the user specified at definition time.
  const std::string& declared_event() const { return declared_event_; }

  const ConditionFn& condition() const { return condition_; }
  const ActionFn& action() const { return action_; }

  detector::ParamContext context() const { return context_; }
  CouplingMode coupling() const { return coupling_; }
  int priority() const { return priority_; }
  TriggerMode trigger_mode() const { return trigger_mode_; }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void set_context(detector::ParamContext context) { context_ = context; }
  void set_coupling_mode(CouplingMode mode) { coupling_ = mode; }
  void set_priority(int priority) { priority_ = priority; }
  void set_trigger_mode(TriggerMode mode) { trigger_mode_ = mode; }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  void set_event_name(std::string event_name) {
    event_name_ = std::move(event_name);
  }
  void set_declared_event(std::string event) {
    declared_event_ = std::move(event);
  }
  void set_defined_at(Timestamp at) { defined_at_ = at; }
  Timestamp defined_at() const { return defined_at_; }

  const std::string& owner() const { return owner_; }
  void set_owner(std::string owner) { owner_ = std::move(owner); }
  RuleVisibility visibility() const { return visibility_; }
  void set_visibility(RuleVisibility visibility) { visibility_ = visibility; }

  std::uint64_t fired_count() const {
    return fired_.load(std::memory_order_relaxed);
  }
  void CountFiring() { fired_.fetch_add(1, std::memory_order_relaxed); }

  /// Latency histograms for this rule's firing pipeline (condition, action,
  /// subtransaction commit/abort, lock wait). Recorded by the scheduler.
  obs::RuleMetrics& metrics() const { return metrics_; }

  /// EventSink: filters by context, enabled flag and trigger mode, then
  /// hands the firing to the rule manager.
  void OnEvent(const detector::Occurrence& occurrence,
               detector::ParamContext context) override;

  void set_manager(RuleManager* manager) { manager_ = manager; }

 private:
  std::string name_;
  std::string event_name_;
  std::string declared_event_;
  ConditionFn condition_;
  ActionFn action_;
  detector::ParamContext context_ = detector::ParamContext::kRecent;
  CouplingMode coupling_ = CouplingMode::kImmediate;
  int priority_ = 0;
  TriggerMode trigger_mode_ = TriggerMode::kNow;
  Timestamp defined_at_ = 0;
  std::string owner_;  // empty == unowned (management unrestricted)
  RuleVisibility visibility_ = RuleVisibility::kPublic;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> fired_{0};
  mutable obs::RuleMetrics metrics_;
  RuleManager* manager_ = nullptr;
};

}  // namespace sentinel::rules

#endif  // SENTINEL_RULES_RULE_H_
