#ifndef SENTINEL_RULES_RULE_MANAGER_H_
#define SENTINEL_RULES_RULE_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "detector/local_detector.h"
#include "rules/rule.h"
#include "rules/scheduler.h"

namespace sentinel::rules {

/// Rule definition/management (paper §3.1): defines rules on named event
/// expressions with a parameter context, coupling mode, priority and trigger
/// mode; supports run-time enable/disable/delete; performs the DEFERRED →
/// A*(begin_txn, E, pre_commit) rewrite; and routes triggered rules to the
/// scheduler.
class RuleManager {
 public:
  struct Config {
    /// Names of the system transaction events the active layer signals; used
    /// by the DEFERRED rewrite. Must exist in the detector before the first
    /// deferred rule is defined.
    std::string begin_txn_event = "sys_begin_transaction";
    std::string pre_commit_event = "sys_pre_commit_transaction";
  };

  struct RuleOptions {
    detector::ParamContext context = detector::ParamContext::kRecent;
    CouplingMode coupling = CouplingMode::kImmediate;
    int priority = 0;
    TriggerMode trigger_mode = TriggerMode::kNow;
    bool enabled = true;
    /// Principal owning the rule; empty leaves management unrestricted.
    std::string owner;
    RuleVisibility visibility = RuleVisibility::kPublic;
  };

  /// A principal attempting rule management: a name plus group memberships
  /// (groups gate PROTECTED rules).
  struct Principal {
    std::string name;
    std::vector<std::string> groups;
  };

  RuleManager(detector::LocalEventDetector* detector, RuleScheduler* scheduler,
              Config config);
  RuleManager(detector::LocalEventDetector* detector, RuleScheduler* scheduler);
  ~RuleManager();

  RuleManager(const RuleManager&) = delete;
  RuleManager& operator=(const RuleManager&) = delete;

  /// Defines rule `name` on the (already defined) event `event_name`.
  Result<Rule*> DefineRule(const std::string& name,
                           const std::string& event_name, ConditionFn condition,
                           ActionFn action, const RuleOptions& options);
  Result<Rule*> DefineRule(const std::string& name,
                           const std::string& event_name, ConditionFn condition,
                           ActionFn action);

  Result<Rule*> Find(const std::string& name) const;
  Status EnableRule(const std::string& name);
  Status DisableRule(const std::string& name);
  Status DeleteRule(const std::string& name);
  Status SetRulePriority(const std::string& name, int priority);

  /// Visibility-checked management (paper §4: public/private/protected
  /// rules). A PRIVATE rule is manageable only by its owner; a PROTECTED
  /// rule also by principals sharing one of the owner's registered groups;
  /// PUBLIC (or unowned) rules by anyone.
  Status EnableRuleAs(const Principal& who, const std::string& name);
  Status DisableRuleAs(const Principal& who, const std::string& name);
  Status DeleteRuleAs(const Principal& who, const std::string& name);

  /// Declares that `member` belongs to `group` (for PROTECTED checks).
  void JoinGroup(const std::string& member, const std::string& group);

  /// True if `who` may manage `rule` under its visibility scope.
  bool MayManage(const Principal& who, const Rule& rule) const;

  std::vector<std::string> RuleNames() const;
  std::size_t rule_count() const;

  /// Named, totally ordered priority classes (paper §3.1): rules may be
  /// assigned by class name instead of raw number.
  Status DefinePriorityClass(const std::string& class_name, int rank);
  Result<int> PriorityClassRank(const std::string& class_name) const;
  Result<Rule*> DefineRuleWithPriorityClass(const std::string& name,
                                            const std::string& event_name,
                                            ConditionFn condition,
                                            ActionFn action,
                                            RuleOptions options,
                                            const std::string& priority_class);

  /// Called by Rule::OnEvent when a rule triggers; builds the Firing (with
  /// nesting-aware priority path) and dispatches per coupling mode.
  void Trigger(Rule* rule, const detector::Occurrence& occurrence,
               detector::ParamContext context);

  RuleScheduler* scheduler() { return scheduler_; }
  detector::LocalEventDetector* detector() { return detector_; }

 private:
  Status SubscribeRuleLocked(Rule* rule);
  Status UnsubscribeRuleLocked(Rule* rule);

  detector::LocalEventDetector* detector_;
  RuleScheduler* scheduler_;
  Config config_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Rule>> rules_;
  std::map<std::string, int> priority_classes_;
  std::map<std::string, std::vector<std::string>> group_members_;
  int deferred_counter_ = 0;
};

}  // namespace sentinel::rules

#endif  // SENTINEL_RULES_RULE_MANAGER_H_
