#include "rules/rule_manager.h"

#include "common/logging.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace sentinel::rules {

const char* RuleVisibilityToString(RuleVisibility visibility) {
  switch (visibility) {
    case RuleVisibility::kPublic:
      return "PUBLIC";
    case RuleVisibility::kProtected:
      return "PROTECTED";
    case RuleVisibility::kPrivate:
      return "PRIVATE";
  }
  return "?";
}

const char* CouplingModeToString(CouplingMode mode) {
  switch (mode) {
    case CouplingMode::kImmediate:
      return "IMMEDIATE";
    case CouplingMode::kDeferred:
      return "DEFERRED";
    case CouplingMode::kDetached:
      return "DETACHED";
  }
  return "?";
}

Rule::Rule(std::string name, std::string event_name, ConditionFn condition,
           ActionFn action)
    : name_(std::move(name)),
      event_name_(event_name),
      declared_event_(std::move(event_name)),
      condition_(std::move(condition)),
      action_(std::move(action)) {}

void Rule::OnEvent(const detector::Occurrence& occurrence,
                   detector::ParamContext context) {
  if (context != context_) return;  // detections in other rules' contexts
  if (!enabled()) return;
  if (trigger_mode_ == TriggerMode::kNow && occurrence.t_start <= defined_at_) {
    // NOW: only constituent events from the definition instant onward are
    // acceptable (paper §3.1) — an occurrence whose interval starts earlier
    // contains pre-definition constituents.
    return;
  }
  if (manager_ != nullptr) manager_->Trigger(this, occurrence, context);
}

RuleManager::RuleManager(detector::LocalEventDetector* detector,
                         RuleScheduler* scheduler, Config config)
    : detector_(detector), scheduler_(scheduler), config_(std::move(config)) {}

RuleManager::RuleManager(detector::LocalEventDetector* detector,
                         RuleScheduler* scheduler)
    : RuleManager(detector, scheduler, Config()) {}

Result<Rule*> RuleManager::DefineRule(const std::string& name,
                                      const std::string& event_name,
                                      ConditionFn condition, ActionFn action) {
  return DefineRule(name, event_name, std::move(condition), std::move(action),
                    RuleOptions());
}

RuleManager::~RuleManager() {
  // Unsubscribe all rules so the detector never notifies dangling sinks.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, rule] : rules_) {
    (void)name;
    if (rule->enabled()) (void)UnsubscribeRuleLocked(rule.get());
  }
}

Status RuleManager::SubscribeRuleLocked(Rule* rule) {
  return detector_->Subscribe(rule->event_name(), rule, rule->context());
}

Status RuleManager::UnsubscribeRuleLocked(Rule* rule) {
  return detector_->Unsubscribe(rule->event_name(), rule, rule->context());
}

Result<Rule*> RuleManager::DefineRule(const std::string& name,
                                      const std::string& event_name,
                                      ConditionFn condition, ActionFn action,
                                      const RuleOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rules_.count(name) != 0) {
    return Status::AlreadyExists("rule already defined: " + name);
  }
  auto event = detector_->Find(event_name);
  if (!event.ok()) return event.status();

  auto rule = std::make_unique<Rule>(name, event_name, std::move(condition),
                                     std::move(action));
  rule->set_context(options.context);
  rule->set_coupling_mode(options.coupling);
  rule->set_priority(options.priority);
  rule->set_trigger_mode(options.trigger_mode);
  rule->set_owner(options.owner);
  rule->set_visibility(options.visibility);
  rule->set_manager(this);
  rule->set_defined_at(options.trigger_mode == TriggerMode::kNow
                           ? detector_->clock()->Now()
                           : 0);

  if (options.coupling == CouplingMode::kDeferred) {
    // The Sentinel pre-processor rewrite (§2.3, §3.2.3): subscribe the rule
    // to A*(begin_txn, E, pre_commit) so it executes exactly once, at the
    // end of the transaction, with the net accumulation of its event.
    auto begin_event = detector_->Find(config_.begin_txn_event);
    if (!begin_event.ok()) {
      return Status::InvalidArgument(
          "deferred rules require the system event " + config_.begin_txn_event);
    }
    auto pre_commit = detector_->Find(config_.pre_commit_event);
    if (!pre_commit.ok()) {
      return Status::InvalidArgument(
          "deferred rules require the system event " +
          config_.pre_commit_event);
    }
    const std::string rewritten =
        "__deferred_" + std::to_string(deferred_counter_++) + "_" + event_name;
    auto node = detector_->DefineAperiodicStar(rewritten, *begin_event, *event,
                                               *pre_commit);
    if (!node.ok()) return node.status();
    rule->set_event_name(rewritten);
  }

  Rule* raw = rule.get();
  if (options.enabled) {
    SENTINEL_RETURN_NOT_OK(SubscribeRuleLocked(raw));
  } else {
    raw->set_enabled(false);
  }
  rules_[name] = std::move(rule);
  return raw;
}

Result<Rule*> RuleManager::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(name);
  if (it == rules_.end()) {
    return Status::NotFound("no rule named " + name);
  }
  return it->second.get();
}

Status RuleManager::EnableRule(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(name);
  if (it == rules_.end()) return Status::NotFound("no rule named " + name);
  Rule* rule = it->second.get();
  if (rule->enabled()) return Status::OK();
  SENTINEL_RETURN_NOT_OK(SubscribeRuleLocked(rule));
  // Re-enabling behaves like a fresh NOW definition: occurrences detected
  // while disabled do not trigger.
  if (rule->trigger_mode() == TriggerMode::kNow) {
    rule->set_defined_at(detector_->clock()->Now());
  }
  rule->set_enabled(true);
  return Status::OK();
}

Status RuleManager::DisableRule(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(name);
  if (it == rules_.end()) return Status::NotFound("no rule named " + name);
  Rule* rule = it->second.get();
  if (!rule->enabled()) return Status::OK();
  SENTINEL_RETURN_NOT_OK(UnsubscribeRuleLocked(rule));
  rule->set_enabled(false);
  return Status::OK();
}

Status RuleManager::DeleteRule(const std::string& name) {
  std::string rewritten_event;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rules_.find(name);
    if (it == rules_.end()) return Status::NotFound("no rule named " + name);
    if (it->second->enabled()) {
      SENTINEL_RETURN_NOT_OK(UnsubscribeRuleLocked(it->second.get()));
      it->second->set_enabled(false);
    }
    if (it->second->event_name() != it->second->declared_event()) {
      // Coupling-mode rewrite (e.g. the DEFERRED A* node): generated per
      // rule, so it dies with the rule.
      rewritten_event = it->second->event_name();
    }
  }
  // Firings already queued still hold a pointer to the rule object; being
  // disabled they will be skipped, but they must finish before the object
  // dies. Unsubscribed + disabled means no new firings can appear. Detached
  // firings run on their own worker and hold the same pointer — wait for
  // that queue too.
  scheduler_->Drain();
  scheduler_->WaitDetached();
  std::lock_guard<std::mutex> lock(mu_);
  rules_.erase(name);
  if (!rewritten_event.empty()) {
    // Graph hygiene: without this the generated node keeps buffering
    // occurrences (in whatever contexts other expressions still activate on
    // its children) for the rest of the process lifetime.
    Status removed = detector_->RemoveEvent(rewritten_event);
    if (!removed.ok()) {
      SENTINEL_LOG(kWarn) << "failed to remove rewritten event node "
                          << rewritten_event << ": " << removed.ToString();
    }
  }
  return Status::OK();
}

Status RuleManager::SetRulePriority(const std::string& name, int priority) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(name);
  if (it == rules_.end()) return Status::NotFound("no rule named " + name);
  it->second->set_priority(priority);
  return Status::OK();
}

std::vector<std::string> RuleManager::RuleNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(rules_.size());
  for (const auto& [name, rule] : rules_) {
    (void)rule;
    names.push_back(name);
  }
  return names;
}

std::size_t RuleManager::rule_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_.size();
}

void RuleManager::JoinGroup(const std::string& member,
                            const std::string& group) {
  std::lock_guard<std::mutex> lock(mu_);
  group_members_[group].push_back(member);
}

bool RuleManager::MayManage(const Principal& who, const Rule& rule) const {
  if (rule.owner().empty()) return true;  // unowned: unrestricted
  switch (rule.visibility()) {
    case RuleVisibility::kPublic:
      return true;
    case RuleVisibility::kPrivate:
      return who.name == rule.owner();
    case RuleVisibility::kProtected: {
      if (who.name == rule.owner()) return true;
      std::lock_guard<std::mutex> lock(mu_);
      // Shared group: the owner and the caller both belong to it.
      for (const std::string& group : who.groups) {
        auto it = group_members_.find(group);
        if (it == group_members_.end()) continue;
        for (const std::string& member : it->second) {
          if (member == rule.owner()) return true;
        }
      }
      return false;
    }
  }
  return false;
}

namespace {
Status Forbidden(const RuleManager::Principal& who, const Rule& rule) {
  return Status::InvalidArgument(
      "principal '" + who.name + "' may not manage " +
      RuleVisibilityToString(rule.visibility()) + " rule '" + rule.name() +
      "' owned by '" + rule.owner() + "'");
}
}  // namespace

Status RuleManager::EnableRuleAs(const Principal& who,
                                 const std::string& name) {
  auto rule = Find(name);
  if (!rule.ok()) return rule.status();
  if (!MayManage(who, **rule)) return Forbidden(who, **rule);
  return EnableRule(name);
}

Status RuleManager::DisableRuleAs(const Principal& who,
                                  const std::string& name) {
  auto rule = Find(name);
  if (!rule.ok()) return rule.status();
  if (!MayManage(who, **rule)) return Forbidden(who, **rule);
  return DisableRule(name);
}

Status RuleManager::DeleteRuleAs(const Principal& who,
                                 const std::string& name) {
  auto rule = Find(name);
  if (!rule.ok()) return rule.status();
  if (!MayManage(who, **rule)) return Forbidden(who, **rule);
  return DeleteRule(name);
}

Status RuleManager::DefinePriorityClass(const std::string& class_name,
                                        int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = priority_classes_.emplace(class_name, rank);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("priority class exists: " + class_name);
  }
  return Status::OK();
}

Result<int> RuleManager::PriorityClassRank(const std::string& class_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = priority_classes_.find(class_name);
  if (it == priority_classes_.end()) {
    return Status::NotFound("no priority class " + class_name);
  }
  return it->second;
}

Result<Rule*> RuleManager::DefineRuleWithPriorityClass(
    const std::string& name, const std::string& event_name,
    ConditionFn condition, ActionFn action, RuleOptions options,
    const std::string& priority_class) {
  auto rank = PriorityClassRank(priority_class);
  if (!rank.ok()) return rank.status();
  options.priority = *rank;
  return DefineRule(name, event_name, std::move(condition), std::move(action),
                    options);
}

void RuleManager::Trigger(Rule* rule, const detector::Occurrence& occurrence,
                          detector::ParamContext context) {
  Firing firing;
  firing.rule = rule;
  firing.occurrence = occurrence;
  firing.context = context;
  firing.txn = occurrence.txn;

  // Nested triggering: when the signalling happened inside a rule's action,
  // inherit its subtransaction, depth, and priority path (depth-first
  // execution, §3.2.3).
  const RuleScheduler::Frame* frame = RuleScheduler::CurrentFrame();
  if (frame != nullptr) {
    firing.parent_subtxn = frame->subtxn;
    firing.priority_path = frame->priority_path;
    firing.depth = frame->depth + 1;
    if (firing.txn == storage::kInvalidTxnId) firing.txn = frame->txn;
  }
  firing.priority_path.push_back(rule->priority());

  // Capture the span live on this (signalling) thread — the composite_detect
  // or notify span we are inside of — so the firing's subtxn span can parent
  // under it even though it executes on a scheduler thread.
  firing.trigger_span =
      obs::SpanTracer::CurrentSpanIdFor(detector_->span_tracer());

  obs::ProvenanceTracer* tracer = detector_->tracer();
  if (tracer != nullptr && tracer->enabled()) {
    tracer->Record(obs::EdgeKind::kFiring, occurrence.event_name, rule->name(),
                   firing.txn, context, 0);
  }

  if (rule->coupling() == CouplingMode::kDetached) {
    scheduler_->EnqueueDetached(std::move(firing));
  } else {
    scheduler_->Enqueue(std::move(firing));
  }
}

}  // namespace sentinel::rules
