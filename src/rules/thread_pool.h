#ifndef SENTINEL_RULES_THREAD_POOL_H_
#define SENTINEL_RULES_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sentinel::rules {

/// Fixed pool of worker threads (the paper's "pool of free threads", Fig. 3).
/// Tasks are arbitrary closures; Submit never blocks.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void WaitIdle();

  std::size_t worker_count() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t busy_ = 0;
  bool stop_ = false;
};

}  // namespace sentinel::rules

#endif  // SENTINEL_RULES_THREAD_POOL_H_
