#include "detector/local_detector.h"

#include <algorithm>

#include "common/logging.h"

namespace sentinel::detector {

namespace {
thread_local int t_suppress_depth = 0;
constexpr char kExplicitClass[] = "<explicit>";
}  // namespace

LocalEventDetector::SuppressScope::SuppressScope() { ++t_suppress_depth; }
LocalEventDetector::SuppressScope::~SuppressScope() { --t_suppress_depth; }

bool LocalEventDetector::SignalingSuppressed() { return t_suppress_depth > 0; }

Result<EventNode*> LocalEventDetector::Install(
    const std::string& name, std::unique_ptr<EventNode> node) {
  if (nodes_.count(name) != 0) {
    return Status::AlreadyExists("event already defined: " + name);
  }
  EventNode* raw = node.get();
  nodes_[name] = std::move(node);
  return raw;
}

Result<EventNode*> LocalEventDetector::DefinePrimitive(
    const std::string& name, const std::string& class_name,
    EventModifier modifier, const std::string& method_signature,
    oodb::Oid instance) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto node = std::make_unique<PrimitiveEventNode>(
      name, class_name, modifier, method_signature, instance);
  PrimitiveEventNode* raw = node.get();
  auto installed = Install(name, std::move(node));
  if (!installed.ok()) return installed.status();
  by_class_[class_name].push_back(raw);
  return *installed;
}

Result<EventNode*> LocalEventDetector::DefineExplicit(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto node = std::make_unique<PrimitiveEventNode>(
      name, kExplicitClass, EventModifier::kEnd, name);
  PrimitiveEventNode* raw = node.get();
  auto installed = Install(name, std::move(node));
  if (!installed.ok()) return installed.status();
  explicit_events_[name] = raw;
  return *installed;
}

Result<EventNode*> LocalEventDetector::DefineOr(const std::string& name,
                                                EventNode* left,
                                                EventNode* right) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return Install(name, std::make_unique<OrNode>(name, left, right));
}

Result<EventNode*> LocalEventDetector::DefineAnd(const std::string& name,
                                                 EventNode* left,
                                                 EventNode* right) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return Install(name, std::make_unique<AndNode>(name, left, right));
}

Result<EventNode*> LocalEventDetector::DefineSeq(const std::string& name,
                                                 EventNode* left,
                                                 EventNode* right) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return Install(name, std::make_unique<SeqNode>(name, left, right));
}

Result<EventNode*> LocalEventDetector::DefineNot(const std::string& name,
                                                 EventNode* opener,
                                                 EventNode* canceller,
                                                 EventNode* closer) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return Install(name,
                 std::make_unique<NotNode>(name, opener, canceller, closer));
}

Result<EventNode*> LocalEventDetector::DefineAperiodic(const std::string& name,
                                                       EventNode* opener,
                                                       EventNode* detector,
                                                       EventNode* closer) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return Install(
      name, std::make_unique<AperiodicNode>(name, opener, detector, closer));
}

Result<EventNode*> LocalEventDetector::DefineAperiodicStar(
    const std::string& name, EventNode* opener, EventNode* detector,
    EventNode* closer) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return Install(name, std::make_unique<AperiodicStarNode>(name, opener,
                                                           detector, closer));
}

Result<EventNode*> LocalEventDetector::DefineAny(
    const std::string& name, std::size_t threshold,
    std::vector<EventNode*> children) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (threshold == 0 || threshold > children.size()) {
    return Status::InvalidArgument(
        "ANY threshold must be in [1, #children]: " +
        std::to_string(threshold) + " of " + std::to_string(children.size()));
  }
  return Install(name,
                 std::make_unique<AnyNode>(name, threshold, std::move(children)));
}

Result<EventNode*> LocalEventDetector::DefinePlus(const std::string& name,
                                                  EventNode* base,
                                                  std::uint64_t delta_ms) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto node = std::make_unique<PlusNode>(name, base, delta_ms, &clock_);
  EventNode* raw = node.get();
  auto installed = Install(name, std::move(node));
  if (!installed.ok()) return installed.status();
  temporal_nodes_.push_back(raw);
  return *installed;
}

Result<EventNode*> LocalEventDetector::DefinePeriodic(const std::string& name,
                                                      EventNode* opener,
                                                      std::uint64_t period_ms,
                                                      EventNode* closer) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto node =
      std::make_unique<PeriodicNode>(name, opener, period_ms, closer, &clock_);
  EventNode* raw = node.get();
  auto installed = Install(name, std::move(node));
  if (!installed.ok()) return installed.status();
  temporal_nodes_.push_back(raw);
  return *installed;
}

Result<EventNode*> LocalEventDetector::DefinePeriodicStar(
    const std::string& name, EventNode* opener, std::uint64_t period_ms,
    EventNode* closer) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto node = std::make_unique<PeriodicStarNode>(name, opener, period_ms,
                                                 closer, &clock_);
  EventNode* raw = node.get();
  auto installed = Install(name, std::move(node));
  if (!installed.ok()) return installed.status();
  temporal_nodes_.push_back(raw);
  return *installed;
}

Result<EventNode*> LocalEventDetector::Find(const std::string& name) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return Status::NotFound("no event named " + name);
  }
  return it->second.get();
}

bool LocalEventDetector::Exists(const std::string& name) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return nodes_.count(name) != 0;
}

std::vector<std::string> LocalEventDetector::EventNames() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, node] : nodes_) {
    (void)node;
    names.push_back(name);
  }
  return names;
}

std::size_t LocalEventDetector::node_count() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return nodes_.size();
}

void LocalEventDetector::Route(
    const std::shared_ptr<const PrimitiveOccurrence>& raw) {
  for (const auto& observer : raw_observers_) observer(*raw);
  // The invocation is propagated only to primitive events of the signalling
  // class — and of its ancestors, so class-level events fire for subclass
  // instances too.
  for (auto& [declared_class, nodes] : by_class_) {
    const bool applies =
        declared_class == raw->class_name ||
        (registry_ != nullptr &&
         registry_->IsSubclassOf(raw->class_name, declared_class));
    if (!applies) continue;
    for (PrimitiveEventNode* node : nodes) {
      if (node->Matches(*raw)) node->Signal(raw);
    }
  }
}

void LocalEventDetector::Notify(const std::string& class_name, oodb::Oid oid,
                                EventModifier modifier,
                                const std::string& method_signature,
                                std::shared_ptr<const ParamList> params,
                                TxnId txn) {
  if (SignalingSuppressed()) return;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ++notify_count_;
  auto raw = std::make_shared<PrimitiveOccurrence>();
  raw->class_name = class_name;
  raw->oid = oid;
  raw->modifier = modifier;
  raw->method_signature = method_signature;
  raw->at = clock_.Tick();
  raw->at_ms = now_ms_;
  raw->txn = txn;
  raw->params = std::move(params);
  Route(raw);
}

Status LocalEventDetector::RaiseExplicit(
    const std::string& name, std::shared_ptr<const ParamList> params,
    TxnId txn) {
  if (SignalingSuppressed()) return Status::OK();
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = explicit_events_.find(name);
  if (it == explicit_events_.end()) {
    return Status::NotFound("no explicit event named " + name);
  }
  ++notify_count_;
  auto raw = std::make_shared<PrimitiveOccurrence>();
  raw->event_name = name;
  raw->class_name = kExplicitClass;
  raw->modifier = EventModifier::kEnd;
  raw->method_signature = name;
  raw->at = clock_.Tick();
  raw->at_ms = now_ms_;
  raw->txn = txn;
  raw->params = std::move(params);
  for (const auto& observer : raw_observers_) observer(*raw);
  it->second->Signal(raw);
  return Status::OK();
}

void LocalEventDetector::Inject(const PrimitiveOccurrence& recorded) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ++notify_count_;
  clock_.Witness(recorded.at);
  if (recorded.at_ms > now_ms_) now_ms_ = recorded.at_ms;
  auto raw = std::make_shared<PrimitiveOccurrence>(recorded);
  if (recorded.class_name == kExplicitClass) {
    auto it = explicit_events_.find(recorded.method_signature);
    if (it != explicit_events_.end()) {
      for (const auto& observer : raw_observers_) observer(*raw);
      it->second->Signal(raw);
    }
    return;
  }
  Route(raw);
}

void LocalEventDetector::AdvanceTime(std::uint64_t now_ms) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (now_ms < now_ms_) return;
  now_ms_ = now_ms;
  for (EventNode* node : temporal_nodes_) node->OnTimeAdvance(now_ms);
}

Status LocalEventDetector::Subscribe(const std::string& event, EventSink* sink,
                                     ParamContext context) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto node = Find(event);
  if (!node.ok()) return node.status();
  (*node)->AddSink(sink);
  (*node)->AddContextRef(context);
  return Status::OK();
}

Status LocalEventDetector::Unsubscribe(const std::string& event,
                                       EventSink* sink, ParamContext context) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto node = Find(event);
  if (!node.ok()) return node.status();
  (*node)->RemoveSink(sink);
  (*node)->ReleaseContextRef(context);
  return Status::OK();
}

void LocalEventDetector::FlushTxn(TxnId txn) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& [name, node] : nodes_) {
    (void)name;
    node->FlushTxn(txn);
  }
}

void LocalEventDetector::FlushAll() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& [name, node] : nodes_) {
    (void)name;
    node->FlushAll();
  }
}

Status LocalEventDetector::FlushEvent(const std::string& event) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto node = Find(event);
  if (!node.ok()) return node.status();
  // Flush the expression's whole subtree.
  std::vector<EventNode*> stack{*node};
  while (!stack.empty()) {
    EventNode* current = stack.back();
    stack.pop_back();
    current->FlushAll();
    for (EventNode* child : current->Children()) {
      if (child != nullptr) stack.push_back(child);
    }
  }
  return Status::OK();
}

std::size_t LocalEventDetector::BufferedCount() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, node] : nodes_) {
    (void)name;
    n += node->BufferedCount();
  }
  return n;
}

}  // namespace sentinel::detector
