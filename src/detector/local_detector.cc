#include "detector/local_detector.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/pool.h"
#include "obs/json.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace sentinel::detector {

namespace {
thread_local int t_suppress_depth = 0;
constexpr char kExplicitClass[] = "<explicit>";

/// Monotonic id for published dispatch-index generations, process-wide.
/// Never recycled, so a thread's memo can validate its cached entry by id
/// without any ABA hazard across detector lifetimes.
std::atomic<std::uint64_t> g_next_index_uid{1};
}  // namespace

struct LocalEventDetector::DispatchEntry {
  common::SymbolId class_sym = common::kInvalidSymbol;
  common::SymbolId method_sym = common::kInvalidSymbol;
  std::vector<PrimitiveEventNode*> nodes;
};

struct LocalEventDetector::DispatchIndex {
  std::uint64_t uid = 0;
  std::uint64_t def_gen = 0;
  const oodb::ClassRegistry* registry = nullptr;
  std::uint64_t registry_version = 0;
  std::unordered_map<std::uint64_t, DispatchEntry> entries;
};

struct LocalEventDetector::DispatchMemo {
  std::uint64_t index_uid = 0;
  EventModifier modifier = EventModifier::kEnd;
  std::string class_name;
  std::string method_signature;
  const DispatchEntry* entry = nullptr;
};

LocalEventDetector::LocalEventDetector() = default;
LocalEventDetector::~LocalEventDetector() = default;

LocalEventDetector::SuppressScope::SuppressScope() { ++t_suppress_depth; }
LocalEventDetector::SuppressScope::~SuppressScope() { --t_suppress_depth; }

bool LocalEventDetector::SignalingSuppressed() { return t_suppress_depth > 0; }

Result<EventNode*> LocalEventDetector::InstallLocked(
    const std::string& name, std::unique_ptr<EventNode> node) {
  if (nodes_.count(name) != 0) {
    return Status::AlreadyExists("event already defined: " + name);
  }
  EventNode* raw = node.get();
  raw->set_tracer(tracer_.load(std::memory_order_acquire));
  raw->set_span_tracer(span_tracer_.load(std::memory_order_acquire));
  raw->set_profiler(profiler_.load(std::memory_order_acquire));
  nodes_[name] = std::move(node);
  return raw;
}

Result<EventNode*> LocalEventDetector::DefinePrimitive(
    const std::string& name, const std::string& class_name,
    EventModifier modifier, const std::string& method_signature,
    oodb::Oid instance) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  auto node = std::make_unique<PrimitiveEventNode>(
      name, class_name, modifier, method_signature, instance);
  PrimitiveEventNode* raw = node.get();
  auto installed = InstallLocked(name, std::move(node));
  if (!installed.ok()) return installed.status();
  by_class_[class_name].push_back(raw);
  primitive_count_.fetch_add(1, std::memory_order_release);
  // Invalidate published dispatch indexes: keys already resolved (including
  // negative-cache entries for subclasses of `class_name`) may now match.
  def_gen_.fetch_add(1, std::memory_order_release);
  return *installed;
}

Result<EventNode*> LocalEventDetector::DefineExplicit(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  auto node = std::make_unique<PrimitiveEventNode>(
      name, kExplicitClass, EventModifier::kEnd, name);
  PrimitiveEventNode* raw = node.get();
  auto installed = InstallLocked(name, std::move(node));
  if (!installed.ok()) return installed.status();
  explicit_events_[name] = raw;
  return *installed;
}

Result<EventNode*> LocalEventDetector::DefineOr(const std::string& name,
                                                EventNode* left,
                                                EventNode* right) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  return InstallLocked(name, std::make_unique<OrNode>(name, left, right));
}

Result<EventNode*> LocalEventDetector::DefineAnd(const std::string& name,
                                                 EventNode* left,
                                                 EventNode* right) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  return InstallLocked(name, std::make_unique<AndNode>(name, left, right));
}

Result<EventNode*> LocalEventDetector::DefineSeq(const std::string& name,
                                                 EventNode* left,
                                                 EventNode* right) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  return InstallLocked(name, std::make_unique<SeqNode>(name, left, right));
}

Result<EventNode*> LocalEventDetector::DefineNot(const std::string& name,
                                                 EventNode* opener,
                                                 EventNode* canceller,
                                                 EventNode* closer) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  return InstallLocked(
      name, std::make_unique<NotNode>(name, opener, canceller, closer));
}

Result<EventNode*> LocalEventDetector::DefineAperiodic(const std::string& name,
                                                       EventNode* opener,
                                                       EventNode* detector,
                                                       EventNode* closer) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  return InstallLocked(
      name, std::make_unique<AperiodicNode>(name, opener, detector, closer));
}

Result<EventNode*> LocalEventDetector::DefineAperiodicStar(
    const std::string& name, EventNode* opener, EventNode* detector,
    EventNode* closer) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  return InstallLocked(name, std::make_unique<AperiodicStarNode>(
                                 name, opener, detector, closer));
}

Result<EventNode*> LocalEventDetector::DefineAny(
    const std::string& name, std::size_t threshold,
    std::vector<EventNode*> children) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  if (threshold == 0 || threshold > children.size()) {
    return Status::InvalidArgument(
        "ANY threshold must be in [1, #children]: " +
        std::to_string(threshold) + " of " + std::to_string(children.size()));
  }
  return InstallLocked(
      name, std::make_unique<AnyNode>(name, threshold, std::move(children)));
}

Result<EventNode*> LocalEventDetector::DefinePlus(const std::string& name,
                                                  EventNode* base,
                                                  std::uint64_t delta_ms) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  auto node = std::make_unique<PlusNode>(name, base, delta_ms, &clock_);
  EventNode* raw = node.get();
  auto installed = InstallLocked(name, std::move(node));
  if (!installed.ok()) return installed.status();
  temporal_nodes_.push_back(raw);
  return *installed;
}

Result<EventNode*> LocalEventDetector::DefinePeriodic(const std::string& name,
                                                      EventNode* opener,
                                                      std::uint64_t period_ms,
                                                      EventNode* closer) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  auto node =
      std::make_unique<PeriodicNode>(name, opener, period_ms, closer, &clock_);
  EventNode* raw = node.get();
  auto installed = InstallLocked(name, std::move(node));
  if (!installed.ok()) return installed.status();
  temporal_nodes_.push_back(raw);
  return *installed;
}

Result<EventNode*> LocalEventDetector::DefinePeriodicStar(
    const std::string& name, EventNode* opener, std::uint64_t period_ms,
    EventNode* closer) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  auto node = std::make_unique<PeriodicStarNode>(name, opener, period_ms,
                                                 closer, &clock_);
  EventNode* raw = node.get();
  auto installed = InstallLocked(name, std::move(node));
  if (!installed.ok()) return installed.status();
  temporal_nodes_.push_back(raw);
  return *installed;
}

Result<EventNode*> LocalEventDetector::FindLocked(
    const std::string& name) const {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return Status::NotFound("no event named " + name);
  }
  return it->second.get();
}

Result<EventNode*> LocalEventDetector::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  return FindLocked(name);
}

bool LocalEventDetector::Exists(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  return nodes_.count(name) != 0;
}

std::vector<std::string> LocalEventDetector::EventNames() const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, node] : nodes_) {
    (void)node;
    names.push_back(name);
  }
  return names;
}

std::size_t LocalEventDetector::node_count() const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  return nodes_.size();
}

// ---- Dispatch index ---------------------------------------------------------

std::uint64_t LocalEventDetector::RegistryVersion() const {
  const oodb::ClassRegistry* registry =
      registry_.load(std::memory_order_acquire);
  return registry != nullptr ? registry->version() : 0;
}

bool LocalEventDetector::IndexCurrent(const DispatchIndex& idx) const {
  return idx.def_gen == def_gen_.load(std::memory_order_acquire) &&
         idx.registry == registry_.load(std::memory_order_acquire) &&
         idx.registry_version == RegistryVersion();
}

std::uint64_t LocalEventDetector::PackKey(common::SymbolId class_sym,
                                          EventModifier modifier,
                                          common::SymbolId method_sym) {
  return (static_cast<std::uint64_t>(class_sym) << 33) |
         (static_cast<std::uint64_t>(modifier) << 32) |
         static_cast<std::uint64_t>(method_sym);
}

LocalEventDetector::DispatchMemo& LocalEventDetector::Memo() {
  thread_local DispatchMemo memo;
  return memo;
}

const LocalEventDetector::DispatchEntry* LocalEventDetector::Probe(
    const DispatchIndex& idx, const std::string& class_name,
    EventModifier modifier, const std::string& method_signature) const {
  DispatchMemo& memo = Memo();
  if (memo.index_uid == idx.uid && memo.modifier == modifier &&
      memo.class_name == class_name &&
      memo.method_signature == method_signature) {
    return memo.entry;
  }
  auto& symbols = common::SymbolTable::Global();
  const common::SymbolId class_sym = symbols.TryLookup(class_name);
  if (class_sym == common::kInvalidSymbol) return nullptr;
  const common::SymbolId method_sym = symbols.TryLookup(method_signature);
  if (method_sym == common::kInvalidSymbol) return nullptr;
  auto it = idx.entries.find(PackKey(class_sym, modifier, method_sym));
  if (it == idx.entries.end()) return nullptr;
  memo.index_uid = idx.uid;
  memo.modifier = modifier;
  memo.class_name = class_name;
  memo.method_signature = method_signature;
  memo.entry = &it->second;
  return &it->second;
}

std::vector<PrimitiveEventNode*> LocalEventDetector::BuildDispatchList(
    const std::string& class_name, EventModifier modifier,
    common::SymbolId method_sym) const {
  const oodb::ClassRegistry* registry =
      registry_.load(std::memory_order_acquire);
  std::vector<PrimitiveEventNode*> nodes;
  // The invocation is propagated only to primitive events of the signalling
  // class — and of its ancestors, so class-level events fire for subclass
  // instances too. This walk runs once per distinct notification key, not
  // once per notification.
  for (const auto& [declared_class, declared_nodes] : by_class_) {
    const bool applies =
        declared_class == class_name ||
        (registry != nullptr &&
         registry->IsSubclassOf(class_name, declared_class));
    if (!applies) continue;
    for (PrimitiveEventNode* node : declared_nodes) {
      if (node->modifier() == modifier && node->method_sym() == method_sym) {
        nodes.push_back(node);
      }
    }
  }
  return nodes;
}

const LocalEventDetector::DispatchEntry* LocalEventDetector::ResolveLocked(
    const std::string& class_name, EventModifier modifier,
    const std::string& method_signature) {
  auto& symbols = common::SymbolTable::Global();
  const common::SymbolId class_sym = symbols.Intern(class_name);
  const common::SymbolId method_sym = symbols.Intern(method_signature);
  const std::uint64_t key = PackKey(class_sym, modifier, method_sym);

  // Read the validity tags before building: if a class registration races
  // the build, the published index is stamped stale and rebuilt next time.
  const std::uint64_t def_gen = def_gen_.load(std::memory_order_acquire);
  const oodb::ClassRegistry* registry =
      registry_.load(std::memory_order_acquire);
  const std::uint64_t registry_version = RegistryVersion();

  const DispatchIndex* idx = index_.load(std::memory_order_acquire);
  if (idx != nullptr && idx->def_gen == def_gen && idx->registry == registry &&
      idx->registry_version == registry_version) {
    auto it = idx->entries.find(key);
    if (it != idx->entries.end()) return &it->second;
  }

  std::lock_guard<std::mutex> index_lock(index_mu_);
  idx = index_.load(std::memory_order_relaxed);
  auto next = std::make_unique<DispatchIndex>();
  next->uid = g_next_index_uid.fetch_add(1, std::memory_order_relaxed);
  next->def_gen = def_gen;
  next->registry = registry;
  next->registry_version = registry_version;
  if (idx != nullptr && idx->def_gen == def_gen && idx->registry == registry &&
      idx->registry_version == registry_version) {
    auto it = idx->entries.find(key);
    if (it != idx->entries.end()) return &it->second;  // raced with a builder
    next->entries = idx->entries;  // carry resolved keys forward
  }
  DispatchEntry entry;
  entry.class_sym = class_sym;
  entry.method_sym = method_sym;
  entry.nodes = BuildDispatchList(class_name, modifier, method_sym);
  auto [slot, inserted] = next->entries.emplace(key, std::move(entry));
  (void)inserted;
  const DispatchEntry* resolved = &slot->second;
  const DispatchIndex* published = next.get();
  retired_indexes_.push_back(std::move(next));
  index_.store(published, std::memory_order_release);
  return resolved;
}

// ---- Signalling -------------------------------------------------------------

void LocalEventDetector::Notify(const std::string& class_name, oodb::Oid oid,
                                EventModifier modifier,
                                const std::string& method_signature,
                                std::shared_ptr<const ParamList> params,
                                TxnId txn) {
  if (SignalingSuppressed()) return;
  notify_count_.fetch_add(1, std::memory_order_relaxed);
  const bool has_observers =
      observer_count_.load(std::memory_order_acquire) > 0;
  // Fast path 1: no primitive events declared and nobody observing raw
  // notifications — nothing can react, skip everything.
  if (!has_observers &&
      primitive_count_.load(std::memory_order_acquire) == 0) {
    return;
  }

  // Fast path 2: lock-free probe of the published dispatch index. A
  // negative-cache hit (no matching nodes) or a hit whose nodes all have no
  // active context returns without taking a lock or allocating. The logical
  // clock is not ticked on these paths: timestamps only order *delivered*
  // occurrences.
  const DispatchEntry* entry = nullptr;
  const DispatchIndex* idx = index_.load(std::memory_order_acquire);
  if (idx != nullptr && IndexCurrent(*idx)) {
    entry = Probe(*idx, class_name, modifier, method_signature);
  }
  if (entry != nullptr && !has_observers) {
    bool any_active = false;
    for (PrimitiveEventNode* node : entry->nodes) {
      if (node->active_context_count() > 0) {
        any_active = true;
        break;
      }
    }
    if (!any_active) return;
  }

  // Full path: occurrence assembly, observers, and routing under the shared
  // graph lock (concurrent with other notifications; exclusive only against
  // definitions and subscriptions).
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  if (entry == nullptr) {
    entry = ResolveLocked(class_name, modifier, method_signature);
  }
  if (!has_observers && entry->nodes.empty()) return;

  // Slow path only: the fast-path returns above stay span-free.
  obs::SpanScope notify_span;
  if (obs::SpanTracer* st = span_tracer_.load(std::memory_order_acquire);
      st != nullptr && st->enabled_for(obs::SpanKind::kNotify)) {
    notify_span.Start(st, obs::SpanKind::kNotify, txn,
                      class_name + "::" + method_signature);
  }

  // Slow path only, like the span: per-class-symbol dispatch attribution
  // (event rates + dispatch cost for the shard-steering report).
  obs::Profiler* profiler = profiler_.load(std::memory_order_acquire);
  const bool profiling = profiler != nullptr && profiler->enabled() &&
                         entry->class_sym != common::kInvalidSymbol;
  const std::uint64_t prof_cpu0 = profiling ? obs::Profiler::ThreadCpuNs() : 0;
  const std::uint64_t prof_t0 = profiling ? obs::Profiler::NowNs() : 0;

  auto pooled = common::MakePooled<PrimitiveOccurrence>();
  pooled->class_name = class_name;
  pooled->oid = oid;
  pooled->modifier = modifier;
  pooled->method_signature = method_signature;
  pooled->class_sym = entry->class_sym;
  pooled->method_sym = entry->method_sym;
  pooled->at = clock_.Tick();
  pooled->at_ms = now_ms_.load(std::memory_order_relaxed);
  pooled->txn = txn;
  pooled->params = std::move(params);
  const std::shared_ptr<const PrimitiveOccurrence> raw = std::move(pooled);
  for (const auto& observer : raw_observers_) observer(*raw);
  for (PrimitiveEventNode* node : entry->nodes) {
    if (node->Matches(*raw)) node->Signal(raw);
  }
  if (profiling) {
    profiler->RecordSymbolEvent(entry->class_sym,
                                obs::Profiler::ThreadCpuNs() - prof_cpu0,
                                obs::Profiler::NowNs() - prof_t0);
  }
}

Status LocalEventDetector::RaiseExplicit(
    const std::string& name, std::shared_ptr<const ParamList> params,
    TxnId txn) {
  if (SignalingSuppressed()) return Status::OK();
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  auto it = explicit_events_.find(name);
  if (it == explicit_events_.end()) {
    return Status::NotFound("no explicit event named " + name);
  }
  notify_count_.fetch_add(1, std::memory_order_relaxed);
  obs::SpanScope notify_span;
  if (obs::SpanTracer* st = span_tracer_.load(std::memory_order_acquire);
      st != nullptr && st->enabled_for(obs::SpanKind::kNotify)) {
    notify_span.Start(st, obs::SpanKind::kNotify, txn, name);
  }
  obs::Profiler* profiler = profiler_.load(std::memory_order_acquire);
  const bool profiling = profiler != nullptr && profiler->enabled() &&
                         it->second->class_sym() != common::kInvalidSymbol;
  const std::uint64_t prof_cpu0 = profiling ? obs::Profiler::ThreadCpuNs() : 0;
  const std::uint64_t prof_t0 = profiling ? obs::Profiler::NowNs() : 0;
  auto pooled = common::MakePooled<PrimitiveOccurrence>();
  pooled->event_name = name;
  pooled->class_name = kExplicitClass;
  pooled->modifier = EventModifier::kEnd;
  pooled->method_signature = name;
  pooled->class_sym = it->second->class_sym();
  pooled->method_sym = it->second->method_sym();
  pooled->at = clock_.Tick();
  pooled->at_ms = now_ms_.load(std::memory_order_relaxed);
  pooled->txn = txn;
  pooled->params = std::move(params);
  const std::shared_ptr<const PrimitiveOccurrence> raw = std::move(pooled);
  for (const auto& observer : raw_observers_) observer(*raw);
  it->second->Signal(raw);
  if (profiling) {
    profiler->RecordSymbolEvent(it->second->class_sym(),
                                obs::Profiler::ThreadCpuNs() - prof_cpu0,
                                obs::Profiler::NowNs() - prof_t0);
  }
  return Status::OK();
}

void LocalEventDetector::Inject(const PrimitiveOccurrence& recorded) {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  notify_count_.fetch_add(1, std::memory_order_relaxed);
  clock_.Witness(recorded.at);
  std::uint64_t seen = now_ms_.load(std::memory_order_relaxed);
  while (recorded.at_ms > seen &&
         !now_ms_.compare_exchange_weak(seen, recorded.at_ms,
                                        std::memory_order_relaxed)) {
  }
  auto raw = std::make_shared<PrimitiveOccurrence>(recorded);
  if (recorded.class_name == kExplicitClass) {
    auto it = explicit_events_.find(recorded.method_signature);
    if (it != explicit_events_.end()) {
      raw->class_sym = it->second->class_sym();
      raw->method_sym = it->second->method_sym();
      for (const auto& observer : raw_observers_) observer(*raw);
      it->second->Signal(raw);
    }
    return;
  }
  // Recorded occurrences carry no symbols (and the GED rewrites class names
  // before injecting) — re-intern and route through the dispatch index.
  const DispatchEntry* entry =
      ResolveLocked(recorded.class_name, recorded.modifier,
                    recorded.method_signature);
  raw->class_sym = entry->class_sym;
  raw->method_sym = entry->method_sym;
  obs::Profiler* profiler = profiler_.load(std::memory_order_acquire);
  const bool profiling = profiler != nullptr && profiler->enabled() &&
                         entry->class_sym != common::kInvalidSymbol;
  const std::uint64_t prof_cpu0 = profiling ? obs::Profiler::ThreadCpuNs() : 0;
  const std::uint64_t prof_t0 = profiling ? obs::Profiler::NowNs() : 0;
  for (const auto& observer : raw_observers_) observer(*raw);
  for (PrimitiveEventNode* node : entry->nodes) {
    if (node->Matches(*raw)) node->Signal(raw);
  }
  if (profiling) {
    profiler->RecordSymbolEvent(entry->class_sym,
                                obs::Profiler::ThreadCpuNs() - prof_cpu0,
                                obs::Profiler::NowNs() - prof_t0);
  }
}

void LocalEventDetector::AdvanceTime(std::uint64_t now_ms) {
  std::uint64_t seen = now_ms_.load(std::memory_order_relaxed);
  if (now_ms < seen) return;
  while (!now_ms_.compare_exchange_weak(seen, now_ms,
                                        std::memory_order_relaxed)) {
    if (now_ms < seen) return;
  }
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  for (EventNode* node : temporal_nodes_) node->OnTimeAdvance(now_ms);
}

Status LocalEventDetector::Subscribe(const std::string& event, EventSink* sink,
                                     ParamContext context) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  auto node = FindLocked(event);
  if (!node.ok()) return node.status();
  (*node)->AddSink(sink);
  (*node)->AddContextRef(context);
  return Status::OK();
}

Status LocalEventDetector::Unsubscribe(const std::string& event,
                                       EventSink* sink, ParamContext context) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  auto node = FindLocked(event);
  if (!node.ok()) return node.status();
  (*node)->RemoveSink(sink);
  (*node)->ReleaseContextRef(context);
  return Status::OK();
}

void LocalEventDetector::AddRawObserver(
    std::function<void(const PrimitiveOccurrence&)> observer) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  raw_observers_.push_back(std::move(observer));
  observer_count_.store(static_cast<int>(raw_observers_.size()),
                        std::memory_order_release);
}

namespace {

/// Flushes one node and charges the buffered occurrences it dropped to its
/// flush counter (the flush paths do not know per-occurrence contexts, so
/// accounting is by before/after delta of the buffer gauge).
template <typename Flush>
void FlushCounted(EventNode* node, Flush&& flush) {
  const std::size_t before = node->BufferedCount();
  flush();
  const std::size_t after = node->BufferedCount();
  if (before > after) node->metrics().OnFlushed(before - after);
}

}  // namespace

void LocalEventDetector::FlushTxn(TxnId txn) {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  for (auto& [name, node] : nodes_) {
    (void)name;
    FlushCounted(node.get(), [&] { node->FlushTxn(txn); });
  }
  obs::ProvenanceTracer* tracer = tracer_.load(std::memory_order_acquire);
  if (tracer != nullptr && tracer->enabled()) tracer->FlushTxn(txn);
}

void LocalEventDetector::FlushAll() {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  for (auto& [name, node] : nodes_) {
    (void)name;
    FlushCounted(node.get(), [&] { node->FlushAll(); });
  }
}

Status LocalEventDetector::FlushEvent(const std::string& event) {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  auto node = FindLocked(event);
  if (!node.ok()) return node.status();
  // Flush the expression's whole subtree.
  std::vector<EventNode*> stack{*node};
  while (!stack.empty()) {
    EventNode* current = stack.back();
    stack.pop_back();
    FlushCounted(current, [&] { current->FlushAll(); });
    for (EventNode* child : current->Children()) {
      if (child != nullptr) stack.push_back(child);
    }
  }
  return Status::OK();
}

std::size_t LocalEventDetector::BufferedCount() const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  std::size_t n = 0;
  for (const auto& [name, node] : nodes_) {
    (void)name;
    n += node->BufferedCount();
  }
  return n;
}

Status LocalEventDetector::RemoveEvent(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return Status::NotFound("no event named " + name);
  }
  EventNode* node = it->second.get();
  if (node->sink_count() > 0) {
    return Status::InvalidArgument("event " + name +
                                   " still has subscribed rules");
  }
  for (const auto& [other_name, other] : nodes_) {
    if (other.get() == node) continue;
    for (EventNode* child : other->Children()) {
      if (child == node) {
        return Status::InvalidArgument("event " + name +
                                       " is a constituent of " + other_name);
      }
    }
  }
  // Defensive: release any context refs that survived unsubscription so
  // children stop detecting (and drop buffers) on the node's behalf.
  for (int c = 0; c < kNumContexts; ++c) {
    const auto context = static_cast<ParamContext>(c);
    while (node->ContextRefs(context) > 0) node->ReleaseContextRef(context);
  }
  // Unhook the node from its children's parent lists so nothing routes into
  // freed memory.
  for (EventNode* child : node->Children()) {
    if (child != nullptr) child->RemoveParent(node);
  }
  if (auto* primitive = dynamic_cast<PrimitiveEventNode*>(node)) {
    auto by_class = by_class_.find(primitive->class_name());
    if (by_class != by_class_.end()) {
      auto& list = by_class->second;
      list.erase(std::remove(list.begin(), list.end(), primitive), list.end());
      if (list.empty()) by_class_.erase(by_class);
      primitive_count_.fetch_sub(1, std::memory_order_release);
      // Invalidate published dispatch indexes so no stale entry can hand the
      // dead node to a signalling thread.
      def_gen_.fetch_add(1, std::memory_order_release);
    }
    explicit_events_.erase(name);
  }
  temporal_nodes_.erase(
      std::remove(temporal_nodes_.begin(), temporal_nodes_.end(), node),
      temporal_nodes_.end());
  nodes_.erase(it);
  return Status::OK();
}

// ---- Observability ----------------------------------------------------------

void LocalEventDetector::set_tracer(obs::ProvenanceTracer* tracer) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  tracer_.store(tracer, std::memory_order_release);
  for (auto& [name, node] : nodes_) {
    (void)name;
    node->set_tracer(tracer);
  }
}

void LocalEventDetector::set_span_tracer(obs::SpanTracer* tracer) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  span_tracer_.store(tracer, std::memory_order_release);
  for (auto& [name, node] : nodes_) {
    (void)name;
    node->set_span_tracer(tracer);
  }
}

void LocalEventDetector::set_profiler(obs::Profiler* profiler) {
  std::unique_lock<std::shared_mutex> lock(graph_mu_);
  profiler_.store(profiler, std::memory_order_release);
  for (auto& [name, node] : nodes_) {
    (void)name;
    node->set_profiler(profiler);
  }
}

namespace {

const char* NodeKind(const EventNode* node) {
  if (auto* op = dynamic_cast<const OperatorNode*>(node)) {
    return OperatorKindToString(op->kind());
  }
  if (dynamic_cast<const PrimitiveEventNode*>(node) != nullptr) {
    return "PRIMITIVE";
  }
  return "NODE";
}

}  // namespace

std::string LocalEventDetector::DumpGraph() const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  std::string out = "digraph events {\n  rankdir=BT;\n";
  for (const auto& [name, node] : nodes_) {
    out += "  \"" + name + "\" [label=\"" + name + "\\n" + NodeKind(node.get());
    std::string refs;
    for (int c = 0; c < kNumContexts; ++c) {
      const auto context = static_cast<ParamContext>(c);
      const int n = node->ContextRefs(context);
      if (n == 0) continue;
      if (!refs.empty()) refs += ' ';
      refs += std::string(ParamContextToString(context)) + "=" +
              std::to_string(n);
    }
    if (!refs.empty()) out += "\\nrefs: " + refs;
    const obs::NodeMetrics& m = node->metrics();
    out += "\\nrecv=" + std::to_string(m.received_total()) +
           " det=" + std::to_string(m.detected_total()) +
           " buf=" + std::to_string(node->BufferedCount()) + "\"];\n";
  }
  // Edges point child → parent (detections flow upward).
  for (const auto& [name, node] : nodes_) {
    for (EventNode* child : node->Children()) {
      if (child != nullptr) {
        out += "  \"" + child->name() + "\" -> \"" + name + "\";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

std::string LocalEventDetector::StatsJson() const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("notify_count", notify_count_.load(std::memory_order_relaxed));
  w.Field("node_count", nodes_.size());
  std::size_t buffered = 0;
  for (const auto& [name, node] : nodes_) {
    (void)name;
    buffered += node->BufferedCount();
  }
  w.Field("buffered", buffered);
  w.Key("events").BeginArray();
  for (const auto& [name, node] : nodes_) {
    const obs::NodeMetrics& m = node->metrics();
    w.BeginObject();
    w.Field("name", name);
    w.Field("kind", NodeKind(node.get()));
    w.Field("sinks", node->sink_count());
    w.Field("buffered", node->BufferedCount());
    w.Field("flushed", m.flushed());
    w.Field("received", m.received_total());
    w.Field("detected", m.detected_total());
    w.Key("contexts").BeginObject();
    for (int c = 0; c < kNumContexts; ++c) {
      const auto context = static_cast<ParamContext>(c);
      const auto snap = m.ForContext(context);
      const int refs = node->ContextRefs(context);
      if (refs == 0 && snap.received == 0 && snap.detected == 0) continue;
      w.Key(ParamContextToString(context)).BeginObject();
      w.Field("refs", static_cast<std::uint64_t>(refs));
      w.Field("received", snap.received);
      w.Field("detected", snap.detected);
      w.EndObject();
    }
    w.EndObject();  // contexts
    w.EndObject();  // event
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

std::vector<LocalEventDetector::NodeStat> LocalEventDetector::SnapshotNodes()
    const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  std::vector<NodeStat> stats;
  stats.reserve(nodes_.size());
  for (const auto& [name, node] : nodes_) {
    const obs::NodeMetrics& m = node->metrics();
    NodeStat stat;
    stat.name = name;
    stat.kind = NodeKind(node.get());
    stat.sinks = node->sink_count();
    stat.buffered = node->BufferedCount();
    stat.flushed = m.flushed();
    stat.received = m.received_total();
    stat.detected = m.detected_total();
    for (int c = 0; c < kNumContexts; ++c) {
      const auto context = static_cast<ParamContext>(c);
      const auto snap = m.ForContext(context);
      stat.contexts[c].refs = node->ContextRefs(context);
      stat.contexts[c].received = snap.received;
      stat.contexts[c].detected = snap.detected;
    }
    stats.push_back(std::move(stat));
  }
  return stats;
}

LocalEventDetector::Totals LocalEventDetector::TotalsSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  Totals totals;
  totals.notifications = notify_count_.load(std::memory_order_relaxed);
  for (const auto& [name, node] : nodes_) {
    (void)name;
    const obs::NodeMetrics& m = node->metrics();
    totals.detections += m.detected_total();
    totals.buffered += node->BufferedCount();
    totals.flushed += m.flushed();
  }
  return totals;
}

}  // namespace sentinel::detector
