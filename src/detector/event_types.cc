#include "detector/event_types.h"

#include <sstream>

namespace sentinel::detector {

const char* EventModifierToString(EventModifier m) {
  return m == EventModifier::kBegin ? "begin" : "end";
}

const char* ParamContextToString(ParamContext c) {
  switch (c) {
    case ParamContext::kRecent:
      return "RECENT";
    case ParamContext::kChronicle:
      return "CHRONICLE";
    case ParamContext::kContinuous:
      return "CONTINUOUS";
    case ParamContext::kCumulative:
      return "CUMULATIVE";
  }
  return "?";
}

std::string ParamList::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, value] : *this) {
    if (!first) os << ", ";
    first = false;
    os << name << "=" << value.ToString();
  }
  os << "}";
  return os.str();
}

std::string PrimitiveOccurrence::ToString() const {
  std::ostringstream os;
  os << event_name << "[" << class_name << "." << method_signature << " "
     << EventModifierToString(modifier) << " oid=" << oid << " t=" << at
     << " txn=" << txn;
  if (params != nullptr) os << " " << params->ToString();
  os << "]";
  return os.str();
}

Result<oodb::Value> Occurrence::Param(const std::string& name) const {
  for (auto it = constituents.rbegin(); it != constituents.rend(); ++it) {
    if ((*it)->params == nullptr) continue;
    auto v = (*it)->params->Get(name);
    if (v.ok()) return v;
  }
  return Status::NotFound("no parameter named " + name);
}

std::vector<std::shared_ptr<const PrimitiveOccurrence>> Occurrence::Of(
    const std::string& primitive_event_name) const {
  std::vector<std::shared_ptr<const PrimitiveOccurrence>> result;
  for (const auto& c : constituents) {
    if (c->event_name == primitive_event_name) result.push_back(c);
  }
  return result;
}

std::string Occurrence::ToString() const {
  std::ostringstream os;
  os << event_name << "@[" << t_start << "," << t_end << "] txn=" << txn
     << " constituents=" << constituents.size();
  return os.str();
}

}  // namespace sentinel::detector
