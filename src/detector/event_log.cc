#include "detector/event_log.h"

#include "detector/local_detector.h"

namespace sentinel::detector {

EventLog::~EventLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status EventLog::OpenFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::InvalidArgument("event log already open");
  file_ = std::fopen(path.c_str(), "a+b");
  if (file_ == nullptr) return Status::IOError("cannot open event log " + path);
  path_ = path;
  return Status::OK();
}

Status EventLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  return Status::OK();
}

void EventLog::AttachTo(LocalEventDetector* detector) {
  detector->AddRawObserver(
      [this](const PrimitiveOccurrence& occ) { Record(occ); });
}

void EventLog::Serialize(const PrimitiveOccurrence& occurrence,
                         BytesWriter* out) {
  out->PutString(occurrence.event_name);
  out->PutString(occurrence.class_name);
  out->PutU64(occurrence.oid);
  out->PutU8(static_cast<std::uint8_t>(occurrence.modifier));
  out->PutString(occurrence.method_signature);
  out->PutU64(occurrence.at);
  out->PutU64(occurrence.at_ms);
  out->PutU64(occurrence.txn);
  const std::uint32_t params =
      occurrence.params != nullptr
          ? static_cast<std::uint32_t>(occurrence.params->size())
          : 0;
  out->PutU32(params);
  if (occurrence.params != nullptr) {
    for (const auto& [name, value] : *occurrence.params) {
      out->PutString(name);
      value.Serialize(out);
    }
  }
}

Result<PrimitiveOccurrence> EventLog::Deserialize(BytesReader* in) {
  PrimitiveOccurrence occ;
  auto event_name = in->ReadString();
  if (!event_name.ok()) return event_name.status();
  occ.event_name = std::move(*event_name);
  auto class_name = in->ReadString();
  if (!class_name.ok()) return class_name.status();
  occ.class_name = std::move(*class_name);
  auto oid = in->ReadU64();
  if (!oid.ok()) return oid.status();
  occ.oid = *oid;
  auto modifier = in->ReadU8();
  if (!modifier.ok()) return modifier.status();
  occ.modifier = static_cast<EventModifier>(*modifier);
  auto signature = in->ReadString();
  if (!signature.ok()) return signature.status();
  occ.method_signature = std::move(*signature);
  auto at = in->ReadU64();
  if (!at.ok()) return at.status();
  occ.at = *at;
  auto at_ms = in->ReadU64();
  if (!at_ms.ok()) return at_ms.status();
  occ.at_ms = *at_ms;
  auto txn = in->ReadU64();
  if (!txn.ok()) return txn.status();
  occ.txn = *txn;
  auto params = in->ReadU32();
  if (!params.ok()) return params.status();
  auto list = std::make_shared<ParamList>();
  for (std::uint32_t i = 0; i < *params; ++i) {
    auto name = in->ReadString();
    if (!name.ok()) return name.status();
    auto value = oodb::Value::Deserialize(in);
    if (!value.ok()) return value.status();
    list->Insert(std::move(*name), std::move(*value));
  }
  occ.params = std::move(list);
  return occ;
}

void EventLog::Record(const PrimitiveOccurrence& occurrence) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (file_ != nullptr) {
    // File-backed: the file is the store; no in-memory duplication.
    BytesWriter writer;
    Serialize(occurrence, &writer);
    const std::uint32_t size = static_cast<std::uint32_t>(writer.size());
    std::fwrite(&size, sizeof(size), 1, file_);
    std::fwrite(writer.data().data(), size, 1, file_);
    std::fflush(file_);
  } else {
    memory_.push_back(occurrence);
  }
}

Result<std::vector<PrimitiveOccurrence>> EventLog::Load() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return memory_;
  std::vector<PrimitiveOccurrence> result;
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_SET);
  for (;;) {
    std::uint32_t size = 0;
    if (std::fread(&size, sizeof(size), 1, file_) != 1) break;
    std::vector<std::uint8_t> buf(size);
    if (size > 0 && std::fread(buf.data(), size, 1, file_) != 1) break;
    BytesReader reader(buf);
    auto occ = Deserialize(&reader);
    if (!occ.ok()) break;
    result.push_back(std::move(*occ));
  }
  std::fseek(file_, 0, SEEK_END);
  return result;
}

Status EventLog::Replay(LocalEventDetector* detector) const {
  auto occurrences = Load();
  if (!occurrences.ok()) return occurrences.status();
  for (const PrimitiveOccurrence& occ : *occurrences) {
    detector->Inject(occ);
  }
  return Status::OK();
}

std::size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

}  // namespace sentinel::detector
