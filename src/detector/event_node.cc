#include "detector/event_node.h"

#include <algorithm>

#include "common/logging.h"

namespace sentinel::detector {

void EventNode::AddParent(EventNode* parent, int port) {
  parents_.push_back(ParentEdge{parent, port});
}

void EventNode::AddSink(EventSink* sink) { sinks_.push_back(sink); }

void EventNode::RemoveSink(EventSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void EventNode::AddContextRef(ParamContext context) {
  int& refs = context_refs_[static_cast<int>(context)];
  ++refs;
  if (refs == 1) OnContextActivated(context);
  for (EventNode* child : Children()) {
    if (child != nullptr) child->AddContextRef(context);
  }
}

void EventNode::ReleaseContextRef(ParamContext context) {
  int& refs = context_refs_[static_cast<int>(context)];
  if (refs == 0) {
    SENTINEL_LOG(kWarn) << "context underflow on node " << name_;
    return;
  }
  --refs;
  if (refs == 0) OnContextDeactivated(context);
  for (EventNode* child : Children()) {
    if (child != nullptr) child->ReleaseContextRef(context);
  }
}

void EventNode::Emit(const Occurrence& occurrence, ParamContext context) {
  // When the same event feeds several ports of one parent (e.g. SEQ(e, e)),
  // terminator/closer ports must observe the operator state *before* this
  // occurrence is buffered as an initiator — so deliver higher ports first.
  std::vector<ParentEdge> ordered = parents_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ParentEdge& a, const ParentEdge& b) {
                     return a.port > b.port;
                   });
  for (const ParentEdge& edge : ordered) {
    if (edge.node->ActiveIn(context)) {
      edge.node->Receive(edge.port, occurrence, context);
    }
  }
  for (EventSink* sink : sinks_) {
    sink->OnEvent(occurrence, context);
  }
}

void PrimitiveEventNode::Signal(
    const std::shared_ptr<const PrimitiveOccurrence>& raw) {
  // One raw notification can match several primitive event nodes; each
  // detection is labelled with the matching node's event name.
  std::shared_ptr<const PrimitiveOccurrence> labelled = raw;
  if (raw->event_name != name()) {
    auto copy = std::make_shared<PrimitiveOccurrence>(*raw);
    copy->event_name = name();
    labelled = std::move(copy);
  }
  Occurrence occ;
  occ.event_name = name();
  occ.t_start = labelled->at;
  occ.t_end = labelled->at;
  occ.at_ms = labelled->at_ms;
  occ.txn = labelled->txn;
  occ.constituents.push_back(labelled);
  for (int c = 0; c < kNumContexts; ++c) {
    if (ActiveIn(static_cast<ParamContext>(c))) {
      Emit(occ, static_cast<ParamContext>(c));
    }
  }
}

void PrimitiveEventNode::Receive(int port, const Occurrence& occurrence,
                                 ParamContext context) {
  // Primitive nodes have no children; nothing should route here.
  (void)port;
  (void)occurrence;
  (void)context;
  SENTINEL_LOG(kWarn) << "primitive node " << name() << " received an event";
}

}  // namespace sentinel::detector
