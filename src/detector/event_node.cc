#include "detector/event_node.h"

#include <algorithm>

#include "common/logging.h"
#include "common/pool.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace sentinel::detector {

namespace {

/// Striped buffer mutexes shared by all event nodes in the process. Nodes
/// are assigned stripes round-robin at construction so sibling nodes (built
/// together when an expression is defined) land on distinct stripes. A
/// stripe collision between unrelated nodes costs contention only, never
/// deadlock: buffer locks are leaf locks (collect-then-emit).
constexpr std::size_t kBufferStripes = 64;

std::mutex& AssignBufferStripe() {
  static std::array<std::mutex, kBufferStripes> stripes;
  static std::atomic<std::size_t> next{0};
  return stripes[next.fetch_add(1, std::memory_order_relaxed) %
                 kBufferStripes];
}

/// Records one operator-node Emit into the node's cost account on every
/// exit path (Emit returns early when there are no sinks).
struct EmitCostScope {
  obs::Profiler::CostCell* cost = nullptr;
  std::uint64_t cpu0 = 0;
  std::uint64_t t0 = 0;
  ~EmitCostScope() {
    if (cost != nullptr) {
      cost->Record(obs::Profiler::ThreadCpuNs() - cpu0,
                   obs::Profiler::NowNs() - t0);
    }
  }
};

}  // namespace

EventNode::EventNode(std::string name)
    : name_(std::move(name)), buffer_mu_(AssignBufferStripe()) {}

void EventNode::set_profiler(obs::Profiler* profiler) {
  profiler_ = profiler;
  // Only operator nodes evaluate anything or mutate buffers; primitives get
  // the profiler pointer but no accounts.
  if (profiler != nullptr && composite_) {
    cost_ = profiler->NodeAccount(name_);
    buffer_site_ = profiler->GetContentionSite("buffer:" + name_);
  } else {
    cost_ = nullptr;
    buffer_site_ = nullptr;
  }
}

void EventNode::AddParent(EventNode* parent, int port) {
  // Insert keeping descending port order (stable for equal ports).
  auto it = std::find_if(
      parents_.begin(), parents_.end(),
      [port](const ParentEdge& edge) { return edge.port < port; });
  parents_.insert(it, ParentEdge{parent, port});
}

void EventNode::RemoveParent(EventNode* parent) {
  parents_.erase(std::remove_if(parents_.begin(), parents_.end(),
                                [parent](const ParentEdge& edge) {
                                  return edge.node == parent;
                                }),
                 parents_.end());
}

void EventNode::AddSink(EventSink* sink) { sinks_.push_back(sink); }

void EventNode::RemoveSink(EventSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void EventNode::AddContextRef(ParamContext context) {
  int& refs = context_refs_[static_cast<int>(context)];
  ++refs;
  if (refs == 1) {
    active_contexts_.fetch_add(1, std::memory_order_release);
    OnContextActivated(context);
  }
  for (EventNode* child : Children()) {
    if (child != nullptr) child->AddContextRef(context);
  }
}

void EventNode::ReleaseContextRef(ParamContext context) {
  int& refs = context_refs_[static_cast<int>(context)];
  if (refs == 0) {
    SENTINEL_LOG(kWarn) << "context underflow on node " << name_;
    return;
  }
  --refs;
  if (refs == 0) {
    active_contexts_.fetch_sub(1, std::memory_order_release);
    OnContextDeactivated(context);
  }
  for (EventNode* child : Children()) {
    if (child != nullptr) child->ReleaseContextRef(context);
  }
}

void EventNode::Emit(const Occurrence& occurrence, ParamContext context) {
  metrics_.OnDetected(context);
  // Operator-evaluation attribution (one relaxed load when profiling is
  // off): covers the whole downstream cascade, like the composite_detect
  // span below.
  EmitCostScope emit_cost;
  if (cost_ != nullptr && profiler_->enabled()) {
    emit_cost.cost = cost_;
    emit_cost.cpu0 = obs::Profiler::ThreadCpuNs();
    emit_cost.t0 = obs::Profiler::NowNs();
  }
  // Operator detections open a composite_detect span covering the whole
  // cascade (parent deliveries and sink firings below happen inside it, so
  // rule subtransactions parent into the detection that triggered them).
  obs::SpanScope detect_span;
  if (composite_ && span_tracer_ != nullptr &&
      span_tracer_->enabled_for(obs::SpanKind::kCompositeDetect)) {
    detect_span.Start(span_tracer_, obs::SpanKind::kCompositeDetect,
                      occurrence.txn, name_);
  }
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  // parents_ is kept sorted by descending port (AddParent), so higher ports
  // are delivered first without sorting per emission.
  for (const ParentEdge& edge : parents_) {
    if (edge.node->ActiveIn(context)) {
      edge.node->metrics().OnReceived(context);
      if (tracing) {
        tracer_->Record(obs::EdgeKind::kComposite, name_, edge.node->name(),
                        occurrence.txn, context);
      }
      edge.node->Receive(edge.port, occurrence, context);
    }
  }
  if (sinks_.empty()) return;
  // Snapshot the sink list: a sink's OnEvent may reentrantly call
  // RemoveSink/Unsubscribe. Each delivery re-checks membership so sinks
  // removed mid-emission (including by an earlier sink) are skipped.
  EventSink* inline_snapshot[8];
  std::vector<EventSink*> heap_snapshot;
  EventSink** snapshot;
  const std::size_t n = sinks_.size();
  if (n <= std::size(inline_snapshot)) {
    std::copy(sinks_.begin(), sinks_.end(), inline_snapshot);
    snapshot = inline_snapshot;
  } else {
    heap_snapshot.assign(sinks_.begin(), sinks_.end());
    snapshot = heap_snapshot.data();
  }
  for (std::size_t i = 0; i < n; ++i) {
    EventSink* sink = snapshot[i];
    if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
      continue;  // removed reentrantly
    }
    sink->OnEvent(occurrence, context);
  }
}

PrimitiveEventNode::PrimitiveEventNode(std::string name,
                                       std::string class_name,
                                       EventModifier modifier,
                                       std::string method_signature,
                                       oodb::Oid instance)
    : EventNode(std::move(name)),
      class_name_(std::move(class_name)),
      modifier_(modifier),
      method_signature_(std::move(method_signature)),
      class_sym_(common::SymbolTable::Global().Intern(class_name_)),
      method_sym_(common::SymbolTable::Global().Intern(method_signature_)),
      instance_(instance) {}

void PrimitiveEventNode::Signal(
    const std::shared_ptr<const PrimitiveOccurrence>& raw) {
  // One raw notification can match several primitive event nodes; each
  // detection is labelled with the matching node's event name.
  std::shared_ptr<const PrimitiveOccurrence> labelled = raw;
  if (raw->event_name != name()) {
    auto copy = common::MakePooled<PrimitiveOccurrence>(*raw);
    copy->event_name = name();
    labelled = std::move(copy);
  }
  Occurrence occ;
  occ.event_name = name();
  occ.t_start = labelled->at;
  occ.t_end = labelled->at;
  occ.at_ms = labelled->at_ms;
  occ.txn = labelled->txn;
  occ.constituents.push_back(labelled);
  obs::ProvenanceTracer* tracer = this->tracer();
  const bool tracing = tracer != nullptr && tracer->enabled();
  for (int c = 0; c < kNumContexts; ++c) {
    const auto context = static_cast<ParamContext>(c);
    if (!ActiveIn(context)) continue;
    metrics().OnReceived(context);
    if (tracing) {
      tracer->Record(obs::EdgeKind::kPrimitive,
                     labelled->class_name + "::" + labelled->method_signature,
                     name(), labelled->txn, context);
    }
    Emit(occ, context);
  }
}

void PrimitiveEventNode::Receive(int port, const Occurrence& occurrence,
                                 ParamContext context) {
  // Primitive nodes have no children; nothing should route here.
  (void)port;
  (void)occurrence;
  (void)context;
  SENTINEL_LOG(kWarn) << "primitive node " << name() << " received an event";
}

}  // namespace sentinel::detector
