#ifndef SENTINEL_DETECTOR_EVENT_TYPES_H_
#define SENTINEL_DETECTOR_EVENT_TYPES_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/symbol.h"
#include "oodb/value.h"
#include "storage/log_record.h"

namespace sentinel::detector {

using TxnId = storage::TxnId;

/// Which edge of a method invocation raises the event (paper §3.1:
/// begin(event) / end(event); end is the default).
enum class EventModifier : std::uint8_t { kBegin = 0, kEnd = 1 };

const char* EventModifierToString(EventModifier m);

/// Snoop parameter contexts (paper §3.1; semantics from the VLDB'94
/// companion paper). RECENT is the default for its low storage needs.
enum class ParamContext : std::uint8_t {
  kRecent = 0,
  kChronicle = 1,
  kContinuous = 2,
  kCumulative = 3,
};
constexpr int kNumContexts = 4;

const char* ParamContextToString(ParamContext c);

/// The paper's PARA_LIST: ordered (name, value) pairs collected by the
/// wrapper method at invocation time. Immutable once attached to an
/// occurrence; shared by pointer through the graph (no copying — §3.2.2
/// item 2).
///
/// Storage is a small inline buffer (method wrappers collect a handful of
/// actual parameters) with a vector spill-over, so building the list on the
/// Notify hot path does not allocate.
class ParamList {
 public:
  using Entry = std::pair<std::string, oodb::Value>;

  ParamList() = default;

  ParamList& Insert(std::string name, oodb::Value value) {
    if (inline_size_ < kInlineCapacity) {
      inline_[inline_size_].first = std::move(name);
      inline_[inline_size_].second = std::move(value);
      ++inline_size_;
    } else {
      overflow_.emplace_back(std::move(name), std::move(value));
    }
    return *this;
  }

  /// First value with the given name, or NotFound.
  Result<oodb::Value> Get(const std::string& name) const {
    for (const Entry& e : *this) {
      if (e.first == name) return e.second;
    }
    return Status::NotFound("no parameter named " + name);
  }

  std::size_t size() const { return inline_size_ + overflow_.size(); }

  const Entry& entry(std::size_t i) const {
    return i < inline_size_ ? inline_[i] : overflow_[i - inline_size_];
  }

  class const_iterator {
   public:
    const_iterator(const ParamList* list, std::size_t i)
        : list_(list), i_(i) {}
    const Entry& operator*() const { return list_->entry(i_); }
    const Entry* operator->() const { return &list_->entry(i_); }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.i_ != b.i_;
    }

   private:
    const ParamList* list_;
    std::size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

  std::string ToString() const;

 private:
  static constexpr std::size_t kInlineCapacity = 4;

  std::size_t inline_size_ = 0;
  std::array<Entry, kInlineCapacity> inline_{};
  std::vector<Entry> overflow_;
};

/// One primitive event occurrence: the unit collected into composite-event
/// parameter lists. Carries the signalling object's OID plus atomic
/// parameters (§2.1: "identification of the object (i.e., oid) as one of the
/// event parameters and other parameters which have atomic values").
struct PrimitiveOccurrence {
  std::string event_name;        // primitive event node that matched
  std::string class_name;        // class of the signalling object
  oodb::Oid oid = oodb::kInvalidOid;
  EventModifier modifier = EventModifier::kEnd;
  std::string method_signature;
  // Interned forms of class_name/method_signature (common::SymbolTable::
  // Global()); kInvalidSymbol when the occurrence was built outside the
  // detector (matching then falls back to the string forms). Not persisted —
  // the detector re-interns on Inject.
  common::SymbolId class_sym = common::kInvalidSymbol;
  common::SymbolId method_sym = common::kInvalidSymbol;
  // Distributed-trace linkage (DESIGN.md §14), process-local like the
  // interned symbols above: trace_id groups one cross-process causal chain,
  // trace_parent is the LATEST span id along it (rewritten at each hop —
  // decode, admission wait, forward), origin_ns is the originating client's
  // wall-clock ns at Notify() (the e2e latency anchor, which IS carried on
  // the wire via the trace-context trailer, never via this struct's codec).
  std::uint64_t trace_id = 0;
  std::uint64_t trace_parent = 0;
  std::uint64_t origin_ns = 0;
  Timestamp at = kInvalidTimestamp;  // logical occurrence time
  std::uint64_t at_ms = 0;           // temporal-clock time (for PLUS/P)
  TxnId txn = storage::kInvalidTxnId;
  std::shared_ptr<const ParamList> params;

  std::string ToString() const;
};

/// An event occurrence flowing through the event graph. Composite
/// occurrences span an interval [t_start, t_end] and reference (not copy)
/// the parameter lists of their constituent primitive occurrences — the
/// paper's linked-list-of-parameters representation.
struct Occurrence {
  std::string event_name;  // node that produced this occurrence
  Timestamp t_start = kInvalidTimestamp;
  Timestamp t_end = kInvalidTimestamp;
  std::uint64_t at_ms = 0;
  TxnId txn = storage::kInvalidTxnId;
  std::vector<std::shared_ptr<const PrimitiveOccurrence>> constituents;

  /// Looks a parameter up across constituents, newest first.
  Result<oodb::Value> Param(const std::string& name) const;
  /// All constituents raised by the named primitive event.
  std::vector<std::shared_ptr<const PrimitiveOccurrence>> Of(
      const std::string& primitive_event_name) const;

  std::string ToString() const;
};

/// Receiver of detected events: rules subscribe to event nodes through this
/// interface; the global event detector forwards through it as well.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(const Occurrence& occurrence, ParamContext context) = 0;
};

}  // namespace sentinel::detector

#endif  // SENTINEL_DETECTOR_EVENT_TYPES_H_
