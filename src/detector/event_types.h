#ifndef SENTINEL_DETECTOR_EVENT_TYPES_H_
#define SENTINEL_DETECTOR_EVENT_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "oodb/value.h"
#include "storage/log_record.h"

namespace sentinel::detector {

using TxnId = storage::TxnId;

/// Which edge of a method invocation raises the event (paper §3.1:
/// begin(event) / end(event); end is the default).
enum class EventModifier : std::uint8_t { kBegin = 0, kEnd = 1 };

const char* EventModifierToString(EventModifier m);

/// Snoop parameter contexts (paper §3.1; semantics from the VLDB'94
/// companion paper). RECENT is the default for its low storage needs.
enum class ParamContext : std::uint8_t {
  kRecent = 0,
  kChronicle = 1,
  kContinuous = 2,
  kCumulative = 3,
};
constexpr int kNumContexts = 4;

const char* ParamContextToString(ParamContext c);

/// The paper's PARA_LIST: ordered (name, value) pairs collected by the
/// wrapper method at invocation time. Immutable once attached to an
/// occurrence; shared by pointer through the graph (no copying — §3.2.2
/// item 2).
class ParamList {
 public:
  ParamList() = default;

  ParamList& Insert(std::string name, oodb::Value value) {
    params_.emplace_back(std::move(name), std::move(value));
    return *this;
  }

  /// First value with the given name, or NotFound.
  Result<oodb::Value> Get(const std::string& name) const {
    for (const auto& [n, v] : params_) {
      if (n == name) return v;
    }
    return Status::NotFound("no parameter named " + name);
  }

  const std::vector<std::pair<std::string, oodb::Value>>& entries() const {
    return params_;
  }
  std::size_t size() const { return params_.size(); }

  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, oodb::Value>> params_;
};

/// One primitive event occurrence: the unit collected into composite-event
/// parameter lists. Carries the signalling object's OID plus atomic
/// parameters (§2.1: "identification of the object (i.e., oid) as one of the
/// event parameters and other parameters which have atomic values").
struct PrimitiveOccurrence {
  std::string event_name;        // primitive event node that matched
  std::string class_name;        // class of the signalling object
  oodb::Oid oid = oodb::kInvalidOid;
  EventModifier modifier = EventModifier::kEnd;
  std::string method_signature;
  Timestamp at = kInvalidTimestamp;  // logical occurrence time
  std::uint64_t at_ms = 0;           // temporal-clock time (for PLUS/P)
  TxnId txn = storage::kInvalidTxnId;
  std::shared_ptr<const ParamList> params;

  std::string ToString() const;
};

/// An event occurrence flowing through the event graph. Composite
/// occurrences span an interval [t_start, t_end] and reference (not copy)
/// the parameter lists of their constituent primitive occurrences — the
/// paper's linked-list-of-parameters representation.
struct Occurrence {
  std::string event_name;  // node that produced this occurrence
  Timestamp t_start = kInvalidTimestamp;
  Timestamp t_end = kInvalidTimestamp;
  std::uint64_t at_ms = 0;
  TxnId txn = storage::kInvalidTxnId;
  std::vector<std::shared_ptr<const PrimitiveOccurrence>> constituents;

  /// Looks a parameter up across constituents, newest first.
  Result<oodb::Value> Param(const std::string& name) const;
  /// All constituents raised by the named primitive event.
  std::vector<std::shared_ptr<const PrimitiveOccurrence>> Of(
      const std::string& primitive_event_name) const;

  std::string ToString() const;
};

/// Receiver of detected events: rules subscribe to event nodes through this
/// interface; the global event detector forwards through it as well.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(const Occurrence& occurrence, ParamContext context) = 0;
};

}  // namespace sentinel::detector

#endif  // SENTINEL_DETECTOR_EVENT_TYPES_H_
