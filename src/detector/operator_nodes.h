#ifndef SENTINEL_DETECTOR_OPERATOR_NODES_H_
#define SENTINEL_DETECTOR_OPERATOR_NODES_H_

#include <array>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "detector/event_node.h"

namespace sentinel::detector {

/// Snoop operators (paper §3.1 and [5]). Port conventions:
///   binary ops:  0 = left (initiator), 1 = right (terminator)
///   ternary ops: 0 = opener E1, 1 = detector/canceller E2, 2 = closer E3
enum class OperatorKind : std::uint8_t {
  kOr = 0,
  kAnd = 1,
  kSeq = 2,
  kNot = 3,
  kAperiodic = 4,            // A  (E1, E2, E3)
  kAperiodicCumulative = 5,  // A* (E1, E2, E3)
  kPlus = 6,                 // E1 + t
  kPeriodic = 7,             // P  (E1, t, E3)
  kPeriodicCumulative = 8,   // P* (E1, t, E3)
  kAny = 9,                  // ANY(m, E1, ..., En)
};

const char* OperatorKindToString(OperatorKind kind);

/// Shared plumbing for operator nodes: child links and composite-occurrence
/// assembly (concatenating constituent pointers — never copying parameter
/// data, per §3.2.2 item 2).
class OperatorNode : public EventNode {
 public:
  OperatorNode(std::string name, OperatorKind kind,
               std::vector<EventNode*> children);

  OperatorKind kind() const { return kind_; }
  std::vector<EventNode*> Children() const override { return children_; }

 protected:
  /// Builds this node's occurrence from constituent occurrences (in
  /// chronological order of their roles).
  Occurrence Compose(const std::vector<const Occurrence*>& parts) const;

  /// Emits a batch of detections collected under the buffer lock. Operators
  /// mutate their buffers and Compose results while holding buffer_mu(),
  /// then emit after releasing it — buffer locks are leaf locks and are
  /// never held across Emit (see EventNode locking discipline).
  void EmitAll(std::vector<Occurrence>& batch, ParamContext context) {
    for (Occurrence& occ : batch) Emit(occ, context);
  }

  std::vector<EventNode*> children_;

 private:
  OperatorKind kind_;
};

/// OR: either child's occurrence is an occurrence of the disjunction.
/// Stateless — contexts do not affect a single-constituent detection.
class OrNode : public OperatorNode {
 public:
  OrNode(std::string name, EventNode* left, EventNode* right);
  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;
};

/// AND (the paper's `^`): both children occurred, in any order.
class AndNode : public OperatorNode {
 public:
  AndNode(std::string name, EventNode* left, EventNode* right);
  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;
  void FlushTxn(TxnId txn) override;
  void FlushAll() override;
  std::size_t BufferedCount() const override;

 private:
  struct State {
    std::deque<Occurrence> side[2];
  };
  std::array<State, kNumContexts> state_;
};

/// SEQ (;): left strictly before right (t_end(left) < t_start(right)).
class SeqNode : public OperatorNode {
 public:
  SeqNode(std::string name, EventNode* left, EventNode* right);
  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;
  void FlushTxn(TxnId txn) override;
  void FlushAll() override;
  std::size_t BufferedCount() const override;

 private:
  struct State {
    std::deque<Occurrence> initiators;
  };
  std::array<State, kNumContexts> state_;
};

/// NOT(E2)[E1, E3]: E3 follows E1 with no intervening E2. An E2 occurrence
/// cancels all pending initiators.
class NotNode : public OperatorNode {
 public:
  NotNode(std::string name, EventNode* opener, EventNode* canceller,
          EventNode* closer);
  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;
  void FlushTxn(TxnId txn) override;
  void FlushAll() override;
  std::size_t BufferedCount() const override;

 private:
  struct State {
    std::deque<Occurrence> initiators;
  };
  std::array<State, kNumContexts> state_;
};

/// A(E1, E2, E3): each E2 inside the (E1, E3) window signals. E3 closes all
/// open windows without signalling.
class AperiodicNode : public OperatorNode {
 public:
  AperiodicNode(std::string name, EventNode* opener, EventNode* detector,
                EventNode* closer);
  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;
  void FlushTxn(TxnId txn) override;
  void FlushAll() override;
  std::size_t BufferedCount() const override;

 private:
  struct State {
    std::deque<Occurrence> openers;
  };
  std::array<State, kNumContexts> state_;
};

/// A*(E1, E2, E3): accumulates E2 occurrences inside the (E1, E3) window and
/// signals exactly once, at E3, with every accumulated occurrence — if at
/// least one E2 occurred. This is the operator the Sentinel pre-processor
/// rewrites DEFERRED rules into: A*(begin_transaction, E, pre_commit) fires
/// once per transaction with the net accumulation (§2.3, §3.2.3).
class AperiodicStarNode : public OperatorNode {
 public:
  AperiodicStarNode(std::string name, EventNode* opener, EventNode* detector,
                    EventNode* closer);
  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;
  void FlushTxn(TxnId txn) override;
  void FlushAll() override;
  std::size_t BufferedCount() const override;

 private:
  struct State {
    std::deque<Occurrence> openers;
    std::deque<Occurrence> accumulated;
  };
  std::array<State, kNumContexts> state_;
};

/// ANY(m, E1, ..., En): occurs when m of the n distinct constituent events
/// have occurred, in any order (Snoop [5]). Generalizes AND (= ANY(n, ...))
/// and OR (= ANY(1, ...)).
///
/// Context treatment mirrors AND's: RECENT keeps the most recent occurrence
/// per constituent and re-detects without consuming; CHRONICLE consumes the
/// oldest occurrence of each participating constituent; CUMULATIVE emits one
/// detection carrying everything buffered. CONTINUOUS uses CHRONICLE's
/// pairing (the m-of-n window-per-initiator semantics degenerate; this
/// simplification is documented in DESIGN.md).
class AnyNode : public OperatorNode {
 public:
  AnyNode(std::string name, std::size_t threshold,
          std::vector<EventNode*> children);
  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;
  void FlushTxn(TxnId txn) override;
  void FlushAll() override;
  std::size_t BufferedCount() const override;

  std::size_t threshold() const { return threshold_; }

 private:
  struct State {
    std::vector<std::deque<Occurrence>> ports;
  };
  std::size_t threshold_;
  std::array<State, kNumContexts> state_;
};

/// PLUS(E1, t): occurs t milliseconds (of the detector's temporal clock)
/// after each E1 occurrence.
class PlusNode : public OperatorNode {
 public:
  PlusNode(std::string name, EventNode* base, std::uint64_t delta_ms,
           LogicalClock* clock);
  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;
  void OnTimeAdvance(std::uint64_t now_ms) override;
  void FlushTxn(TxnId txn) override;
  void FlushAll() override;
  std::size_t BufferedCount() const override;

  std::uint64_t delta_ms() const { return delta_ms_; }

 private:
  struct Pending {
    std::uint64_t deadline_ms;
    Occurrence base;
  };
  struct State {
    std::deque<Pending> pending;
  };
  std::uint64_t delta_ms_;
  LogicalClock* clock_;
  std::array<State, kNumContexts> state_;
};

/// P(E1, t, E3): fires every t milliseconds after E1 until E3.
class PeriodicNode : public OperatorNode {
 public:
  PeriodicNode(std::string name, EventNode* opener, std::uint64_t period_ms,
               EventNode* closer, LogicalClock* clock);
  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;
  void OnTimeAdvance(std::uint64_t now_ms) override;
  void FlushTxn(TxnId txn) override;
  void FlushAll() override;
  std::size_t BufferedCount() const override;

  std::uint64_t period_ms() const { return period_ms_; }

 protected:
  struct Schedule {
    std::uint64_t next_ms;
    Occurrence opener;
    std::uint64_t ticks = 0;
    // P*: timestamps of elapsed periods, reported once at close.
    std::vector<std::uint64_t> tick_times;
  };
  struct State {
    std::deque<Schedule> schedules;
  };

  /// Hook for P*: called per elapsed period; detections are appended to
  /// `out` (the caller emits them after releasing the buffer lock).
  virtual void OnTick(Schedule* schedule, std::uint64_t tick_ms,
                      std::vector<Occurrence>* out);
  /// Hook for P*: called when E3 closes `schedule`; same collection rule.
  virtual void OnClose(Schedule* schedule, const Occurrence& closer,
                       std::vector<Occurrence>* out);

  std::uint64_t period_ms_;
  LogicalClock* clock_;
  std::array<State, kNumContexts> state_;
};

/// P*(E1, t, E3): like P but cumulative — one occurrence at E3 carrying the
/// timestamps of every elapsed period.
class PeriodicStarNode : public PeriodicNode {
 public:
  PeriodicStarNode(std::string name, EventNode* opener, std::uint64_t period_ms,
                   EventNode* closer, LogicalClock* clock);

 protected:
  void OnTick(Schedule* schedule, std::uint64_t tick_ms,
              std::vector<Occurrence>* out) override;
  void OnClose(Schedule* schedule, const Occurrence& closer,
               std::vector<Occurrence>* out) override;
};

}  // namespace sentinel::detector

#endif  // SENTINEL_DETECTOR_OPERATOR_NODES_H_
