#ifndef SENTINEL_DETECTOR_EVENT_NODE_H_
#define SENTINEL_DETECTOR_EVENT_NODE_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "detector/event_types.h"

namespace sentinel::detector {

/// Node of the event graph (the paper's operator-tree analogue, §3.2.2).
///
/// Each node keeps two subscriber lists — parent event nodes and sinks
/// (rules) — and a per-context reference counter. A node only detects (and
/// buffers occurrences) in contexts whose counter is positive; the counter
/// is incremented when a rule is defined in that context on an expression
/// containing the node, and decremented when the rule is disabled/deleted
/// (§3.2.2 item 1). This is what lets one shared graph serve many rules in
/// different contexts while avoiding the storage cost of unused contexts.
class EventNode {
 public:
  explicit EventNode(std::string name) : name_(std::move(name)) {}
  virtual ~EventNode() = default;

  EventNode(const EventNode&) = delete;
  EventNode& operator=(const EventNode&) = delete;

  const std::string& name() const { return name_; }

  // -- Wiring ---------------------------------------------------------------

  /// Registers `parent` to receive this node's detections on its child slot
  /// `port` (0 = left/initiator, 1 = middle/detector, 2 = right/terminator).
  void AddParent(EventNode* parent, int port);

  /// Rules (and the GED forwarder) subscribe as sinks.
  void AddSink(EventSink* sink);
  void RemoveSink(EventSink* sink);

  /// Children of this node in the event graph (empty for primitives).
  virtual std::vector<EventNode*> Children() const { return {}; }

  // -- Context management -----------------------------------------------------

  /// Increments the context counter on this node and its whole subtree.
  void AddContextRef(ParamContext context);
  /// Decrements; a node whose counter reaches 0 stops detecting in that
  /// context and discards its buffered occurrences for it.
  void ReleaseContextRef(ParamContext context);
  bool ActiveIn(ParamContext context) const {
    return context_refs_[static_cast<int>(context)] > 0;
  }
  int ContextRefs(ParamContext context) const {
    return context_refs_[static_cast<int>(context)];
  }

  // -- Detection ---------------------------------------------------------------

  /// Delivery of a child detection into slot `port`, in `context`.
  virtual void Receive(int port, const Occurrence& occurrence,
                       ParamContext context) = 0;

  /// Temporal-clock advance (PLUS/P nodes override; others ignore).
  virtual void OnTimeAdvance(std::uint64_t now_ms) { (void)now_ms; }

  // -- Transaction hygiene -------------------------------------------------------

  /// Drops buffered (partially detected) occurrences belonging to `txn`
  /// (§3.2.2 item 3: events must not leak across transaction boundaries).
  virtual void FlushTxn(TxnId txn) { (void)txn; }
  /// Drops all buffered occurrences.
  virtual void FlushAll() {}

  /// Total buffered occurrences across contexts (storage accounting for the
  /// context benchmarks).
  virtual std::size_t BufferedCount() const { return 0; }

  std::size_t sink_count() const { return sinks_.size(); }

 protected:
  /// Delivers a detection to all parents and sinks.
  void Emit(const Occurrence& occurrence, ParamContext context);

  /// Called when a context transitions inactive->active / active->inactive.
  virtual void OnContextActivated(ParamContext context) { (void)context; }
  virtual void OnContextDeactivated(ParamContext context) { (void)context; }

 private:
  struct ParentEdge {
    EventNode* node;
    int port;
  };

  std::string name_;
  std::vector<ParentEdge> parents_;
  std::vector<EventSink*> sinks_;
  std::array<int, kNumContexts> context_refs_{};
};

/// Leaf node: a primitive event declared on (class, method, modifier), with
/// an optional instance filter (paper §3.1: class-level vs. instance-level
/// primitive events distinguished by whether an OID is bound).
class PrimitiveEventNode : public EventNode {
 public:
  PrimitiveEventNode(std::string name, std::string class_name,
                     EventModifier modifier, std::string method_signature,
                     oodb::Oid instance = oodb::kInvalidOid)
      : EventNode(std::move(name)),
        class_name_(std::move(class_name)),
        modifier_(modifier),
        method_signature_(std::move(method_signature)),
        instance_(instance) {}

  const std::string& class_name() const { return class_name_; }
  EventModifier modifier() const { return modifier_; }
  const std::string& method_signature() const { return method_signature_; }
  oodb::Oid instance() const { return instance_; }
  bool is_instance_level() const { return instance_ != oodb::kInvalidOid; }

  /// True if a raw notification matches this node's declaration. The class
  /// has already been matched by the detector's per-class node lists.
  bool Matches(const PrimitiveOccurrence& raw) const {
    return raw.modifier == modifier_ &&
           raw.method_signature == method_signature_ &&
           (instance_ == oodb::kInvalidOid || raw.oid == instance_);
  }

  /// Accepts a raw notification from the detector: wraps it into an
  /// occurrence named after this node and emits it in every active context.
  void Signal(const std::shared_ptr<const PrimitiveOccurrence>& raw);

  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;

 private:
  std::string class_name_;
  EventModifier modifier_;
  std::string method_signature_;
  oodb::Oid instance_;
};

}  // namespace sentinel::detector

#endif  // SENTINEL_DETECTOR_EVENT_NODE_H_
