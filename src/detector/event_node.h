#ifndef SENTINEL_DETECTOR_EVENT_NODE_H_
#define SENTINEL_DETECTOR_EVENT_NODE_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/symbol.h"
#include "detector/event_types.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace sentinel::obs {
class ProvenanceTracer;
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::detector {

/// Node of the event graph (the paper's operator-tree analogue, §3.2.2).
///
/// Each node keeps two subscriber lists — parent event nodes and sinks
/// (rules) — and a per-context reference counter. A node only detects (and
/// buffers occurrences) in contexts whose counter is positive; the counter
/// is incremented when a rule is defined in that context on an expression
/// containing the node, and decremented when the rule is disabled/deleted
/// (§3.2.2 item 1). This is what lets one shared graph serve many rules in
/// different contexts while avoiding the storage cost of unused contexts.
///
/// Locking discipline (two levels — see DESIGN.md "Concurrent dispatch"):
/// graph *structure* (parents_/sinks_/context_refs_) is guarded by the
/// detector's shared_mutex — mutated under the exclusive lock, read under
/// the shared lock that every signalling path holds. Operator-node
/// *occurrence buffers* are guarded by per-node striped mutexes (buffer_mu)
/// so concurrent notifications serialize only when they touch the same
/// node's state, never on one global lock. Buffer locks are leaf locks:
/// never held across Emit (operators collect detections under the lock and
/// emit after releasing it), so stripe sharing cannot deadlock.
class EventNode {
 public:
  explicit EventNode(std::string name);
  virtual ~EventNode() = default;

  EventNode(const EventNode&) = delete;
  EventNode& operator=(const EventNode&) = delete;

  const std::string& name() const { return name_; }

  // -- Wiring ---------------------------------------------------------------

  /// Registers `parent` to receive this node's detections on its child slot
  /// `port` (0 = left/initiator, 1 = middle/detector, 2 = right/terminator).
  void AddParent(EventNode* parent, int port);

  /// Drops every edge to `parent` (graph hygiene when an operator node is
  /// removed — e.g. the generated A* node of a deleted DEFERRED rule).
  void RemoveParent(EventNode* parent);

  /// Rules (and the GED forwarder) subscribe as sinks.
  void AddSink(EventSink* sink);
  void RemoveSink(EventSink* sink);

  /// Children of this node in the event graph (empty for primitives).
  virtual std::vector<EventNode*> Children() const { return {}; }

  // -- Context management -----------------------------------------------------

  /// Increments the context counter on this node and its whole subtree.
  void AddContextRef(ParamContext context);
  /// Decrements; a node whose counter reaches 0 stops detecting in that
  /// context and discards its buffered occurrences for it.
  void ReleaseContextRef(ParamContext context);
  bool ActiveIn(ParamContext context) const {
    return context_refs_[static_cast<int>(context)] > 0;
  }
  int ContextRefs(ParamContext context) const {
    return context_refs_[static_cast<int>(context)];
  }
  /// Number of contexts with a positive reference count. Lock-free: the
  /// detector's Notify fast path uses it to skip nodes nobody subscribed to
  /// without taking the graph lock.
  int active_context_count() const {
    return active_contexts_.load(std::memory_order_acquire);
  }

  // -- Detection ---------------------------------------------------------------

  /// Delivery of a child detection into slot `port`, in `context`.
  virtual void Receive(int port, const Occurrence& occurrence,
                       ParamContext context) = 0;

  /// Temporal-clock advance (PLUS/P nodes override; others ignore).
  virtual void OnTimeAdvance(std::uint64_t now_ms) { (void)now_ms; }

  // -- Transaction hygiene -------------------------------------------------------

  /// Drops buffered (partially detected) occurrences belonging to `txn`
  /// (§3.2.2 item 3: events must not leak across transaction boundaries).
  virtual void FlushTxn(TxnId txn) { (void)txn; }
  /// Drops all buffered occurrences.
  virtual void FlushAll() {}

  /// Total buffered occurrences across contexts (storage accounting for the
  /// context benchmarks).
  virtual std::size_t BufferedCount() const { return 0; }

  std::size_t sink_count() const { return sinks_.size(); }

  // -- Observability -------------------------------------------------------------

  /// Per-node, per-context detection counters (src/obs). Written on the
  /// delivery paths with relaxed atomics; read by the stats surfaces.
  obs::NodeMetrics& metrics() const { return metrics_; }

  /// Attaches the provenance tracer (set by the owning detector when the
  /// node is installed; may be null). Edges are recorded only while the
  /// tracer is enabled, so an idle tracer costs one relaxed load per Emit.
  void set_tracer(obs::ProvenanceTracer* tracer) { tracer_ = tracer; }
  obs::ProvenanceTracer* tracer() const { return tracer_; }

  /// Attaches the causal span tracer (set by the owning detector alongside
  /// the provenance tracer; may be null). Operator nodes record a
  /// composite_detect span around each Emit so downstream rule firings
  /// parent into the detection that caused them.
  void set_span_tracer(obs::SpanTracer* tracer) { span_tracer_ = tracer; }
  obs::SpanTracer* span_tracer() const { return span_tracer_; }

  /// Attaches the continuous profiler (set by the owning detector under the
  /// exclusive graph lock, like the tracers). Operator nodes resolve their
  /// cost account and buffer-stripe contention site once here, so the Emit
  /// and buffer-lock paths never touch an account map.
  void set_profiler(obs::Profiler* profiler);
  obs::Profiler* profiler() const { return profiler_; }

  /// True for operator (composite) nodes; set once at construction.
  bool is_composite() const { return composite_; }

 protected:
  /// Delivers a detection to all parents and sinks. The sink list is
  /// snapshotted and each delivery re-checks membership, so a sink that
  /// reentrantly calls RemoveSink/Unsubscribe from OnEvent (e.g. a one-shot
  /// rule removing itself) cannot invalidate the iteration.
  void Emit(const Occurrence& occurrence, ParamContext context);

  /// Called when a context transitions inactive->active / active->inactive.
  virtual void OnContextActivated(ParamContext context) { (void)context; }
  virtual void OnContextDeactivated(ParamContext context) { (void)context; }

  /// This node's buffer lock (striped across nodes). Leaf lock only.
  std::mutex& buffer_mu() const { return buffer_mu_; }

  /// Acquires the buffer lock with try-then-wait contention accounting when
  /// a profiler is attached and enabled (a plain lock otherwise). Operator
  /// buffer mutations should lock through this instead of buffer_mu()
  /// directly.
  std::unique_lock<std::mutex> LockBuffer() const {
    return obs::Profiler::LockContended(profiler_, buffer_site_, buffer_mu_);
  }

  /// Operator-node constructors call this once; Emit then wraps deliveries
  /// in a composite_detect span when a span tracer is attached.
  void MarkComposite() { composite_ = true; }

 private:
  struct ParentEdge {
    EventNode* node;
    int port;
  };

  std::string name_;
  // Kept sorted by descending port (see AddParent) so Emit needs no per-call
  // sort: when one event feeds several ports of a parent (e.g. SEQ(e, e)),
  // terminator/closer ports must observe the operator state *before* the
  // occurrence is buffered as an initiator.
  std::vector<ParentEdge> parents_;
  std::vector<EventSink*> sinks_;
  std::array<int, kNumContexts> context_refs_{};
  std::atomic<int> active_contexts_{0};
  std::mutex& buffer_mu_;
  mutable obs::NodeMetrics metrics_;
  obs::ProvenanceTracer* tracer_ = nullptr;
  obs::SpanTracer* span_tracer_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::Profiler::CostCell* cost_ = nullptr;            // operator eval account
  obs::Profiler::ContentionSite* buffer_site_ = nullptr;
  bool composite_ = false;
};

/// Leaf node: a primitive event declared on (class, method, modifier), with
/// an optional instance filter (paper §3.1: class-level vs. instance-level
/// primitive events distinguished by whether an OID is bound).
class PrimitiveEventNode : public EventNode {
 public:
  PrimitiveEventNode(std::string name, std::string class_name,
                     EventModifier modifier, std::string method_signature,
                     oodb::Oid instance = oodb::kInvalidOid);

  const std::string& class_name() const { return class_name_; }
  EventModifier modifier() const { return modifier_; }
  const std::string& method_signature() const { return method_signature_; }
  common::SymbolId class_sym() const { return class_sym_; }
  common::SymbolId method_sym() const { return method_sym_; }
  oodb::Oid instance() const { return instance_; }
  bool is_instance_level() const { return instance_ != oodb::kInvalidOid; }

  /// True if a raw notification matches this node's declaration. The class
  /// has already been matched by the detector's dispatch index. Compares
  /// interned symbols; occurrences built outside the detector (no symbols
  /// attached) fall back to the string form.
  bool Matches(const PrimitiveOccurrence& raw) const {
    if (raw.modifier != modifier_) return false;
    if (raw.method_sym != common::kInvalidSymbol
            ? raw.method_sym != method_sym_
            : raw.method_signature != method_signature_) {
      return false;
    }
    return instance_ == oodb::kInvalidOid || raw.oid == instance_;
  }

  /// Accepts a raw notification from the detector: wraps it into an
  /// occurrence named after this node and emits it in every active context.
  void Signal(const std::shared_ptr<const PrimitiveOccurrence>& raw);

  void Receive(int port, const Occurrence& occurrence,
               ParamContext context) override;

 private:
  std::string class_name_;
  EventModifier modifier_;
  std::string method_signature_;
  common::SymbolId class_sym_;
  common::SymbolId method_sym_;
  oodb::Oid instance_;
};

}  // namespace sentinel::detector

#endif  // SENTINEL_DETECTOR_EVENT_NODE_H_
