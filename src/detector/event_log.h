#ifndef SENTINEL_DETECTOR_EVENT_LOG_H_
#define SENTINEL_DETECTOR_EVENT_LOG_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "detector/event_types.h"

namespace sentinel::detector {

class LocalEventDetector;

/// Durable log of primitive event occurrences, enabling batch
/// (after-the-fact) composite event detection over a stored stream
/// (paper §2.1 "Online and batch detection of events").
///
/// Attach to a detector with `log.AttachTo(&detector)` (records every
/// accepted raw notification), then later `log.Replay(&other_detector)` to
/// re-run detection offline — the same event graph and contexts apply, so
/// online and batch detection agree.
class EventLog {
 public:
  EventLog() = default;
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens (appending) a log file; without a file the log is memory-only.
  Status OpenFile(const std::string& path);
  Status Close();

  /// Registers this log as a raw observer of `detector`.
  void AttachTo(LocalEventDetector* detector);

  /// Appends one occurrence (thread-safe).
  void Record(const PrimitiveOccurrence& occurrence);

  /// Feeds every recorded occurrence (memory or file) into `detector` in
  /// recorded order, preserving timestamps.
  Status Replay(LocalEventDetector* detector) const;

  /// Loads all recorded occurrences.
  Result<std::vector<PrimitiveOccurrence>> Load() const;

  std::size_t size() const;

  static void Serialize(const PrimitiveOccurrence& occurrence,
                        BytesWriter* out);
  static Result<PrimitiveOccurrence> Deserialize(BytesReader* in);

 private:
  mutable std::mutex mu_;
  // Memory-only store (used when no file is attached; with a file open the
  // file itself is the store).
  std::vector<PrimitiveOccurrence> memory_;
  std::size_t recorded_ = 0;  // total recorded this session
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace sentinel::detector

#endif  // SENTINEL_DETECTOR_EVENT_LOG_H_
