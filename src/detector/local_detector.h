#ifndef SENTINEL_DETECTOR_LOCAL_DETECTOR_H_
#define SENTINEL_DETECTOR_LOCAL_DETECTOR_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/symbol.h"
#include "detector/event_node.h"
#include "detector/operator_nodes.h"
#include "oodb/schema.h"

namespace sentinel::detector {

/// The local composite event detector (paper §2.3, §3.2.2): one instance per
/// application. Owns the event graph, routes raw method notifications to the
/// primitive event nodes of the signalling class (and its ancestors — class
/// level events apply to subclasses), advances temporal events, manages
/// subscriber lists and context reference counts, and flushes buffered
/// occurrences at transaction boundaries.
///
/// Detection is demand-driven: notifications propagate only to nodes whose
/// class/method matches, and operator nodes only process contexts with a
/// positive reference count.
///
/// Concurrency (see DESIGN.md "Concurrent dispatch fast path"):
///  - graph_mu_ (shared_mutex) guards graph *structure*: definitions and
///    (un)subscriptions take it exclusive; Notify/Inject/RaiseExplicit/
///    AdvanceTime/flushes take it shared, so signalling threads run
///    concurrently.
///  - Operator-node occurrence buffers are guarded by per-node striped
///    mutexes (EventNode::buffer_mu) under the shared graph lock.
///  - Routing uses a precompiled dispatch index keyed by
///    (class_sym, modifier, method_sym) → flat vector of matching primitive
///    nodes, published lock-free through one atomic pointer and invalidated
///    by generation counters (event definitions and class registrations).
///    Classes with no reactive events hit a negative-cache entry, making
///    Notify on a quiescent class a few atomic loads and one probe.
class LocalEventDetector {
 public:
  LocalEventDetector();
  ~LocalEventDetector();

  LocalEventDetector(const LocalEventDetector&) = delete;
  LocalEventDetector& operator=(const LocalEventDetector&) = delete;

  // -- Event definition --------------------------------------------------------

  /// Declares a primitive event on (class, method, modifier); bind `instance`
  /// for an instance-level event (paper §3.1).
  Result<EventNode*> DefinePrimitive(const std::string& name,
                                     const std::string& class_name,
                                     EventModifier modifier,
                                     const std::string& method_signature,
                                     oodb::Oid instance = oodb::kInvalidOid);

  /// Declares an explicit (abstract) event raised by name from application
  /// code rather than by a method invocation.
  Result<EventNode*> DefineExplicit(const std::string& name);

  Result<EventNode*> DefineOr(const std::string& name, EventNode* left,
                              EventNode* right);
  Result<EventNode*> DefineAnd(const std::string& name, EventNode* left,
                               EventNode* right);
  Result<EventNode*> DefineSeq(const std::string& name, EventNode* left,
                               EventNode* right);
  Result<EventNode*> DefineNot(const std::string& name, EventNode* opener,
                               EventNode* canceller, EventNode* closer);
  Result<EventNode*> DefineAperiodic(const std::string& name, EventNode* opener,
                                     EventNode* detector, EventNode* closer);
  Result<EventNode*> DefineAperiodicStar(const std::string& name,
                                         EventNode* opener, EventNode* detector,
                                         EventNode* closer);
  /// ANY(m, E1..En): m of the n distinct events occurred, any order.
  Result<EventNode*> DefineAny(const std::string& name, std::size_t threshold,
                               std::vector<EventNode*> children);
  Result<EventNode*> DefinePlus(const std::string& name, EventNode* base,
                                std::uint64_t delta_ms);
  Result<EventNode*> DefinePeriodic(const std::string& name, EventNode* opener,
                                    std::uint64_t period_ms, EventNode* closer);
  Result<EventNode*> DefinePeriodicStar(const std::string& name,
                                        EventNode* opener,
                                        std::uint64_t period_ms,
                                        EventNode* closer);

  Result<EventNode*> Find(const std::string& name) const;
  bool Exists(const std::string& name) const;
  std::vector<std::string> EventNames() const;
  std::size_t node_count() const;

  /// Removes an event node from the graph (graph hygiene: the rewritten A*
  /// node of a deleted DEFERRED rule must not keep buffering occurrences).
  /// Fails if the node still has sinks or is a child of another expression.
  Status RemoveEvent(const std::string& name);

  // -- Signalling ----------------------------------------------------------------

  /// Raw notification from a wrapper method (the paper's Notify call inserted
  /// by the post-processor). Assigns the occurrence timestamp and routes to
  /// matching primitive nodes.
  void Notify(const std::string& class_name, oodb::Oid oid,
              EventModifier modifier, const std::string& method_signature,
              std::shared_ptr<const ParamList> params, TxnId txn);

  /// Raises an explicit event by name.
  Status RaiseExplicit(const std::string& name,
                       std::shared_ptr<const ParamList> params, TxnId txn);

  /// Batch-mode entry: injects a recorded occurrence (event-log replay),
  /// preserving its original timestamps.
  void Inject(const PrimitiveOccurrence& recorded);

  // -- Temporal events -------------------------------------------------------------

  /// Advances the temporal clock and fires due PLUS/P occurrences. The clock
  /// is virtual: tests and batch replay advance it explicitly; an online
  /// application may drive it from wall time.
  void AdvanceTime(std::uint64_t now_ms);
  std::uint64_t now_ms() const {
    return now_ms_.load(std::memory_order_relaxed);
  }

  // -- Subscription ------------------------------------------------------------------

  /// Subscribes `sink` to `event` in `context`: adds the sink to the node's
  /// subscriber list and propagates a context reference through the
  /// expression's subtree (starting detection in that context if it was
  /// inactive — §3.2.2 item 1).
  Status Subscribe(const std::string& event, EventSink* sink,
                   ParamContext context);
  Status Unsubscribe(const std::string& event, EventSink* sink,
                     ParamContext context);

  // -- Transaction hygiene ----------------------------------------------------------

  /// Flushes buffered occurrences of `txn` from the whole graph (invoked on
  /// commit/abort by the active layer's internal rules).
  void FlushTxn(TxnId txn);
  void FlushAll();
  /// Flushes one event expression's subtree only (selective flush, §3.2.2).
  Status FlushEvent(const std::string& event);

  /// Total buffered occurrences (context storage accounting).
  std::size_t BufferedCount() const;

  // -- Condition guard ---------------------------------------------------------------

  /// While a rule's condition function runs, signalled events must be
  /// ignored (conditions are side-effect free — §3.2.1). The guard is
  /// per-thread since rules execute on scheduler threads.
  class SuppressScope {
   public:
    SuppressScope();
    ~SuppressScope();
    SuppressScope(const SuppressScope&) = delete;
    SuppressScope& operator=(const SuppressScope&) = delete;
  };
  static bool SignalingSuppressed();

  // -- Integration hooks ----------------------------------------------------------------

  /// Class registry for inheritance-aware class-level event matching.
  void set_class_registry(const oodb::ClassRegistry* registry) {
    registry_.store(registry, std::memory_order_release);
  }

  /// Observers invoked for every accepted raw notification (event logging
  /// and global-event forwarding may both be attached).
  void AddRawObserver(std::function<void(const PrimitiveOccurrence&)> observer);

  LogicalClock* clock() { return &clock_; }
  std::uint64_t notify_count() const {
    return notify_count_.load(std::memory_order_relaxed);
  }

  // -- Observability ------------------------------------------------------------

  /// Attaches the provenance tracer: propagated to every installed node and
  /// to nodes installed later. Call before signalling starts.
  void set_tracer(obs::ProvenanceTracer* tracer);
  obs::ProvenanceTracer* tracer() const {
    return tracer_.load(std::memory_order_acquire);
  }

  /// Attaches the causal span tracer: notify spans on the Notify slow path
  /// (the fast-path returns stay metric-free) and composite_detect spans on
  /// operator-node detections. Propagated to nodes like set_tracer.
  void set_span_tracer(obs::SpanTracer* tracer);
  obs::SpanTracer* span_tracer() const {
    return span_tracer_.load(std::memory_order_acquire);
  }

  /// Attaches the continuous profiler: per-class-symbol event-dispatch
  /// accounts on the Notify/RaiseExplicit/Inject slow paths (fast-path
  /// returns stay profile-free) plus per-node operator accounts and
  /// buffer-stripe contention sites. Propagated to nodes like set_tracer.
  void set_profiler(obs::Profiler* profiler);
  obs::Profiler* profiler() const {
    return profiler_.load(std::memory_order_acquire);
  }

  /// Event graph in Graphviz DOT, nodes annotated with their per-context
  /// reference counts and detection counters.
  std::string DumpGraph() const;

  /// Per-node / per-context counters plus detector totals as a JSON object.
  std::string StatsJson() const;

  /// Structured counter snapshot of one graph node, for renderers that need
  /// more than the pre-baked JSON (the Prometheus exposition).
  struct NodeStat {
    std::string name;
    std::string kind;
    std::size_t sinks = 0;
    std::size_t buffered = 0;
    std::uint64_t flushed = 0;
    std::uint64_t received = 0;
    std::uint64_t detected = 0;
    struct Context {
      int refs = 0;
      std::uint64_t received = 0;
      std::uint64_t detected = 0;
    };
    std::array<Context, kNumContexts> contexts;
  };
  std::vector<NodeStat> SnapshotNodes() const;

  /// Graph-wide counter totals (the watchdog's per-tick sample; one shared
  /// lock + one pass over the nodes).
  struct Totals {
    std::uint64_t notifications = 0;
    std::uint64_t detections = 0;
    std::uint64_t buffered = 0;
    std::uint64_t flushed = 0;
  };
  Totals TotalsSnapshot() const;

 private:
  /// One dispatch-index slot: the matching primitive nodes for a
  /// (class, modifier, method) notification key, plus the interned symbols
  /// so the hot path never re-interns. An empty node list is the negative
  /// cache for classes/methods with no reactive events.
  struct DispatchEntry;
  /// An immutable published index generation. Retired generations are kept
  /// until the detector dies so lock-free readers never race reclamation.
  struct DispatchIndex;
  /// Per-thread single-entry inline cache of the last resolved key.
  struct DispatchMemo;

  Result<EventNode*> InstallLocked(const std::string& name,
                                   std::unique_ptr<EventNode> node);
  Result<EventNode*> FindLocked(const std::string& name) const;

  std::uint64_t RegistryVersion() const;
  bool IndexCurrent(const DispatchIndex& idx) const;
  static std::uint64_t PackKey(common::SymbolId class_sym,
                               EventModifier modifier,
                               common::SymbolId method_sym);
  static DispatchMemo& Memo();

  /// Lock-free probe of a published index (memo first, then symbol + hash
  /// probes). Returns nullptr when the key has no entry yet.
  const DispatchEntry* Probe(const DispatchIndex& idx,
                             const std::string& class_name,
                             EventModifier modifier,
                             const std::string& method_signature) const;
  /// Resolves (building and publishing a new index generation if needed).
  /// Caller holds graph_mu_ at least shared.
  const DispatchEntry* ResolveLocked(const std::string& class_name,
                                     EventModifier modifier,
                                     const std::string& method_signature);
  /// Flattens the per-class lists + inheritance walk into the flat node
  /// vector for one key. Caller holds graph_mu_ at least shared.
  std::vector<PrimitiveEventNode*> BuildDispatchList(
      const std::string& class_name, EventModifier modifier,
      common::SymbolId method_sym) const;

  mutable std::shared_mutex graph_mu_;
  std::map<std::string, std::unique_ptr<EventNode>> nodes_;
  // Class name -> primitive nodes declared on that class (paper: primitive
  // events maintained as per-class lists). Flattened into the dispatch
  // index on first use of each notification key.
  std::map<std::string, std::vector<PrimitiveEventNode*>> by_class_;
  std::map<std::string, PrimitiveEventNode*> explicit_events_;
  std::vector<EventNode*> temporal_nodes_;

  std::atomic<const oodb::ClassRegistry*> registry_{nullptr};
  std::vector<std::function<void(const PrimitiveOccurrence&)>> raw_observers_;

  // Lock-free counters consulted by the Notify fast path.
  std::atomic<int> observer_count_{0};
  std::atomic<std::size_t> primitive_count_{0};
  // Bumped on every DefinePrimitive: invalidates published indexes.
  std::atomic<std::uint64_t> def_gen_{1};

  mutable std::mutex index_mu_;  // serializes index builds only
  std::vector<std::unique_ptr<const DispatchIndex>> retired_indexes_;
  std::atomic<const DispatchIndex*> index_{nullptr};

  LogicalClock clock_;
  std::atomic<std::uint64_t> now_ms_{0};
  std::atomic<std::uint64_t> notify_count_{0};
  std::atomic<obs::ProvenanceTracer*> tracer_{nullptr};
  std::atomic<obs::SpanTracer*> span_tracer_{nullptr};
  std::atomic<obs::Profiler*> profiler_{nullptr};
};

}  // namespace sentinel::detector

#endif  // SENTINEL_DETECTOR_LOCAL_DETECTOR_H_
