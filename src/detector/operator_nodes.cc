#include "detector/operator_nodes.h"

#include <algorithm>

#include "common/logging.h"

namespace sentinel::detector {

namespace {

int Idx(ParamContext context) { return static_cast<int>(context); }

/// Removes buffered occurrences belonging to `txn` from `buffer`.
void EraseTxn(std::deque<Occurrence>* buffer, TxnId txn) {
  buffer->erase(std::remove_if(buffer->begin(), buffer->end(),
                               [txn](const Occurrence& o) {
                                 return o.txn == txn;
                               }),
                buffer->end());
}

}  // namespace

const char* OperatorKindToString(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kOr:
      return "OR";
    case OperatorKind::kAnd:
      return "AND";
    case OperatorKind::kSeq:
      return "SEQ";
    case OperatorKind::kNot:
      return "NOT";
    case OperatorKind::kAperiodic:
      return "A";
    case OperatorKind::kAperiodicCumulative:
      return "A*";
    case OperatorKind::kPlus:
      return "PLUS";
    case OperatorKind::kPeriodic:
      return "P";
    case OperatorKind::kPeriodicCumulative:
      return "P*";
    case OperatorKind::kAny:
      return "ANY";
  }
  return "?";
}

OperatorNode::OperatorNode(std::string name, OperatorKind kind,
                           std::vector<EventNode*> children)
    : EventNode(std::move(name)), children_(std::move(children)), kind_(kind) {
  MarkComposite();
  for (int port = 0; port < static_cast<int>(children_.size()); ++port) {
    if (children_[port] != nullptr) children_[port]->AddParent(this, port);
  }
}

Occurrence OperatorNode::Compose(
    const std::vector<const Occurrence*>& parts) const {
  Occurrence occ;
  occ.event_name = name();
  occ.t_start = kInvalidTimestamp;
  occ.t_end = kInvalidTimestamp;
  for (const Occurrence* part : parts) {
    if (part == nullptr) continue;
    if (occ.t_start == kInvalidTimestamp || part->t_start < occ.t_start) {
      occ.t_start = part->t_start;
    }
    if (occ.t_end == kInvalidTimestamp || part->t_end > occ.t_end) {
      occ.t_end = part->t_end;
    }
    if (part->at_ms > occ.at_ms) occ.at_ms = part->at_ms;
    occ.txn = part->txn;  // last part = terminator; its txn labels the result
    occ.constituents.insert(occ.constituents.end(), part->constituents.begin(),
                            part->constituents.end());
  }
  return occ;
}

// ---- OR ---------------------------------------------------------------------

OrNode::OrNode(std::string name, EventNode* left, EventNode* right)
    : OperatorNode(std::move(name), OperatorKind::kOr, {left, right}) {}

void OrNode::Receive(int port, const Occurrence& occurrence,
                     ParamContext context) {
  // Stateless: no buffers, no lock.
  (void)port;
  Emit(Compose({&occurrence}), context);
}

// ---- AND --------------------------------------------------------------------

AndNode::AndNode(std::string name, EventNode* left, EventNode* right)
    : OperatorNode(std::move(name), OperatorKind::kAnd, {left, right}) {}

void AndNode::Receive(int port, const Occurrence& occurrence,
                      ParamContext context) {
  std::vector<Occurrence> out;
  {
    auto lock = LockBuffer();
    State& st = state_[Idx(context)];
    std::deque<Occurrence>& mine = st.side[port];
    std::deque<Occurrence>& other = st.side[1 - port];

    switch (context) {
      case ParamContext::kRecent:
        // Keep at most the most recent occurrence per side; a detection does
        // not consume the partner (it stays until replaced).
        if (!other.empty()) {
          out.push_back(Compose({&other.back(), &occurrence}));
        }
        mine.clear();
        mine.push_back(occurrence);
        break;
      case ParamContext::kChronicle:
        // FIFO pairing; both partners consumed.
        if (!other.empty()) {
          out.push_back(Compose({&other.front(), &occurrence}));
          other.pop_front();
        } else {
          mine.push_back(occurrence);
        }
        break;
      case ParamContext::kContinuous:
        // Every buffered partner pairs with (and is consumed by) the arrival.
        if (!other.empty()) {
          for (const Occurrence& partner : other) {
            out.push_back(Compose({&partner, &occurrence}));
          }
          other.clear();
        } else {
          mine.push_back(occurrence);
        }
        break;
      case ParamContext::kCumulative:
        // One detection carrying everything accumulated on both sides.
        if (!other.empty()) {
          std::vector<const Occurrence*> parts;
          for (const Occurrence& o : other) parts.push_back(&o);
          for (const Occurrence& o : mine) parts.push_back(&o);
          parts.push_back(&occurrence);
          out.push_back(Compose(parts));
          other.clear();
          mine.clear();
        } else {
          mine.push_back(occurrence);
        }
        break;
    }
  }
  EmitAll(out, context);
}

void AndNode::FlushTxn(TxnId txn) {
  auto lock = LockBuffer();
  for (State& st : state_) {
    EraseTxn(&st.side[0], txn);
    EraseTxn(&st.side[1], txn);
  }
}

void AndNode::FlushAll() {
  auto lock = LockBuffer();
  for (State& st : state_) {
    st.side[0].clear();
    st.side[1].clear();
  }
}

std::size_t AndNode::BufferedCount() const {
  auto lock = LockBuffer();
  std::size_t n = 0;
  for (const State& st : state_) n += st.side[0].size() + st.side[1].size();
  return n;
}

// ---- SEQ --------------------------------------------------------------------

SeqNode::SeqNode(std::string name, EventNode* left, EventNode* right)
    : OperatorNode(std::move(name), OperatorKind::kSeq, {left, right}) {}

void SeqNode::Receive(int port, const Occurrence& occurrence,
                      ParamContext context) {
  std::vector<Occurrence> out;
  {
    auto lock = LockBuffer();
    State& st = state_[Idx(context)];
    if (port == 0) {  // initiator
      if (context == ParamContext::kRecent) st.initiators.clear();
      st.initiators.push_back(occurrence);
      return;
    }
    // Terminator: pair with initiators that strictly precede it.
    auto precedes = [&occurrence](const Occurrence& init) {
      return init.t_end < occurrence.t_start;
    };
    switch (context) {
      case ParamContext::kRecent: {
        // Most recent qualifying initiator; not consumed.
        for (auto it = st.initiators.rbegin(); it != st.initiators.rend();
             ++it) {
          if (precedes(*it)) {
            out.push_back(Compose({&*it, &occurrence}));
            break;
          }
        }
        break;
      }
      case ParamContext::kChronicle: {
        for (auto it = st.initiators.begin(); it != st.initiators.end();
             ++it) {
          if (precedes(*it)) {
            out.push_back(Compose({&*it, &occurrence}));
            st.initiators.erase(it);
            break;
          }
        }
        break;
      }
      case ParamContext::kContinuous: {
        std::deque<Occurrence> keep;
        for (const Occurrence& init : st.initiators) {
          if (precedes(init)) {
            out.push_back(Compose({&init, &occurrence}));
          } else {
            keep.push_back(init);
          }
        }
        st.initiators = std::move(keep);
        break;
      }
      case ParamContext::kCumulative: {
        std::vector<const Occurrence*> parts;
        std::deque<Occurrence> keep;
        for (const Occurrence& init : st.initiators) {
          if (precedes(init)) {
            parts.push_back(&init);
          } else {
            keep.push_back(init);
          }
        }
        if (!parts.empty()) {
          parts.push_back(&occurrence);
          out.push_back(Compose(parts));
          st.initiators = std::move(keep);
        }
        break;
      }
    }
  }
  EmitAll(out, context);
}

void SeqNode::FlushTxn(TxnId txn) {
  auto lock = LockBuffer();
  for (State& st : state_) EraseTxn(&st.initiators, txn);
}

void SeqNode::FlushAll() {
  auto lock = LockBuffer();
  for (State& st : state_) st.initiators.clear();
}

std::size_t SeqNode::BufferedCount() const {
  auto lock = LockBuffer();
  std::size_t n = 0;
  for (const State& st : state_) n += st.initiators.size();
  return n;
}

// ---- NOT --------------------------------------------------------------------

NotNode::NotNode(std::string name, EventNode* opener, EventNode* canceller,
                 EventNode* closer)
    : OperatorNode(std::move(name), OperatorKind::kNot,
                   {opener, canceller, closer}) {}

void NotNode::Receive(int port, const Occurrence& occurrence,
                      ParamContext context) {
  std::vector<Occurrence> out;
  {
    auto lock = LockBuffer();
    State& st = state_[Idx(context)];
    switch (port) {
      case 0:  // opener E1
        if (context == ParamContext::kRecent) st.initiators.clear();
        st.initiators.push_back(occurrence);
        break;
      case 1:  // canceller E2: every pending window that started before it
               // dies
        st.initiators.erase(
            std::remove_if(st.initiators.begin(), st.initiators.end(),
                           [&occurrence](const Occurrence& init) {
                             return init.t_end < occurrence.t_start;
                           }),
            st.initiators.end());
        break;
      case 2: {  // closer E3
        auto precedes = [&occurrence](const Occurrence& init) {
          return init.t_end < occurrence.t_start;
        };
        switch (context) {
          case ParamContext::kRecent: {
            for (auto it = st.initiators.rbegin(); it != st.initiators.rend();
                 ++it) {
              if (precedes(*it)) {
                out.push_back(Compose({&*it, &occurrence}));
                break;
              }
            }
            break;
          }
          case ParamContext::kChronicle: {
            for (auto it = st.initiators.begin(); it != st.initiators.end();
                 ++it) {
              if (precedes(*it)) {
                out.push_back(Compose({&*it, &occurrence}));
                st.initiators.erase(it);
                break;
              }
            }
            break;
          }
          case ParamContext::kContinuous: {
            std::deque<Occurrence> keep;
            for (const Occurrence& init : st.initiators) {
              if (precedes(init)) {
                out.push_back(Compose({&init, &occurrence}));
              } else {
                keep.push_back(init);
              }
            }
            st.initiators = std::move(keep);
            break;
          }
          case ParamContext::kCumulative: {
            std::vector<const Occurrence*> parts;
            std::deque<Occurrence> keep;
            for (const Occurrence& init : st.initiators) {
              if (precedes(init)) {
                parts.push_back(&init);
              } else {
                keep.push_back(init);
              }
            }
            if (!parts.empty()) {
              parts.push_back(&occurrence);
              out.push_back(Compose(parts));
              st.initiators = std::move(keep);
            }
            break;
          }
        }
        break;
      }
      default:
        break;
    }
  }
  EmitAll(out, context);
}

void NotNode::FlushTxn(TxnId txn) {
  auto lock = LockBuffer();
  for (State& st : state_) EraseTxn(&st.initiators, txn);
}

void NotNode::FlushAll() {
  auto lock = LockBuffer();
  for (State& st : state_) st.initiators.clear();
}

std::size_t NotNode::BufferedCount() const {
  auto lock = LockBuffer();
  std::size_t n = 0;
  for (const State& st : state_) n += st.initiators.size();
  return n;
}

// ---- A ----------------------------------------------------------------------

AperiodicNode::AperiodicNode(std::string name, EventNode* opener,
                             EventNode* detector, EventNode* closer)
    : OperatorNode(std::move(name), OperatorKind::kAperiodic,
                   {opener, detector, closer}) {}

void AperiodicNode::Receive(int port, const Occurrence& occurrence,
                            ParamContext context) {
  std::vector<Occurrence> out;
  {
    auto lock = LockBuffer();
    State& st = state_[Idx(context)];
    switch (port) {
      case 0:  // E1 opens a window
        if (context == ParamContext::kRecent) st.openers.clear();
        st.openers.push_back(occurrence);
        break;
      case 1: {  // E2 signals inside every open window
        auto in_window = [&occurrence](const Occurrence& opener) {
          return opener.t_end < occurrence.t_start;
        };
        switch (context) {
          case ParamContext::kRecent: {
            for (auto it = st.openers.rbegin(); it != st.openers.rend();
                 ++it) {
              if (in_window(*it)) {
                out.push_back(Compose({&*it, &occurrence}));
                break;
              }
            }
            break;
          }
          case ParamContext::kChronicle:
          case ParamContext::kCumulative: {
            // Oldest open window detects; windows stay open until E3.
            for (auto it = st.openers.begin(); it != st.openers.end(); ++it) {
              if (in_window(*it)) {
                out.push_back(Compose({&*it, &occurrence}));
                break;
              }
            }
            break;
          }
          case ParamContext::kContinuous: {
            for (const Occurrence& opener : st.openers) {
              if (in_window(opener)) {
                out.push_back(Compose({&opener, &occurrence}));
              }
            }
            break;
          }
        }
        break;
      }
      case 2:  // E3 closes windows that precede it, without signalling
        st.openers.erase(
            std::remove_if(st.openers.begin(), st.openers.end(),
                           [&occurrence](const Occurrence& opener) {
                             return opener.t_end < occurrence.t_start;
                           }),
            st.openers.end());
        break;
      default:
        break;
    }
  }
  EmitAll(out, context);
}

void AperiodicNode::FlushTxn(TxnId txn) {
  auto lock = LockBuffer();
  for (State& st : state_) EraseTxn(&st.openers, txn);
}

void AperiodicNode::FlushAll() {
  auto lock = LockBuffer();
  for (State& st : state_) st.openers.clear();
}

std::size_t AperiodicNode::BufferedCount() const {
  auto lock = LockBuffer();
  std::size_t n = 0;
  for (const State& st : state_) n += st.openers.size();
  return n;
}

// ---- A* ---------------------------------------------------------------------

AperiodicStarNode::AperiodicStarNode(std::string name, EventNode* opener,
                                     EventNode* detector, EventNode* closer)
    : OperatorNode(std::move(name), OperatorKind::kAperiodicCumulative,
                   {opener, detector, closer}) {}

void AperiodicStarNode::Receive(int port, const Occurrence& occurrence,
                                ParamContext context) {
  std::vector<Occurrence> out;
  {
    auto lock = LockBuffer();
    State& st = state_[Idx(context)];
    switch (port) {
      case 0:  // E1: open (RECENT restarts the window, dropping accumulation)
        if (context == ParamContext::kRecent) {
          st.openers.clear();
          st.accumulated.clear();
        }
        st.openers.push_back(occurrence);
        break;
      case 1:  // E2: accumulate while a window is open
        if (!st.openers.empty() &&
            st.openers.front().t_end < occurrence.t_start) {
          st.accumulated.push_back(occurrence);
        }
        break;
      case 2: {  // E3: signal once with the whole accumulation (if non-empty)
        if (!st.openers.empty() && !st.accumulated.empty() &&
            st.openers.front().t_end < occurrence.t_start) {
          std::vector<const Occurrence*> parts;
          parts.push_back(&st.openers.front());
          for (const Occurrence& acc : st.accumulated) parts.push_back(&acc);
          parts.push_back(&occurrence);
          out.push_back(Compose(parts));
        }
        st.openers.clear();
        st.accumulated.clear();
        break;
      }
      default:
        break;
    }
  }
  EmitAll(out, context);
}

void AperiodicStarNode::FlushTxn(TxnId txn) {
  auto lock = LockBuffer();
  for (State& st : state_) {
    EraseTxn(&st.openers, txn);
    EraseTxn(&st.accumulated, txn);
  }
}

void AperiodicStarNode::FlushAll() {
  auto lock = LockBuffer();
  for (State& st : state_) {
    st.openers.clear();
    st.accumulated.clear();
  }
}

std::size_t AperiodicStarNode::BufferedCount() const {
  auto lock = LockBuffer();
  std::size_t n = 0;
  for (const State& st : state_) {
    n += st.openers.size() + st.accumulated.size();
  }
  return n;
}

// ---- ANY --------------------------------------------------------------------

AnyNode::AnyNode(std::string name, std::size_t threshold,
                 std::vector<EventNode*> children)
    : OperatorNode(std::move(name), OperatorKind::kAny, std::move(children)),
      threshold_(threshold) {
  for (State& st : state_) st.ports.resize(children_.size());
}

void AnyNode::Receive(int port, const Occurrence& occurrence,
                      ParamContext context) {
  std::vector<Occurrence> out;
  {
    auto lock = LockBuffer();
    State& st = state_[Idx(context)];
    auto& mine = st.ports[static_cast<std::size_t>(port)];

    // Ports (other than this one) currently holding at least one occurrence.
    std::vector<std::size_t> populated;
    for (std::size_t p = 0; p < st.ports.size(); ++p) {
      if (p != static_cast<std::size_t>(port) && !st.ports[p].empty()) {
        populated.push_back(p);
      }
    }
    if (populated.size() + 1 < threshold_) {
      // Not enough distinct constituents yet: buffer and wait.
      if (context == ParamContext::kRecent) mine.clear();
      mine.push_back(occurrence);
      return;
    }

    switch (context) {
      case ParamContext::kRecent: {
        // Use the most recent occurrence of the (threshold-1) most recently
        // active other ports; nothing is consumed.
        std::sort(populated.begin(), populated.end(),
                  [&st](std::size_t a, std::size_t b) {
                    return st.ports[a].back().t_end >
                           st.ports[b].back().t_end;
                  });
        std::vector<const Occurrence*> parts;
        for (std::size_t i = 0; i + 1 < threshold_; ++i) {
          parts.push_back(&st.ports[populated[i]].back());
        }
        parts.push_back(&occurrence);
        out.push_back(Compose(parts));
        mine.clear();
        mine.push_back(occurrence);
        break;
      }
      case ParamContext::kChronicle:
      case ParamContext::kContinuous: {
        // FIFO: consume the oldest occurrence of the (threshold-1) other
        // ports whose heads are oldest.
        std::sort(populated.begin(), populated.end(),
                  [&st](std::size_t a, std::size_t b) {
                    return st.ports[a].front().t_end <
                           st.ports[b].front().t_end;
                  });
        std::vector<const Occurrence*> parts;
        for (std::size_t i = 0; i + 1 < threshold_; ++i) {
          parts.push_back(&st.ports[populated[i]].front());
        }
        parts.push_back(&occurrence);
        out.push_back(Compose(parts));
        for (std::size_t i = 0; i + 1 < threshold_; ++i) {
          st.ports[populated[i]].pop_front();
        }
        break;
      }
      case ParamContext::kCumulative: {
        std::vector<const Occurrence*> parts;
        for (auto& port_buffer : st.ports) {
          for (const Occurrence& o : port_buffer) parts.push_back(&o);
        }
        parts.push_back(&occurrence);
        out.push_back(Compose(parts));
        for (auto& port_buffer : st.ports) port_buffer.clear();
        break;
      }
    }
  }
  EmitAll(out, context);
}

void AnyNode::FlushTxn(TxnId txn) {
  auto lock = LockBuffer();
  for (State& st : state_) {
    for (auto& port_buffer : st.ports) EraseTxn(&port_buffer, txn);
  }
}

void AnyNode::FlushAll() {
  auto lock = LockBuffer();
  for (State& st : state_) {
    for (auto& port_buffer : st.ports) port_buffer.clear();
  }
}

std::size_t AnyNode::BufferedCount() const {
  auto lock = LockBuffer();
  std::size_t n = 0;
  for (const State& st : state_) {
    for (const auto& port_buffer : st.ports) n += port_buffer.size();
  }
  return n;
}

// ---- PLUS -------------------------------------------------------------------

PlusNode::PlusNode(std::string name, EventNode* base, std::uint64_t delta_ms,
                   LogicalClock* clock)
    : OperatorNode(std::move(name), OperatorKind::kPlus, {base}),
      delta_ms_(delta_ms),
      clock_(clock) {}

void PlusNode::Receive(int port, const Occurrence& occurrence,
                       ParamContext context) {
  (void)port;
  auto lock = LockBuffer();
  State& st = state_[Idx(context)];
  if (context == ParamContext::kRecent) st.pending.clear();
  st.pending.push_back(Pending{occurrence.at_ms + delta_ms_, occurrence});
}

void PlusNode::OnTimeAdvance(std::uint64_t now_ms) {
  for (int c = 0; c < kNumContexts; ++c) {
    if (!ActiveIn(static_cast<ParamContext>(c))) continue;
    std::vector<Occurrence> out;
    {
      auto lock = LockBuffer();
      State& st = state_[c];
      while (!st.pending.empty() &&
             st.pending.front().deadline_ms <= now_ms) {
        Pending fired = std::move(st.pending.front());
        st.pending.pop_front();
        Occurrence occ = Compose({&fired.base});
        occ.t_start = occ.t_end = clock_->Tick();
        occ.at_ms = fired.deadline_ms;
        out.push_back(std::move(occ));
      }
    }
    EmitAll(out, static_cast<ParamContext>(c));
  }
}

void PlusNode::FlushTxn(TxnId txn) {
  auto lock = LockBuffer();
  for (State& st : state_) {
    st.pending.erase(std::remove_if(st.pending.begin(), st.pending.end(),
                                    [txn](const Pending& p) {
                                      return p.base.txn == txn;
                                    }),
                     st.pending.end());
  }
}

void PlusNode::FlushAll() {
  auto lock = LockBuffer();
  for (State& st : state_) st.pending.clear();
}

std::size_t PlusNode::BufferedCount() const {
  auto lock = LockBuffer();
  std::size_t n = 0;
  for (const State& st : state_) n += st.pending.size();
  return n;
}

// ---- P ----------------------------------------------------------------------

PeriodicNode::PeriodicNode(std::string name, EventNode* opener,
                           std::uint64_t period_ms, EventNode* closer,
                           LogicalClock* clock)
    : OperatorNode(std::move(name), OperatorKind::kPeriodic,
                   {opener, nullptr, closer}),
      period_ms_(period_ms),
      clock_(clock) {}

void PeriodicNode::Receive(int port, const Occurrence& occurrence,
                           ParamContext context) {
  std::vector<Occurrence> out;
  {
    auto lock = LockBuffer();
    State& st = state_[Idx(context)];
    if (port == 0) {
      if (context == ParamContext::kRecent) st.schedules.clear();
      st.schedules.push_back(
          Schedule{occurrence.at_ms + period_ms_, occurrence, 0, {}});
    } else if (port == 2) {
      // Close schedules whose opener precedes the closer.
      std::deque<Schedule> keep;
      for (Schedule& schedule : st.schedules) {
        if (schedule.opener.t_end < occurrence.t_start) {
          OnClose(&schedule, occurrence, &out);
        } else {
          keep.push_back(std::move(schedule));
        }
      }
      st.schedules = std::move(keep);
    }
  }
  EmitAll(out, context);
}

void PeriodicNode::OnTimeAdvance(std::uint64_t now_ms) {
  for (int c = 0; c < kNumContexts; ++c) {
    if (!ActiveIn(static_cast<ParamContext>(c))) continue;
    std::vector<Occurrence> out;
    {
      auto lock = LockBuffer();
      for (Schedule& schedule : state_[c].schedules) {
        while (schedule.next_ms <= now_ms) {
          OnTick(&schedule, schedule.next_ms, &out);
          schedule.next_ms += period_ms_;
        }
      }
    }
    EmitAll(out, static_cast<ParamContext>(c));
  }
}

void PeriodicNode::OnTick(Schedule* schedule, std::uint64_t tick_ms,
                          std::vector<Occurrence>* out) {
  ++schedule->ticks;
  Occurrence occ = Compose({&schedule->opener});
  occ.t_start = occ.t_end = clock_->Tick();
  occ.at_ms = tick_ms;
  out->push_back(std::move(occ));
}

void PeriodicNode::OnClose(Schedule* schedule, const Occurrence& closer,
                           std::vector<Occurrence>* out) {
  (void)schedule;
  (void)closer;
  (void)out;  // plain P: closing is silent
}

void PeriodicNode::FlushTxn(TxnId txn) {
  auto lock = LockBuffer();
  for (State& st : state_) {
    st.schedules.erase(std::remove_if(st.schedules.begin(),
                                      st.schedules.end(),
                                      [txn](const Schedule& s) {
                                        return s.opener.txn == txn;
                                      }),
                       st.schedules.end());
  }
}

void PeriodicNode::FlushAll() {
  auto lock = LockBuffer();
  for (State& st : state_) st.schedules.clear();
}

std::size_t PeriodicNode::BufferedCount() const {
  auto lock = LockBuffer();
  std::size_t n = 0;
  for (const State& st : state_) n += st.schedules.size();
  return n;
}

// ---- P* ---------------------------------------------------------------------

PeriodicStarNode::PeriodicStarNode(std::string name, EventNode* opener,
                                   std::uint64_t period_ms, EventNode* closer,
                                   LogicalClock* clock)
    : PeriodicNode(std::move(name), opener, period_ms, closer, clock) {}

void PeriodicStarNode::OnTick(Schedule* schedule, std::uint64_t tick_ms,
                              std::vector<Occurrence>* out) {
  (void)out;
  ++schedule->ticks;
  schedule->tick_times.push_back(tick_ms);
}

void PeriodicStarNode::OnClose(Schedule* schedule, const Occurrence& closer,
                               std::vector<Occurrence>* out) {
  if (schedule->ticks == 0) return;
  Occurrence occ = Compose({&schedule->opener, &closer});
  // Synthesize the accumulated tick times as a constituent parameter list.
  auto params = std::make_shared<ParamList>();
  params->Insert("ticks", oodb::Value::Int(static_cast<std::int64_t>(
                              schedule->ticks)));
  for (std::size_t i = 0; i < schedule->tick_times.size(); ++i) {
    params->Insert("tick_ms_" + std::to_string(i),
                   oodb::Value::Int(static_cast<std::int64_t>(
                       schedule->tick_times[i])));
  }
  auto synthetic = std::make_shared<PrimitiveOccurrence>();
  synthetic->event_name = name();
  synthetic->class_name = "<temporal>";
  synthetic->at = occ.t_end;
  synthetic->at_ms = closer.at_ms;
  synthetic->txn = closer.txn;
  synthetic->params = std::move(params);
  occ.constituents.push_back(std::move(synthetic));
  out->push_back(std::move(occ));
}

}  // namespace sentinel::detector
