#include "obs/metrics.h"

#include "obs/json.h"

namespace sentinel::obs {

std::uint64_t LatencyHistogram::Snapshot::QuantileNs(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Upper bound of bucket i: 2^i - 1 ns (bucket 0 holds exactly 0 ns).
      if (i == 0) return 0;
      if (i >= 63) return max_ns;
      const std::uint64_t bound = (1ull << i) - 1;
      return bound < max_ns ? bound : max_ns;
    }
  }
  return max_ns;
}

std::string HistogramJson(const LatencyHistogram::Snapshot& snap) {
  JsonWriter w;
  w.BeginObject()
      .Field("count", snap.count)
      .Field("sum_ns", snap.sum_ns)
      .Field("mean_ns", snap.mean_ns())
      .Field("max_ns", snap.max_ns)
      .Field("p50_ns", snap.QuantileNs(0.50))
      .Field("p90_ns", snap.QuantileNs(0.90))
      .Field("p99_ns", snap.QuantileNs(0.99));
  w.Key("buckets").BeginArray();
  // Trailing zero buckets are elided to keep snapshots compact.
  int last = LatencyHistogram::kBuckets - 1;
  while (last >= 0 && snap.buckets[last] == 0) --last;
  for (int i = 0; i <= last; ++i) w.Value(snap.buckets[i]);
  w.EndArray().EndObject();
  return w.Take();
}

}  // namespace sentinel::obs
