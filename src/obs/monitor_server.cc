#include "obs/monitor_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket_util.h"

namespace sentinel::obs {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing to do for a monitoring endpoint
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

MonitorServer::~MonitorServer() { Stop(); }

void MonitorServer::Route(const std::string& path, Handler handler) {
  routes_[path] = std::move(handler);
}

Status MonitorServer::Start(const Options& options) {
  if (running()) return Status::InvalidArgument("monitor server already running");
  net::IgnoreSigpipe();
  auto fd = net::ListenTcp(options.port, /*backlog=*/16);
  if (!fd.ok()) return fd.status();
  auto port = net::BoundPort(*fd);
  if (!port.ok()) {
    net::CloseQuietly(*fd);
    return port.status();
  }
  port_.store(*port, std::memory_order_release);
  listen_fd_ = *fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MonitorServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  net::CloseQuietly(listen_fd_);
  listen_fd_ = -1;
}

void MonitorServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR
    const int conn = net::AcceptRetry(listen_fd_);
    if (conn < 0) continue;
    ServeConnection(conn);
    net::CloseQuietly(conn);
  }
}

void MonitorServer::ServeConnection(int fd) {
  // Bound both the read and the total request size so a stuck client cannot
  // hold the accept loop hostage.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;
  const std::string line = request.substr(0, line_end);

  Response response;
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = {405, "text/plain; charset=utf-8", "malformed request\n"};
  } else if (line.substr(0, sp1) != "GET") {
    response = {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    auto it = routes_.find(path);
    if (it == routes_.end()) {
      response = {404, "text/plain; charset=utf-8",
                  "no such endpoint: " + path + "\n"};
    } else {
      requests_.fetch_add(1, std::memory_order_relaxed);
      try {
        response = it->second();
      } catch (const std::exception& e) {
        response = {500, "text/plain; charset=utf-8",
                    std::string("handler failed: ") + e.what() + "\n"};
      }
    }
  }

  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     ReasonPhrase(response.status) + "\r\nContent-Type: " +
                     response.content_type + "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  SendAll(fd, head);
  SendAll(fd, response.body);
}

}  // namespace sentinel::obs
