#ifndef SENTINEL_OBS_SPAN_H_
#define SENTINEL_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/log_record.h"

namespace sentinel::obs {

class FlightRecorder;

/// What a span measures. One kind per instrumented layer so a trace reads as
/// the paper's pipeline: txn → notify → composite_detect → (condition,
/// action, subtxn) with storage-layer leaves (lock_wait, wal_fsync,
/// page_read) and cross-application hops (ged_forward) hanging off it.
/// The kNet* kinds cover the SNET wire path (DESIGN.md §14): frame
/// encode/decode on either end, the server's admission-queue and
/// per-session outbound-queue waits, and raw socket writes. They are
/// per-event hot kinds: enabled_for() keeps them out of flight-only mode,
/// and they must stay LAST in the enum so that gate is one compare.
enum class SpanKind : std::uint8_t {
  kTxn = 0,
  kNotify,
  kCompositeDetect,
  kCondition,
  kAction,
  kSubTxn,
  kLockWait,
  kWalFsync,
  kPageRead,
  kGedForward,
  kNetFrameEncode,
  kNetFrameDecode,
  kNetAdmissionWait,
  kNetOutboundWait,
  kNetWrite,
};

const char* SpanKindToString(SpanKind kind);

/// Recording level. kFlightOnly (the default) feeds the crash flight
/// recorder but skips the per-event hot kinds (notify, composite_detect) so
/// the always-on cost stays out of the event dispatch path; kFull records
/// everything into the per-thread rings for export.
enum class TraceMode : std::uint8_t {
  kOff = 0,
  kFlightOnly = 1,
  kFull = 2,
};

const char* TraceModeToString(TraceMode mode);

/// One closed (or, for transactions still open, in-flight) span. Timestamps
/// are steady-clock nanoseconds; `parent` is the id of the enclosing span
/// (0 = root), which is how a whole top transaction renders as one tree.
struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  SpanKind kind = SpanKind::kTxn;
  storage::TxnId txn = storage::kInvalidTxnId;
  std::uint64_t subtxn = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;
  std::string label;
  // Distributed-trace linkage (DESIGN.md §14). `trace` groups the spans of
  // one cross-process causal chain; `remote_parent` is the causal parent's
  // span id, which may live in ANOTHER process's export — span ids are
  // per-tracer, so tools/merge_traces.py resolves it by (trace, id) across
  // files. Both zero for purely local spans.
  std::uint64_t trace = 0;
  std::uint64_t remote_parent = 0;
};

/// Causal span tracer. Same budget discipline as the provenance tracer
/// (PR 3): a single relaxed load decides "off", and every instrumentation
/// site builds its label only after that gate passes. Closed spans go to
/// per-thread rings (pooled under the tracer, relaxed-atomic sequence
/// numbers; each ring is written only by its owning thread, so its mutex is
/// uncontended and exists for snapshot safety under TSan). Parent links come
/// from a thread-local scope stack, falling back to the open-transaction
/// anchor table for spans recorded outside any scope (e.g. a scheduler
/// worker picking up a firing for a transaction begun on the app thread).
class SpanTracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 8192;

  explicit SpanTracer(std::size_t ring_capacity = kDefaultRingCapacity);
  ~SpanTracer();

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  TraceMode mode() const { return mode_.load(std::memory_order_relaxed); }
  void set_mode(TraceMode mode) {
    mode_.store(mode, std::memory_order_relaxed);
  }

  /// The instrumentation gate: one relaxed load when tracing is off.
  bool enabled_for(SpanKind kind) const {
    TraceMode m = mode_.load(std::memory_order_relaxed);
    if (m == TraceMode::kOff) return false;
    if (m == TraceMode::kFull) return true;
    // Flight-recorder-only: skip the per-event hot kinds (including every
    // net wire kind — they fire once per frame).
    return kind != SpanKind::kNotify && kind != SpanKind::kCompositeDetect &&
           kind < SpanKind::kNetFrameEncode;
  }

  /// Every committed span is also copied into `recorder` (the always-on
  /// last-N history consulted by postmortems).
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_.store(recorder, std::memory_order_release);
  }

  /// Transaction anchors: a txn span opens at Begin and closes at
  /// Commit/Abort, possibly touching many threads in between, so it lives in
  /// an id-keyed table rather than the scope stack.
  void BeginTxnSpan(storage::TxnId txn);
  void EndTxnSpan(storage::TxnId txn);
  std::vector<Span> OpenTxnSpans() const;

  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// All closed spans currently held by the rings, sorted by start time.
  std::vector<Span> Snapshot() const;
  void Clear();

  /// Chrome trace-event JSON ("X" complete events, pid = transaction id,
  /// tid = recording thread) — loads directly in ui.perfetto.dev or
  /// chrome://tracing. Open transactions are included with `now` as their
  /// provisional end.
  std::string ChromeTraceJson() const;
  Status ExportChromeTrace(const std::string& path) const;

  /// Per-process metadata stamped into the export's top-level `otherData`
  /// object so tools/merge_traces.py can place several process exports on
  /// one timeline: `process` labels the export, `clock_offset_ns` is this
  /// process's steady clock minus the reference process's (the tool
  /// subtracts it), and the export always carries `base_ns` — the absolute
  /// steady-clock origin the relative `ts` fields are measured from.
  struct ExportMeta {
    std::string process;
    std::int64_t clock_offset_ns = 0;
  };
  std::string ChromeTraceJson(const ExportMeta& meta) const;
  Status ExportChromeTrace(const std::string& path,
                           const ExportMeta& meta) const;

  /// Commits an already-timed span (both timestamps supplied by the caller)
  /// and returns its id. Queue-wait spans need this: the wait starts on the
  /// enqueuing thread and ends on the dequeuing one, so no RAII scope can
  /// cover it. Does NOT consult or push the scope stack. Call only after
  /// enabled_for() passed.
  std::uint64_t RecordTimedSpan(SpanKind kind, std::uint64_t start_ns,
                                std::uint64_t end_ns, storage::TxnId txn,
                                std::string label, std::uint64_t parent,
                                std::uint64_t trace = 0,
                                std::uint64_t remote_parent = 0);

  /// Id of the innermost open scope on this thread belonging to `tracer`
  /// (0 when none). Used to stamp a firing with the detection span that
  /// triggered it before the firing migrates to a worker thread.
  static std::uint64_t CurrentSpanIdFor(const SpanTracer* tracer);

  static std::uint64_t NowNs();

 private:
  friend class SpanScope;
  friend class TxnAnchorScope;

  struct ThreadRing {
    std::mutex mu;
    std::atomic<std::uint64_t> seq{0};  // relaxed monotonic write position
    std::uint32_t tid = 0;
    std::vector<Span> slots;
  };

  std::uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Scope-stack parent, else the open txn span for `txn`, else 0.
  std::uint64_t ResolveParent(storage::TxnId txn) const;
  /// Routes a finished span: flight recorder always, thread ring when the
  /// mode is kFull.
  void Commit(Span&& span);
  ThreadRing* RingForThisThread();

  const std::size_t ring_capacity_;
  const std::uint64_t uid_;  // validates thread-local ring/stack caches
  std::atomic<TraceMode> mode_{TraceMode::kFlightOnly};
  std::atomic<FlightRecorder*> flight_{nullptr};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;

  mutable std::mutex txn_mu_;
  std::unordered_map<storage::TxnId, Span> open_txns_;
};

/// RAII span. Default-constructed scopes are inert; call Start() only after
/// the tracer's enabled_for() gate passed, so label construction never runs
/// when tracing is off. End() (or destruction) closes the span and commits
/// it to the rings.
class SpanScope {
 public:
  SpanScope() = default;
  ~SpanScope() { End(); }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// `parent_override` pins the parent explicitly (a firing's triggering
  /// detection span); 0 means resolve from the scope stack / txn anchors.
  void Start(SpanTracer* tracer, SpanKind kind, storage::TxnId txn,
             std::string label, std::uint64_t subtxn = 0,
             std::uint64_t parent_override = 0);
  void End();

  /// Marks an open span as part of distributed trace `trace`, causally
  /// parented by `remote_parent` (a span id possibly from another process;
  /// 0 = trace membership only). No-op on an inert scope.
  void AnnotateRemote(std::uint64_t trace, std::uint64_t remote_parent) {
    if (tracer_ == nullptr) return;
    span_.trace = trace;
    span_.remote_parent = remote_parent;
  }

  bool active() const { return tracer_ != nullptr; }
  std::uint64_t id() const { return span_.id; }

 private:
  SpanTracer* tracer_ = nullptr;
  bool pushed_ = false;
  Span span_;
};

/// Pushes an already-open transaction span onto the thread-local scope stack
/// without opening a new span: storage spans recorded while the anchor is
/// live (wal_fsync during commit, page reads during object faulting) parent
/// into the transaction's tree even though those layers don't know the txn.
class TxnAnchorScope {
 public:
  TxnAnchorScope() = default;
  ~TxnAnchorScope() { End(); }

  TxnAnchorScope(const TxnAnchorScope&) = delete;
  TxnAnchorScope& operator=(const TxnAnchorScope&) = delete;

  void Start(SpanTracer* tracer, storage::TxnId txn);
  void End();

 private:
  SpanTracer* tracer_ = nullptr;
  std::uint64_t anchor_ = 0;
  bool pushed_ = false;
};

}  // namespace sentinel::obs

#endif  // SENTINEL_OBS_SPAN_H_
