#include "obs/prometheus.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace sentinel::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string PromWriter::EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromWriter::RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  out += '}';
  return out;
}

void PromWriter::Header(const std::string& name, const std::string& help,
                        const char* type) {
  if (std::find(declared_.begin(), declared_.end(), name) != declared_.end()) {
    return;
  }
  declared_.push_back(name);
  out_ += "# HELP " + name + " " + help + "\n";
  out_ += "# TYPE " + name + " ";
  out_ += type;
  out_ += '\n';
}

PromWriter& PromWriter::Family(const std::string& name, const std::string& help,
                               const char* type) {
  Header(name, help, type);
  return *this;
}

PromWriter& PromWriter::Sample(const std::string& name, const Labels& labels,
                               std::uint64_t value) {
  out_ += name + RenderLabels(labels) + " " + std::to_string(value) + "\n";
  return *this;
}

PromWriter& PromWriter::SampleF(const std::string& name, const Labels& labels,
                                double value) {
  out_ += name + RenderLabels(labels) + " " + FormatDouble(value) + "\n";
  return *this;
}

PromWriter& PromWriter::Counter(const std::string& name,
                                const std::string& help, const Labels& labels,
                                std::uint64_t value) {
  Header(name, help, "counter");
  return Sample(name, labels, value);
}

PromWriter& PromWriter::Gauge(const std::string& name, const std::string& help,
                              const Labels& labels, std::uint64_t value) {
  Header(name, help, "gauge");
  return Sample(name, labels, value);
}

PromWriter& PromWriter::GaugeF(const std::string& name, const std::string& help,
                               const Labels& labels, double value) {
  Header(name, help, "gauge");
  return SampleF(name, labels, value);
}

PromWriter& PromWriter::Histogram(const std::string& name,
                                  const std::string& help, const Labels& labels,
                                  const LatencyHistogram::Snapshot& snap) {
  Header(name, help, "histogram");
  int last = LatencyHistogram::kBuckets - 1;
  while (last >= 0 && snap.buckets[last] == 0) --last;
  std::uint64_t cumulative = 0;
  Labels bucket_labels = labels;
  bucket_labels.emplace_back("le", "");
  for (int i = 0; i <= last; ++i) {
    cumulative += snap.buckets[i];
    // Inclusive upper bound of source bucket i (see class comment).
    const std::uint64_t bound =
        i >= 63 ? ~0ull : ((std::uint64_t{1} << i) - 1);
    bucket_labels.back().second = std::to_string(bound);
    Sample(name + "_bucket", bucket_labels, cumulative);
  }
  bucket_labels.back().second = "+Inf";
  Sample(name + "_bucket", bucket_labels, snap.count);
  Sample(name + "_sum", labels, snap.sum_ns);
  Sample(name + "_count", labels, snap.count);
  return *this;
}

}  // namespace sentinel::obs
