#include "obs/watchdog.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/json.h"

namespace sentinel::obs {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* HealthStateToString(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kUnhealthy:
      return "unhealthy";
  }
  return "?";
}

Watchdog::Watchdog(Sampler sampler, Options options)
    : sampler_(std::move(sampler)), options_(options) {}

Watchdog::~Watchdog() { Stop(); }

Status Watchdog::Start() {
  if (running()) return Status::InvalidArgument("watchdog already running");
  if (!sampler_) return Status::InvalidArgument("watchdog has no sampler");
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Watchdog::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::set_postmortem_hook(PostmortemHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  postmortem_hook_ = std::move(hook);
}

void Watchdog::set_detail_provider(DetailProvider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  detail_provider_ = std::move(provider);
}

void Watchdog::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      if (stop_cv_.wait_for(lock, options_.interval,
                            [this] { return stop_; })) {
        return;
      }
    }
    MonitorSample sample = sampler_();
    if (sample.at_ns == 0) sample.at_ns = NowNs();
    Evaluate(sample);
  }
}

LatencyHistogram::Snapshot Watchdog::DeltaSnapshot(
    const LatencyHistogram::Snapshot& newest,
    const LatencyHistogram::Snapshot& oldest) {
  LatencyHistogram::Snapshot delta;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const std::uint64_t n = newest.buckets[i];
    const std::uint64_t o = oldest.buckets[i];
    delta.buckets[i] = n > o ? n - o : 0;
    delta.count += delta.buckets[i];
  }
  delta.sum_ns =
      newest.sum_ns > oldest.sum_ns ? newest.sum_ns - oldest.sum_ns : 0;
  delta.max_ns = newest.max_ns;
  return delta;
}

void Watchdog::Evaluate(const MonitorSample& sample) {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  PostmortemHook fire_hook;
  std::string fire_reason;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(sample);
    while (ring_.size() > options_.window) ring_.pop_front();
    const MonitorSample& oldest = ring_.front();

    std::vector<std::string> reasons;
    HealthState state = HealthState::kHealthy;
    auto trip = [&reasons, &state](HealthState severity, std::string why) {
      reasons.push_back(std::move(why));
      if (static_cast<int>(severity) > static_cast<int>(state)) {
        state = severity;
      }
    };

    // Scheduler stall: queue holds work, has not shrunk for stall_samples
    // consecutive readings, and no firing completed over that stretch. A
    // busy-but-draining scheduler moves `executed`; a wedged one does not.
    if (ring_.size() > options_.stall_samples) {
      const std::size_t first = ring_.size() - 1 - options_.stall_samples;
      auto stalled = [&](auto depth_of, const char* queue) {
        const std::uint64_t depth_now = depth_of(ring_.back());
        if (depth_now == 0) return;
        for (std::size_t i = first; i + 1 < ring_.size(); ++i) {
          if (depth_of(ring_[i + 1]) < depth_of(ring_[i])) return;  // draining
        }
        if (ring_.back().executed != ring_[first].executed) return;
        trip(HealthState::kUnhealthy,
             std::string("scheduler_stall: ") + queue + " queue depth " +
                 std::to_string(depth_now) + " not draining over " +
                 std::to_string(options_.stall_samples) + " samples");
      };
      stalled([](const MonitorSample& s) { return s.sched_pending; },
              "pending");
      stalled([](const MonitorSample& s) { return s.sched_detached; },
              "detached");
    }

    // Lock pileup: waiter depth, then windowed wait p99.
    if (sample.lock_waiters + sample.nested_waiters >
        options_.max_lock_waiters) {
      trip(HealthState::kDegraded,
           "lock_pileup: " +
               std::to_string(sample.lock_waiters + sample.nested_waiters) +
               " waiters (max " + std::to_string(options_.max_lock_waiters) +
               ")");
    }
    const LatencyHistogram::Snapshot lock_delta =
        DeltaSnapshot(sample.lock_wait, oldest.lock_wait);
    if (lock_delta.count > 0) {
      const std::uint64_t p99 = lock_delta.QuantileNs(0.99);
      if (p99 > options_.lock_wait_p99_unhealthy_ns) {
        trip(HealthState::kUnhealthy,
             "lock_wait_p99: " + std::to_string(p99) + "ns over window");
      } else if (p99 > options_.lock_wait_p99_degraded_ns) {
        trip(HealthState::kDegraded,
             "lock_wait_p99: " + std::to_string(p99) + "ns over window");
      }
    }

    // WAL: a wedged log refuses all appends — that is an outage, not a
    // slowdown. Slow fsyncs degrade.
    if (sample.wal_wedged) {
      trip(HealthState::kUnhealthy, "wal_wedged: appends refused until reopen");
    }
    const LatencyHistogram::Snapshot fsync_delta =
        DeltaSnapshot(sample.wal_fsync, oldest.wal_fsync);
    if (fsync_delta.count > 0) {
      const std::uint64_t p99 = fsync_delta.QuantileNs(0.99);
      if (p99 > options_.wal_fsync_p99_degraded_ns) {
        trip(HealthState::kDegraded,
             "wal_fsync_p99: " + std::to_string(p99) + "ns over window");
      }
    }
    // Durability lag: async commits acknowledged far ahead of the fsync
    // watermark mean the group-commit thread is not keeping up — every
    // un-synced ack is exposure to a crash.
    if (sample.wal_appended_lsn > sample.wal_durable_lsn &&
        sample.wal_appended_lsn - sample.wal_durable_lsn >
            options_.max_wal_durability_lag) {
      trip(HealthState::kDegraded,
           "wal_durability_lag: durable watermark " +
               std::to_string(sample.wal_durable_lsn) + " trails appends at " +
               std::to_string(sample.wal_appended_lsn) + " by more than " +
               std::to_string(options_.max_wal_durability_lag));
    }

    // End-to-end event SLO: windowed p99 of origin-stamp → GED dispatch.
    // The breach usually means the wire/admission path is stalling while
    // per-stage gauges still look healthy, so it gets its own predicate.
    const LatencyHistogram::Snapshot e2e_delta =
        DeltaSnapshot(sample.net_e2e, oldest.net_e2e);
    if (e2e_delta.count > 0) {
      const std::uint64_t p99 = e2e_delta.QuantileNs(0.99);
      if (p99 > options_.net_e2e_p99_degraded_ns) {
        trip(HealthState::kDegraded,
             "net_e2e_p99: " + std::to_string(p99) + "ns over window");
      }
    }

    // Network overload: the event-bus admission queue sits past its
    // high-water mark and is shedding NOTIFY traffic with RETRY_LATER.
    // Degraded, not unhealthy — bounded queues and typed sheds mean the
    // daemon is coping by design, but clients are seeing drops.
    if (sample.net_overloaded) {
      trip(HealthState::kDegraded,
           "net_overload: admission queue depth " +
               std::to_string(sample.net_admission_depth) +
               ", shedding NOTIFY traffic with RETRY_LATER");
    }

    // Detector buffer growth without detections: operator contexts are
    // accumulating occurrences nothing consumes (e.g. a SEQ whose right
    // side never fires inside a long transaction).
    if (ring_.size() >= 2 &&
        sample.detector_buffered >
            oldest.detector_buffered + options_.buffer_growth_min &&
        sample.detections == oldest.detections) {
      trip(HealthState::kDegraded,
           "detector_buffer_growth: buffered " +
               std::to_string(sample.detector_buffered) + " (+" +
               std::to_string(sample.detector_buffered -
                              oldest.detector_buffered) +
               " over window, 0 detections)");
    }

    const auto previous =
        static_cast<HealthState>(health_.load(std::memory_order_relaxed));
    health_.store(static_cast<int>(state), std::memory_order_release);
    reasons_ = reasons;

    if (static_cast<int>(state) > static_cast<int>(previous)) {
      transitions_.fetch_add(1, std::memory_order_relaxed);
      SENTINEL_LOG(kWarn) << "watchdog: health " << HealthStateToString(previous)
                          << " -> " << HealthStateToString(state) << " ("
                          << (reasons.empty() ? "?" : reasons.front()) << ")";
      // One automatic postmortem per upward transition, rate-limited so a
      // flapping predicate cannot flood the postmortem directory.
      const std::uint64_t min_gap_ns =
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  options_.postmortem_min_interval)
                  .count());
      if (postmortem_hook_ != nullptr &&
          (last_postmortem_ns_ == 0 ||
           sample.at_ns >= last_postmortem_ns_ + min_gap_ns)) {
        last_postmortem_ns_ = sample.at_ns;
        fire_hook = postmortem_hook_;
        fire_reason = "watchdog: " + (reasons.empty() ? std::string("health ") +
                                                            HealthStateToString(
                                                                state)
                                                      : reasons.front());
      }
    }
  }
  // The hook dumps a postmortem through ActiveDatabase, which re-enters
  // component locks — never call it holding mu_.
  if (fire_hook) {
    postmortems_.fetch_add(1, std::memory_order_relaxed);
    fire_hook(fire_reason);
  }
}

Watchdog::Rates Watchdog::rates() const {
  std::lock_guard<std::mutex> lock(mu_);
  Rates rates;
  if (ring_.size() < 2) return rates;
  const MonitorSample& oldest = ring_.front();
  const MonitorSample& newest = ring_.back();
  if (newest.at_ns <= oldest.at_ns) return rates;
  const double sec =
      static_cast<double>(newest.at_ns - oldest.at_ns) / 1e9;
  auto rate = [sec](std::uint64_t now, std::uint64_t then) {
    return now > then ? static_cast<double>(now - then) / sec : 0.0;
  };
  rates.window_sec = sec;
  rates.events_per_sec = rate(newest.notifications, oldest.notifications);
  rates.detections_per_sec = rate(newest.detections, oldest.detections);
  rates.firings_per_sec = rate(newest.executed, oldest.executed);
  rates.failures_per_sec = rate(newest.failed, oldest.failed);
  rates.aborts_per_sec = rate(newest.abort_top, oldest.abort_top);
  return rates;
}

MonitorSample Watchdog::last_sample() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? MonitorSample{} : ring_.back();
}

std::vector<std::string> Watchdog::reasons() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reasons_;
}

std::string Watchdog::HealthJson() const {
  const HealthState state = health();
  const Rates r = rates();
  const MonitorSample last = last_sample();
  JsonWriter w;
  w.BeginObject();
  w.Field("status", HealthStateToString(state));
  w.Field("healthy", state == HealthState::kHealthy);
  w.Key("reasons").BeginArray();
  for (const std::string& reason : reasons()) w.Value(reason);
  w.EndArray();
  if (state != HealthState::kHealthy) {
    DetailProvider provider;
    {
      std::lock_guard<std::mutex> lock(mu_);
      provider = detail_provider_;
    }
    if (provider) {
      const std::string detail = provider();
      if (!detail.empty()) w.Field("top_cost_rule", detail);
    }
  }
  w.Key("rates").BeginObject();
  // JsonWriter has no double overload; rates are scaled to milli-units so
  // integers carry the precision a health probe needs.
  w.Field("events_per_sec_milli",
          static_cast<std::uint64_t>(r.events_per_sec * 1000));
  w.Field("detections_per_sec_milli",
          static_cast<std::uint64_t>(r.detections_per_sec * 1000));
  w.Field("firings_per_sec_milli",
          static_cast<std::uint64_t>(r.firings_per_sec * 1000));
  w.Field("failures_per_sec_milli",
          static_cast<std::uint64_t>(r.failures_per_sec * 1000));
  w.Field("aborts_per_sec_milli",
          static_cast<std::uint64_t>(r.aborts_per_sec * 1000));
  w.Field("window_ms", static_cast<std::uint64_t>(r.window_sec * 1000));
  w.EndObject();
  w.Key("gauges").BeginObject();
  w.Field("sched_pending", last.sched_pending);
  w.Field("sched_detached", last.sched_detached);
  w.Field("open_txns", last.open_txns);
  w.Field("active_subtxns", last.active_subtxns);
  w.Field("nested_waiters", last.nested_waiters);
  w.Field("lock_waiters", last.lock_waiters);
  w.Field("pool_resident", last.pool_resident);
  w.Field("pool_dirty", last.pool_dirty);
  w.Field("detector_buffered", last.detector_buffered);
  w.Field("wal_wedged", last.wal_wedged);
  w.Field("wal_appended_lsn", last.wal_appended_lsn);
  w.Field("wal_durable_lsn", last.wal_durable_lsn);
  w.Field("net_sessions", last.net_sessions);
  w.Field("net_admission_depth", last.net_admission_depth);
  w.Field("net_overloaded", last.net_overloaded);
  w.EndObject();
  w.Field("ticks", ticks());
  w.Field("transitions", transitions());
  w.Field("postmortems", postmortems_triggered());
  w.EndObject();
  return w.Take();
}

}  // namespace sentinel::obs
