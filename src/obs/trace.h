#ifndef SENTINEL_OBS_TRACE_H_
#define SENTINEL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "detector/event_types.h"
#include "obs/metrics.h"

namespace sentinel::obs {

/// One edge of the event→rule→subtransaction provenance graph.
enum class EdgeKind : std::uint8_t {
  kPrimitive = 0,  // raw method notification → primitive event node
  kComposite = 1,  // child node detection → parent operator node
  kFiring = 2,     // event detection → rule firing
  kSubTxn = 3,     // rule firing → subtransaction begin/commit/abort
};

const char* EdgeKindToString(EdgeKind kind);

struct TraceEdge {
  EdgeKind kind = EdgeKind::kPrimitive;
  detector::ParamContext context = detector::ParamContext::kRecent;
  std::uint64_t seq = 0;
  detector::TxnId txn = storage::kInvalidTxnId;
  std::uint64_t subtxn = 0;  // txn::SubTxnId; 0 == none
  std::string from;
  std::string to;
};

/// Bounded ring buffer of provenance edges. Recording while disabled is a
/// single relaxed atomic load; while enabled it is one short critical
/// section on the ring mutex (tracing is a debugging/evaluation surface, not
/// a hot-path feature — the budget is "cheap when off, bounded when on").
/// When the ring wraps, the oldest edges are overwritten and counted as
/// dropped.
class ProvenanceTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit ProvenanceTracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  ProvenanceTracer(const ProvenanceTracer&) = delete;
  ProvenanceTracer& operator=(const ProvenanceTracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Appends an edge (call sites guard with enabled() so labels are not even
  /// built when tracing is idle).
  void Record(EdgeKind kind, std::string from, std::string to,
              detector::TxnId txn, detector::ParamContext context,
              std::uint64_t subtxn = 0);

  /// Edges currently in the ring, oldest first.
  std::vector<TraceEdge> Snapshot() const;

  /// Removes and returns the edges belonging to `txn`, oldest first.
  std::vector<TraceEdge> DrainTxn(detector::TxnId txn);

  /// Drops `txn`'s edges (per-transaction trace hygiene, mirroring the
  /// detector's occurrence flush).
  void FlushTxn(detector::TxnId txn);

  void Clear();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t recorded() const { return recorded_.value(); }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Renders the ring (plus counters) as a JSON object.
  std::string ToJson() const;
  static std::string EdgesJson(const std::vector<TraceEdge>& edges);

 private:
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  ShardedCounter recorded_;
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex mu_;
  std::deque<TraceEdge> ring_;  // ordered oldest→newest, size <= capacity_
  std::uint64_t next_seq_ = 1;
};

}  // namespace sentinel::obs

#endif  // SENTINEL_OBS_TRACE_H_
