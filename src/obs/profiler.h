#ifndef SENTINEL_OBS_PROFILER_H_
#define SENTINEL_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/symbol.h"
#include "obs/metrics.h"

namespace sentinel::obs {

class PromWriter;

/// Continuous profiling plane (DESIGN.md §15). Opt-in (off by default) and
/// always cheap when off: every feed is gated on one relaxed load of the
/// mode, the same budget discipline as SpanTracer. Three feeds:
///
///   1. *Exact attribution* — the seams that already carry spans (condition,
///      action, operator-node evaluation, commit barrier, GED forward) also
///      record CPU-ns (CLOCK_THREAD_CPUTIME_ID), wall-ns and invocation
///      counts into per-rule, per-event-node and per-interned-class-symbol
///      cost accounts. Accounts store sharded counters so concurrent
///      scheduler workers never contend on one cache line.
///   2. *Lock contention* — the striped detector buffer mutexes, the storage
///      lock manager and the WAL group-commit barrier report try-then-wait
///      accounting (acquisitions, contended acquisitions, summed wait-ns)
///      into named contention sites; TopContended() is the top-K table.
///   3. *Wall-clock sampling* — a sampler thread walks registered worker
///      annotation stacks at ~1kHz and accumulates collapsed-stack
///      ("folded") lines consumable by standard flamegraph tooling.
///
/// Accounts are never erased while the profiler lives (Reset zeroes counters
/// in place), so cached account/site pointers held by nodes and storage
/// components stay valid for the profiler's lifetime.
class Profiler {
 public:
  enum class Mode : std::uint8_t { kOff = 0, kOn = 1 };

  Profiler();
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The instrumentation gate: one relaxed load when profiling is off.
  bool enabled() const {
    return mode_.load(std::memory_order_relaxed) == Mode::kOn;
  }
  Mode mode() const { return mode_.load(std::memory_order_relaxed); }

  /// Enables all three feeds and starts the sampler thread. Idempotent.
  void Start();
  /// Disables the feeds and joins the sampler thread. Idempotent.
  void Stop();
  /// Zeroes every account, contention site and folded sample in place
  /// (pointers stay valid). Sharded-counter Reset races concurrent writers
  /// (see ShardedCounter::Reset); call while profiling is off or accept a
  /// benign undercount.
  void Reset();

  /// Steady-clock nanoseconds (same clock as SpanTracer::NowNs).
  static std::uint64_t NowNs();
  /// Per-thread CPU time in nanoseconds (CLOCK_THREAD_CPUTIME_ID; 0 when
  /// the platform lacks it).
  static std::uint64_t ThreadCpuNs();

  /// One measured interval at an attribution seam. `valid` marks whether the
  /// seam ran at all this firing (a failed condition skips the action).
  struct CostDelta {
    std::uint64_t cpu_ns = 0;
    std::uint64_t wall_ns = 0;
    bool valid = false;
  };

  struct CostSnapshot {
    std::uint64_t invocations = 0;
    std::uint64_t cpu_ns = 0;
    std::uint64_t wall_ns = 0;
  };

  /// One (invocations, cpu, wall) account cell, sharded per field.
  struct CostCell {
    ShardedCounter invocations;
    ShardedCounter cpu_ns;
    ShardedCounter wall_ns;

    void Record(std::uint64_t cpu, std::uint64_t wall) {
      invocations.Add(1);
      cpu_ns.Add(cpu);
      wall_ns.Add(wall);
    }
    CostSnapshot Snap() const {
      return {invocations.value(), cpu_ns.value(), wall_ns.value()};
    }
    void Zero() {
      invocations.Reset();
      cpu_ns.Reset();
      wall_ns.Reset();
    }
  };

  enum class RuleSeam : int { kCondition = 0, kAction = 1, kCommit = 2 };
  static constexpr int kRuleSeams = 3;
  static const char* RuleSeamName(RuleSeam seam);

  /// Process-level seams that belong to no single rule or node.
  enum class GlobalSeam : int { kCommitBarrier = 0, kGedForward = 1 };
  static constexpr int kGlobalSeams = 2;
  static const char* GlobalSeamName(GlobalSeam seam);

  // -- Feed 1: exact attribution ---------------------------------------------

  /// Records one rule firing's seam costs, attributes the condition+action
  /// cost to the distinct class symbols among the triggering occurrence's
  /// constituents (split evenly), and remembers the rule↔symbol coupling for
  /// the shard-steering report. `occurrence` may be null (no attribution).
  /// Call only after enabled() passed.
  void RecordRuleFiring(const std::string& rule_name,
                        const detector::Occurrence* occurrence,
                        const CostDelta& condition, const CostDelta& action,
                        const CostDelta& commit);

  /// Per-event-node operator-evaluation account; the returned pointer is
  /// stable for the profiler's lifetime (nodes cache it at set_profiler
  /// time so the Emit path never takes the account-map lock).
  CostCell* NodeAccount(const std::string& node_name);

  /// Per-class-symbol primitive-dispatch account (event rates for the shard
  /// report). Call only after enabled() passed.
  void RecordSymbolEvent(common::SymbolId sym, std::uint64_t cpu,
                         std::uint64_t wall);

  /// Commit-barrier / GED-forward seams. Call only after enabled() passed.
  void RecordGlobal(GlobalSeam seam, std::uint64_t cpu, std::uint64_t wall);

  // -- Feed 2: lock contention -----------------------------------------------

  struct ContentionSite {
    std::string name;
    ShardedCounter acquisitions;  // profiled acquisitions (profiling on)
    ShardedCounter contended;     // acquisitions that had to wait
    ShardedCounter wait_ns;       // summed wait time of contended ones
  };

  /// Get-or-create a named contention site; the pointer is stable for the
  /// profiler's lifetime.
  ContentionSite* GetContentionSite(const std::string& name);

  /// Try-then-wait lock acquisition: uncontended acquisitions cost one
  /// try_lock; contended ones time the blocking wait. Off-mode is a plain
  /// lock (one relaxed load of the gate).
  template <typename Mutex>
  static std::unique_lock<Mutex> LockContended(const Profiler* profiler,
                                               ContentionSite* site,
                                               Mutex& mu) {
    if (profiler == nullptr || site == nullptr || !profiler->enabled()) {
      return std::unique_lock<Mutex>(mu);
    }
    std::unique_lock<Mutex> lock(mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      const std::uint64_t t0 = NowNs();
      lock.lock();
      site->contended.Add(1);
      site->wait_ns.Add(NowNs() - t0);
    }
    site->acquisitions.Add(1);
    return lock;
  }

  /// Condition-wait sites (lock manager grants, WAL barrier) report their
  /// already-measured waits directly. Call only after enabled() passed.
  static void RecordSiteAcquire(ContentionSite* site) {
    site->acquisitions.Add(1);
  }
  static void RecordSiteWait(ContentionSite* site, std::uint64_t wait_ns) {
    site->contended.Add(1);
    site->wait_ns.Add(wait_ns);
  }

  struct ContentionSnapshot {
    std::string site;
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
    std::uint64_t wait_ns = 0;
  };
  /// Top-K contended sites, ordered by summed wait-ns descending. Sites with
  /// zero acquisitions are skipped.
  std::vector<ContentionSnapshot> TopContended(std::size_t k) const;

  // -- Feed 3: wall-clock sampling -------------------------------------------

  static constexpr int kMaxAnnotationDepth = 8;

  /// One worker thread's annotation stack. Frames are pointers to strings
  /// with static or profiler-interned storage, pushed/popped only by the
  /// owning thread; the sampler reads them with acquire/relaxed loads. A
  /// racing pop/push can make the sampler read a just-replaced frame — the
  /// sample lands one frame off, which sampling tolerates by design.
  class ThreadAnnotations {
   public:
    const std::string& name() const { return name_; }

   private:
    friend class Profiler;
    std::string name_;
    std::array<std::atomic<const char*>, kMaxAnnotationDepth> frames_{};
    std::atomic<int> depth_{0};
    std::atomic<bool> active_{true};
  };

  /// Registers the calling worker with the sampler. The returned pointer is
  /// valid until UnregisterThread (the storage lives until the profiler is
  /// destroyed).
  ThreadAnnotations* RegisterThread(std::string name);
  void UnregisterThread(ThreadAnnotations* thread);

  /// Thread-local get-or-register for worker loops that cannot know at spawn
  /// time whether a profiler is attached. Unregisters automatically at
  /// thread exit; the profiler must outlive the worker (it does: the
  /// database destroys components — and joins their workers — before the
  /// profiler).
  ThreadAnnotations* EnsureThisThread(const char* name_prefix);

  /// Interns a dynamic frame label (rule names) into storage that outlives
  /// every sample referring to it.
  const char* InternFrame(const std::string& frame);

  /// RAII annotation frame. Inert when the gate is off or the stack is full.
  class AnnotationScope {
   public:
    AnnotationScope(const Profiler* profiler, ThreadAnnotations* thread,
                    const char* frame) {
      if (profiler == nullptr || thread == nullptr || !profiler->enabled()) {
        return;
      }
      const int depth = thread->depth_.load(std::memory_order_relaxed);
      if (depth >= kMaxAnnotationDepth) return;
      thread->frames_[depth].store(frame, std::memory_order_relaxed);
      thread->depth_.store(depth + 1, std::memory_order_release);
      thread_ = thread;
    }
    ~AnnotationScope() {
      if (thread_ == nullptr) return;
      thread_->depth_.store(
          thread_->depth_.load(std::memory_order_relaxed) - 1,
          std::memory_order_release);
    }

    AnnotationScope(const AnnotationScope&) = delete;
    AnnotationScope& operator=(const AnnotationScope&) = delete;

   private:
    ThreadAnnotations* thread_ = nullptr;
  };

  /// Collapsed-stack lines ("thread;frame;frame count\n"), the input format
  /// of standard flamegraph tooling.
  std::string FoldedStacks() const;
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

  // -- Snapshots & export ----------------------------------------------------

  struct RuleSnapshot {
    std::string name;
    std::array<CostSnapshot, kRuleSeams> seams;
    std::vector<std::string> symbols;  // distinct triggering class symbols
    std::uint64_t total_wall_ns() const {
      std::uint64_t total = 0;
      for (const CostSnapshot& s : seams) total += s.wall_ns;
      return total;
    }
  };
  struct NodeSnapshot {
    std::string name;
    CostSnapshot eval;
  };
  struct SymbolSnapshot {
    std::string symbol;
    CostSnapshot events;  // primitive dispatches for this class symbol
    CostSnapshot rules;   // attributed rule condition+action cost
  };

  std::vector<RuleSnapshot> RuleSnapshots() const;
  std::vector<NodeSnapshot> NodeSnapshots() const;
  std::vector<SymbolSnapshot> SymbolSnapshots() const;
  CostSnapshot GlobalSnapshot(GlobalSeam seam) const;

  /// Nanoseconds profiling has been enabled (cumulative across start/stop).
  std::uint64_t duration_ns() const;

  /// Name of the rule with the largest total wall-ns ("" when no rule has
  /// recorded cost) — the watchdog names it in /healthz detail on degrade.
  std::string TopCostRule() const;

  /// The /profile body: every feed as one JSON object (the input of
  /// tools/shard_plan.py — see DESIGN.md §15 for the schema).
  std::string ProfileJson() const;

  /// Appends the sentinel_profile_* families to a /metrics exposition.
  void WritePrometheus(PromWriter& w) const;

 private:
  struct RuleCost {
    std::array<CostCell, kRuleSeams> seams;
    std::mutex sym_mu;
    std::vector<common::SymbolId> symbols;  // sorted distinct
  };
  struct SymbolCost {
    CostCell events;
    CostCell rules;
  };

  RuleCost* GetRuleCost(const std::string& name);
  SymbolCost* GetSymbolCost(common::SymbolId sym);

  void SamplerLoop();
  void SampleOnce();
  void StartSamplerLocked();
  void StopSamplerLocked();

  std::atomic<Mode> mode_{Mode::kOff};
  std::mutex lifecycle_mu_;
  std::atomic<std::uint64_t> enabled_since_ns_{0};
  std::atomic<std::uint64_t> active_ns_{0};

  mutable std::shared_mutex rules_mu_;
  std::map<std::string, std::unique_ptr<RuleCost>> rules_;

  mutable std::shared_mutex nodes_mu_;
  std::map<std::string, std::unique_ptr<CostCell>> nodes_;

  mutable std::shared_mutex symbols_mu_;
  std::deque<std::unique_ptr<SymbolCost>> symbols_;  // indexed by SymbolId

  std::array<CostCell, kGlobalSeams> global_;

  mutable std::shared_mutex sites_mu_;
  std::map<std::string, std::unique_ptr<ContentionSite>> sites_;

  mutable std::mutex threads_mu_;
  std::deque<ThreadAnnotations> thread_storage_;
  std::vector<ThreadAnnotations*> active_threads_;

  mutable std::mutex frames_mu_;
  std::set<std::string> interned_frames_;

  mutable std::mutex folded_mu_;
  std::map<std::string, std::uint64_t> folded_;
  std::atomic<std::uint64_t> samples_{0};

  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  bool sampler_running_ = false;
  std::thread sampler_;
};

}  // namespace sentinel::obs

#endif  // SENTINEL_OBS_PROFILER_H_
