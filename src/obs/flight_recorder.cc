#include "obs/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace sentinel::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
  log_ring_.resize(kLogCapacity);
}

void FlightRecorder::Record(const Span& span) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_ % capacity_] = span;
  ++next_;
}

void FlightRecorder::RecordLog(LogLevel level, const std::string& message) {
  logs_recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  LogEntry& entry = log_ring_[log_next_ % kLogCapacity];
  entry.at_ns = SpanTracer::NowNs();
  entry.level = level;
  entry.message = message;
  ++log_next_;
}

std::vector<FlightRecorder::LogEntry> FlightRecorder::SnapshotLogs() const {
  std::vector<LogEntry> out;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t count = std::min<std::uint64_t>(log_next_, kLogCapacity);
  const std::uint64_t first = log_next_ - count;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(log_ring_[(first + i) % kLogCapacity]);
  }
  return out;
}

std::vector<Span> FlightRecorder::Snapshot() const {
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t count = std::min<std::uint64_t>(next_, capacity_);
  std::uint64_t first = next_ - count;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(ring_[(first + i) % capacity_]);
  }
  return out;
}

Result<std::string> FlightRecorder::WritePostmortem(const std::string& json,
                                                    const std::string& path) {
  std::uint64_t n = dumps_.fetch_add(1, std::memory_order_relaxed);
  std::string target = path;
  if (target.empty()) {
    const char* dir = std::getenv("SENTINEL_POSTMORTEM_DIR");
    if (dir == nullptr || dir[0] == '\0') return std::string();
    target = std::string(dir) + "/postmortem-" + std::to_string(::getpid()) +
             "-" + std::to_string(n) + ".json";
  }
  std::FILE* f = std::fopen(target.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open postmortem output: " + target);
  }
  std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  // fsync so a postmortem written on the way down survives an immediate
  // process exit (the crash matrix's std::_Exit skips stdio flush).
  bool ok = written == json.size() && std::fflush(f) == 0 &&
            ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!ok) return Status::IOError("short write dumping postmortem: " + target);
  return target;
}

}  // namespace sentinel::obs
