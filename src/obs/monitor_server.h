#ifndef SENTINEL_OBS_MONITOR_SERVER_H_
#define SENTINEL_OBS_MONITOR_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace sentinel::obs {

/// Embedded HTTP/1.0 endpoint for the live monitoring plane: one listening
/// socket (plain POSIX, no third-party deps), one background accept thread,
/// one request served at a time. That is exactly enough for a Prometheus
/// scraper plus an operator's curl — the handlers themselves (metrics,
/// stats, health) read shared state through the components' own locks, so a
/// slow consumer can never wedge the database.
///
/// Protocol subset: `GET <path>` only; query strings are stripped; every
/// response closes the connection. Unknown paths get 404, non-GET methods
/// 405. Handlers run on the server thread and must be thread-safe against
/// the application threads.
class MonitorServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response()>;

  struct Options {
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (tests).
    int port = 0;
  };

  MonitorServer() = default;
  ~MonitorServer();

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Registers a handler for an exact path (e.g. "/metrics"). Must be
  /// called before Start.
  void Route(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:port and starts the accept thread. Fails with
  /// IOError when the port is taken.
  Status Start(const Options& options);
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port (after a successful Start; the ephemeral port when 0 was
  /// requested).
  int port() const { return port_.load(std::memory_order_acquire); }
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> routes_;
  std::thread thread_;
  int listen_fd_ = -1;
  std::atomic<int> port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace sentinel::obs

#endif  // SENTINEL_OBS_MONITOR_SERVER_H_
