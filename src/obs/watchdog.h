#ifndef SENTINEL_OBS_WATCHDOG_H_
#define SENTINEL_OBS_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace sentinel::obs {

/// One instantaneous reading of the pipeline, taken by the watchdog's
/// sampler thread. Counters are cumulative (delta-since-baseline semantics:
/// the watchdog never resets a source counter — it subtracts ring entries);
/// gauges are point-in-time depths. The two latency histograms ship full
/// bucket snapshots so the watchdog can compute *windowed* quantiles by
/// bucket subtraction instead of being blinded by a single historical spike
/// in the cumulative distribution.
struct MonitorSample {
  std::uint64_t at_ns = 0;  // steady-clock timestamp of the reading

  // Cumulative counters.
  std::uint64_t notifications = 0;  // raw event notifications accepted
  std::uint64_t detections = 0;     // occurrences emitted by graph nodes
  std::uint64_t executed = 0;       // rule firings that ran to completion
  std::uint64_t failed = 0;         // contained rule failures
  std::uint64_t abort_top = 0;      // ABORT_TOP contingencies
  std::uint64_t deadlocks = 0;

  // Gauges.
  std::uint64_t sched_pending = 0;    // scheduler pending-queue depth
  std::uint64_t sched_detached = 0;   // detached-queue depth
  std::uint64_t open_txns = 0;        // open top-level transactions
  std::uint64_t active_subtxns = 0;   // rule subtransactions in flight
  std::uint64_t nested_waiters = 0;   // threads blocked in nested Acquire
  std::uint64_t lock_waiters = 0;     // txns blocked in the storage lock table
  std::uint64_t pool_resident = 0;    // buffer-pool resident pages
  std::uint64_t pool_dirty = 0;       // buffer-pool dirty pages
  std::uint64_t detector_buffered = 0;  // occurrences buffered in the graph

  bool wal_wedged = false;
  // WAL durability watermarks (group commit): appended - durable is the
  // async-commit backlog awaiting an fsync barrier.
  std::uint64_t wal_appended_lsn = 0;
  std::uint64_t wal_durable_lsn = 0;

  // Network plane (event-bus server; all zero when none is attached).
  std::uint64_t net_sessions = 0;         // open remote sessions (gauge)
  std::uint64_t net_admission_depth = 0;  // admission queue depth (gauge)
  std::uint64_t net_sheds = 0;            // cumulative shed notifies
  std::uint64_t net_frame_errors = 0;     // cumulative framing violations
  bool net_overloaded = false;            // admission past high-water mark

  // Cumulative latency distributions (windowed quantiles via subtraction).
  LatencyHistogram::Snapshot lock_wait;
  LatencyHistogram::Snapshot wal_fsync;
  /// End-to-end event latency at the server (origin-stamp → GED dispatch,
  /// ns; empty when no event-bus server is attached). Windowed p99 feeds
  /// the net_e2e stall predicate.
  LatencyHistogram::Snapshot net_e2e;
};

enum class HealthState : int { kHealthy = 0, kDegraded = 1, kUnhealthy = 2 };

const char* HealthStateToString(HealthState state);

/// Health watchdog: a sampler thread snapshots the pipeline counters every
/// `interval` into a fixed ring of readings, derives per-series rates
/// (events/s, firings/s, aborts/s) over the ring window, and evaluates
/// stall predicates:
///
///   - scheduler stall: the pending (or detached) queue holds work and has
///     not shrunk across `stall_samples` consecutive readings while the
///     executed counter did not move — the scheduler is wedged, not busy;
///   - lock pileup: more than `max_lock_waiters` transactions blocked in
///     the storage lock table, or the *windowed* lock-wait p99 above its
///     threshold;
///   - WAL latency: windowed fsync p99 above threshold (degraded), or the
///     log wedged by a torn append (unhealthy);
///   - detector buffer growth: buffered occurrences grew by more than
///     `buffer_growth_min` over the window with zero detections — contexts
///     are accumulating state no operator consumes.
///
/// Tripped predicates lift the health state to degraded/unhealthy; on each
/// upward transition the watchdog fires one rate-limited postmortem hook
/// (at most one per `postmortem_min_interval`), so the flight-recorder dump
/// captures the system while it is still wedged.
class Watchdog {
 public:
  struct Options {
    std::chrono::milliseconds interval{250};
    /// Ring capacity; rates and windowed quantiles span at most this many
    /// readings.
    std::size_t window = 16;
    /// Consecutive non-draining readings before a queue counts as stalled.
    std::size_t stall_samples = 4;
    std::uint64_t max_lock_waiters = 16;
    std::uint64_t lock_wait_p99_degraded_ns = 250ull * 1000 * 1000;
    std::uint64_t lock_wait_p99_unhealthy_ns = 1500ull * 1000 * 1000;
    std::uint64_t wal_fsync_p99_degraded_ns = 250ull * 1000 * 1000;
    /// Async-commit backlog (appended_lsn - durable_lsn) above which the
    /// group-commit thread is considered to be falling behind (degraded).
    std::uint64_t max_wal_durability_lag = 65536;
    /// Windowed end-to-end event-delivery p99 (client origin → GED
    /// dispatch) above which the network plane is degraded — the e2e SLO.
    std::uint64_t net_e2e_p99_degraded_ns = 1000ull * 1000 * 1000;
    std::uint64_t buffer_growth_min = 4096;
    std::chrono::milliseconds postmortem_min_interval{5000};
  };

  using Sampler = std::function<MonitorSample()>;
  /// Invoked with a short reason string on upward health transitions.
  using PostmortemHook = std::function<void(const std::string& reason)>;

  Watchdog(Sampler sampler, Options options);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  Status Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  void set_postmortem_hook(PostmortemHook hook);

  /// Optional cost-attribution provider consulted by HealthJson whenever the
  /// state is not healthy: returns a short label (the profiler's top-cost
  /// rule) reported as "top_cost_rule" in the /healthz detail. An empty
  /// return omits the field.
  using DetailProvider = std::function<std::string()>;
  void set_detail_provider(DetailProvider provider);

  HealthState health() const {
    return static_cast<HealthState>(health_.load(std::memory_order_acquire));
  }
  std::vector<std::string> reasons() const;

  /// Per-series rates over the ring window (0 until two readings exist).
  struct Rates {
    double events_per_sec = 0;
    double detections_per_sec = 0;
    double firings_per_sec = 0;
    double failures_per_sec = 0;
    double aborts_per_sec = 0;
    double window_sec = 0;
  };
  Rates rates() const;

  /// Most recent reading (all-zero until the first tick).
  MonitorSample last_sample() const;

  /// Health + reasons + rates + gauges as one JSON object (the /healthz
  /// body).
  std::string HealthJson() const;

  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  /// Upward health transitions observed.
  std::uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }
  /// Postmortem hooks actually fired (rate-limited subset of transitions).
  std::uint64_t postmortems_triggered() const {
    return postmortems_.load(std::memory_order_relaxed);
  }

  /// Test hook: feeds one synthetic reading through the same evaluation
  /// path the sampler thread uses. `sample.at_ns` orders the ring.
  void TickForTest(const MonitorSample& sample) { Evaluate(sample); }

  /// Windowed histogram delta: newest minus oldest, bucket-wise. Exposed
  /// for tests; max_ns keeps the cumulative maximum (a true windowed max
  /// would need per-window tracking at Record time).
  static LatencyHistogram::Snapshot DeltaSnapshot(
      const LatencyHistogram::Snapshot& newest,
      const LatencyHistogram::Snapshot& oldest);

 private:
  void Loop();
  void Evaluate(const MonitorSample& sample);

  const Sampler sampler_;
  const Options options_;

  mutable std::mutex mu_;
  std::deque<MonitorSample> ring_;          // oldest first, <= options_.window
  std::vector<std::string> reasons_;        // last evaluation's trip reasons
  PostmortemHook postmortem_hook_;
  DetailProvider detail_provider_;  // guarded by mu_
  std::uint64_t last_postmortem_ns_ = 0;

  std::atomic<int> health_{static_cast<int>(HealthState::kHealthy)};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> transitions_{0};
  std::atomic<std::uint64_t> postmortems_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace sentinel::obs

#endif  // SENTINEL_OBS_WATCHDOG_H_
