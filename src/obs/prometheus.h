#ifndef SENTINEL_OBS_PROMETHEUS_H_
#define SENTINEL_OBS_PROMETHEUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace sentinel::obs {

/// Streaming writer for the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` headers followed by `name{labels} value`
/// sample lines. Families are declared once via Counter/Gauge/Histogram;
/// label values are escaped per the exposition spec (backslash, double
/// quote, newline).
///
/// Histograms map the power-of-two LatencyHistogram buckets onto cumulative
/// `_bucket{le="..."}` lines: bucket i of the source covers
/// [2^(i-1), 2^i) ns, so its inclusive upper bound — the `le` label — is
/// 2^i - 1 (bucket 0 holds exactly 0 ns). Trailing empty buckets are elided
/// (the `le="+Inf"` line always closes the family), which keeps the series
/// cumulative and monotone while dropping dozens of all-zero lines per
/// histogram. Values are nanoseconds; families carry the `_ns` suffix to
/// make the unit explicit.
class PromWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Declares a family; emits HELP/TYPE once per (name, type).
  PromWriter& Family(const std::string& name, const std::string& help,
                     const char* type);

  PromWriter& Sample(const std::string& name, const Labels& labels,
                     std::uint64_t value);
  PromWriter& SampleF(const std::string& name, const Labels& labels,
                      double value);

  /// Counter family + single sample helper.
  PromWriter& Counter(const std::string& name, const std::string& help,
                      const Labels& labels, std::uint64_t value);
  PromWriter& Gauge(const std::string& name, const std::string& help,
                    const Labels& labels, std::uint64_t value);
  PromWriter& GaugeF(const std::string& name, const std::string& help,
                     const Labels& labels, double value);

  /// Declares `name` as a histogram family (call once) and emits the
  /// `_bucket`/`_sum`/`_count` series for one labelled snapshot.
  PromWriter& Histogram(const std::string& name, const std::string& help,
                        const Labels& labels,
                        const LatencyHistogram::Snapshot& snap);

  static std::string EscapeLabelValue(const std::string& value);
  /// Renders `{k="v",...}` (empty string for no labels).
  static std::string RenderLabels(const Labels& labels);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Header(const std::string& name, const std::string& help,
              const char* type);

  std::string out_;
  std::vector<std::string> declared_;
};

}  // namespace sentinel::obs

#endif  // SENTINEL_OBS_PROMETHEUS_H_
