#ifndef SENTINEL_OBS_JSON_H_
#define SENTINEL_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <type_traits>

namespace sentinel::obs {

/// Minimal streaming JSON writer for the observability surfaces (stats,
/// trace, graph dumps). Callers are responsible for structural validity;
/// the writer only handles separators and string escaping.
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Separate();
    out_ += '{';
    fresh_ = true;
    return *this;
  }
  JsonWriter& EndObject() {
    out_ += '}';
    fresh_ = false;
    return *this;
  }
  JsonWriter& BeginArray() {
    Separate();
    out_ += '[';
    fresh_ = true;
    return *this;
  }
  JsonWriter& EndArray() {
    out_ += ']';
    fresh_ = false;
    return *this;
  }

  JsonWriter& Key(const std::string& key) {
    Separate();
    AppendString(key);
    out_ += ':';
    fresh_ = true;  // suppress the comma before the value
    return *this;
  }

  JsonWriter& Value(const std::string& v) {
    Separate();
    AppendString(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& Value(T v) {
    Separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(bool v) {
    Separate();
    out_ += v ? "true" : "false";
    return *this;
  }

  template <typename T>
  JsonWriter& Field(const std::string& key, T v) {
    Key(key);
    return Value(v);
  }

  /// Splices a pre-rendered JSON fragment as the next value.
  JsonWriter& Raw(const std::string& json) {
    Separate();
    out_ += json;
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Separate() {
    if (!fresh_ && !out_.empty()) out_ += ',';
    fresh_ = false;
  }

  void AppendString(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            static const char* hex = "0123456789abcdef";
            out_ += "\\u00";
            out_ += hex[(c >> 4) & 0xf];
            out_ += hex[c & 0xf];
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace sentinel::obs

#endif  // SENTINEL_OBS_JSON_H_
