#ifndef SENTINEL_OBS_FLIGHT_RECORDER_H_
#define SENTINEL_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/span.h"

namespace sentinel::obs {

/// Always-on bounded history of the last N spans plus the postmortem file
/// sink. The span tracer copies every committed span here regardless of
/// trace mode (unless tracing is fully off), so when a transaction is
/// doomed by the ABORT_TOP contingency or picked as a deadlock victim the
/// postmortem can show what the system was doing just before.
///
/// Postmortem destination: an explicit path wins; otherwise files named
/// postmortem-<pid>-<n>.json go to $SENTINEL_POSTMORTEM_DIR; with neither,
/// writing is disabled (dumps are counted but nothing touches disk).
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const Span& span);

  /// Last spans, oldest first.
  std::vector<Span> Snapshot() const;

  /// One warn/error log line kept for postmortems (a parallel ring to the
  /// span ring — the database wires Logger's sink here so the last warnings
  /// survive into the dump even when stderr is gone).
  struct LogEntry {
    std::uint64_t at_ns = 0;  // steady-clock, same timeline as spans
    LogLevel level = LogLevel::kWarn;
    std::string message;
  };
  static constexpr std::size_t kLogCapacity = 64;

  void RecordLog(LogLevel level, const std::string& message);
  /// Last warn/error lines, oldest first.
  std::vector<LogEntry> SnapshotLogs() const;
  std::uint64_t logs_recorded() const {
    return logs_recorded_.load(std::memory_order_relaxed);
  }

  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Postmortems requested (whether or not a destination was configured).
  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

  /// Writes `json` to the resolved destination (fsynced, so crash-matrix
  /// children can assert on it after _Exit). Returns the path written, an
  /// empty string when no destination is configured, or an IOError.
  Result<std::string> WritePostmortem(const std::string& json,
                                      const std::string& path = "");

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Span> ring_;
  std::uint64_t next_ = 0;  // total spans ever recorded (ring write position)
  std::vector<LogEntry> log_ring_;  // guarded by mu_, like the span ring
  std::uint64_t log_next_ = 0;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> logs_recorded_{0};
  std::atomic<std::uint64_t> dumps_{0};
};

}  // namespace sentinel::obs

#endif  // SENTINEL_OBS_FLIGHT_RECORDER_H_
