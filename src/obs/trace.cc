#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace sentinel::obs {

const char* EdgeKindToString(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kPrimitive:
      return "primitive";
    case EdgeKind::kComposite:
      return "composite";
    case EdgeKind::kFiring:
      return "firing";
    case EdgeKind::kSubTxn:
      return "subtxn";
  }
  return "?";
}

void ProvenanceTracer::Record(EdgeKind kind, std::string from, std::string to,
                              detector::TxnId txn,
                              detector::ParamContext context,
                              std::uint64_t subtxn) {
  if (!enabled()) return;
  recorded_.Add();
  TraceEdge edge;
  edge.kind = kind;
  edge.context = context;
  edge.txn = txn;
  edge.subtxn = subtxn;
  edge.from = std::move(from);
  edge.to = std::move(to);
  std::lock_guard<std::mutex> lock(mu_);
  edge.seq = next_seq_++;
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.push_back(std::move(edge));
}

std::vector<TraceEdge> ProvenanceTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEdge>(ring_.begin(), ring_.end());
}

std::vector<TraceEdge> ProvenanceTracer::DrainTxn(detector::TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEdge> drained;
  auto keep = ring_.begin();
  for (auto& edge : ring_) {
    if (edge.txn == txn) {
      drained.push_back(std::move(edge));
    } else {
      *keep++ = std::move(edge);
    }
  }
  ring_.erase(keep, ring_.end());
  return drained;
}

void ProvenanceTracer::FlushTxn(detector::TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.erase(std::remove_if(
                  ring_.begin(), ring_.end(),
                  [txn](const TraceEdge& edge) { return edge.txn == txn; }),
              ring_.end());
}

void ProvenanceTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

std::size_t ProvenanceTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::string ProvenanceTracer::EdgesJson(const std::vector<TraceEdge>& edges) {
  JsonWriter w;
  w.BeginArray();
  for (const TraceEdge& edge : edges) {
    w.BeginObject()
        .Field("seq", edge.seq)
        .Field("kind", EdgeKindToString(edge.kind))
        .Field("from", edge.from)
        .Field("to", edge.to)
        .Field("txn", static_cast<std::uint64_t>(edge.txn))
        .Field("subtxn", edge.subtxn)
        .Field("context", detector::ParamContextToString(edge.context))
        .EndObject();
  }
  w.EndArray();
  return w.Take();
}

std::string ProvenanceTracer::ToJson() const {
  JsonWriter w;
  w.BeginObject()
      .Field("enabled", enabled())
      .Field("capacity", capacity_)
      .Field("recorded", recorded())
      .Field("dropped", dropped());
  w.Key("edges").Raw(EdgesJson(Snapshot()));
  w.EndObject();
  return w.Take();
}

}  // namespace sentinel::obs
