#include "obs/profiler.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "detector/event_types.h"
#include "obs/json.h"
#include "obs/prometheus.h"

namespace sentinel::obs {

namespace {

/// Sampling period. Odd (not a round millisecond) so the sampler does not
/// phase-lock with millisecond-periodic workloads.
constexpr std::chrono::microseconds kSampleInterval{997};

/// Process-wide set of live profilers (leaked statics so thread-exit
/// destructors may consult them at any time). EnsureThisThread registers
/// arbitrary executing threads — including application threads that outlive
/// the database — so the thread-exit unregistration must first check that
/// the owning profiler still exists.
std::mutex& AliveMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::unordered_set<Profiler*>& AliveSet() {
  static auto* set = new std::unordered_set<Profiler*>();
  return *set;
}

void UnregisterIfAlive(Profiler* profiler,
                       Profiler::ThreadAnnotations* annotations) {
  // Holding the alive mutex across the unregister pins ~Profiler (which
  // erases itself under the same mutex before tearing anything down), so the
  // call below never races destruction.
  std::lock_guard<std::mutex> lock(AliveMutex());
  if (AliveSet().count(profiler) != 0) {
    profiler->UnregisterThread(annotations);
  }
}

/// Thread-local registration handle for EnsureThisThread: unregisters at
/// thread exit. One slot per thread is enough — workers belong to exactly
/// one database (and therefore one profiler) at a time.
struct ThreadRegistration {
  Profiler* owner = nullptr;
  Profiler::ThreadAnnotations* annotations = nullptr;
  ~ThreadRegistration() {
    if (owner != nullptr) UnregisterIfAlive(owner, annotations);
  }
};
thread_local ThreadRegistration t_registration;

}  // namespace

Profiler::Profiler() {
  std::lock_guard<std::mutex> lock(AliveMutex());
  AliveSet().insert(this);
}

Profiler::~Profiler() {
  {
    std::lock_guard<std::mutex> lock(AliveMutex());
    AliveSet().erase(this);
  }
  Stop();
}

std::uint64_t Profiler::NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t Profiler::ThreadCpuNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

const char* Profiler::RuleSeamName(RuleSeam seam) {
  switch (seam) {
    case RuleSeam::kCondition:
      return "condition";
    case RuleSeam::kAction:
      return "action";
    case RuleSeam::kCommit:
      return "commit";
  }
  return "?";
}

const char* Profiler::GlobalSeamName(GlobalSeam seam) {
  switch (seam) {
    case GlobalSeam::kCommitBarrier:
      return "commit_barrier";
    case GlobalSeam::kGedForward:
      return "ged_forward";
  }
  return "?";
}

void Profiler::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (mode_.load(std::memory_order_relaxed) == Mode::kOn) return;
  enabled_since_ns_.store(NowNs(), std::memory_order_relaxed);
  mode_.store(Mode::kOn, std::memory_order_relaxed);
  StartSamplerLocked();
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (mode_.load(std::memory_order_relaxed) == Mode::kOff) return;
  mode_.store(Mode::kOff, std::memory_order_relaxed);
  active_ns_.fetch_add(
      NowNs() - enabled_since_ns_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  StopSamplerLocked();
}

std::uint64_t Profiler::duration_ns() const {
  std::uint64_t total = active_ns_.load(std::memory_order_relaxed);
  if (enabled()) {
    total += NowNs() - enabled_since_ns_.load(std::memory_order_relaxed);
  }
  return total;
}

void Profiler::Reset() {
  {
    std::unique_lock lock(rules_mu_);
    for (auto& [name, rule] : rules_) {
      for (CostCell& cell : rule->seams) cell.Zero();
      std::lock_guard<std::mutex> sym_lock(rule->sym_mu);
      rule->symbols.clear();
    }
  }
  {
    std::unique_lock lock(nodes_mu_);
    for (auto& [name, cell] : nodes_) cell->Zero();
  }
  {
    std::unique_lock lock(symbols_mu_);
    for (auto& sym : symbols_) {
      if (sym == nullptr) continue;
      sym->events.Zero();
      sym->rules.Zero();
    }
  }
  for (CostCell& cell : global_) cell.Zero();
  {
    std::unique_lock lock(sites_mu_);
    for (auto& [name, site] : sites_) {
      site->acquisitions.Reset();
      site->contended.Reset();
      site->wait_ns.Reset();
    }
  }
  {
    std::lock_guard<std::mutex> lock(folded_mu_);
    folded_.clear();
  }
  samples_.store(0, std::memory_order_relaxed);
  active_ns_.store(0, std::memory_order_relaxed);
  enabled_since_ns_.store(NowNs(), std::memory_order_relaxed);
}

// -- Feed 1: exact attribution -----------------------------------------------

Profiler::RuleCost* Profiler::GetRuleCost(const std::string& name) {
  {
    std::shared_lock lock(rules_mu_);
    auto it = rules_.find(name);
    if (it != rules_.end()) return it->second.get();
  }
  std::unique_lock lock(rules_mu_);
  auto& slot = rules_[name];
  if (slot == nullptr) slot = std::make_unique<RuleCost>();
  return slot.get();
}

Profiler::SymbolCost* Profiler::GetSymbolCost(common::SymbolId sym) {
  {
    std::shared_lock lock(symbols_mu_);
    if (sym < symbols_.size() && symbols_[sym] != nullptr) {
      return symbols_[sym].get();
    }
  }
  std::unique_lock lock(symbols_mu_);
  if (sym >= symbols_.size()) symbols_.resize(sym + 1);
  if (symbols_[sym] == nullptr) symbols_[sym] = std::make_unique<SymbolCost>();
  return symbols_[sym].get();
}

Profiler::CostCell* Profiler::NodeAccount(const std::string& node_name) {
  {
    std::shared_lock lock(nodes_mu_);
    auto it = nodes_.find(node_name);
    if (it != nodes_.end()) return it->second.get();
  }
  std::unique_lock lock(nodes_mu_);
  auto& slot = nodes_[node_name];
  if (slot == nullptr) slot = std::make_unique<CostCell>();
  return slot.get();
}

void Profiler::RecordRuleFiring(const std::string& rule_name,
                                const detector::Occurrence* occurrence,
                                const CostDelta& condition,
                                const CostDelta& action,
                                const CostDelta& commit) {
  RuleCost* rule = GetRuleCost(rule_name);
  if (condition.valid) {
    rule->seams[static_cast<int>(RuleSeam::kCondition)].Record(
        condition.cpu_ns, condition.wall_ns);
  }
  if (action.valid) {
    rule->seams[static_cast<int>(RuleSeam::kAction)].Record(action.cpu_ns,
                                                            action.wall_ns);
  }
  if (commit.valid) {
    rule->seams[static_cast<int>(RuleSeam::kCommit)].Record(commit.cpu_ns,
                                                            commit.wall_ns);
  }

  if (occurrence == nullptr) return;
  // Distinct class symbols among the triggering constituents — a composite
  // rule spanning several classes is exactly the coupling the shard report
  // must know about.
  common::SymbolId inline_syms[8];
  std::size_t sym_count = 0;
  for (const auto& constituent : occurrence->constituents) {
    if (constituent == nullptr) continue;
    const common::SymbolId sym = constituent->class_sym;
    if (sym == common::kInvalidSymbol) continue;
    bool seen = false;
    for (std::size_t i = 0; i < sym_count; ++i) {
      if (inline_syms[i] == sym) {
        seen = true;
        break;
      }
    }
    if (!seen && sym_count < std::size(inline_syms)) {
      inline_syms[sym_count++] = sym;
    }
  }
  if (sym_count == 0) return;

  {
    std::lock_guard<std::mutex> lock(rule->sym_mu);
    for (std::size_t i = 0; i < sym_count; ++i) {
      auto it = std::lower_bound(rule->symbols.begin(), rule->symbols.end(),
                                 inline_syms[i]);
      if (it == rule->symbols.end() || *it != inline_syms[i]) {
        rule->symbols.insert(it, inline_syms[i]);
      }
    }
  }

  // Split the rule's own compute (condition + action; commit cost belongs to
  // the storage layer) evenly across the contributing symbols.
  const std::uint64_t cpu =
      (condition.valid ? condition.cpu_ns : 0) + (action.valid ? action.cpu_ns : 0);
  const std::uint64_t wall = (condition.valid ? condition.wall_ns : 0) +
                             (action.valid ? action.wall_ns : 0);
  for (std::size_t i = 0; i < sym_count; ++i) {
    GetSymbolCost(inline_syms[i])
        ->rules.Record(cpu / sym_count, wall / sym_count);
  }
}

void Profiler::RecordSymbolEvent(common::SymbolId sym, std::uint64_t cpu,
                                 std::uint64_t wall) {
  if (sym == common::kInvalidSymbol) return;
  GetSymbolCost(sym)->events.Record(cpu, wall);
}

void Profiler::RecordGlobal(GlobalSeam seam, std::uint64_t cpu,
                            std::uint64_t wall) {
  global_[static_cast<int>(seam)].Record(cpu, wall);
}

// -- Feed 2: lock contention -------------------------------------------------

Profiler::ContentionSite* Profiler::GetContentionSite(const std::string& name) {
  {
    std::shared_lock lock(sites_mu_);
    auto it = sites_.find(name);
    if (it != sites_.end()) return it->second.get();
  }
  std::unique_lock lock(sites_mu_);
  auto& slot = sites_[name];
  if (slot == nullptr) {
    slot = std::make_unique<ContentionSite>();
    slot->name = name;
  }
  return slot.get();
}

std::vector<Profiler::ContentionSnapshot> Profiler::TopContended(
    std::size_t k) const {
  std::vector<ContentionSnapshot> all;
  {
    std::shared_lock lock(sites_mu_);
    all.reserve(sites_.size());
    for (const auto& [name, site] : sites_) {
      ContentionSnapshot snap;
      snap.site = name;
      snap.acquisitions = site->acquisitions.value();
      snap.contended = site->contended.value();
      snap.wait_ns = site->wait_ns.value();
      if (snap.acquisitions == 0) continue;
      all.push_back(std::move(snap));
    }
  }
  std::sort(all.begin(), all.end(),
            [](const ContentionSnapshot& a, const ContentionSnapshot& b) {
              if (a.wait_ns != b.wait_ns) return a.wait_ns > b.wait_ns;
              if (a.contended != b.contended) return a.contended > b.contended;
              return a.site < b.site;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

// -- Feed 3: wall-clock sampling ---------------------------------------------

Profiler::ThreadAnnotations* Profiler::RegisterThread(std::string name) {
  std::lock_guard<std::mutex> lock(threads_mu_);
  thread_storage_.emplace_back();
  ThreadAnnotations* thread = &thread_storage_.back();
  thread->name_ = std::move(name);
  active_threads_.push_back(thread);
  return thread;
}

void Profiler::UnregisterThread(ThreadAnnotations* thread) {
  if (thread == nullptr) return;
  std::lock_guard<std::mutex> lock(threads_mu_);
  thread->active_.store(false, std::memory_order_relaxed);
  active_threads_.erase(
      std::remove(active_threads_.begin(), active_threads_.end(), thread),
      active_threads_.end());
}

Profiler::ThreadAnnotations* Profiler::EnsureThisThread(
    const char* name_prefix) {
  if (t_registration.owner == this) return t_registration.annotations;
  if (t_registration.owner != nullptr) {
    UnregisterIfAlive(t_registration.owner, t_registration.annotations);
    t_registration.owner = nullptr;
  }
  std::string name;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    name = std::string(name_prefix) + "-" +
           std::to_string(thread_storage_.size());
  }
  t_registration.annotations = RegisterThread(std::move(name));
  t_registration.owner = this;
  return t_registration.annotations;
}

const char* Profiler::InternFrame(const std::string& frame) {
  std::lock_guard<std::mutex> lock(frames_mu_);
  return interned_frames_.insert(frame).first->c_str();
}

void Profiler::StartSamplerLocked() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (sampler_running_) return;
    sampler_stop_ = false;
    sampler_running_ = true;
  }
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void Profiler::StopSamplerLocked() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (!sampler_running_) return;
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  std::lock_guard<std::mutex> lock(sampler_mu_);
  sampler_running_ = false;
}

void Profiler::SamplerLoop() {
  std::unique_lock<std::mutex> lock(sampler_mu_);
  while (!sampler_stop_) {
    sampler_cv_.wait_for(lock, kSampleInterval,
                         [this] { return sampler_stop_; });
    if (sampler_stop_) break;
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void Profiler::SampleOnce() {
  // Snapshot the registry under the lock, read the (atomic) stacks outside
  // it: annotation storage lives until the profiler dies, so a concurrent
  // unregister at worst yields one sample of an empty stack.
  std::vector<ThreadAnnotations*> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads = active_threads_;
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
  for (ThreadAnnotations* thread : threads) {
    const int depth = thread->depth_.load(std::memory_order_acquire);
    if (depth <= 0) continue;
    std::string key = thread->name_;
    for (int i = 0; i < depth && i < kMaxAnnotationDepth; ++i) {
      const char* frame = thread->frames_[i].load(std::memory_order_relaxed);
      if (frame == nullptr) break;
      key += ';';
      key += frame;
    }
    std::lock_guard<std::mutex> lock(folded_mu_);
    ++folded_[key];
  }
}

std::string Profiler::FoldedStacks() const {
  std::string out;
  std::lock_guard<std::mutex> lock(folded_mu_);
  for (const auto& [stack, count] : folded_) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

// -- Snapshots & export ------------------------------------------------------

std::vector<Profiler::RuleSnapshot> Profiler::RuleSnapshots() const {
  std::vector<RuleSnapshot> out;
  std::shared_lock lock(rules_mu_);
  out.reserve(rules_.size());
  for (const auto& [name, rule] : rules_) {
    RuleSnapshot snap;
    snap.name = name;
    for (int i = 0; i < kRuleSeams; ++i) snap.seams[i] = rule->seams[i].Snap();
    {
      std::lock_guard<std::mutex> sym_lock(rule->sym_mu);
      snap.symbols.reserve(rule->symbols.size());
      for (common::SymbolId sym : rule->symbols) {
        snap.symbols.push_back(common::SymbolTable::Global().NameOf(sym));
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<Profiler::NodeSnapshot> Profiler::NodeSnapshots() const {
  std::vector<NodeSnapshot> out;
  std::shared_lock lock(nodes_mu_);
  out.reserve(nodes_.size());
  for (const auto& [name, cell] : nodes_) {
    out.push_back(NodeSnapshot{name, cell->Snap()});
  }
  return out;
}

std::vector<Profiler::SymbolSnapshot> Profiler::SymbolSnapshots() const {
  std::vector<SymbolSnapshot> out;
  std::shared_lock lock(symbols_mu_);
  for (std::size_t sym = 0; sym < symbols_.size(); ++sym) {
    if (symbols_[sym] == nullptr) continue;
    SymbolSnapshot snap;
    snap.symbol = common::SymbolTable::Global().NameOf(
        static_cast<common::SymbolId>(sym));
    snap.events = symbols_[sym]->events.Snap();
    snap.rules = symbols_[sym]->rules.Snap();
    if (snap.events.invocations == 0 && snap.rules.invocations == 0) continue;
    out.push_back(std::move(snap));
  }
  return out;
}

Profiler::CostSnapshot Profiler::GlobalSnapshot(GlobalSeam seam) const {
  return global_[static_cast<int>(seam)].Snap();
}

std::string Profiler::TopCostRule() const {
  std::string best;
  std::uint64_t best_wall = 0;
  for (const RuleSnapshot& rule : RuleSnapshots()) {
    const std::uint64_t wall = rule.total_wall_ns();
    if (wall > best_wall) {
      best_wall = wall;
      best = rule.name;
    }
  }
  return best;
}

namespace {

void WriteCost(JsonWriter& w, const std::string& key,
               const Profiler::CostSnapshot& snap) {
  w.Key(key).BeginObject();
  w.Field("invocations", snap.invocations);
  w.Field("cpu_ns", snap.cpu_ns);
  w.Field("wall_ns", snap.wall_ns);
  w.EndObject();
}

}  // namespace

std::string Profiler::ProfileJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("mode", enabled() ? "on" : "off");
  w.Field("duration_ns", duration_ns());
  w.Field("samples", samples());

  w.Key("rules").BeginArray();
  for (const RuleSnapshot& rule : RuleSnapshots()) {
    w.BeginObject();
    w.Field("name", rule.name);
    for (int i = 0; i < kRuleSeams; ++i) {
      WriteCost(w, RuleSeamName(static_cast<RuleSeam>(i)), rule.seams[i]);
    }
    w.Field("total_wall_ns", rule.total_wall_ns());
    w.Key("symbols").BeginArray();
    for (const std::string& sym : rule.symbols) w.Value(sym);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("nodes").BeginArray();
  for (const NodeSnapshot& node : NodeSnapshots()) {
    w.BeginObject();
    w.Field("name", node.name);
    WriteCost(w, "eval", node.eval);
    w.EndObject();
  }
  w.EndArray();

  w.Key("symbols").BeginArray();
  for (const SymbolSnapshot& sym : SymbolSnapshots()) {
    w.BeginObject();
    w.Field("symbol", sym.symbol);
    WriteCost(w, "events", sym.events);
    WriteCost(w, "rules", sym.rules);
    w.Field("total_wall_ns", sym.events.wall_ns + sym.rules.wall_ns);
    w.EndObject();
  }
  w.EndArray();

  w.Key("seams").BeginArray();
  for (int i = 0; i < kGlobalSeams; ++i) {
    const CostSnapshot snap = GlobalSnapshot(static_cast<GlobalSeam>(i));
    w.BeginObject();
    w.Field("seam", GlobalSeamName(static_cast<GlobalSeam>(i)));
    w.Field("invocations", snap.invocations);
    w.Field("cpu_ns", snap.cpu_ns);
    w.Field("wall_ns", snap.wall_ns);
    w.EndObject();
  }
  w.EndArray();

  w.Key("contention").BeginArray();
  for (const ContentionSnapshot& site : TopContended(16)) {
    w.BeginObject();
    w.Field("site", site.site);
    w.Field("acquisitions", site.acquisitions);
    w.Field("contended", site.contended);
    w.Field("wait_ns", site.wait_ns);
    w.EndObject();
  }
  w.EndArray();

  w.Key("folded").BeginArray();
  {
    std::lock_guard<std::mutex> lock(folded_mu_);
    for (const auto& [stack, count] : folded_) {
      w.Value(stack + " " + std::to_string(count));
    }
  }
  w.EndArray();

  w.EndObject();
  return w.Take();
}

void Profiler::WritePrometheus(PromWriter& w) const {
  w.Gauge("sentinel_profile_mode", "Profiling mode (0=off, 1=on)", {},
          enabled() ? 1 : 0);
  w.Gauge("sentinel_profile_duration_ns",
          "Cumulative nanoseconds profiling has been enabled", {},
          duration_ns());
  w.Counter("sentinel_profile_samples_total",
            "Wall-clock sampler ticks taken", {}, samples());

  const auto rules = RuleSnapshots();
  if (!rules.empty()) {
    w.Family("sentinel_profile_rule_invocations_total",
             "Rule seam invocations attributed by the profiler", "counter");
    w.Family("sentinel_profile_rule_cpu_ns_total",
             "Per-rule seam CPU time (thread clock), nanoseconds", "counter");
    w.Family("sentinel_profile_rule_wall_ns_total",
             "Per-rule seam wall time, nanoseconds", "counter");
    for (const RuleSnapshot& rule : rules) {
      for (int i = 0; i < kRuleSeams; ++i) {
        const PromWriter::Labels labels = {
            {"rule", rule.name},
            {"seam", RuleSeamName(static_cast<RuleSeam>(i))}};
        w.Sample("sentinel_profile_rule_invocations_total", labels,
                 rule.seams[i].invocations);
        w.Sample("sentinel_profile_rule_cpu_ns_total", labels,
                 rule.seams[i].cpu_ns);
        w.Sample("sentinel_profile_rule_wall_ns_total", labels,
                 rule.seams[i].wall_ns);
      }
    }
  }

  const auto nodes = NodeSnapshots();
  if (!nodes.empty()) {
    w.Family("sentinel_profile_node_invocations_total",
             "Operator-node evaluations attributed by the profiler",
             "counter");
    w.Family("sentinel_profile_node_cpu_ns_total",
             "Per-event-node evaluation CPU time, nanoseconds", "counter");
    w.Family("sentinel_profile_node_wall_ns_total",
             "Per-event-node evaluation wall time, nanoseconds", "counter");
    for (const NodeSnapshot& node : nodes) {
      const PromWriter::Labels labels = {{"node", node.name}};
      w.Sample("sentinel_profile_node_invocations_total", labels,
               node.eval.invocations);
      w.Sample("sentinel_profile_node_cpu_ns_total", labels, node.eval.cpu_ns);
      w.Sample("sentinel_profile_node_wall_ns_total", labels,
               node.eval.wall_ns);
    }
  }

  const auto symbols = SymbolSnapshots();
  if (!symbols.empty()) {
    w.Family("sentinel_profile_symbol_events_total",
             "Primitive event dispatches per interned class symbol",
             "counter");
    w.Family("sentinel_profile_symbol_cpu_ns_total",
             "Attributed CPU time per class symbol (dispatch + rules),"
             " nanoseconds",
             "counter");
    w.Family("sentinel_profile_symbol_wall_ns_total",
             "Attributed wall time per class symbol (dispatch + rules),"
             " nanoseconds",
             "counter");
    for (const SymbolSnapshot& sym : symbols) {
      const PromWriter::Labels labels = {{"symbol", sym.symbol}};
      w.Sample("sentinel_profile_symbol_events_total", labels,
               sym.events.invocations);
      w.Sample("sentinel_profile_symbol_cpu_ns_total", labels,
               sym.events.cpu_ns + sym.rules.cpu_ns);
      w.Sample("sentinel_profile_symbol_wall_ns_total", labels,
               sym.events.wall_ns + sym.rules.wall_ns);
    }
  }

  w.Family("sentinel_profile_seam_wall_ns_total",
           "Process-level seam wall time (commit barrier, GED forward),"
           " nanoseconds",
           "counter");
  for (int i = 0; i < kGlobalSeams; ++i) {
    w.Sample("sentinel_profile_seam_wall_ns_total",
             {{"seam", GlobalSeamName(static_cast<GlobalSeam>(i))}},
             GlobalSnapshot(static_cast<GlobalSeam>(i)).wall_ns);
  }

  const auto sites = TopContended(16);
  if (!sites.empty()) {
    w.Family("sentinel_profile_contention_acquisitions_total",
             "Profiled lock acquisitions per contention site", "counter");
    w.Family("sentinel_profile_contention_contended_total",
             "Acquisitions that blocked, per contention site", "counter");
    w.Family("sentinel_profile_contention_wait_ns_total",
             "Summed blocked wait time per contention site, nanoseconds",
             "counter");
    for (const ContentionSnapshot& site : sites) {
      const PromWriter::Labels labels = {{"site", site.site}};
      w.Sample("sentinel_profile_contention_acquisitions_total", labels,
               site.acquisitions);
      w.Sample("sentinel_profile_contention_contended_total", labels,
               site.contended);
      w.Sample("sentinel_profile_contention_wait_ns_total", labels,
               site.wait_ns);
    }
  }
}

}  // namespace sentinel::obs
