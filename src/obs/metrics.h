#ifndef SENTINEL_OBS_METRICS_H_
#define SENTINEL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

#include "detector/event_types.h"

namespace sentinel::obs {

/// Monotonic counter sharded across cache-line-padded slots so concurrent
/// writers (scheduler workers, signalling threads) never contend on one
/// line. Each thread is assigned a shard round-robin on first use;
/// aggregation happens only on read (stats/trace surfacing), which is rare.
class ShardedCounter {
 public:
  void Add(std::uint64_t n = 1) {
    shards_[ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard. NOT safe against concurrent Add: a writer racing
  /// the per-shard stores can have its increment land in an already-cleared
  /// shard (kept) or a not-yet-cleared one (lost), so counts taken after a
  /// racing Reset under-report. Call only while writers are quiesced
  /// (tests); measurement code should instead capture a baseline value()
  /// and report deltas (see tools/run_benches.sh metric snapshots).
  void Reset() {
    for (Shard& shard : shards_) shard.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  static std::size_t ThreadShard() {
    static std::atomic<std::size_t> next{0};
    thread_local std::size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return shard;
  }

  std::array<Shard, kShards> shards_;
};

/// Lock-free latency histogram with power-of-two buckets (bucket i covers
/// [2^(i-1), 2^i) nanoseconds; bucket 0 is 0–1ns). Recording is a handful of
/// relaxed atomic adds; quantiles are estimated from bucket upper bounds on
/// read, which is plenty for the latency reports the evaluation needs.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(std::uint64_t ns) {
    counts_[BucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    std::uint64_t count = 0;   // always the bucket sum (quantile-consistent)
    std::uint64_t sum_ns = 0;
    std::uint64_t max_ns = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Clamped to max_ns: under a torn read sum_ns can lag or lead the
    /// bucket counts slightly, and without the clamp the quotient could
    /// exceed every recorded sample.
    std::uint64_t mean_ns() const {
      if (count == 0) return 0;
      const std::uint64_t mean = sum_ns / count;
      return max_ns != 0 && mean > max_ns ? max_ns : mean;
    }
    /// Upper bound of the bucket containing quantile `q` in [0, 1].
    std::uint64_t QuantileNs(double q) const;
  };

  /// Relaxed-snapshot contract: Record is three independent relaxed atomic
  /// adds, so a snapshot taken under concurrent recording is *consistent
  /// per series* but not across them — `count` is derived from the bucket
  /// array it ships with (never from the separate count_ cell, so quantile
  /// ranks always match the buckets), while `sum_ns` may include a racing
  /// record the buckets miss or vice versa. sum_ns is loaded before the
  /// buckets, biasing the skew toward sum lagging count; mean_ns() clamps
  /// the residual error to max_ns. Exact agreement requires quiescence.
  Snapshot TakeSnapshot() const {
    Snapshot snap;
    snap.sum_ns = sum_.load(std::memory_order_relaxed);
    for (int i = 0; i < kBuckets; ++i) {
      snap.buckets[i] = counts_[i].load(std::memory_order_relaxed);
      snap.count += snap.buckets[i];
    }
    snap.max_ns = max_.load(std::memory_order_relaxed);
    return snap;
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  static int BucketOf(std::uint64_t ns) {
    const int b = std::bit_width(ns);  // 0 for ns==0
    return b < kBuckets ? b : kBuckets - 1;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Per-event-graph-node, per-parameter-context counters. Plain relaxed
/// atomics (not sharded): increments ride paths that are already serialized
/// per node by the striped buffer locks, so a shard array per node-context
/// would buy nothing and cost kilobytes per node.
class NodeMetrics {
 public:
  struct ContextSnapshot {
    std::uint64_t received = 0;  // occurrences delivered into this node
    std::uint64_t detected = 0;  // occurrences this node emitted
    std::uint64_t flushed = 0;   // buffered occurrences dropped by flushes
  };

  void OnReceived(detector::ParamContext context) {
    slot(context).received.fetch_add(1, std::memory_order_relaxed);
  }
  void OnDetected(detector::ParamContext context) {
    slot(context).detected.fetch_add(1, std::memory_order_relaxed);
  }
  void OnFlushed(std::uint64_t dropped) {
    // Flush paths do not know which context each dropped occurrence sat in;
    // attribute to the node total (context-resolved gauges come from
    // BufferedCount at snapshot time).
    flushed_.fetch_add(dropped, std::memory_order_relaxed);
  }

  ContextSnapshot ForContext(detector::ParamContext context) const {
    const Slot& s = slot(context);
    ContextSnapshot snap;
    snap.received = s.received.load(std::memory_order_relaxed);
    snap.detected = s.detected.load(std::memory_order_relaxed);
    return snap;
  }
  std::uint64_t flushed() const {
    return flushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t received_total() const {
    std::uint64_t n = 0;
    for (const Slot& s : slots_) n += s.received.load(std::memory_order_relaxed);
    return n;
  }
  std::uint64_t detected_total() const {
    std::uint64_t n = 0;
    for (const Slot& s : slots_) n += s.detected.load(std::memory_order_relaxed);
    return n;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> detected{0};
  };

  Slot& slot(detector::ParamContext context) {
    return slots_[static_cast<int>(context)];
  }
  const Slot& slot(detector::ParamContext context) const {
    return slots_[static_cast<int>(context)];
  }

  std::array<Slot, detector::kNumContexts> slots_;
  std::atomic<std::uint64_t> flushed_{0};
};

/// Per-rule latency histograms covering the full firing pipeline: condition
/// evaluation, action execution, subtransaction commit/abort, and the time
/// the rule's subtransaction spent blocked on nested locks.
struct RuleMetrics {
  LatencyHistogram condition_ns;
  LatencyHistogram action_ns;
  LatencyHistogram commit_ns;
  LatencyHistogram abort_ns;
  LatencyHistogram lock_wait_ns;
};

/// Renders a histogram snapshot as a JSON object (used by the stats
/// surfacing in the shell and benches).
std::string HistogramJson(const LatencyHistogram::Snapshot& snap);

}  // namespace sentinel::obs

#endif  // SENTINEL_OBS_METRICS_H_
