#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace sentinel::obs {

namespace {

// Stable small thread ids for the trace "tid" lane, assigned on first use.
std::uint32_t ThisThreadId() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Process-unique tracer ids validate the thread-local caches below: a cache
// entry from a destroyed tracer never matches a live one, even if the
// allocator reuses the address.
std::uint64_t NextTracerUid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Thread-local scope stack. Scopes are strictly nested (RAII on one thread),
// so push/pop is LIFO; entries are (tracer uid, span id) pairs so spans from
// two databases interleaved on one thread resolve parents independently.
struct StackEntry {
  std::uint64_t uid = 0;
  std::uint64_t id = 0;
};
constexpr int kMaxScopeDepth = 64;
thread_local StackEntry g_scope_stack[kMaxScopeDepth];
thread_local int g_scope_depth = 0;

bool PushScope(std::uint64_t uid, std::uint64_t id) {
  if (g_scope_depth >= kMaxScopeDepth) return false;
  g_scope_stack[g_scope_depth++] = {uid, id};
  return true;
}

void PopScope(std::uint64_t uid, std::uint64_t id) {
  if (g_scope_depth > 0 && g_scope_stack[g_scope_depth - 1].uid == uid &&
      g_scope_stack[g_scope_depth - 1].id == id) {
    --g_scope_depth;
  }
}

// Per-thread ring lookup cache: one entry per (thread, tracer) pair the
// thread has recorded into. Rings are owned by the tracer; the uid check
// keeps a stale entry from ever dereferencing a dead tracer's ring.
struct RingCacheEntry {
  std::uint64_t uid = 0;
  const void* tracer = nullptr;
  void* ring = nullptr;
};
thread_local std::vector<RingCacheEntry> g_ring_cache;

}  // namespace

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kTxn:
      return "txn";
    case SpanKind::kNotify:
      return "notify";
    case SpanKind::kCompositeDetect:
      return "composite_detect";
    case SpanKind::kCondition:
      return "condition";
    case SpanKind::kAction:
      return "action";
    case SpanKind::kSubTxn:
      return "subtxn";
    case SpanKind::kLockWait:
      return "lock_wait";
    case SpanKind::kWalFsync:
      return "wal_fsync";
    case SpanKind::kPageRead:
      return "page_read";
    case SpanKind::kGedForward:
      return "ged_forward";
    case SpanKind::kNetFrameEncode:
      return "net_frame_encode";
    case SpanKind::kNetFrameDecode:
      return "net_frame_decode";
    case SpanKind::kNetAdmissionWait:
      return "net_admission_wait";
    case SpanKind::kNetOutboundWait:
      return "net_outbound_wait";
    case SpanKind::kNetWrite:
      return "net_write";
  }
  return "?";
}

const char* TraceModeToString(TraceMode mode) {
  switch (mode) {
    case TraceMode::kOff:
      return "off";
    case TraceMode::kFlightOnly:
      return "flight";
    case TraceMode::kFull:
      return "full";
  }
  return "?";
}

std::uint64_t SpanTracer::NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SpanTracer::SpanTracer(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      uid_(NextTracerUid()) {}

SpanTracer::~SpanTracer() = default;

std::uint64_t SpanTracer::CurrentSpanIdFor(const SpanTracer* tracer) {
  if (tracer == nullptr) return 0;
  for (int i = g_scope_depth - 1; i >= 0; --i) {
    if (g_scope_stack[i].uid == tracer->uid_) return g_scope_stack[i].id;
  }
  return 0;
}

std::uint64_t SpanTracer::ResolveParent(storage::TxnId txn) const {
  std::uint64_t parent = CurrentSpanIdFor(this);
  if (parent != 0) return parent;
  if (txn != storage::kInvalidTxnId) {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = open_txns_.find(txn);
    if (it != open_txns_.end()) return it->second.id;
  }
  return 0;
}

SpanTracer::ThreadRing* SpanTracer::RingForThisThread() {
  for (const RingCacheEntry& entry : g_ring_cache) {
    if (entry.uid == uid_ && entry.tracer == this) {
      return static_cast<ThreadRing*>(entry.ring);
    }
  }
  std::uint32_t tid = ThisThreadId();
  ThreadRing* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (auto& candidate : rings_) {
      if (candidate->tid == tid) {
        ring = candidate.get();
        break;
      }
    }
    if (ring == nullptr) {
      auto owned = std::make_unique<ThreadRing>();
      owned->tid = tid;
      owned->slots.resize(ring_capacity_);
      ring = owned.get();
      rings_.push_back(std::move(owned));
    }
  }
  g_ring_cache.push_back({uid_, this, ring});
  return ring;
}

void SpanTracer::Commit(Span&& span) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (FlightRecorder* fr = flight_.load(std::memory_order_acquire)) {
    fr->Record(span);
  }
  if (mode_.load(std::memory_order_relaxed) != TraceMode::kFull) return;
  ThreadRing* ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(ring->mu);
  std::uint64_t pos = ring->seq.fetch_add(1, std::memory_order_relaxed);
  if (pos >= ring_capacity_) dropped_.fetch_add(1, std::memory_order_relaxed);
  ring->slots[pos % ring_capacity_] = std::move(span);
}

std::uint64_t SpanTracer::RecordTimedSpan(SpanKind kind, std::uint64_t start_ns,
                                          std::uint64_t end_ns,
                                          storage::TxnId txn, std::string label,
                                          std::uint64_t parent,
                                          std::uint64_t trace,
                                          std::uint64_t remote_parent) {
  Span span;
  span.id = NextSpanId();
  span.parent = parent;
  span.kind = kind;
  span.txn = txn;
  span.start_ns = start_ns;
  span.end_ns = end_ns >= start_ns ? end_ns : start_ns;
  span.tid = ThisThreadId();
  span.label = std::move(label);
  span.trace = trace;
  span.remote_parent = remote_parent;
  const std::uint64_t id = span.id;
  Commit(std::move(span));
  return id;
}

void SpanTracer::BeginTxnSpan(storage::TxnId txn) {
  if (txn == storage::kInvalidTxnId) return;
  Span span;
  span.id = NextSpanId();
  span.kind = SpanKind::kTxn;
  span.txn = txn;
  span.start_ns = NowNs();
  span.tid = ThisThreadId();
  span.label = "txn " + std::to_string(txn);
  std::lock_guard<std::mutex> lock(txn_mu_);
  open_txns_[txn] = std::move(span);
}

void SpanTracer::EndTxnSpan(storage::TxnId txn) {
  Span span;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = open_txns_.find(txn);
    if (it == open_txns_.end()) return;
    span = std::move(it->second);
    open_txns_.erase(it);
  }
  span.end_ns = NowNs();
  Commit(std::move(span));
}

std::vector<Span> SpanTracer::OpenTxnSpans() const {
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(txn_mu_);
  out.reserve(open_txns_.size());
  for (const auto& [txn, span] : open_txns_) {
    (void)txn;
    out.push_back(span);
  }
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.start_ns < b.start_ns; });
  return out;
}

std::vector<Span> SpanTracer::Snapshot() const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      std::uint64_t seq = ring->seq.load(std::memory_order_relaxed);
      std::uint64_t count = std::min<std::uint64_t>(seq, ring_capacity_);
      std::uint64_t first = seq - count;
      for (std::uint64_t i = 0; i < count; ++i) {
        out.push_back(ring->slots[(first + i) % ring_capacity_]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.start_ns < b.start_ns; });
  return out;
}

void SpanTracer::Clear() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->seq.store(0, std::memory_order_relaxed);
  }
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

void AppendTraceEvent(JsonWriter& w, const Span& span, std::uint64_t base_ns,
                      std::uint64_t fallback_end_ns) {
  std::uint64_t end_ns = span.end_ns != 0 ? span.end_ns : fallback_end_ns;
  double ts_us = static_cast<double>(span.start_ns - base_ns) / 1000.0;
  double dur_us =
      end_ns > span.start_ns
          ? static_cast<double>(end_ns - span.start_ns) / 1000.0
          : 0.0;
  std::uint64_t pid = span.txn == storage::kInvalidTxnId ? 0 : span.txn;
  char buf[64];
  w.BeginObject();
  w.Field("name", span.label.empty() ? SpanKindToString(span.kind)
                                     : span.label.c_str());
  w.Field("cat", SpanKindToString(span.kind));
  w.Field("ph", "X");
  std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
  w.Key("ts");
  w.Raw(buf);
  std::snprintf(buf, sizeof(buf), "%.3f", dur_us);
  w.Key("dur");
  w.Raw(buf);
  w.Field("pid", pid);
  w.Field("tid", span.tid);
  w.Key("args");
  w.BeginObject();
  w.Field("span", span.id);
  w.Field("parent", span.parent);
  w.Field("kind", SpanKindToString(span.kind));
  if (span.txn != storage::kInvalidTxnId) w.Field("txn", span.txn);
  if (span.subtxn != 0) w.Field("subtxn", span.subtxn);
  if (span.trace != 0) w.Field("trace", span.trace);
  if (span.remote_parent != 0) w.Field("remote_parent", span.remote_parent);
  w.EndObject();
  w.EndObject();
}

}  // namespace

std::string SpanTracer::ChromeTraceJson() const {
  return ChromeTraceJson(ExportMeta{});
}

std::string SpanTracer::ChromeTraceJson(const ExportMeta& meta) const {
  std::vector<Span> spans = Snapshot();
  std::vector<Span> open = OpenTxnSpans();
  spans.insert(spans.end(), open.begin(), open.end());
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.start_ns < b.start_ns; });

  std::uint64_t base_ns = spans.empty() ? 0 : spans.front().start_ns;
  std::uint64_t now_ns = NowNs();
  std::set<std::uint64_t> pids;

  JsonWriter w;
  w.BeginObject();
  w.Field("displayTimeUnit", "ns");
  w.Key("traceEvents");
  w.BeginArray();
  for (const Span& span : spans) {
    AppendTraceEvent(w, span, base_ns, now_ns);
    pids.insert(span.txn == storage::kInvalidTxnId ? 0 : span.txn);
  }
  // Name each pid lane after its transaction so Perfetto's process groups
  // read as "txn N".
  for (std::uint64_t pid : pids) {
    w.BeginObject();
    w.Field("name", "process_name");
    w.Field("ph", "M");
    w.Field("pid", pid);
    w.Key("args");
    w.BeginObject();
    w.Field("name", pid == 0 ? std::string("background")
                             : "txn " + std::to_string(pid));
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  // Cross-process merge metadata: base_ns re-absolutizes the relative ts
  // fields; clock_offset_ns shifts this export onto the reference timeline.
  w.Key("otherData");
  w.BeginObject();
  if (!meta.process.empty()) w.Field("process", meta.process);
  w.Field("base_ns", base_ns);
  w.Field("clock_offset_ns",
          static_cast<std::int64_t>(meta.clock_offset_ns));
  w.EndObject();
  w.EndObject();
  return w.Take();
}

Status SpanTracer::ExportChromeTrace(const std::string& path) const {
  return ExportChromeTrace(path, ExportMeta{});
}

Status SpanTracer::ExportChromeTrace(const std::string& path,
                                     const ExportMeta& meta) const {
  std::string json = ChromeTraceJson(meta);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open trace output: " + path);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.put('\n');
  out.flush();
  if (!out) return Status::IOError("short write exporting trace: " + path);
  return Status::OK();
}

void SpanScope::Start(SpanTracer* tracer, SpanKind kind, storage::TxnId txn,
                      std::string label, std::uint64_t subtxn,
                      std::uint64_t parent_override) {
  if (tracer == nullptr || tracer_ != nullptr) return;
  tracer_ = tracer;
  span_.id = tracer->NextSpanId();
  span_.parent =
      parent_override != 0 ? parent_override : tracer->ResolveParent(txn);
  span_.kind = kind;
  span_.txn = txn;
  span_.subtxn = subtxn;
  span_.start_ns = SpanTracer::NowNs();
  span_.tid = ThisThreadId();
  span_.label = std::move(label);
  pushed_ = PushScope(tracer->uid_, span_.id);
}

void SpanScope::End() {
  if (tracer_ == nullptr) return;
  if (pushed_) PopScope(tracer_->uid_, span_.id);
  span_.end_ns = SpanTracer::NowNs();
  tracer_->Commit(std::move(span_));
  tracer_ = nullptr;
  pushed_ = false;
}

void TxnAnchorScope::Start(SpanTracer* tracer, storage::TxnId txn) {
  if (tracer == nullptr || pushed_ || txn == storage::kInvalidTxnId) return;
  std::uint64_t anchor = 0;
  {
    std::lock_guard<std::mutex> lock(tracer->txn_mu_);
    auto it = tracer->open_txns_.find(txn);
    if (it == tracer->open_txns_.end()) return;
    anchor = it->second.id;
  }
  tracer_ = tracer;
  anchor_ = anchor;
  pushed_ = PushScope(tracer->uid_, anchor);
}

void TxnAnchorScope::End() {
  if (tracer_ == nullptr) return;
  if (pushed_) PopScope(tracer_->uid_, anchor_);
  tracer_ = nullptr;
  pushed_ = false;
}

}  // namespace sentinel::obs
