#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/logging.h"

namespace sentinel {

std::atomic<int> FailPointRegistry::active_count_{0};

const char* FailPointModeToString(FailPointMode mode) {
  switch (mode) {
    case FailPointMode::kOff:
      return "off";
    case FailPointMode::kReturnError:
      return "error";
    case FailPointMode::kTornWrite:
      return "torn";
    case FailPointMode::kDelay:
      return "delay";
    case FailPointMode::kCrashAfter:
      return "crash";
  }
  return "?";
}

namespace {

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

Result<FailPointMode> ParseMode(const std::string& word) {
  if (word == "off") return FailPointMode::kOff;
  if (word == "error") return FailPointMode::kReturnError;
  if (word == "torn") return FailPointMode::kTornWrite;
  if (word == "delay") return FailPointMode::kDelay;
  if (word == "crash") return FailPointMode::kCrashAfter;
  return Status::ParseError("unknown failpoint mode '" + word +
                            "' (off|error|torn|delay|crash)");
}

}  // namespace

std::string FailPointSpec::ToString() const {
  std::string out = FailPointModeToString(mode);
  std::string params;
  auto add = [&params](const std::string& kv) {
    if (!params.empty()) params += ",";
    params += kv;
  };
  if (start_hit != 1) add("hit=" + std::to_string(start_hit));
  if (max_fires != 0) add("count=" + std::to_string(max_fires));
  if (probability < 1.0) add("prob=" + std::to_string(probability));
  if (mode == FailPointMode::kDelay) add("ms=" + std::to_string(delay_ms));
  if (mode == FailPointMode::kTornWrite && torn_bytes != 0) {
    add("bytes=" + std::to_string(torn_bytes));
  }
  if (!message.empty()) add("msg=" + message);
  if (!params.empty()) out += "(" + params + ")";
  return out;
}

Result<FailPointSpec> FailPointSpec::Parse(const std::string& text) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) return Status::ParseError("empty failpoint spec");

  FailPointSpec spec;
  std::string mode_word = trimmed;
  std::string params;
  const std::size_t paren = trimmed.find('(');
  if (paren != std::string::npos) {
    if (trimmed.back() != ')') {
      return Status::ParseError("unterminated '(' in failpoint spec: " + text);
    }
    mode_word = Trim(trimmed.substr(0, paren));
    params = trimmed.substr(paren + 1, trimmed.size() - paren - 2);
  }
  auto mode = ParseMode(mode_word);
  if (!mode.ok()) return mode.status();
  spec.mode = *mode;

  bool saw_hit = false;
  bool saw_count = false;
  std::size_t pos = 0;
  while (pos < params.size()) {
    std::size_t comma = params.find(',', pos);
    if (comma == std::string::npos) comma = params.size();
    const std::string pair = Trim(params.substr(pos, comma - pos));
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("failpoint parameter is not key=value: " +
                                pair);
    }
    const std::string key = Trim(pair.substr(0, eq));
    const std::string value = Trim(pair.substr(eq + 1));
    char* end = nullptr;
    if (key == "hit") {
      spec.start_hit = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      saw_hit = true;
    } else if (key == "count") {
      spec.max_fires = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      saw_count = true;
    } else if (key == "prob") {
      spec.probability = std::strtod(value.c_str(), &end);
    } else if (key == "ms") {
      spec.delay_ms =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), &end, 10));
    } else if (key == "bytes") {
      spec.torn_bytes =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), &end, 10));
    } else if (key == "msg") {
      spec.message = value;
      continue;
    } else {
      return Status::ParseError("unknown failpoint parameter '" + key + "'");
    }
    if (end == nullptr || *end != '\0' || value.empty()) {
      return Status::ParseError("bad numeric value for failpoint parameter " +
                                key + ": '" + value + "'");
    }
  }
  if (spec.start_hit < 1) {
    return Status::ParseError("failpoint hit must be >= 1");
  }
  if (spec.probability < 0.0 || spec.probability > 1.0) {
    return Status::ParseError("failpoint prob must be in [0, 1]");
  }
  // "hit=N" alone means "fire exactly on the Nth hit".
  if (saw_hit && !saw_count) spec.max_fires = 1;
  return spec;
}

Status FailPointAction::ToStatus(const char* site) const {
  if (!fired()) return Status::OK();
  if (!message.empty()) return Status::IOError(message);
  return Status::IOError(std::string("failpoint '") + site + "' injected " +
                         FailPointModeToString(mode));
}

FailPointRegistry::FailPointRegistry() {
  const char* env = std::getenv("SENTINEL_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    Status st = Configure(env);
    if (!st.ok()) {
      SENTINEL_LOG(kWarn) << "SENTINEL_FAILPOINTS ignored: " << st.ToString();
    }
  }
}

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry* registry = new FailPointRegistry();
  return *registry;
}

bool FailPointRegistry::AnyActive() {
  // Force singleton construction once so SENTINEL_FAILPOINTS is read even
  // when every caller gates on AnyActive() before touching Instance().
  static const bool env_loaded = (Instance(), true);
  (void)env_loaded;
  return active_count_.load(std::memory_order_relaxed) > 0;
}

Status FailPointRegistry::Enable(const std::string& name, FailPointSpec spec) {
  if (name.empty()) return Status::InvalidArgument("empty failpoint name");
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.try_emplace(name);
  const bool was_armed =
      !inserted && it->second.spec.mode != FailPointMode::kOff;
  const bool now_armed = spec.mode != FailPointMode::kOff;
  it->second.spec = std::move(spec);
  it->second.fires = 0;
  if (inserted || !was_armed) {
    if (now_armed) active_count_.fetch_add(1, std::memory_order_relaxed);
  } else if (!now_armed) {
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status FailPointRegistry::Enable(const std::string& name,
                                 const std::string& spec_text) {
  auto spec = FailPointSpec::Parse(spec_text);
  if (!spec.ok()) return spec.status();
  return Enable(name, std::move(*spec));
}

Status FailPointRegistry::Configure(const std::string& list) {
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t sep = list.find(';', pos);
    if (sep == std::string::npos) sep = list.size();
    const std::string entry = Trim(list.substr(pos, sep - pos));
    pos = sep + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("failpoint entry is not name=spec: " + entry);
    }
    SENTINEL_RETURN_NOT_OK(
        Enable(Trim(entry.substr(0, eq)), Trim(entry.substr(eq + 1))));
  }
  return Status::OK();
}

bool FailPointRegistry::Disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return false;
  if (it->second.spec.mode != FailPointMode::kOff) {
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  points_.erase(it);
  return true;
}

void FailPointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : points_) {
    (void)name;
    if (entry.spec.mode != FailPointMode::kOff) {
      active_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  points_.clear();
}

double FailPointRegistry::NextUniformLocked() {
  rng_state_ = rng_state_ * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<double>(rng_state_ >> 11) /
         static_cast<double>(1ull << 53);
}

FailPointAction FailPointRegistry::Evaluate(const std::string& name) {
  FailPointSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return {};
    Entry& entry = it->second;
    const std::uint64_t hit = ++entry.hits;
    if (entry.spec.mode == FailPointMode::kOff) return {};
    if (hit < static_cast<std::uint64_t>(entry.spec.start_hit)) return {};
    if (entry.spec.max_fires > 0 &&
        entry.fires >= static_cast<std::uint64_t>(entry.spec.max_fires)) {
      return {};
    }
    if (entry.spec.probability < 1.0 &&
        NextUniformLocked() >= entry.spec.probability) {
      return {};
    }
    ++entry.fires;
    spec = entry.spec;
  }
  switch (spec.mode) {
    case FailPointMode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
      return {};
    case FailPointMode::kCrashAfter:
      // _Exit skips stdio flushing and destructors: user-space buffers are
      // lost, already-flushed bytes survive in the OS — a process crash.
      std::_Exit(kFailPointCrashExitCode);
    case FailPointMode::kReturnError:
      return {FailPointMode::kReturnError, 0, spec.message};
    case FailPointMode::kTornWrite:
      return {FailPointMode::kTornWrite, spec.torn_bytes, spec.message};
    case FailPointMode::kOff:
      break;
  }
  return {};
}

std::vector<FailPointRegistry::Info> FailPointRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Info> out;
  out.reserve(points_.size());
  for (const auto& [name, entry] : points_) {
    out.push_back(Info{name, entry.spec, entry.hits, entry.fires});
  }
  return out;
}

std::uint64_t FailPointRegistry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FailPointRegistry::fires(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

}  // namespace sentinel
