#ifndef SENTINEL_COMMON_SYMBOL_H_
#define SENTINEL_COMMON_SYMBOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sentinel::common {

/// Dense id of an interned string. 0 is reserved for "not interned".
using SymbolId = std::uint32_t;
constexpr SymbolId kInvalidSymbol = 0;

/// Interns class names and method signatures into dense SymbolIds so the
/// event-dispatch hot path compares integers instead of strings. The string
/// forms are kept (NameOf) for display and persistence.
///
/// Concurrency: lookups are lock-free — the id map is published as an
/// immutable snapshot through one atomic pointer; Intern takes a mutex only
/// when it must add a new name (bounded by the schema size, not by traffic).
/// Retired snapshots are kept until the table is destroyed: a reader that
/// loaded an old snapshot can keep using it without hazard pointers. The
/// retained memory is O(distinct names²) in map nodes across republishes,
/// which is negligible for schema-sized name sets.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  ~SymbolTable();

  /// Returns the id of `name`, interning it on first use. Thread-safe;
  /// lock-free when the name is already interned.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name` or kInvalidSymbol if never interned. Lock-free.
  SymbolId TryLookup(std::string_view name) const;

  /// The string form of a valid id (ids are never recycled).
  const std::string& NameOf(SymbolId id) const;

  std::size_t size() const;

  /// Process-wide table shared by all detectors (ids stay comparable across
  /// the local detectors and the global event detector).
  static SymbolTable& Global();

 private:
  struct Snapshot {
    std::unordered_map<std::string_view, SymbolId> ids;
    std::vector<const std::string*> names;  // names[id - 1]
  };

  mutable std::mutex write_mu_;
  std::deque<std::string> arena_;  // stable addresses for string_view keys
  std::vector<std::unique_ptr<const Snapshot>> retired_;
  std::atomic<const Snapshot*> snapshot_{nullptr};
};

}  // namespace sentinel::common

#endif  // SENTINEL_COMMON_SYMBOL_H_
