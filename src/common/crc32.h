#ifndef SENTINEL_COMMON_CRC32_H_
#define SENTINEL_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sentinel {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320, init/final XOR
/// 0xFFFFFFFF). Pass a previous result as `seed` to checksum incrementally.
/// Used to frame WAL records so recovery can tell a torn or corrupted tail
/// from a valid one.
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace sentinel

#endif  // SENTINEL_COMMON_CRC32_H_
