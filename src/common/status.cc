#include "common/status.h"

namespace sentinel {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTransactionAborted:
      return "TransactionAborted";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kLockTimeout:
      return "LockTimeout";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kRetryLater:
      return "RetryLater";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += message();
  return result;
}

}  // namespace sentinel
