#ifndef SENTINEL_COMMON_LOGGING_H_
#define SENTINEL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sentinel {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Process-wide logger. Thread-safe; writes to stderr.
class Logger {
 public:
  /// Messages below `level` are discarded. Default is kWarn so that library
  /// use stays quiet unless callers opt in.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();
  static bool IsEnabled(LogLevel level);
  static void Write(LogLevel level, const std::string& message);
};

namespace internal_logging {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Write(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace sentinel

#define SENTINEL_LOG(level)                                     \
  if (::sentinel::Logger::IsEnabled(::sentinel::LogLevel::level)) \
  ::sentinel::internal_logging::LogMessage(::sentinel::LogLevel::level)

#endif  // SENTINEL_COMMON_LOGGING_H_
