#ifndef SENTINEL_COMMON_LOGGING_H_
#define SENTINEL_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace sentinel {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Process-wide logger. Thread-safe; writes to stderr.
class Logger {
 public:
  /// Messages below `level` are discarded. Default is kWarn so that library
  /// use stays quiet unless callers opt in.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();
  static bool IsEnabled(LogLevel level);
  static void Write(LogLevel level, const std::string& message);
  static const char* LevelName(LogLevel level);

  /// Mirrors every kWarn/kError line into `sink` after the stderr write
  /// (postmortems keep the last warnings even when stderr is long gone).
  /// One sink per process, keyed by `owner` so a late ClearSink from one
  /// database cannot drop a sink another database installed meanwhile. The
  /// sink runs outside the output lock but must not log (it would recurse).
  using Sink = std::function<void(LogLevel, const std::string&)>;
  static void SetSink(const void* owner, Sink sink);
  static void ClearSink(const void* owner);
};

namespace internal_logging {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Write(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace sentinel

// The negated form keeps `SENTINEL_LOG(...)` safe inside an unbraced outer
// if/else: a bare `if (enabled) LogMessage(...)` would capture the caller's
// `else` (dangling-else), silently inverting their control flow.
#define SENTINEL_LOG(level)                                         \
  if (!::sentinel::Logger::IsEnabled(::sentinel::LogLevel::level))  \
    ;                                                               \
  else                                                              \
    ::sentinel::internal_logging::LogMessage(::sentinel::LogLevel::level)

#endif  // SENTINEL_COMMON_LOGGING_H_
