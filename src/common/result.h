#ifndef SENTINEL_COMMON_RESULT_H_
#define SENTINEL_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace sentinel {

/// Value-or-error: holds either a T or a non-OK Status.
///
/// A default-constructed Result is an Internal error; always initialize from
/// a value or a Status.
template <typename T>
class Result {
 public:
  Result() : data_(Status::Internal("uninitialized Result")) {}
  /* implicit */ Result(T value) : data_(std::move(value)) {}
  /* implicit */ Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() && "OK status in Result<T>");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace sentinel

#endif  // SENTINEL_COMMON_RESULT_H_
