#ifndef SENTINEL_COMMON_CLOCK_H_
#define SENTINEL_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace sentinel {

/// Logical timestamp used for event occurrence ordering. Snoop operator
/// semantics (SEQ, NOT, intervals) are defined over a total order of
/// occurrence times; a per-application logical clock provides that order
/// deterministically, which also makes batch replay reproducible.
using Timestamp = std::uint64_t;

constexpr Timestamp kInvalidTimestamp = 0;

/// Monotonic logical clock. Thread-safe.
class LogicalClock {
 public:
  LogicalClock() : now_(0) {}

  LogicalClock(const LogicalClock&) = delete;
  LogicalClock& operator=(const LogicalClock&) = delete;

  /// Returns the next timestamp (strictly increasing, starts at 1).
  Timestamp Tick() { return now_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Latest timestamp issued (0 if none yet).
  Timestamp Now() const { return now_.load(std::memory_order_relaxed); }

  /// Advances the clock to at least `t` (used when merging remote events so
  /// that causality is preserved across applications).
  void Witness(Timestamp t) {
    Timestamp cur = now_.load(std::memory_order_relaxed);
    while (cur < t &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace sentinel

#endif  // SENTINEL_COMMON_CLOCK_H_
