#include "common/logging.h"

#include <time.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace sentinel {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Leaked statics: log lines can be emitted from static destructors.
std::mutex& OutputMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
struct SinkSlot {
  const void* owner = nullptr;
  Logger::Sink sink;
};
SinkSlot& SinkStorage() {
  static SinkSlot* s = new SinkSlot();
  return *s;
}
}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool Logger::IsEnabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

const char* Logger::LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Logger::SetSink(const void* owner, Sink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkStorage().owner = owner;
  SinkStorage().sink = std::move(sink);
}

void Logger::ClearSink(const void* owner) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (SinkStorage().owner != owner) return;  // superseded meanwhile
  SinkStorage().owner = nullptr;
  SinkStorage().sink = nullptr;
}

void Logger::Write(LogLevel level, const std::string& message) {
  // UTC wall-clock stamp (ms) + a short thread tag so interleaved
  // multi-thread output stays attributable and ordered.
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int ms = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  const unsigned tid = static_cast<unsigned>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffu);
  {
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::fprintf(stderr,
                 "[sentinel %s %04d-%02d-%02dT%02d:%02d:%02d.%03dZ t%04x] "
                 "%s\n",
                 LevelName(level), tm.tm_year + 1900, tm.tm_mon + 1,
                 tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec, ms, tid,
                 message.c_str());
  }
  // Mirror warnings and errors into the registered sink (the flight
  // recorder's log ring). Copy the sink out so a slow consumer never holds
  // the output lock, and a concurrent ClearSink never frees it mid-call.
  if (level >= LogLevel::kWarn) {
    Sink sink;
    {
      std::lock_guard<std::mutex> lock(SinkMutex());
      sink = SinkStorage().sink;
    }
    if (sink) sink(level, message);
  }
}

}  // namespace sentinel
