#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sentinel {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex& OutputMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool Logger::IsEnabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void Logger::Write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(OutputMutex());
  std::fprintf(stderr, "[sentinel %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace sentinel
