#ifndef SENTINEL_COMMON_BYTES_H_
#define SENTINEL_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sentinel {

/// Append-only little-endian encoder used by object serialization and the
/// write-ahead log.
class BytesWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutU16(std::uint16_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(std::uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(std::uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI32(std::int32_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(std::int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Length-prefixed string (u32 length + bytes).
  void PutString(const std::string& s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  void PutRaw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> Release() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder matching BytesWriter.
class BytesReader {
 public:
  BytesReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BytesReader(const std::vector<std::uint8_t>& buf)
      : BytesReader(buf.data(), buf.size()) {}

  Result<std::uint8_t> ReadU8() { return ReadScalar<std::uint8_t>(); }
  Result<std::uint16_t> ReadU16() { return ReadScalar<std::uint16_t>(); }
  Result<std::uint32_t> ReadU32() { return ReadScalar<std::uint32_t>(); }
  Result<std::uint64_t> ReadU64() { return ReadScalar<std::uint64_t>(); }
  Result<std::int32_t> ReadI32() { return ReadScalar<std::int32_t>(); }
  Result<std::int64_t> ReadI64() { return ReadScalar<std::int64_t>(); }
  Result<double> ReadF64() { return ReadScalar<double>(); }

  Result<bool> ReadBool() {
    auto v = ReadU8();
    if (!v.ok()) return v.status();
    return *v != 0;
  }

  Result<std::string> ReadString() {
    auto len = ReadU32();
    if (!len.ok()) return len.status();
    if (pos_ + *len > size_) {
      return Status::Corruption("string extends past end of buffer");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), *len);
    pos_ += *len;
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  Result<T> ReadScalar() {
    if (pos_ + sizeof(T) > size_) {
      return Status::Corruption("read past end of buffer");
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace sentinel

#endif  // SENTINEL_COMMON_BYTES_H_
