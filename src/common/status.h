#ifndef SENTINEL_COMMON_STATUS_H_
#define SENTINEL_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace sentinel {

/// Error categories used across all Sentinel modules. Values are stable so
/// they can be logged and asserted on in tests.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kTransactionAborted = 6,
  kDeadlock = 7,
  kLockTimeout = 8,
  kNotImplemented = 9,
  kInternal = 10,
  kParseError = 11,
  kTypeMismatch = 12,
  kResourceExhausted = 13,
  // Typed load-shedding verdict: the operation was *admissible but refused*
  // because a bounded queue is full right now — the caller should back off
  // and retry, unlike kResourceExhausted which signals a hard capacity wall.
  kRetryLater = 14,
};

/// Returns a stable human-readable name for a status code ("OK", "NotFound").
const char* StatusCodeToString(StatusCode code);

/// Operation outcome used instead of exceptions across module boundaries.
///
/// The OK status is represented with a null state pointer so that the
/// success path costs one pointer compare (RocksDB/Arrow idiom).
class Status {
 public:
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TransactionAborted(std::string msg) {
    return Status(StatusCode::kTransactionAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status LockTimeout(std::string msg) {
    return Status(StatusCode::kLockTimeout, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status RetryLater(std::string msg) {
    return Status(StatusCode::kRetryLater, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsTransactionAborted() const {
    return code() == StatusCode::kTransactionAborted;
  }
  bool IsDeadlock() const { return code() == StatusCode::kDeadlock; }
  bool IsLockTimeout() const { return code() == StatusCode::kLockTimeout; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeMismatch() const { return code() == StatusCode::kTypeMismatch; }
  bool IsRetryLater() const { return code() == StatusCode::kRetryLater; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace sentinel

/// Propagates a non-OK Status to the caller.
#define SENTINEL_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::sentinel::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
#define SENTINEL_ASSIGN_OR_RETURN(lhs, expr)         \
  SENTINEL_ASSIGN_OR_RETURN_IMPL(                    \
      SENTINEL_CONCAT_(_result_, __LINE__), lhs, expr)

#define SENTINEL_CONCAT_IMPL_(a, b) a##b
#define SENTINEL_CONCAT_(a, b) SENTINEL_CONCAT_IMPL_(a, b)

#define SENTINEL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie();

#endif  // SENTINEL_COMMON_STATUS_H_
