#ifndef SENTINEL_COMMON_POOL_H_
#define SENTINEL_COMMON_POOL_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace sentinel::common {

namespace pool_internal {

/// Per-thread freelist of fixed-size raw blocks. Allocation never contends:
/// each thread recycles its own blocks; a block freed on a different thread
/// from the one that allocated it simply joins the freeing thread's list
/// (blocks are untyped memory, so lists mix freely across types of the same
/// size). The freelist is capped so bursts cannot pin unbounded memory.
///
/// Thread-exit safety: the list lives behind a trivially-destructible
/// thread_local pointer that the owning holder nulls in its destructor —
/// deallocations arriving after the holder died (e.g. from other TLS
/// destructors releasing shared_ptrs) fall back to plain operator delete.
template <std::size_t kBlockSize>
class Freelist {
 public:
  static void* Allocate() {
    Freelist* list = Get();
    if (list != nullptr && list->head_ != nullptr) {
      Node* node = list->head_;
      list->head_ = node->next;
      --list->count_;
      return node;
    }
    return ::operator new(kBlockSize);
  }

  static void Deallocate(void* p) noexcept {
    Freelist* list = tls_;  // do not (re)construct the holder on a dying thread
    if (list != nullptr && list->count_ < kMaxBlocks) {
      Node* node = static_cast<Node*>(p);
      node->next = list->head_;
      list->head_ = node;
      ++list->count_;
      return;
    }
    ::operator delete(p);
  }

 private:
  struct Node {
    Node* next;
  };
  static_assert(kBlockSize >= sizeof(Node));

  struct Holder {
    Freelist list;
    Holder() { tls_ = &list; }
    ~Holder() {
      tls_ = nullptr;
      Node* node = list.head_;
      while (node != nullptr) {
        Node* next = node->next;
        ::operator delete(node);
        node = next;
      }
    }
  };

  static Freelist* Get() {
    thread_local Holder holder;  // first use wires tls_; dtor unwires it
    return tls_;
  }

  static constexpr std::size_t kMaxBlocks = 256;
  static thread_local Freelist* tls_;

  Node* head_ = nullptr;
  std::size_t count_ = 0;
};

template <std::size_t kBlockSize>
thread_local Freelist<kBlockSize>* Freelist<kBlockSize>::tls_ = nullptr;

constexpr std::size_t RoundBlockSize(std::size_t n) {
  const std::size_t min = sizeof(void*);
  const std::size_t size = n < min ? min : n;
  return (size + min - 1) / min * min;
}

}  // namespace pool_internal

/// Minimal std allocator backed by the per-thread freelist; intended for
/// std::allocate_shared so the combined control-block + object allocation of
/// hot-path shared_ptrs is recycled instead of hitting the heap every call.
template <typename T>
class ThreadLocalFreelistAllocator {
 public:
  using value_type = T;

  ThreadLocalFreelistAllocator() noexcept = default;
  template <typename U>
  ThreadLocalFreelistAllocator(const ThreadLocalFreelistAllocator<U>&) noexcept {
  }

  T* allocate(std::size_t n) {
    if (n == 1 && alignof(T) <= alignof(std::max_align_t)) {
      using List = pool_internal::Freelist<pool_internal::RoundBlockSize(
          sizeof(T))>;
      return static_cast<T*>(List::Allocate());
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1 && alignof(T) <= alignof(std::max_align_t)) {
      using List = pool_internal::Freelist<pool_internal::RoundBlockSize(
          sizeof(T))>;
      List::Deallocate(p);
      return;
    }
    ::operator delete(p);
  }

  friend bool operator==(const ThreadLocalFreelistAllocator&,
                         const ThreadLocalFreelistAllocator&) {
    return true;
  }
};

/// make_shared whose allocation is recycled through the thread-local pool.
template <typename T, typename... Args>
std::shared_ptr<T> MakePooled(Args&&... args) {
  return std::allocate_shared<T>(ThreadLocalFreelistAllocator<T>{},
                                 std::forward<Args>(args)...);
}

}  // namespace sentinel::common

#endif  // SENTINEL_COMMON_POOL_H_
