#include "common/symbol.h"

namespace sentinel::common {

SymbolTable::~SymbolTable() {
  const Snapshot* current = snapshot_.load(std::memory_order_acquire);
  // The live snapshot is the last element of retired_; everything is owned.
  (void)current;
}

SymbolId SymbolTable::Intern(std::string_view name) {
  if (SymbolId id = TryLookup(name); id != kInvalidSymbol) return id;

  std::lock_guard<std::mutex> lock(write_mu_);
  const Snapshot* current = snapshot_.load(std::memory_order_relaxed);
  if (current != nullptr) {
    auto it = current->ids.find(name);
    if (it != current->ids.end()) return it->second;  // raced with a writer
  }

  auto next = std::make_unique<Snapshot>();
  if (current != nullptr) *next = *current;
  arena_.emplace_back(name);
  const std::string& stored = arena_.back();
  next->names.push_back(&stored);
  const SymbolId id = static_cast<SymbolId>(next->names.size());
  next->ids.emplace(std::string_view(stored), id);

  const Snapshot* published = next.get();
  retired_.push_back(std::move(next));
  snapshot_.store(published, std::memory_order_release);
  return id;
}

SymbolId SymbolTable::TryLookup(std::string_view name) const {
  const Snapshot* current = snapshot_.load(std::memory_order_acquire);
  if (current == nullptr) return kInvalidSymbol;
  auto it = current->ids.find(name);
  return it != current->ids.end() ? it->second : kInvalidSymbol;
}

const std::string& SymbolTable::NameOf(SymbolId id) const {
  static const std::string kEmpty;
  const Snapshot* current = snapshot_.load(std::memory_order_acquire);
  if (current == nullptr || id == kInvalidSymbol ||
      id > current->names.size()) {
    return kEmpty;
  }
  return *current->names[id - 1];
}

std::size_t SymbolTable::size() const {
  const Snapshot* current = snapshot_.load(std::memory_order_acquire);
  return current != nullptr ? current->names.size() : 0;
}

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();  // never destroyed
  return *table;
}

}  // namespace sentinel::common
