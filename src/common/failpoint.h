#ifndef SENTINEL_COMMON_FAILPOINT_H_
#define SENTINEL_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sentinel {

/// Fault-injection subsystem. Code under test declares *failpoints* — named
/// choke points at I/O and scheduling boundaries — which are inert until a
/// test, the `failpoint` shell command, or the SENTINEL_FAILPOINTS
/// environment variable arms them with a spec:
///
///   SENTINEL_FAILPOINTS="wal.append=error(hit=3);disk.sync=crash"
///
/// Spec grammar:  <mode>[(<key>=<value>[,<key>=<value>...])]
///   modes: off | error | torn | delay | crash
///   keys:  hit=N     fire starting at the Nth hit (1-based); implies a
///                    single fire unless count is given
///          count=N   fire at most N times (0 = unlimited, the default)
///          prob=P    fire with probability P (deterministic seeded PRNG)
///          ms=N      delay duration (delay mode, default 10)
///          bytes=N   prefix written before failing (torn mode; 0 = site
///                    default, typically half the payload)
///          msg=TEXT  custom error message (error/torn modes)
///
/// The registered failpoint catalog (the names threaded through the system)
/// is documented in DESIGN.md §"Fault model & failpoints".
enum class FailPointMode : std::uint8_t {
  kOff = 0,
  kReturnError,  // the site returns an injected Status::IOError
  kTornWrite,    // the site writes a prefix of its payload, then fails
  kDelay,        // sleep, then proceed normally (latency injection)
  kCrashAfter,   // deterministic process exit, skipping stdio flush —
                 // user-space buffers are lost, models a process crash
};

const char* FailPointModeToString(FailPointMode mode);

/// Exit code used by kCrashAfter so crash-matrix harnesses can tell an
/// injected crash from an organic failure.
constexpr int kFailPointCrashExitCode = 42;

struct FailPointSpec {
  FailPointMode mode = FailPointMode::kOff;
  int start_hit = 1;             // first hit (1-based) eligible to fire
  int max_fires = 0;             // 0 = unlimited
  double probability = 1.0;      // fire chance once hit/count allow it
  std::uint32_t delay_ms = 10;   // delay mode
  std::uint32_t torn_bytes = 0;  // torn mode; 0 = site default
  std::string message;           // optional custom error message

  std::string ToString() const;
  /// Parses the spec grammar above, e.g. "crash(hit=3)" or
  /// "torn(bytes=7,count=2)".
  static Result<FailPointSpec> Parse(const std::string& text);
};

/// What an armed failpoint asks the site to do. Delay and crash are applied
/// inside Evaluate(); only actions requiring site cooperation are returned.
struct FailPointAction {
  FailPointMode mode = FailPointMode::kOff;
  std::uint32_t torn_bytes = 0;
  std::string message;

  bool fired() const { return mode != FailPointMode::kOff; }
  /// Error for return-error sites; also used for torn-write when the site
  /// cannot model a partial write.
  Status ToStatus(const char* site) const;
};

class FailPointRegistry {
 public:
  /// Process-wide registry. The first call arms any failpoints listed in
  /// the SENTINEL_FAILPOINTS environment variable.
  static FailPointRegistry& Instance();

  /// Lock-free fast path: true iff any failpoint is currently armed. Sites
  /// check this before paying for Evaluate().
  static bool AnyActive();

  Status Enable(const std::string& name, FailPointSpec spec);
  Status Enable(const std::string& name, const std::string& spec_text);
  /// Arms a ';'-separated list of `name=spec` entries (the env-var format).
  Status Configure(const std::string& list);
  /// Returns true if the failpoint existed.
  bool Disable(const std::string& name);
  void DisableAll();

  /// Counts a hit at `name` and decides whether it fires. Delay sleeps and
  /// crash exits the process here; error/torn are returned for the site to
  /// apply. Unarmed names return an inert action.
  FailPointAction Evaluate(const std::string& name);

  struct Info {
    std::string name;
    FailPointSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };
  std::vector<Info> List() const;
  std::uint64_t hits(const std::string& name) const;
  std::uint64_t fires(const std::string& name) const;

 private:
  FailPointRegistry();

  struct Entry {
    FailPointSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  double NextUniformLocked();

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> points_;
  std::uint64_t rng_state_ = 0x5eed5eed5eed5eedull;
  static std::atomic<int> active_count_;
};

}  // namespace sentinel

/// Evaluates failpoint `name`; if an error (or torn-write, at sites that
/// cannot model partial writes) fires, returns it from the enclosing
/// Status- or Result-returning function. Near-zero cost while unarmed.
#define SENTINEL_FAILPOINT(name)                                      \
  do {                                                                \
    if (::sentinel::FailPointRegistry::AnyActive()) {                 \
      ::sentinel::FailPointAction _fp_action =                        \
          ::sentinel::FailPointRegistry::Instance().Evaluate(name);   \
      if (_fp_action.fired()) return _fp_action.ToStatus(name);       \
    }                                                                 \
  } while (false)

#endif  // SENTINEL_COMMON_FAILPOINT_H_
