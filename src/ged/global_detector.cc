#include "ged/global_detector.h"

#include "common/logging.h"
#include "obs/json.h"
#include "obs/span.h"

namespace sentinel::ged {

namespace {
std::string Namespaced(const std::string& app, const std::string& class_name) {
  return app + "::" + class_name;
}
}  // namespace

std::string GlobalEventDetector::NamespacedClass(
    const std::string& app_name, const std::string& class_name) {
  return Namespaced(app_name, class_name);
}

/// Sink that re-raises a global detection inside a target application as an
/// explicit event (the "to execute detached rule" arrow in Fig. 2).
class GlobalEventDetector::Forwarder : public detector::EventSink {
 public:
  Forwarder(core::ActiveDatabase* app, std::string as_event,
            detector::ParamContext context)
      : app_(app), as_event_(std::move(as_event)), context_(context) {}

  void OnEvent(const detector::Occurrence& occurrence,
               detector::ParamContext context) override {
    if (context != context_) return;
    // Re-package the global occurrence's parameters flat into one list.
    auto params = std::make_shared<detector::ParamList>();
    params->Insert("global_event",
                   oodb::Value::String(occurrence.event_name));
    for (const auto& constituent : occurrence.constituents) {
      if (constituent->params == nullptr) continue;
      for (const auto& [name, value] : *constituent->params) {
        params->Insert(name, value);
      }
    }
    Status st = app_->RaiseEvent(as_event_, params, storage::kInvalidTxnId);
    if (!st.ok()) {
      SENTINEL_LOG(kWarn) << "global delivery of " << occurrence.event_name
                          << " failed: " << st.ToString();
    }
  }

 private:
  core::ActiveDatabase* app_;
  std::string as_event_;
  detector::ParamContext context_;
};

GlobalEventDetector::GlobalEventDetector() {
  worker_ = std::thread([this] { BusLoop(); });
}

GlobalEventDetector::~GlobalEventDetector() { Shutdown(); }

void GlobalEventDetector::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Serialize the join so a racing Shutdown and the destructor cannot both
  // (or neither) wait for the worker; joinable() makes repeats no-ops.
  std::lock_guard<std::mutex> join_lock(shutdown_mu_);
  if (worker_.joinable()) worker_.join();
}

bool GlobalEventDetector::shut_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stop_;
}

Status GlobalEventDetector::RegisterApplication(const std::string& app_name,
                                                core::ActiveDatabase* app) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return Status::RetryLater("GED shut down");
    if (apps_.count(app_name) != 0 || remote_apps_.count(app_name) != 0) {
      return Status::AlreadyExists("application already registered: " +
                                   app_name);
    }
    apps_[app_name] = app;
  }
  app->detector()->AddRawObserver(
      [this, app_name](const detector::PrimitiveOccurrence& occ) {
        Pump(app_name, occ);
      });
  return Status::OK();
}

Status GlobalEventDetector::RegisterRemoteApplication(
    const std::string& app_name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::RetryLater("GED shut down");
  if (apps_.count(app_name) != 0 || remote_apps_.count(app_name) != 0) {
    return Status::AlreadyExists("application already registered: " +
                                 app_name);
  }
  remote_apps_.insert(app_name);
  return Status::OK();
}

Status GlobalEventDetector::UnregisterApplication(const std::string& app_name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (remote_apps_.erase(app_name) == 0) {
    return Status::NotFound("no remote application named " + app_name);
  }
  return Status::OK();
}

Status GlobalEventDetector::InjectRemote(
    const std::string& app_name,
    const detector::PrimitiveOccurrence& occurrence) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      ++dropped_;
      return Status::RetryLater("GED shut down");
    }
    if (remote_apps_.count(app_name) == 0 && apps_.count(app_name) == 0) {
      // Session torn down with frames in flight: at-most-once means drop.
      ++dropped_;
      return Status::NotFound("application not registered: " + app_name);
    }
    bus_.emplace_back(app_name, occurrence);
    ++forwarded_;
    if (bus_.size() > bus_peak_) bus_peak_ = bus_.size();
  }
  cv_.notify_all();
  return Status::OK();
}

Result<detector::EventNode*> GlobalEventDetector::DefineGlobalPrimitive(
    const std::string& name, const std::string& app_name,
    const std::string& class_name, detector::EventModifier modifier,
    const std::string& method_signature) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (apps_.count(app_name) == 0 && remote_apps_.count(app_name) == 0) {
      return Status::NotFound("application not registered: " + app_name);
    }
  }
  return graph_.DefinePrimitive(name, Namespaced(app_name, class_name),
                                modifier, method_signature);
}

Status GlobalEventDetector::Subscribe(const std::string& event,
                                      detector::EventSink* sink,
                                      detector::ParamContext context) {
  return graph_.Subscribe(event, sink, context);
}

Status GlobalEventDetector::DeliverTo(const std::string& event,
                                      const std::string& app_name,
                                      const std::string& as_event) {
  core::ActiveDatabase* app = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = apps_.find(app_name);
    if (it == apps_.end()) {
      return Status::NotFound("application not registered: " + app_name);
    }
    app = it->second;
  }
  if (!app->detector()->Exists(as_event)) {
    return Status::NotFound("target application has no event " + as_event);
  }
  auto forwarder = std::make_unique<Forwarder>(
      app, as_event, detector::ParamContext::kRecent);
  SENTINEL_RETURN_NOT_OK(
      graph_.Subscribe(event, forwarder.get(), detector::ParamContext::kRecent));
  std::lock_guard<std::mutex> lock(mu_);
  delivery_sinks_.push_back(std::move(forwarder));
  return Status::OK();
}

void GlobalEventDetector::Pump(const std::string& app_name,
                               const detector::PrimitiveOccurrence& occ) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // A still-live application signalled after Shutdown — refuse quietly;
      // the observer hook outlives the bus on purpose (see Shutdown()).
      ++dropped_;
      return;
    }
    bus_.emplace_back(app_name, occ);
    ++forwarded_;
    if (bus_.size() > bus_peak_) bus_peak_ = bus_.size();
  }
  cv_.notify_one();
}

void GlobalEventDetector::BusLoop() {
  for (;;) {
    std::pair<std::string, detector::PrimitiveOccurrence> item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !bus_.empty(); });
      if (stop_ && bus_.empty()) return;
      item = std::move(bus_.front());
      bus_.pop_front();
      busy_ = true;
    }
    // Rewrite the class to the application-scoped namespace and inject into
    // the global graph. Inter-application events intentionally span
    // transactions, so the GED performs no per-transaction flush. Each
    // application has its own logical clock, so occurrences are re-stamped
    // in bus-arrival order to give the global graph one total order (the
    // paper defers distributed timestamping to future work).
    detector::PrimitiveOccurrence occ = item.second;
    occ.class_name = Namespaced(item.first, occ.class_name);
    occ.at = graph_.clock()->Tick();
    obs::SpanScope forward_span;
    if (obs::SpanTracer* st = graph_.span_tracer();
        st != nullptr && st->enabled_for(obs::SpanKind::kGedForward)) {
      // A remote occurrence carries its causal chain: trace_parent is the
      // latest upstream span (the server's admission-wait span — same
      // process, so it pins the local parent directly), trace_id marks the
      // cross-process trace. Downstream composite_detect spans parent here
      // via the scope stack.
      forward_span.Start(st, obs::SpanKind::kGedForward, occ.txn,
                         occ.class_name + "::" + occ.method_signature,
                         /*subtxn=*/0,
                         /*parent_override=*/occ.trace_parent);
      if (occ.trace_id != 0) forward_span.AnnotateRemote(occ.trace_id, 0);
      occ.trace_parent = forward_span.id();
    }
    obs::Profiler* profiler = graph_.profiler();
    const bool profiling = profiler != nullptr && profiler->enabled();
    const std::uint64_t prof_cpu0 =
        profiling ? obs::Profiler::ThreadCpuNs() : 0;
    const std::uint64_t prof_t0 = profiling ? obs::Profiler::NowNs() : 0;
    graph_.Inject(occ);
    if (profiling) {
      profiler->RecordGlobal(obs::Profiler::GlobalSeam::kGedForward,
                             obs::Profiler::ThreadCpuNs() - prof_cpu0,
                             obs::Profiler::NowNs() - prof_t0);
    }
    forward_span.End();
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
      // Every pop may unblock a WaitBusBelow backpressure waiter, not just
      // the transition to empty.
      cv_.notify_all();
    }
  }
}

void GlobalEventDetector::WaitQuiescent() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return bus_.empty() && !busy_; });
}

bool GlobalEventDetector::WaitBusBelow(std::size_t depth,
                                       std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout,
               [this, depth] { return stop_ || bus_.size() < depth; });
  return bus_.size() < depth;
}

std::uint64_t GlobalEventDetector::forwarded_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return forwarded_;
}

std::uint64_t GlobalEventDetector::dropped_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t GlobalEventDetector::bus_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bus_.size();
}

std::size_t GlobalEventDetector::application_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return apps_.size() + remote_apps_.size();
}

bool GlobalEventDetector::IsRegistered(const std::string& app_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return apps_.count(app_name) != 0 || remote_apps_.count(app_name) != 0;
}

void GlobalEventDetector::set_span_tracer(obs::SpanTracer* tracer) {
  graph_.set_span_tracer(tracer);
}

void GlobalEventDetector::set_profiler(obs::Profiler* profiler) {
  graph_.set_profiler(profiler);
}

std::string GlobalEventDetector::StatsJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  {
    std::lock_guard<std::mutex> lock(mu_);
    w.Field("forwarded", forwarded_);
    w.Field("dropped", dropped_);
    w.Field("bus_depth", bus_.size());
    w.Field("bus_peak", bus_peak_);
    w.Field("applications", apps_.size());
    w.Field("remote_applications", remote_apps_.size());
    w.Field("shut_down", stop_);
  }
  // The internal graph has its own lock; do not hold mu_ across it.
  w.Key("graph").Raw(graph_.StatsJson());
  w.EndObject();
  return w.Take();
}

}  // namespace sentinel::ged
