#ifndef SENTINEL_GED_GLOBAL_DETECTOR_H_
#define SENTINEL_GED_GLOBAL_DETECTOR_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/active_database.h"
#include "detector/local_detector.h"

namespace sentinel::obs {
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::ged {

/// Global event detector (paper Fig. 2 and §4 future work): detects
/// composite events whose constituents come from *different applications*
/// (cooperative transactions, workflows).
///
/// Each registered application's local detector forwards its raw
/// notifications onto the GED's message bus; a dedicated GED thread drains
/// the bus into an internal event graph whose primitive nodes are namespaced
/// by application ("app::class"). Global detections are delivered either to
/// subscribed sinks or back into a target application's detector as an
/// explicit event — where a (typically detached) rule executes it, matching
/// the paper's "Application_i to execute detached rule" arrows.
///
/// The in-process message bus stands in for the socket/Corba transport the
/// paper leaves as future work: it preserves the asynchronous, queue-based
/// control flow of Fig. 2 without requiring separate OS processes.
class GlobalEventDetector {
 public:
  GlobalEventDetector();
  ~GlobalEventDetector();

  GlobalEventDetector(const GlobalEventDetector&) = delete;
  GlobalEventDetector& operator=(const GlobalEventDetector&) = delete;

  /// Connects an application: its raw events are forwarded to the bus.
  Status RegisterApplication(const std::string& app_name,
                             core::ActiveDatabase* app);

  /// Declares a global primitive event mirroring `app_name`'s primitive
  /// (class, modifier, method) specification.
  Result<detector::EventNode*> DefineGlobalPrimitive(
      const std::string& name, const std::string& app_name,
      const std::string& class_name, detector::EventModifier modifier,
      const std::string& method_signature);

  /// The GED's internal graph: compose global events with the usual
  /// operators through this detector (definitions only; do not signal it
  /// directly).
  detector::LocalEventDetector* graph() { return &graph_; }

  /// Subscribes a sink to a global event.
  Status Subscribe(const std::string& event, detector::EventSink* sink,
                   detector::ParamContext context);

  /// Routes detections of `event` into `app_name`'s detector as the explicit
  /// event `as_event` (define it and its — typically DETACHED — rules in the
  /// application first).
  Status DeliverTo(const std::string& event, const std::string& app_name,
                   const std::string& as_event);

  /// Blocks until every event forwarded so far has been processed.
  void WaitQuiescent();

  std::uint64_t forwarded_count() const;

  /// Bus counters plus the internal graph's per-node stats as JSON.
  std::string StatsJson() const;

  /// Attaches the causal span tracer: the bus worker records a ged_forward
  /// span around each injection into the global graph (and the graph's own
  /// nodes record composite_detect spans).
  void set_span_tracer(obs::SpanTracer* tracer);

 private:
  class Forwarder;

  void BusLoop();
  void Pump(const std::string& app_name,
            const detector::PrimitiveOccurrence& occurrence);

  detector::LocalEventDetector graph_;
  std::map<std::string, core::ActiveDatabase*> apps_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<std::string, detector::PrimitiveOccurrence>> bus_;
  bool busy_ = false;
  bool stop_ = false;
  std::uint64_t forwarded_ = 0;
  std::size_t bus_peak_ = 0;  // deepest the bus has been (backlog gauge)
  std::thread worker_;

  // Sinks created by DeliverTo (owned).
  std::vector<std::unique_ptr<detector::EventSink>> delivery_sinks_;
};

}  // namespace sentinel::ged

#endif  // SENTINEL_GED_GLOBAL_DETECTOR_H_
