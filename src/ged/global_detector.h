#ifndef SENTINEL_GED_GLOBAL_DETECTOR_H_
#define SENTINEL_GED_GLOBAL_DETECTOR_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/active_database.h"
#include "detector/local_detector.h"

namespace sentinel::obs {
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::ged {

/// Global event detector (paper Fig. 2 and §4 future work): detects
/// composite events whose constituents come from *different applications*
/// (cooperative transactions, workflows).
///
/// Each registered application's local detector forwards its raw
/// notifications onto the GED's message bus; a dedicated GED thread drains
/// the bus into an internal event graph whose primitive nodes are namespaced
/// by application ("app::class"). Global detections are delivered either to
/// subscribed sinks or back into a target application's detector as an
/// explicit event — where a (typically detached) rule executes it, matching
/// the paper's "Application_i to execute detached rule" arrows.
///
/// Transports. Two paths feed the bus:
///   - the in-process loopback fast path: applications in the same process
///     register with RegisterApplication and forward through a raw-event
///     observer — no serialization, selected whenever no network port is
///     involved; and
///   - the socket transport (src/net/): a net::EventBusServer owns remote
///     sessions and feeds their framed Notify streams in through
///     RegisterRemoteApplication / InjectRemote, realizing the socket/Corba
///     transport the paper left as future work (see DESIGN.md §12).
/// Both preserve the asynchronous, queue-based control flow of Fig. 2; the
/// bus worker gives occurrences one total arrival order either way.
class GlobalEventDetector {
 public:
  GlobalEventDetector();
  ~GlobalEventDetector();

  GlobalEventDetector(const GlobalEventDetector&) = delete;
  GlobalEventDetector& operator=(const GlobalEventDetector&) = delete;

  /// Connects an in-process application: its raw events are forwarded to
  /// the bus (the loopback fast path).
  Status RegisterApplication(const std::string& app_name,
                             core::ActiveDatabase* app);

  /// Reserves `app_name` for an application living in another process and
  /// feeding events through InjectRemote (the net::EventBusServer calls
  /// this once per authenticated session). Rejects names already held by a
  /// local or remote application.
  Status RegisterRemoteApplication(const std::string& app_name);

  /// Releases a remote application's name (session disconnect). Graph nodes
  /// already defined against the name stay — definitions are shared state,
  /// registration is liveness — so a reconnecting client finds its
  /// primitives intact. Local registrations cannot be unregistered (their
  /// raw-observer hook has no removal path).
  Status UnregisterApplication(const std::string& app_name);

  /// Feeds one remote occurrence onto the bus under `app_name`'s namespace.
  /// RetryLater after Shutdown; NotFound when the app is not registered
  /// (e.g. its session was torn down while frames were in flight — the
  /// occurrence is dropped, upholding at-most-once delivery).
  Status InjectRemote(const std::string& app_name,
                      const detector::PrimitiveOccurrence& occurrence);

  /// The "app::class" namespacing applied to every global primitive's class
  /// name. Exposed so transports can compare an existing node's stored spec
  /// (which embeds the owning app) against a re-declaration.
  static std::string NamespacedClass(const std::string& app_name,
                                     const std::string& class_name);

  /// Declares a global primitive event mirroring `app_name`'s primitive
  /// (class, modifier, method) specification.
  Result<detector::EventNode*> DefineGlobalPrimitive(
      const std::string& name, const std::string& app_name,
      const std::string& class_name, detector::EventModifier modifier,
      const std::string& method_signature);

  /// The GED's internal graph: compose global events with the usual
  /// operators through this detector (definitions only; do not signal it
  /// directly).
  detector::LocalEventDetector* graph() { return &graph_; }

  /// Subscribes a sink to a global event.
  Status Subscribe(const std::string& event, detector::EventSink* sink,
                   detector::ParamContext context);

  /// Routes detections of `event` into `app_name`'s detector as the explicit
  /// event `as_event` (define it and its — typically DETACHED — rules in the
  /// application first).
  Status DeliverTo(const std::string& event, const std::string& app_name,
                   const std::string& as_event);

  /// Blocks until every event forwarded so far has been processed.
  void WaitQuiescent();

  /// Blocks until the bus backlog drops below `depth` (bounded-bus
  /// backpressure for the network dispatcher), the timeout expires, or the
  /// GED shuts down. Returns true iff the backlog is below `depth`.
  bool WaitBusBelow(std::size_t depth, std::chrono::milliseconds timeout);

  /// Stops the bus worker after draining queued events. Idempotent and safe
  /// against concurrent RegisterApplication / InjectRemote calls: anything
  /// arriving after shutdown is refused (RetryLater) rather than enqueued.
  /// The destructor calls it; the network server calls it explicitly so
  /// sessions observe a stopped GED instead of a destroyed one.
  void Shutdown();
  bool shut_down() const;

  std::uint64_t forwarded_count() const;
  /// Occurrences refused because they arrived after Shutdown or from an
  /// unregistered remote application.
  std::uint64_t dropped_count() const;
  std::size_t bus_depth() const;
  /// Currently registered application count (local + remote).
  std::size_t application_count() const;
  bool IsRegistered(const std::string& app_name) const;

  /// Bus counters plus the internal graph's per-node stats as JSON.
  std::string StatsJson() const;

  /// Attaches the causal span tracer: the bus worker records a ged_forward
  /// span around each injection into the global graph (and the graph's own
  /// nodes record composite_detect spans).
  void set_span_tracer(obs::SpanTracer* tracer);

  /// Attaches the continuous profiler: propagated into the internal graph
  /// (operator-node cost accounts, per-symbol dispatch accounts) and the bus
  /// worker records each injection into the ged_forward global seam.
  void set_profiler(obs::Profiler* profiler);

 private:
  class Forwarder;

  void BusLoop();
  void Pump(const std::string& app_name,
            const detector::PrimitiveOccurrence& occurrence);

  detector::LocalEventDetector graph_;
  std::map<std::string, core::ActiveDatabase*> apps_;
  std::set<std::string> remote_apps_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<std::string, detector::PrimitiveOccurrence>> bus_;
  bool busy_ = false;
  bool stop_ = false;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t bus_peak_ = 0;  // deepest the bus has been (backlog gauge)
  std::mutex shutdown_mu_;    // serializes the worker join (see Shutdown)
  std::thread worker_;

  // Sinks created by DeliverTo (owned).
  std::vector<std::unique_ptr<detector::EventSink>> delivery_sinks_;
};

}  // namespace sentinel::ged

#endif  // SENTINEL_GED_GLOBAL_DETECTOR_H_
