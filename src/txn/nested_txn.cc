#include "txn/nested_txn.h"

#include "common/failpoint.h"

namespace sentinel::txn {

Result<SubTxnId> NestedTransactionManager::Begin(TopTxnId top,
                                                 SubTxnId parent) {
  std::lock_guard<std::mutex> lock(mu_);
  SubTxn sub;
  sub.top = top;
  if (parent != kInvalidSubTxn) {
    auto it = subs_.find(parent);
    if (it == subs_.end() || !it->second.active) {
      return Status::InvalidArgument("parent subtransaction not active: " +
                                     std::to_string(parent));
    }
    if (it->second.top != top) {
      return Status::InvalidArgument("parent belongs to another transaction");
    }
    sub.parent = parent;
    sub.depth = it->second.depth + 1;
    ++it->second.live_children;
  }
  SubTxnId id = next_id_++;
  subs_[id] = sub;
  return id;
}

bool NestedTransactionManager::IsAncestorLocked(SubTxnId ancestor,
                                                SubTxnId sub) const {
  SubTxnId current = sub;
  while (current != kInvalidSubTxn) {
    if (current == ancestor) return true;
    auto it = subs_.find(current);
    if (it == subs_.end()) return false;
    current = it->second.parent;
  }
  return false;
}

bool NestedTransactionManager::CanGrantLocked(const LockState& state,
                                              SubTxnId sub,
                                              storage::LockMode mode) const {
  auto sub_it = subs_.find(sub);
  const TopTxnId top = sub_it != subs_.end() ? sub_it->second.top : 0;
  // Conflicts with locks retained by other top-level transactions.
  for (const auto& [retainer_top, held_mode] : state.top_retained) {
    if (retainer_top == top) continue;
    if (mode == storage::LockMode::kExclusive ||
        held_mode == storage::LockMode::kExclusive) {
      return false;
    }
  }
  // Conflicts with live subtransaction holders, unless they are ancestors
  // (Moss rule: a subtransaction may hold what its ancestors hold).
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == sub) continue;
    if (IsAncestorLocked(holder, sub)) continue;
    if (mode == storage::LockMode::kExclusive ||
        held_mode == storage::LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status NestedTransactionManager::Acquire(SubTxnId sub,
                                         const storage::LockKey& key,
                                         storage::LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  auto sub_it = subs_.find(sub);
  if (sub_it == subs_.end() || !sub_it->second.active) {
    return Status::InvalidArgument("subtransaction not active: " +
                                   std::to_string(sub));
  }
  // Fault site: an injected failure here models lock-table trouble inside a
  // rule's subtransaction; the scheduler contains it to that rule.
  SENTINEL_FAILPOINT("nested.acquire");
  auto& state_ptr = locks_[key];
  if (state_ptr == nullptr) state_ptr = std::make_unique<LockState>();
  LockState& state = *state_ptr;

  auto held = state.holders.find(sub);
  if (held != state.holders.end() &&
      (held->second == storage::LockMode::kExclusive ||
       mode == storage::LockMode::kShared)) {
    return Status::OK();
  }

  const auto deadline = std::chrono::steady_clock::now() + options_.lock_timeout;
  while (!CanGrantLocked(state, sub, mode)) {
    if (state.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        !CanGrantLocked(state, sub, mode)) {
      return Status::LockTimeout("subtxn " + std::to_string(sub) +
                                 " timed out on " + key);
    }
  }
  state.holders[sub] = mode;
  return Status::OK();
}

Status NestedTransactionManager::Commit(SubTxnId sub) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  if (it == subs_.end() || !it->second.active) {
    return Status::InvalidArgument("commit of inactive subtransaction " +
                                   std::to_string(sub));
  }
  if (it->second.live_children > 0) {
    return Status::InvalidArgument("subtransaction has live children");
  }
  const SubTxnId parent = it->second.parent;
  const TopTxnId top = it->second.top;
  // Inherit locks upward.
  for (auto& [key, state] : locks_) {
    (void)key;
    auto held = state->holders.find(sub);
    if (held == state->holders.end()) continue;
    const storage::LockMode mode = held->second;
    state->holders.erase(held);
    if (parent != kInvalidSubTxn) {
      auto existing = state->holders.find(parent);
      if (existing == state->holders.end()) {
        state->holders[parent] = mode;
      } else if (mode == storage::LockMode::kExclusive) {
        existing->second = storage::LockMode::kExclusive;
      }
    } else {
      auto [retained_it, inserted] =
          state->top_retained.emplace(top, mode);
      if (!inserted && mode == storage::LockMode::kExclusive) {
        retained_it->second = storage::LockMode::kExclusive;
      }
    }
    state->cv.notify_all();
  }
  it->second.active = false;
  if (parent != kInvalidSubTxn) {
    auto parent_it = subs_.find(parent);
    if (parent_it != subs_.end()) --parent_it->second.live_children;
  }
  subs_.erase(it);
  return Status::OK();
}

Status NestedTransactionManager::Abort(SubTxnId sub) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  if (it == subs_.end() || !it->second.active) {
    return Status::InvalidArgument("abort of inactive subtransaction " +
                                   std::to_string(sub));
  }
  if (it->second.live_children > 0) {
    return Status::InvalidArgument("subtransaction has live children");
  }
  for (auto& [key, state] : locks_) {
    (void)key;
    if (state->holders.erase(sub) > 0) state->cv.notify_all();
  }
  const SubTxnId parent = it->second.parent;
  if (parent != kInvalidSubTxn) {
    auto parent_it = subs_.find(parent);
    if (parent_it != subs_.end()) --parent_it->second.live_children;
  }
  subs_.erase(it);
  return Status::OK();
}

void NestedTransactionManager::EndTop(TopTxnId top) {
  std::lock_guard<std::mutex> lock(mu_);
  // Drop any stragglers belonging to this top-level transaction.
  for (auto it = subs_.begin(); it != subs_.end();) {
    if (it->second.top == top) {
      for (auto& [key, state] : locks_) {
        (void)key;
        if (state->holders.erase(it->first) > 0) state->cv.notify_all();
      }
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = locks_.begin(); it != locks_.end();) {
    if (it->second->top_retained.erase(top) > 0) it->second->cv.notify_all();
    if (it->second->holders.empty() && it->second->top_retained.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

bool NestedTransactionManager::IsActive(SubTxnId sub) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  return it != subs_.end() && it->second.active;
}

Result<int> NestedTransactionManager::Depth(SubTxnId sub) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  if (it == subs_.end()) {
    return Status::NotFound("no subtransaction " + std::to_string(sub));
  }
  return it->second.depth;
}

Result<TopTxnId> NestedTransactionManager::TopOf(SubTxnId sub) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  if (it == subs_.end()) {
    return Status::NotFound("no subtransaction " + std::to_string(sub));
  }
  return it->second.top;
}

std::size_t NestedTransactionManager::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

std::size_t NestedTransactionManager::locked_key_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, state] : locks_) {
    (void)key;
    if (!state->holders.empty() || !state->top_retained.empty()) ++n;
  }
  return n;
}

}  // namespace sentinel::txn
