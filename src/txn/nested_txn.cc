#include "txn/nested_txn.h"

#include <algorithm>

#include "common/failpoint.h"
#include "obs/span.h"

namespace sentinel::txn {

Result<SubTxnId> NestedTransactionManager::Begin(TopTxnId top,
                                                 SubTxnId parent) {
  std::lock_guard<std::mutex> lock(mu_);
  SubTxn sub;
  sub.top = top;
  if (parent != kInvalidSubTxn) {
    auto it = subs_.find(parent);
    if (it == subs_.end() || !it->second.active) {
      return Status::InvalidArgument("parent subtransaction not active: " +
                                     std::to_string(parent));
    }
    if (it->second.top != top) {
      return Status::InvalidArgument("parent belongs to another transaction");
    }
    sub.parent = parent;
    sub.depth = it->second.depth + 1;
    ++it->second.live_children;
  }
  SubTxnId id = next_id_++;
  subs_[id] = sub;
  return id;
}

bool NestedTransactionManager::IsAncestorLocked(SubTxnId ancestor,
                                                SubTxnId sub) const {
  SubTxnId current = sub;
  while (current != kInvalidSubTxn) {
    if (current == ancestor) return true;
    auto it = subs_.find(current);
    if (it == subs_.end()) return false;
    current = it->second.parent;
  }
  return false;
}

bool NestedTransactionManager::CanGrantLocked(const LockState& state,
                                              SubTxnId sub,
                                              storage::LockMode mode) const {
  auto sub_it = subs_.find(sub);
  const TopTxnId top = sub_it != subs_.end() ? sub_it->second.top : 0;
  // Conflicts with locks retained by other top-level transactions.
  for (const auto& [retainer_top, held_mode] : state.top_retained) {
    if (retainer_top == top) continue;
    if (mode == storage::LockMode::kExclusive ||
        held_mode == storage::LockMode::kExclusive) {
      return false;
    }
  }
  // Conflicts with live subtransaction holders, unless they are ancestors
  // (Moss rule: a subtransaction may hold what its ancestors hold).
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == sub) continue;
    if (IsAncestorLocked(holder, sub)) continue;
    if (mode == storage::LockMode::kExclusive ||
        held_mode == storage::LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status NestedTransactionManager::Acquire(SubTxnId sub,
                                         const storage::LockKey& key,
                                         storage::LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  auto sub_it = subs_.find(sub);
  if (sub_it == subs_.end() || !sub_it->second.active) {
    return Status::InvalidArgument("subtransaction not active: " +
                                   std::to_string(sub));
  }
  // Fault site: an injected failure here models lock-table trouble inside a
  // rule's subtransaction; the scheduler contains it to that rule.
  SENTINEL_FAILPOINT("nested.acquire");
  auto& state_ptr = locks_[key];
  if (state_ptr == nullptr) state_ptr = std::make_unique<LockState>();
  LockState& state = *state_ptr;

  auto held = state.holders.find(sub);
  if (held != state.holders.end() &&
      (held->second == storage::LockMode::kExclusive ||
       mode == storage::LockMode::kShared)) {
    return Status::OK();
  }

  bool timed_out = false;
  if (!CanGrantLocked(state, sub, mode)) {
    // Block. The LockState reference stays valid while we wait: entries are
    // never erased while waiters > 0, and unordered_map rehashes do not move
    // the pointed-to unique_ptr targets.
    obs::SpanScope wait_span;
    if (obs::SpanTracer* st = span_tracer_.load(std::memory_order_acquire);
        st != nullptr && st->enabled_for(obs::SpanKind::kLockWait)) {
      wait_span.Start(st, obs::SpanKind::kLockWait, sub_it->second.top, key,
                      sub);
    }
    ++state.waiters;
    const auto wait_start = std::chrono::steady_clock::now();
    const auto deadline = wait_start + options_.lock_timeout;
    while (!CanGrantLocked(state, sub, mode)) {
      if (state.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          !CanGrantLocked(state, sub, mode)) {
        timed_out = true;
        break;
      }
    }
    --state.waiters;
    const std::uint64_t waited_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count());
    // The wait released mu_, so our subs_ iterator may be stale (rehash) or
    // the subtransaction may have been torn down by EndTop; re-resolve.
    sub_it = subs_.find(sub);
    if (sub_it == subs_.end() || !sub_it->second.active) {
      MaybeEraseLocked(key);
      return Status::InvalidArgument("subtransaction not active: " +
                                     std::to_string(sub));
    }
    sub_it->second.lock_wait_ns += waited_ns;
    if (timed_out) {
      MaybeEraseLocked(key);
      return Status::LockTimeout("subtxn " + std::to_string(sub) +
                                 " timed out on " + key);
    }
  }
  auto [holder_it, inserted] = state.holders.emplace(sub, mode);
  if (inserted) {
    sub_it->second.held_keys.push_back(key);
  } else {
    holder_it->second = mode;
  }
  return Status::OK();
}

void NestedTransactionManager::MaybeEraseLocked(const std::string& key) {
  auto it = locks_.find(key);
  if (it == locks_.end()) return;
  const LockState& state = *it->second;
  if (state.holders.empty() && state.top_retained.empty() &&
      state.waiters == 0) {
    locks_.erase(it);
  }
}

void NestedTransactionManager::InheritLocksLocked(SubTxn& sub_state,
                                                  SubTxnId sub) {
  const SubTxnId parent = sub_state.parent;
  const TopTxnId top = sub_state.top;
  for (const std::string& key : sub_state.held_keys) {
    auto lock_it = locks_.find(key);
    if (lock_it == locks_.end()) continue;
    LockState& state = *lock_it->second;
    auto held = state.holders.find(sub);
    if (held == state.holders.end()) continue;
    const storage::LockMode mode = held->second;
    state.holders.erase(held);
    if (parent != kInvalidSubTxn) {
      auto [existing, inserted] = state.holders.emplace(parent, mode);
      if (inserted) {
        auto parent_it = subs_.find(parent);
        if (parent_it != subs_.end()) {
          parent_it->second.held_keys.push_back(key);
        }
      } else if (mode == storage::LockMode::kExclusive) {
        existing->second = storage::LockMode::kExclusive;
      }
    } else {
      auto [retained_it, inserted] = state.top_retained.emplace(top, mode);
      if (inserted) {
        retained_keys_[top].push_back(key);
      } else if (mode == storage::LockMode::kExclusive) {
        retained_it->second = storage::LockMode::kExclusive;
      }
    }
    state.cv.notify_all();
  }
  sub_state.held_keys.clear();
}

void NestedTransactionManager::ReleaseLocksLocked(SubTxn& sub_state,
                                                  SubTxnId sub) {
  for (const std::string& key : sub_state.held_keys) {
    auto lock_it = locks_.find(key);
    if (lock_it == locks_.end()) continue;
    LockState& state = *lock_it->second;
    if (state.holders.erase(sub) > 0) state.cv.notify_all();
    if (state.holders.empty() && state.top_retained.empty() &&
        state.waiters == 0) {
      locks_.erase(lock_it);
    }
  }
  sub_state.held_keys.clear();
}

Status NestedTransactionManager::Commit(SubTxnId sub) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  if (it == subs_.end() || !it->second.active) {
    return Status::InvalidArgument("commit of inactive subtransaction " +
                                   std::to_string(sub));
  }
  if (it->second.live_children > 0) {
    return Status::InvalidArgument("subtransaction has live children");
  }
  const SubTxnId parent = it->second.parent;
  // Inherit locks upward — touches only the keys this subtransaction holds,
  // not the whole lock table.
  InheritLocksLocked(it->second, sub);
  it->second.active = false;
  if (parent != kInvalidSubTxn) {
    auto parent_it = subs_.find(parent);
    if (parent_it != subs_.end()) --parent_it->second.live_children;
  }
  subs_.erase(it);
  return Status::OK();
}

Status NestedTransactionManager::Abort(SubTxnId sub) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  if (it == subs_.end() || !it->second.active) {
    return Status::InvalidArgument("abort of inactive subtransaction " +
                                   std::to_string(sub));
  }
  if (it->second.live_children > 0) {
    return Status::InvalidArgument("subtransaction has live children");
  }
  ReleaseLocksLocked(it->second, sub);
  const SubTxnId parent = it->second.parent;
  if (parent != kInvalidSubTxn) {
    auto parent_it = subs_.find(parent);
    if (parent_it != subs_.end()) --parent_it->second.live_children;
  }
  subs_.erase(it);
  return Status::OK();
}

void NestedTransactionManager::EndTop(TopTxnId top) {
  std::lock_guard<std::mutex> lock(mu_);
  // Drop any stragglers belonging to this top-level transaction.
  for (auto it = subs_.begin(); it != subs_.end();) {
    if (it->second.top == top) {
      ReleaseLocksLocked(it->second, it->first);
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
  // Release locks retained by this transaction's committed subtransactions
  // (indexed per top, so no full-table scan here either).
  auto retained_it = retained_keys_.find(top);
  if (retained_it != retained_keys_.end()) {
    for (const std::string& key : retained_it->second) {
      auto lock_it = locks_.find(key);
      if (lock_it == locks_.end()) continue;
      LockState& state = *lock_it->second;
      if (state.top_retained.erase(top) > 0) state.cv.notify_all();
      if (state.holders.empty() && state.top_retained.empty() &&
          state.waiters == 0) {
        locks_.erase(lock_it);
      }
    }
    retained_keys_.erase(retained_it);
  }
}

bool NestedTransactionManager::IsActive(SubTxnId sub) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  return it != subs_.end() && it->second.active;
}

Result<int> NestedTransactionManager::Depth(SubTxnId sub) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  if (it == subs_.end()) {
    return Status::NotFound("no subtransaction " + std::to_string(sub));
  }
  return it->second.depth;
}

Result<TopTxnId> NestedTransactionManager::TopOf(SubTxnId sub) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  if (it == subs_.end()) {
    return Status::NotFound("no subtransaction " + std::to_string(sub));
  }
  return it->second.top;
}

std::size_t NestedTransactionManager::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

std::size_t NestedTransactionManager::waiting_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, state] : locks_) {
    (void)key;
    n += static_cast<std::size_t>(state->waiters);
  }
  return n;
}

std::size_t NestedTransactionManager::locked_key_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, state] : locks_) {
    (void)key;
    if (!state->holders.empty() || !state->top_retained.empty()) ++n;
  }
  return n;
}

std::uint64_t NestedTransactionManager::LockWaitNs(SubTxnId sub) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(sub);
  return it != subs_.end() ? it->second.lock_wait_ns : 0;
}

std::vector<NestedTransactionManager::SubTxnInfo>
NestedTransactionManager::ActiveSubTxns() const {
  std::vector<SubTxnInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, sub] : subs_) {
    if (!sub.active) continue;
    SubTxnInfo info;
    info.id = id;
    info.top = sub.top;
    info.parent = sub.parent;
    info.depth = sub.depth;
    info.held_keys = sub.held_keys;
    info.lock_wait_ns = sub.lock_wait_ns;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const SubTxnInfo& a, const SubTxnInfo& b) { return a.id < b.id; });
  return out;
}

}  // namespace sentinel::txn
