#ifndef SENTINEL_TXN_NESTED_TXN_H_
#define SENTINEL_TXN_NESTED_TXN_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/lock_manager.h"

namespace sentinel::obs {
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::txn {

using TopTxnId = storage::TxnId;
using SubTxnId = std::uint64_t;
constexpr SubTxnId kInvalidSubTxn = 0;

/// Nested transaction manager with its own lock manager (paper §2.3, [2]):
/// rules execute as subtransactions spawned under the triggering top-level
/// transaction. Implements Moss-style nesting:
///
///   - a subtransaction may acquire a lock if every conflicting holder is an
///     ancestor (lock inheritance makes nested rule execution serializable
///     against sibling rules while sharing the parent's access rights);
///   - on subtransaction commit its locks are inherited by the parent;
///   - on abort its locks are released and its effects are the parent's
///     responsibility (condition/action functions operate through the
///     storage engine, whose top-level undo covers them).
///
/// This manager is *in addition to* the storage engine's top-level 2PL, just
/// as Sentinel's nested manager was layered over Exodus.
class NestedTransactionManager {
 public:
  struct Options {
    std::chrono::milliseconds lock_timeout{2000};
  };

  NestedTransactionManager() : NestedTransactionManager(Options{}) {}
  explicit NestedTransactionManager(Options options) : options_(options) {}

  NestedTransactionManager(const NestedTransactionManager&) = delete;
  NestedTransactionManager& operator=(const NestedTransactionManager&) = delete;

  /// Starts a subtransaction under `top`; `parent` == kInvalidSubTxn means a
  /// direct child of the top-level transaction.
  Result<SubTxnId> Begin(TopTxnId top, SubTxnId parent = kInvalidSubTxn);

  /// Commits: locks are inherited by the parent (or by the top-level root).
  Status Commit(SubTxnId sub);

  /// Aborts: locks released, subtree below must already be finished.
  Status Abort(SubTxnId sub);

  /// Acquires a nested lock. Blocks; LockTimeout after Options::lock_timeout.
  Status Acquire(SubTxnId sub, const storage::LockKey& key,
                 storage::LockMode mode);

  /// Releases everything owned under `top` (called when the top-level
  /// transaction finishes).
  void EndTop(TopTxnId top);

  bool IsActive(SubTxnId sub) const;
  Result<int> Depth(SubTxnId sub) const;
  Result<TopTxnId> TopOf(SubTxnId sub) const;
  std::size_t active_count() const;
  std::size_t locked_key_count() const;
  /// Threads currently blocked inside Acquire across the whole nested lock
  /// table (monitoring-plane gauge).
  std::size_t waiting_count() const;

  /// Nanoseconds `sub` has spent blocked in Acquire so far (latency
  /// accounting for the rule metrics; harvested before commit/abort).
  std::uint64_t LockWaitNs(SubTxnId sub) const;

  /// Attaches the causal span tracer; blocking nested acquisitions record
  /// lock_wait spans.
  void set_span_tracer(obs::SpanTracer* tracer) {
    span_tracer_.store(tracer, std::memory_order_release);
  }

  /// Snapshot of the in-flight subtransactions (postmortems).
  struct SubTxnInfo {
    SubTxnId id = kInvalidSubTxn;
    TopTxnId top = 0;
    SubTxnId parent = kInvalidSubTxn;
    int depth = 1;
    std::vector<std::string> held_keys;
    std::uint64_t lock_wait_ns = 0;
  };
  std::vector<SubTxnInfo> ActiveSubTxns() const;

 private:
  struct SubTxn {
    TopTxnId top = 0;
    SubTxnId parent = kInvalidSubTxn;
    int depth = 1;
    bool active = true;
    int live_children = 0;
    // Keys this subtransaction holds (insertion order; no duplicates —
    // Acquire appends only when the holder entry is newly created). Lets
    // Commit/Abort/EndTop release exactly the locks involved instead of
    // scanning the whole lock table.
    std::vector<std::string> held_keys;
    std::uint64_t lock_wait_ns = 0;
  };

  struct LockState {
    // holder -> mode. Holder kInvalidSubTxn represents "retained by the
    // top-level transaction" after a depth-1 subtransaction commits; it is
    // tagged with the owning top id in retainer_top.
    std::map<SubTxnId, storage::LockMode> holders;
    std::map<TopTxnId, storage::LockMode> top_retained;
    std::condition_variable cv;
    // Threads currently blocked in Acquire on this entry. An entry may only
    // be erased when this is 0: erasing would destroy a condition_variable
    // another thread is waiting on.
    int waiters = 0;
  };

  // True if `ancestor` is `sub` or one of its ancestors. Requires mu_.
  bool IsAncestorLocked(SubTxnId ancestor, SubTxnId sub) const;
  bool CanGrantLocked(const LockState& state, SubTxnId sub,
                      storage::LockMode mode) const;
  // Erases `key`'s entry if nothing holds/retains/waits on it. Requires mu_.
  void MaybeEraseLocked(const std::string& key);
  // Moves `sub`'s hold on each of its held keys to the parent (or retains it
  // for the top on a depth-1 commit). Requires mu_.
  void InheritLocksLocked(SubTxn& sub_state, SubTxnId sub);
  // Drops `sub`'s hold on each of its held keys. Requires mu_.
  void ReleaseLocksLocked(SubTxn& sub_state, SubTxnId sub);

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<SubTxnId, SubTxn> subs_;
  std::unordered_map<std::string, std::unique_ptr<LockState>> locks_;
  // top txn -> keys its committed depth-1 subtransactions retained; lets
  // EndTop release retained locks without scanning the whole table.
  std::unordered_map<TopTxnId, std::vector<std::string>> retained_keys_;
  SubTxnId next_id_ = 1;
  std::atomic<obs::SpanTracer*> span_tracer_{nullptr};
};

}  // namespace sentinel::txn

#endif  // SENTINEL_TXN_NESTED_TXN_H_
