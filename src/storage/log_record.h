#ifndef SENTINEL_STORAGE_LOG_RECORD_H_
#define SENTINEL_STORAGE_LOG_RECORD_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/page.h"
#include "storage/slotted_page.h"

namespace sentinel::storage {

using TxnId = std::uint64_t;
constexpr TxnId kInvalidTxnId = 0;

enum class LogRecordType : std::uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kInsert = 4,   // rid + after image
  kDelete = 5,   // rid + before image
  kUpdate = 6,   // rid + before + after images
  kClr = 7,      // compensation record: rid + restored image + op undone
  kCheckpoint = 8,
  // Structural heap-file change: page rid.page_id's next-page link is set to
  // the page id encoded in `after` (4 bytes LE). Redo-only (never undone):
  // appended pages are harmless if the owning transaction aborts.
  kPageLink = 9,
};

/// One write-ahead log entry. Physical logging at record granularity:
/// insert/delete/update carry the images needed for redo and undo.
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  Lsn prev_lsn = kInvalidLsn;  // previous record of the same transaction
  TxnId txn_id = kInvalidTxnId;
  LogRecordType type = LogRecordType::kBegin;
  Rid rid;
  std::vector<std::uint8_t> before;
  std::vector<std::uint8_t> after;
  /// For CLRs: the LSN of the next record of this txn to undo.
  Lsn undo_next_lsn = kInvalidLsn;
  /// For CLRs: the type of the operation this CLR compensates.
  LogRecordType undone_type = LogRecordType::kBegin;

  void Serialize(BytesWriter* out) const;
  static Result<LogRecord> Deserialize(BytesReader* in);
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_LOG_RECORD_H_
