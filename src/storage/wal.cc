#include "storage/wal.h"

#include <vector>

#include "common/bytes.h"

namespace sentinel::storage {

LogManager::~LogManager() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status LogManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::InvalidArgument("log manager already open: " + path_);
  }
  path_ = path;
  file_ = std::fopen(path.c_str(), "a+b");
  if (file_ == nullptr) {
    return Status::IOError("cannot open log file: " + path);
  }
  // Recover next_lsn_ by scanning the existing log tail.
  std::fseek(file_, 0, SEEK_SET);
  next_lsn_ = 1;
  for (;;) {
    std::uint32_t size = 0;
    if (std::fread(&size, sizeof(size), 1, file_) != 1) break;
    std::vector<std::uint8_t> buf(size);
    if (size > 0 && std::fread(buf.data(), size, 1, file_) != 1) break;
    BytesReader reader(buf);
    auto rec = LogRecord::Deserialize(&reader);
    if (!rec.ok()) break;
    if (rec->lsn >= next_lsn_) next_lsn_ = rec->lsn + 1;
  }
  std::fseek(file_, 0, SEEK_END);
  return Status::OK();
}

Status LogManager::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

Result<Lsn> LogManager::Append(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  record.lsn = next_lsn_++;
  BytesWriter writer;
  record.Serialize(&writer);
  const std::uint32_t size = static_cast<std::uint32_t>(writer.size());
  if (std::fwrite(&size, sizeof(size), 1, file_) != 1 ||
      std::fwrite(writer.data().data(), size, 1, file_) != 1) {
    return Status::IOError("cannot append log record");
  }
  const bool force = record.type == LogRecordType::kCommit ||
                     record.type == LogRecordType::kAbort ||
                     record.type == LogRecordType::kCheckpoint;
  if (force && std::fflush(file_) != 0) {
    return Status::IOError("cannot flush log");
  }
  return record.lsn;
}

Status LogManager::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "w+b");
  if (file_ == nullptr) {
    return Status::IOError("cannot truncate log file: " + path_);
  }
  // next_lsn_ keeps counting: page LSNs stamped before the checkpoint stay
  // larger than any future log record would otherwise be.
  return Status::OK();
}

Status LogManager::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  if (std::fflush(file_) != 0) return Status::IOError("cannot flush log");
  return Status::OK();
}

Status LogManager::Scan(const std::function<Status(const LogRecord&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_SET);
  Status result;
  for (;;) {
    std::uint32_t size = 0;
    if (std::fread(&size, sizeof(size), 1, file_) != 1) break;
    std::vector<std::uint8_t> buf(size);
    if (size > 0 && std::fread(buf.data(), size, 1, file_) != 1) break;
    BytesReader reader(buf);
    auto rec = LogRecord::Deserialize(&reader);
    if (!rec.ok()) break;  // torn tail == end of log
    result = fn(*rec);
    if (!result.ok()) break;
  }
  std::fseek(file_, 0, SEEK_END);
  return result;
}

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

}  // namespace sentinel::storage
