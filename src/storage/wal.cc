#include "storage/wal.h"

#include <unistd.h>

#include <algorithm>
#include <vector>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/span.h"

namespace sentinel::storage {

namespace {
// Sanity bound on a single record: anything larger is a corrupt size field,
// not a real record (payloads carry record images, far below this).
constexpr std::uint32_t kMaxLogRecordSize = 1u << 26;
}  // namespace

LogManager::~LogManager() {
  StopGroupThread();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<LogRecord> LogManager::ReadFrameLocked() {
  std::uint32_t size = 0;
  if (std::fread(&size, sizeof(size), 1, file_) != 1) {
    return Status::NotFound("end of log");
  }
  if (size == 0 || size > kMaxLogRecordSize) {
    return Status::Corruption("implausible log record size " +
                              std::to_string(size));
  }
  std::uint32_t stored_crc = 0;
  if (std::fread(&stored_crc, sizeof(stored_crc), 1, file_) != 1) {
    return Status::Corruption("torn log record header");
  }
  std::vector<std::uint8_t> buf(size);
  if (std::fread(buf.data(), size, 1, file_) != 1) {
    return Status::Corruption("torn log record payload");
  }
  if (Crc32(buf.data(), buf.size()) != stored_crc) {
    return Status::Corruption("log record checksum mismatch");
  }
  BytesReader reader(buf);
  auto rec = LogRecord::Deserialize(&reader);
  if (!rec.ok()) {
    return Status::Corruption("undecodable log record: " +
                              rec.status().ToString());
  }
  return rec;
}

Status LogManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::InvalidArgument("log manager already open: " + path_);
  }
  SENTINEL_FAILPOINT("wal.open");
  path_ = path;
  file_ = std::fopen(path.c_str(), "a+b");
  if (file_ == nullptr) {
    return Status::IOError("cannot open log file: " + path);
  }
  // Recover next_lsn_ by scanning the existing log; stop at the first bad
  // record and physically truncate there so a torn/corrupt tail can never
  // be mistaken for data by a later reader.
  std::fseek(file_, 0, SEEK_SET);
  next_lsn_ = 1;
  truncated_bytes_.store(0, std::memory_order_relaxed);
  wedged_ = false;
  wedge_reason_.clear();
  long good_end = 0;
  for (;;) {
    auto rec = ReadFrameLocked();
    if (!rec.ok()) {
      if (rec.status().IsCorruption()) {
        SENTINEL_LOG(kWarn) << "log " << path
                            << ": bad tail record, truncating ("
                            << rec.status().ToString() << ")";
      }
      break;
    }
    if (rec->lsn >= next_lsn_) next_lsn_ = rec->lsn + 1;
    good_end = std::ftell(file_);
  }
  std::fseek(file_, 0, SEEK_END);
  const long file_size = std::ftell(file_);
  if (file_size > good_end) {
    truncated_bytes_.store(static_cast<std::uint64_t>(file_size - good_end),
                           std::memory_order_relaxed);
    if (::ftruncate(::fileno(file_), good_end) != 0) {
      return Status::IOError("cannot truncate corrupt log tail: " + path);
    }
    std::fseek(file_, 0, SEEK_END);
  }
  // Every surviving record is on stable storage (it was read back from the
  // file): the durable and appended watermarks start at the scanned tail.
  appended_lsn_.store(next_lsn_ - 1, std::memory_order_release);
  durable_lsn_.store(next_lsn_ - 1, std::memory_order_release);
  requested_lsn_ = next_lsn_ - 1;
  StartGroupThreadLocked();
  return Status::OK();
}

Status LogManager::Close() {
  StopGroupThread();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  std::fflush(file_);
  ::fsync(::fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
  durable_cv_.notify_all();
  return Status::OK();
}

Result<Lsn> LogManager::Append(LogRecord record, CommitDurability durability) {
  std::unique_lock<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  if (wedged_) return WedgedStatusLocked();
  record.lsn = next_lsn_++;
  BytesWriter payload;
  record.Serialize(&payload);
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = Crc32(payload.data().data(), payload.size());
  BytesWriter frame;
  frame.PutU32(size);
  frame.PutU32(crc);
  frame.PutRaw(payload.data().data(), payload.size());

  if (FailPointRegistry::AnyActive()) {
    FailPointAction action =
        FailPointRegistry::Instance().Evaluate("wal.append");
    if (action.mode == FailPointMode::kReturnError) {
      // Nothing written: withdraw the LSN so the sequence stays dense.
      --next_lsn_;
      return action.ToStatus("wal.append");
    }
    if (action.mode == FailPointMode::kTornWrite) {
      // Write a strict prefix of the frame then fail — exactly what a crash
      // mid-append leaves behind. The log is wedged until reopen.
      const std::size_t n =
          action.torn_bytes != 0
              ? std::min<std::size_t>(action.torn_bytes, frame.size() - 1)
              : frame.size() / 2;
      std::fwrite(frame.data().data(), 1, n, file_);
      std::fflush(file_);
      Status torn = Status::IOError("torn append injected at lsn " +
                                    std::to_string(record.lsn));
      WedgeLocked(torn);
      return torn;
    }
  }

  if (std::fwrite(frame.data().data(), frame.size(), 1, file_) != 1) {
    // The write may have landed partially; refuse further appends so the
    // only possible corruption is at the tail, where Open() truncates it.
    Status failed = Status::IOError("cannot append log record");
    WedgeLocked(failed);
    return failed;
  }
  appended_lsn_.store(record.lsn, std::memory_order_release);
  SENTINEL_FAILPOINT("wal.append.after");
  const bool force = record.type == LogRecordType::kCommit ||
                     record.type == LogRecordType::kAbort ||
                     record.type == LogRecordType::kCheckpoint;
  if (force) {
    if (durability == CommitDurability::kAsync) {
      // Ack on buffer write; the group-commit thread converges the durable
      // watermark behind us (or, without one, the next sync barrier does).
      async_commits_.fetch_add(1, std::memory_order_relaxed);
      if (group_thread_.joinable()) {
        if (record.lsn > requested_lsn_) requested_lsn_ = record.lsn;
        work_cv_.notify_one();
      }
      return record.lsn;
    }
    SENTINEL_RETURN_NOT_OK(WaitDurableLocked(lock, record.lsn));
  }
  return record.lsn;
}

Status LogManager::WaitDurableLocked(std::unique_lock<std::mutex>& lock,
                                     Lsn lsn) {
  // Already covered by a completed barrier (an explicit Flush() raced in or
  // a concurrent commit's barrier absorbed us): skip the redundant fsync.
  if (lsn <= durable_lsn_.load(std::memory_order_relaxed)) return Status::OK();
  if (wedged_) return WedgedStatusLocked();
  // Any caller reaching here blocks for a barrier: report the full wait
  // window (lead or follow) into the "wal.barrier" contention site.
  obs::Profiler* profiler = profiler_.load(std::memory_order_acquire);
  obs::Profiler::ContentionSite* site =
      (profiler != nullptr && profiler->enabled())
          ? site_.load(std::memory_order_relaxed)
          : nullptr;
  const std::uint64_t wait_t0 =
      site != nullptr ? obs::SpanTracer::NowNs() : 0;
  if (!group_thread_.joinable()) {
    // No group thread: run the barrier inline under the lock (the classic
    // one-fsync-per-commit path).
    Status inline_status = BarrierLocked(lock, /*release_during_fsync=*/false);
    if (site != nullptr) {
      obs::Profiler::RecordSiteAcquire(site);
      obs::Profiler::RecordSiteWait(site,
                                    obs::SpanTracer::NowNs() - wait_t0);
    }
    return inline_status;
  }
  group_commit_waits_.fetch_add(1, std::memory_order_relaxed);
  // Leader/follower group commit: the first committer to find no barrier in
  // flight runs the barrier itself — on an idle log this is the exact
  // inline-fsync path, so single-committer latency pays no thread handoff.
  // Everyone else piles onto the in-flight barrier and either gets released
  // by its watermark advance or becomes the next leader, absorbing every
  // commit appended while the previous fsync ran.
  for (;;) {
    if (durable_lsn_.load(std::memory_order_relaxed) >= lsn) {
      if (site != nullptr) {
        obs::Profiler::RecordSiteAcquire(site);
        obs::Profiler::RecordSiteWait(site,
                                      obs::SpanTracer::NowNs() - wait_t0);
      }
      return Status::OK();
    }
    if (wedged_) return WedgedStatusLocked();
    if (file_ == nullptr) {
      return Status::IOError("log closed while waiting for durability");
    }
    if (!barrier_in_flight_) {
      // The barrier target is the appended watermark, which covers our lsn,
      // so one OK barrier always terminates the loop.
      SENTINEL_RETURN_NOT_OK(BarrierLocked(lock, /*release_during_fsync=*/true));
      continue;
    }
    durable_cv_.wait(lock);
  }
}

Status LogManager::BarrierLocked(std::unique_lock<std::mutex>& lock,
                                 bool release_during_fsync) {
  // Both sync-commit leaders and the group-commit thread run barriers; only
  // one at a time may own the unlocked-fsync window (barrier_in_flight_
  // doubles as the Truncate/Scan/Close guard for the naked fd).
  durable_cv_.wait(lock, [this] { return !barrier_in_flight_; });
  if (file_ == nullptr) return Status::IOError("log manager not open");
  if (wedged_) return WedgedStatusLocked();
  const Lsn target = appended_lsn_.load(std::memory_order_relaxed);
  if (target <= durable_lsn_.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  if (FailPointRegistry::AnyActive()) {
    FailPointAction action =
        FailPointRegistry::Instance().Evaluate("wal.flush");
    if (action.fired()) {
      // An injected barrier failure wedges the log exactly like a real one:
      // the bytes behind `target` are in an unknown durability state.
      Status injected = action.ToStatus("wal.flush");
      WedgeLocked(injected);
      return injected;
    }
  }
  obs::SpanScope fsync_span;
  if (obs::SpanTracer* st = span_tracer_.load(std::memory_order_acquire);
      st != nullptr && st->enabled_for(obs::SpanKind::kWalFsync)) {
    fsync_span.Start(st, obs::SpanKind::kWalFsync, kInvalidTxnId,
                     "wal.fsync");
  }
  obs::Profiler* profiler = profiler_.load(std::memory_order_acquire);
  const bool profiling = profiler != nullptr && profiler->enabled();
  const std::uint64_t cpu0 = profiling ? obs::Profiler::ThreadCpuNs() : 0;
  const std::uint64_t start_ns = obs::SpanTracer::NowNs();
  if (std::fflush(file_) != 0) {
    Status failed = Status::IOError("cannot flush log");
    WedgeLocked(failed);
    return failed;
  }
  const int fd = ::fileno(file_);
  bool synced = false;
  if (release_during_fsync) {
    // Drop the lock for the fsync so appenders keep filling the buffer; the
    // next barrier absorbs everything that arrived during this one.
    // barrier_in_flight_ keeps Truncate/Close from swapping the FILE* out
    // from under the naked fd.
    barrier_in_flight_ = true;
    lock.unlock();
    synced = ::fsync(fd) == 0;
    lock.lock();
    barrier_in_flight_ = false;
  } else {
    synced = ::fsync(fd) == 0;
  }
  if (!synced) {
    // fsyncgate: the kernel may have dropped the dirty pages on failure, so
    // a later "successful" fsync would prove nothing. Wedge permanently;
    // the durable watermark never advances past this point, so no waiter in
    // the failed batch can be woken "durable" by a subsequent barrier.
    Status failed = Status::IOError("cannot fsync log: " + path_);
    WedgeLocked(failed);
    return failed;
  }
  if (target > durable_lsn_.load(std::memory_order_relaxed)) {
    durable_lsn_.store(target, std::memory_order_release);
  }
  const std::uint64_t barrier_wall = obs::SpanTracer::NowNs() - start_ns;
  fsync_ns_.Record(barrier_wall);
  if (profiling) {
    profiler->RecordGlobal(obs::Profiler::GlobalSeam::kCommitBarrier,
                           obs::Profiler::ThreadCpuNs() - cpu0, barrier_wall);
  }
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  durable_cv_.notify_all();
  return Status::OK();
}

void LogManager::WedgeLocked(const Status& reason) {
  wedged_ = true;
  wedge_reason_ = reason.ToString();
  work_cv_.notify_all();
  durable_cv_.notify_all();
}

Status LogManager::WedgedStatusLocked() const {
  return Status::IOError("log wedged (" + wedge_reason_ +
                         "); reopen to truncate the tail");
}

void LogManager::StartGroupThreadLocked() {
  if (!options_.group_commit || group_thread_.joinable()) return;
  stop_group_ = false;
  group_thread_ = std::thread(&LogManager::GroupCommitLoop, this);
}

void LogManager::StopGroupThread() {
  std::thread thread;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!group_thread_.joinable()) return;
    stop_group_ = true;
    work_cv_.notify_all();
    durable_cv_.notify_all();
    thread = std::move(group_thread_);
  }
  thread.join();
}

void LogManager::GroupCommitLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stop_group_ ||
             (!wedged_ && file_ != nullptr &&
              requested_lsn_ > durable_lsn_.load(std::memory_order_relaxed));
    });
    if (stop_group_) return;
    // One barrier covers every request registered so far — and, because the
    // fsync runs unlocked, everything appended while it was in flight waits
    // at most one more barrier. Errors wedge the log and wake all waiters
    // inside BarrierLocked.
    (void)BarrierLocked(lock, /*release_during_fsync=*/true);
  }
}

Status LogManager::Truncate() {
  std::unique_lock<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  // Never swap the FILE* while the group thread fsyncs its fd unlocked.
  durable_cv_.wait(lock, [this] { return !barrier_in_flight_; });
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "w+b");
  if (file_ == nullptr) {
    return Status::IOError("cannot truncate log file: " + path_);
  }
  wedged_ = false;
  wedge_reason_.clear();
  // next_lsn_ keeps counting: page LSNs stamped before the checkpoint stay
  // larger than any future log record would otherwise be. The truncation
  // contract (all logged effects already durable in the data file) makes
  // every assigned LSN vacuously durable.
  const Lsn tail = next_lsn_ - 1;
  appended_lsn_.store(tail, std::memory_order_release);
  if (tail > durable_lsn_.load(std::memory_order_relaxed)) {
    durable_lsn_.store(tail, std::memory_order_release);
  }
  requested_lsn_ = tail;
  durable_cv_.notify_all();
  return Status::OK();
}

Status LogManager::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  if (wedged_) return WedgedStatusLocked();
  return WaitDurableLocked(lock,
                           appended_lsn_.load(std::memory_order_relaxed));
}

Status LogManager::WaitDurable(Lsn lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  lsn = std::min(lsn, appended_lsn_.load(std::memory_order_relaxed));
  return WaitDurableLocked(lock, lsn);
}

Status LogManager::Scan(const std::function<Status(const LogRecord&)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  // An unlocked fsync does not touch the stream position, but keep the scan
  // ordered after any in-flight barrier for a stable view of the tail.
  durable_cv_.wait(lock, [this] { return !barrier_in_flight_; });
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_SET);
  Status result;
  for (;;) {
    auto rec = ReadFrameLocked();
    if (!rec.ok()) break;  // torn/corrupt tail == end of log
    result = fn(*rec);
    if (!result.ok()) break;
  }
  std::fseek(file_, 0, SEEK_END);
  return result;
}

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

}  // namespace sentinel::storage
