#include "storage/wal.h"

#include <unistd.h>

#include <algorithm>
#include <vector>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/span.h"

namespace sentinel::storage {

namespace {
// Sanity bound on a single record: anything larger is a corrupt size field,
// not a real record (payloads carry record images, far below this).
constexpr std::uint32_t kMaxLogRecordSize = 1u << 26;
}  // namespace

LogManager::~LogManager() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<LogRecord> LogManager::ReadFrameLocked() {
  std::uint32_t size = 0;
  if (std::fread(&size, sizeof(size), 1, file_) != 1) {
    return Status::NotFound("end of log");
  }
  if (size == 0 || size > kMaxLogRecordSize) {
    return Status::Corruption("implausible log record size " +
                              std::to_string(size));
  }
  std::uint32_t stored_crc = 0;
  if (std::fread(&stored_crc, sizeof(stored_crc), 1, file_) != 1) {
    return Status::Corruption("torn log record header");
  }
  std::vector<std::uint8_t> buf(size);
  if (std::fread(buf.data(), size, 1, file_) != 1) {
    return Status::Corruption("torn log record payload");
  }
  if (Crc32(buf.data(), buf.size()) != stored_crc) {
    return Status::Corruption("log record checksum mismatch");
  }
  BytesReader reader(buf);
  auto rec = LogRecord::Deserialize(&reader);
  if (!rec.ok()) {
    return Status::Corruption("undecodable log record: " +
                              rec.status().ToString());
  }
  return rec;
}

Status LogManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::InvalidArgument("log manager already open: " + path_);
  }
  SENTINEL_FAILPOINT("wal.open");
  path_ = path;
  file_ = std::fopen(path.c_str(), "a+b");
  if (file_ == nullptr) {
    return Status::IOError("cannot open log file: " + path);
  }
  // Recover next_lsn_ by scanning the existing log; stop at the first bad
  // record and physically truncate there so a torn/corrupt tail can never
  // be mistaken for data by a later reader.
  std::fseek(file_, 0, SEEK_SET);
  next_lsn_ = 1;
  truncated_bytes_.store(0, std::memory_order_relaxed);
  wedged_ = false;
  long good_end = 0;
  for (;;) {
    auto rec = ReadFrameLocked();
    if (!rec.ok()) {
      if (rec.status().IsCorruption()) {
        SENTINEL_LOG(kWarn) << "log " << path
                            << ": bad tail record, truncating ("
                            << rec.status().ToString() << ")";
      }
      break;
    }
    if (rec->lsn >= next_lsn_) next_lsn_ = rec->lsn + 1;
    good_end = std::ftell(file_);
  }
  std::fseek(file_, 0, SEEK_END);
  const long file_size = std::ftell(file_);
  if (file_size > good_end) {
    truncated_bytes_.store(static_cast<std::uint64_t>(file_size - good_end),
                           std::memory_order_relaxed);
    if (::ftruncate(::fileno(file_), good_end) != 0) {
      return Status::IOError("cannot truncate corrupt log tail: " + path);
    }
    std::fseek(file_, 0, SEEK_END);
  }
  return Status::OK();
}

Status LogManager::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  std::fflush(file_);
  ::fsync(::fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

Result<Lsn> LogManager::Append(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  if (wedged_) {
    return Status::IOError(
        "log wedged after a partial append; reopen to truncate the tail");
  }
  record.lsn = next_lsn_++;
  BytesWriter payload;
  record.Serialize(&payload);
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = Crc32(payload.data().data(), payload.size());
  BytesWriter frame;
  frame.PutU32(size);
  frame.PutU32(crc);
  frame.PutRaw(payload.data().data(), payload.size());

  if (FailPointRegistry::AnyActive()) {
    FailPointAction action =
        FailPointRegistry::Instance().Evaluate("wal.append");
    if (action.mode == FailPointMode::kReturnError) {
      // Nothing written: withdraw the LSN so the sequence stays dense.
      --next_lsn_;
      return action.ToStatus("wal.append");
    }
    if (action.mode == FailPointMode::kTornWrite) {
      // Write a strict prefix of the frame then fail — exactly what a crash
      // mid-append leaves behind. The log is wedged until reopen.
      const std::size_t n =
          action.torn_bytes != 0
              ? std::min<std::size_t>(action.torn_bytes, frame.size() - 1)
              : frame.size() / 2;
      std::fwrite(frame.data().data(), 1, n, file_);
      std::fflush(file_);
      wedged_ = true;
      return Status::IOError("torn append injected at lsn " +
                             std::to_string(record.lsn));
    }
  }

  if (std::fwrite(frame.data().data(), frame.size(), 1, file_) != 1) {
    // The write may have landed partially; refuse further appends so the
    // only possible corruption is at the tail, where Open() truncates it.
    wedged_ = true;
    return Status::IOError("cannot append log record");
  }
  SENTINEL_FAILPOINT("wal.append.after");
  const bool force = record.type == LogRecordType::kCommit ||
                     record.type == LogRecordType::kAbort ||
                     record.type == LogRecordType::kCheckpoint;
  if (force) {
    SENTINEL_FAILPOINT("wal.flush");
    SENTINEL_RETURN_NOT_OK(FlushLocked());
  }
  return record.lsn;
}

Status LogManager::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "w+b");
  if (file_ == nullptr) {
    return Status::IOError("cannot truncate log file: " + path_);
  }
  wedged_ = false;
  // next_lsn_ keeps counting: page LSNs stamped before the checkpoint stay
  // larger than any future log record would otherwise be.
  return Status::OK();
}

Status LogManager::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  SENTINEL_FAILPOINT("wal.flush");
  return FlushLocked();
}

Status LogManager::FlushLocked() {
  obs::SpanScope fsync_span;
  if (obs::SpanTracer* st = span_tracer_.load(std::memory_order_acquire);
      st != nullptr && st->enabled_for(obs::SpanKind::kWalFsync)) {
    fsync_span.Start(st, obs::SpanKind::kWalFsync, kInvalidTxnId,
                     "wal.fsync");
  }
  const std::uint64_t start_ns = obs::SpanTracer::NowNs();
  if (std::fflush(file_) != 0) return Status::IOError("cannot flush log");
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("cannot fsync log: " + path_);
  }
  fsync_ns_.Record(obs::SpanTracer::NowNs() - start_ns);
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LogManager::Scan(const std::function<Status(const LogRecord&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("log manager not open");
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_SET);
  Status result;
  for (;;) {
    auto rec = ReadFrameLocked();
    if (!rec.ok()) break;  // torn/corrupt tail == end of log
    result = fn(*rec);
    if (!result.ok()) break;
  }
  std::fseek(file_, 0, SEEK_END);
  return result;
}

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

}  // namespace sentinel::storage
