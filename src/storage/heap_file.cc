#include "storage/heap_file.h"

#include <string>

namespace sentinel::storage {

namespace {
/// Pins `page_id`, runs `fn(SlottedPage&, Page*)`, then unpins with the
/// dirty flag returned by `fn`.
template <typename Fn>
Status WithPage(BufferPool* pool, PageId page_id, Fn fn) {
  auto page = pool->FetchPage(page_id);
  if (!page.ok()) return page.status();
  SlottedPage sp(*page);
  bool dirty = false;
  Status st = fn(sp, **page, &dirty);
  Status unpin = pool->UnpinPage(page_id, dirty);
  return st.ok() ? unpin : st;
}
}  // namespace

Result<PageId> HeapFile::Create(BufferPool* pool) {
  auto page = pool->NewPage();
  if (!page.ok()) return page.status();
  SlottedPage sp(*page);
  sp.Init();
  PageId id = (*page)->page_id();
  SENTINEL_RETURN_NOT_OK(pool->UnpinPage(id, /*dirty=*/true));
  return id;
}

Result<Rid> HeapFile::Insert(const std::vector<std::uint8_t>& record,
                             PageId start_hint) {
  if (record.size() > SlottedPage::kMaxRecordSize) {
    return Status::InvalidArgument("record exceeds max size");
  }
  PageId current = start_hint != kInvalidPageId ? start_hint : head_;
  for (;;) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    SlottedPage sp(*page);
    auto slot = sp.Insert(record.data(), static_cast<std::uint16_t>(record.size()));
    if (slot.ok()) {
      Rid rid{current, *slot};
      SENTINEL_RETURN_NOT_OK(pool_->UnpinPage(current, /*dirty=*/true));
      return rid;
    }
    PageId next = (*page)->next_page_id();
    if (next == kInvalidPageId) {
      // Append a fresh page to the chain.
      auto fresh = pool_->NewPage();
      if (!fresh.ok()) {
        (void)pool_->UnpinPage(current, false);
        return fresh.status();
      }
      SlottedPage fresh_sp(*fresh);
      fresh_sp.Init();
      next = (*fresh)->page_id();
      (*page)->set_next_page_id(next);
      SENTINEL_RETURN_NOT_OK(pool_->UnpinPage(current, /*dirty=*/true));
      SENTINEL_RETURN_NOT_OK(pool_->UnpinPage(next, /*dirty=*/true));
      if (link_logger_) SENTINEL_RETURN_NOT_OK(link_logger_(current, next));
    } else {
      SENTINEL_RETURN_NOT_OK(pool_->UnpinPage(current, /*dirty=*/false));
    }
    current = next;
  }
}

Status HeapFile::InsertAt(const Rid& rid, const std::vector<std::uint8_t>& record) {
  return WithPage(pool_, rid.page_id,
                  [&](SlottedPage& sp, Page&, bool* dirty) -> Status {
                    *dirty = true;
                    if (sp.IsLive(rid.slot)) {
                      return sp.Update(rid.slot, record.data(),
                                       static_cast<std::uint16_t>(record.size()));
                    }
                    return sp.InsertInto(
                        rid.slot, record.data(),
                        static_cast<std::uint16_t>(record.size()));
                  });
}

Result<std::vector<std::uint8_t>> HeapFile::Read(const Rid& rid) const {
  std::vector<std::uint8_t> out;
  Status st = WithPage(pool_, rid.page_id,
                       [&](SlottedPage& sp, Page&, bool*) -> Status {
                         auto rec = sp.Read(rid.slot);
                         if (!rec.ok()) return rec.status();
                         out = std::move(*rec);
                         return Status::OK();
                       });
  if (!st.ok()) return st;
  return out;
}

Status HeapFile::Update(const Rid& rid, const std::vector<std::uint8_t>& record) {
  return WithPage(pool_, rid.page_id,
                  [&](SlottedPage& sp, Page&, bool* dirty) -> Status {
                    *dirty = true;
                    return sp.Update(rid.slot, record.data(),
                                     static_cast<std::uint16_t>(record.size()));
                  });
}

Status HeapFile::Delete(const Rid& rid) {
  return WithPage(pool_, rid.page_id,
                  [&](SlottedPage& sp, Page&, bool* dirty) -> Status {
                    *dirty = true;
                    return sp.Delete(rid.slot);
                  });
}

Status HeapFile::Scan(
    const std::function<Status(const Rid&, const std::vector<std::uint8_t>&)>&
        fn) const {
  PageId current = head_;
  while (current != kInvalidPageId) {
    PageId next = kInvalidPageId;
    Status st = WithPage(pool_, current,
                         [&](SlottedPage& sp, Page& page, bool*) -> Status {
                           next = page.next_page_id();
                           for (SlotId s = 0; s < sp.slot_count(); ++s) {
                             if (!sp.IsLive(s)) continue;
                             auto rec = sp.Read(s);
                             if (!rec.ok()) return rec.status();
                             SENTINEL_RETURN_NOT_OK(fn(Rid{current, s}, *rec));
                           }
                           return Status::OK();
                         });
    SENTINEL_RETURN_NOT_OK(st);
    current = next;
  }
  return Status::OK();
}

Status HeapFile::SetPageLsn(PageId page_id, Lsn lsn) {
  return WithPage(pool_, page_id,
                  [&](SlottedPage&, Page& page, bool* dirty) -> Status {
                    if (page.lsn() < lsn) {
                      page.set_lsn(lsn);
                      *dirty = true;
                    }
                    return Status::OK();
                  });
}

}  // namespace sentinel::storage
