#ifndef SENTINEL_STORAGE_DISK_MANAGER_H_
#define SENTINEL_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace sentinel::storage {

/// File-backed page store. Pages are allocated sequentially; page 0 is
/// reserved for the database header (catalog root, page count). Thread-safe.
///
/// Fault model: transient I/O errors are retried with bounded exponential
/// backoff; Sync() and the clean-shutdown marker reach stable storage via
/// ::fsync (fflush alone only moves bytes to the OS). Failpoints
/// (`disk.open`, `disk.read`, `disk.write`, `disk.extend`, `disk.sync`,
/// `disk.sync.after`, `disk.header`) cover every choke point — see
/// DESIGN.md "Fault model & failpoints".
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if necessary) the database file.
  Status Open(const std::string& path);
  Status Close();
  bool is_open() const { return file_ != nullptr; }

  /// Allocates a fresh page and returns its id.
  Result<PageId> AllocatePage();

  /// Extends the file so that `page_id` is readable (recovery: a crash can
  /// lose the file extension even though the WAL references the page).
  Status EnsureAllocated(PageId page_id);

  /// Reads page `page_id` into `page`. The page must have been allocated.
  Status ReadPage(PageId page_id, Page* page);

  /// Writes `page` to its slot in the file.
  Status WritePage(const Page& page);

  /// Flushes OS buffers AND the OS page cache (::fsync) to stable storage.
  Status Sync();

  /// Number of pages allocated so far.
  PageId page_count() const;

  /// Clean-shutdown marker, stored on the header page. The storage engine
  /// clears it at open and sets it at close; consumers (e.g. the OID index)
  /// use it to decide whether non-WAL-logged structures can be trusted.
  /// Durable: the marker is fsync'd before returning.
  Status SetCleanShutdown(bool clean);
  Result<bool> GetCleanShutdown();

  /// Times a transient I/O error was absorbed by the retry loop.
  std::uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }
  /// Completed fsync barriers.
  std::uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  /// Latency distribution of the fsync barriers counted by sync_count().
  const obs::LatencyHistogram& fsync_histogram() const { return fsync_ns_; }

 private:
  Status ReadPageCountLocked();
  Status WritePageCountLocked();
  /// fflush + fsync; the only way bytes are guaranteed on stable storage.
  Status SyncLocked();
  /// Runs `op`, retrying transient (IOError) failures with bounded
  /// exponential backoff. Non-transient statuses fail fast.
  Status RetryTransientIo(const std::function<Status()>& op);

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  PageId page_count_ = 1;  // page 0 is the header page
  std::atomic<std::uint64_t> io_retries_{0};
  std::atomic<std::uint64_t> sync_count_{0};
  obs::LatencyHistogram fsync_ns_;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_DISK_MANAGER_H_
