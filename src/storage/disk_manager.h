#ifndef SENTINEL_STORAGE_DISK_MANAGER_H_
#define SENTINEL_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace sentinel::storage {

/// File-backed page store. Pages are allocated sequentially; page 0 is
/// reserved for the database header (catalog root, page count). Thread-safe.
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if necessary) the database file.
  Status Open(const std::string& path);
  Status Close();
  bool is_open() const { return file_ != nullptr; }

  /// Allocates a fresh page and returns its id.
  Result<PageId> AllocatePage();

  /// Extends the file so that `page_id` is readable (recovery: a crash can
  /// lose the file extension even though the WAL references the page).
  Status EnsureAllocated(PageId page_id);

  /// Reads page `page_id` into `page`. The page must have been allocated.
  Status ReadPage(PageId page_id, Page* page);

  /// Writes `page` to its slot in the file.
  Status WritePage(const Page& page);

  /// Flushes OS buffers to stable storage.
  Status Sync();

  /// Number of pages allocated so far.
  PageId page_count() const;

  /// Clean-shutdown marker, stored on the header page. The storage engine
  /// clears it at open and sets it at close; consumers (e.g. the OID index)
  /// use it to decide whether non-WAL-logged structures can be trusted.
  Status SetCleanShutdown(bool clean);
  Result<bool> GetCleanShutdown();

 private:
  Status ReadPageCountLocked();
  Status WritePageCountLocked();

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  PageId page_count_ = 1;  // page 0 is the header page
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_DISK_MANAGER_H_
