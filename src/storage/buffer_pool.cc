#include "storage/buffer_pool.h"

#include <string>

#include "common/failpoint.h"
#include "obs/span.h"

namespace sentinel::storage {

BufferPool::BufferPool(DiskManager* disk, std::size_t capacity)
    : disk_(disk), capacity_(capacity) {
  frames_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(capacity - 1 - i);
  }
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Page* page = frames_[it->second].get();
    page->Pin();
    TouchLocked(it->second);
    return page;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto frame = GetFreeFrameLocked();
  if (!frame.ok()) return frame.status();
  Page* page = frames_[*frame].get();
  obs::SpanScope read_span;
  if (obs::SpanTracer* st = span_tracer_.load(std::memory_order_acquire);
      st != nullptr && st->enabled_for(obs::SpanKind::kPageRead)) {
    read_span.Start(st, obs::SpanKind::kPageRead, kInvalidTxnId,
                    "page " + std::to_string(page_id));
  }
  SENTINEL_RETURN_NOT_OK(disk_->ReadPage(page_id, page));
  read_span.End();
  page->set_page_id(page_id);
  page->Pin();
  page_table_[page_id] = *frame;
  TouchLocked(*frame);
  return page;
}

Result<Page*> BufferPool::NewPage() {
  auto page_id = disk_->AllocatePage();
  if (!page_id.ok()) return page_id.status();
  std::lock_guard<std::mutex> lock(mu_);
  auto frame = GetFreeFrameLocked();
  if (!frame.ok()) return frame.status();
  Page* page = frames_[*frame].get();
  page->Reset();
  page->set_page_id(*page_id);
  page->set_dirty(true);
  page->Pin();
  page_table_[*page_id] = *frame;
  TouchLocked(*frame);
  return page;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::InvalidArgument("unpin of non-resident page " +
                                   std::to_string(page_id));
  }
  Page* page = frames_[it->second].get();
  if (page->pin_count() <= 0) {
    return Status::InvalidArgument("unpin of unpinned page " +
                                   std::to_string(page_id));
  }
  page->Unpin();
  if (dirty) page->set_dirty(true);
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Page* page = frames_[it->second].get();
  if (page->is_dirty()) {
    SENTINEL_RETURN_NOT_OK(disk_->WritePage(*page));
    page->set_dirty(false);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [page_id, frame] : page_table_) {
    Page* page = frames_[frame].get();
    if (page->is_dirty()) {
      SENTINEL_RETURN_NOT_OK(disk_->WritePage(*page));
      page->set_dirty(false);
    }
  }
  return Status::OK();
}

std::size_t BufferPool::resident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_table_.size();
}

std::size_t BufferPool::dirty_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dirty = 0;
  for (const auto& [page_id, frame] : page_table_) {
    (void)page_id;
    if (frames_[frame]->is_dirty()) ++dirty;
  }
  return dirty;
}

Result<std::size_t> BufferPool::GetFreeFrameLocked() {
  if (!free_frames_.empty()) {
    std::size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  // Evict the least recently used unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    std::size_t frame = *it;
    Page* page = frames_[frame].get();
    if (page->pin_count() > 0) continue;
    if (page->is_dirty()) {
      // Eviction writes a dirty page outside any commit path; a failure
      // here must surface to the caller, never silently drop the page.
      SENTINEL_FAILPOINT("bufferpool.evict");
      SENTINEL_RETURN_NOT_OK(disk_->WritePage(*page));
      page->set_dirty(false);
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
    page_table_.erase(page->page_id());
    lru_.erase(std::next(it).base());
    lru_pos_.erase(frame);
    return frame;
  }
  return Status::ResourceExhausted("all buffer pool frames are pinned");
}

void BufferPool::TouchLocked(std::size_t frame) {
  auto pos = lru_pos_.find(frame);
  if (pos != lru_pos_.end()) lru_.erase(pos->second);
  lru_.push_front(frame);
  lru_pos_[frame] = lru_.begin();
}

}  // namespace sentinel::storage
