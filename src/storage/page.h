#ifndef SENTINEL_STORAGE_PAGE_H_
#define SENTINEL_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace sentinel::storage {

using PageId = std::uint32_t;
using Lsn = std::uint64_t;

constexpr PageId kInvalidPageId = 0xFFFFFFFF;
constexpr Lsn kInvalidLsn = 0;
constexpr std::size_t kPageSize = 4096;

/// In-memory frame for one disk page. The first bytes of `data` hold a
/// PageHeader (page id, LSN of the last modifying log record, next-page link
/// for heap files); the rest is payload managed by SlottedPage.
class Page {
 public:
  /// On-page header, stored at offset 0 of every page.
  struct Header {
    PageId page_id;
    std::uint32_t reserved;  // alignment padding for lsn
    Lsn lsn;
    PageId next_page_id;
    std::uint32_t reserved2;
  };
  static_assert(sizeof(Header) == 24, "unexpected page header layout");

  Page() { Reset(); }

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  void Reset() {
    std::memset(data_, 0, kPageSize);
    header()->page_id = kInvalidPageId;
    header()->lsn = kInvalidLsn;
    header()->next_page_id = kInvalidPageId;
  }

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }

  Header* header() { return reinterpret_cast<Header*>(data_); }
  const Header* header() const { return reinterpret_cast<const Header*>(data_); }

  PageId page_id() const { return header()->page_id; }
  void set_page_id(PageId id) { header()->page_id = id; }
  Lsn lsn() const { return header()->lsn; }
  void set_lsn(Lsn lsn) { header()->lsn = lsn; }
  PageId next_page_id() const { return header()->next_page_id; }
  void set_next_page_id(PageId id) { header()->next_page_id = id; }

  /// Payload area following the header.
  static constexpr std::size_t kPayloadOffset = sizeof(Header);
  static constexpr std::size_t kPayloadSize = kPageSize - kPayloadOffset;
  std::uint8_t* payload() { return data_ + kPayloadOffset; }
  const std::uint8_t* payload() const { return data_ + kPayloadOffset; }

  // Buffer-pool bookkeeping (not persisted).
  bool is_dirty() const { return dirty_; }
  void set_dirty(bool dirty) { dirty_ = dirty; }
  int pin_count() const { return pin_count_; }
  void Pin() { ++pin_count_; }
  void Unpin() { --pin_count_; }

 private:
  alignas(8) std::uint8_t data_[kPageSize];
  bool dirty_ = false;
  int pin_count_ = 0;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_PAGE_H_
