#ifndef SENTINEL_STORAGE_RECOVERY_H_
#define SENTINEL_STORAGE_RECOVERY_H_

#include <cstdint>

#include "common/status.h"

namespace sentinel::storage {

class StorageEngine;

/// ARIES-style crash recovery over the StorageEngine's write-ahead log.
///
///   1. Analysis: scan the log, classifying transactions as committed,
///      aborted, or in-flight (losers).
///   2. Redo: reapply every logged change (including CLRs) whose LSN is newer
///      than the page LSN — history is repeated.
///   3. Undo: roll back loser transactions newest-first, writing CLRs and a
///      final abort record, so recovery is idempotent under repeated crashes.
///
/// Recovery is bounded by the WAL's durable watermark: only records with
/// LSN <= durable_lsn() participate in the passes. After a real crash the
/// unsynced tail is physically gone (or truncated as torn), so the bound is
/// normally vacuous — but async commit makes it an explicit contract: an
/// acknowledged-but-unsynced commit whose record never reached stable
/// storage is a loser, never a winner.
class RecoveryManager {
 public:
  explicit RecoveryManager(StorageEngine* engine) : engine_(engine) {}

  /// Runs the three recovery passes. Called from StorageEngine::Open.
  Status Recover();

  // Statistics from the last Recover() call (for tests and benchmarks).
  std::uint64_t redo_count() const { return redo_count_; }
  std::uint64_t undo_count() const { return undo_count_; }
  std::uint64_t loser_count() const { return loser_count_; }
  /// Log records skipped because their LSN exceeded the durable watermark
  /// at recovery start (0 after a normal reopen).
  std::uint64_t beyond_watermark_count() const {
    return beyond_watermark_count_;
  }

 private:
  StorageEngine* engine_;
  std::uint64_t redo_count_ = 0;
  std::uint64_t undo_count_ = 0;
  std::uint64_t loser_count_ = 0;
  std::uint64_t beyond_watermark_count_ = 0;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_RECOVERY_H_
