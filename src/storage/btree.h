#ifndef SENTINEL_STORAGE_BTREE_H_
#define SENTINEL_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/slotted_page.h"

namespace sentinel::storage {

/// Disk-backed B+-tree mapping u64 keys to RIDs, built over the buffer pool.
/// The role Exodus's index structures played for Open OODB: the persistence
/// manager keeps its OID -> RID index here so that reopening a database does
/// not rescan the object heap.
///
/// Design notes:
///   - The root page id is stable for the tree's lifetime (the root is
///     split in place), so callers persist it once.
///   - Leaves are chained for range scans.
///   - Deletes are lazy: entries are removed but nodes are not merged
///     (the common production trade-off); a tree rebuilt from a heap scan
///     compacts naturally.
///   - The tree itself is not WAL-logged. Callers that need crash safety
///     rebuild it from their primary data after recovery (the persistence
///     manager does exactly that); on a clean close the tree persists.
class BTree {
 public:
  /// Allocates an empty tree; returns its (stable) root page id.
  static Result<PageId> Create(BufferPool* pool);

  BTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  PageId root() const { return root_; }

  /// Inserts or overwrites `key`.
  Status Insert(std::uint64_t key, const Rid& value);

  Result<Rid> Lookup(std::uint64_t key) const;

  /// Removes `key`; NotFound if absent.
  Status Delete(std::uint64_t key);

  /// Resets the tree to empty (the root becomes an empty leaf). Interior and
  /// leaf pages below the old root are abandoned (no free list — see class
  /// comment); used when rebuilding an index after a crash.
  Status Clear();

  /// Invokes `fn(key, rid)` for every entry with from <= key <= to, in key
  /// order; stops early on non-OK.
  Status Scan(std::uint64_t from, std::uint64_t to,
              const std::function<Status(std::uint64_t, const Rid&)>& fn) const;

  /// Number of entries (walks the leaf chain).
  Result<std::size_t> Size() const;

  /// Height of the tree (1 == root is a leaf). For tests/benchmarks.
  Result<int> Height() const;

 private:
  struct SplitResult {
    bool split = false;
    std::uint64_t separator = 0;  // smallest key in the new right sibling
    PageId right = kInvalidPageId;
  };

  Status InsertRecursive(PageId node, std::uint64_t key, const Rid& value,
                         SplitResult* out);
  Result<PageId> FindLeaf(std::uint64_t key) const;

  BufferPool* pool_;
  PageId root_;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_BTREE_H_
