#ifndef SENTINEL_STORAGE_LOCK_MANAGER_H_
#define SENTINEL_STORAGE_LOCK_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "storage/log_record.h"

namespace sentinel::obs {
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::storage {

enum class LockMode : std::uint8_t { kShared = 0, kExclusive = 1 };

/// Lockable resource name. Sentinel locks records ("rid:<page>:<slot>"),
/// whole files ("file:<name>") and named objects ("oid:<n>") through the same
/// table.
using LockKey = std::string;

/// Strict two-phase-locking lock table for top-level transactions (the role
/// Exodus played for Sentinel). Shared/exclusive modes with upgrade,
/// waits-for-graph deadlock detection (the youngest transaction in the cycle
/// is the victim) and an optional wait timeout.
class LockManager {
 public:
  struct Options {
    std::chrono::milliseconds timeout{2000};
  };

  LockManager() : LockManager(Options{}) {}
  explicit LockManager(Options options) : options_(options) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `mode` on `key` for `txn`. Blocks until granted; returns
  /// kDeadlock if this transaction was chosen as a deadlock victim, or
  /// kLockTimeout after Options::timeout.
  Status Acquire(TxnId txn, const LockKey& key, LockMode mode);

  /// Releases all locks held by `txn` (strict 2PL: called at commit/abort).
  void ReleaseAll(TxnId txn);

  /// True if `txn` holds `key` in at least `mode`.
  bool Holds(TxnId txn, const LockKey& key, LockMode mode) const;

  /// Number of distinct keys currently locked (tests/benchmarks).
  std::size_t locked_key_count() const;

  /// Attaches the causal span tracer; blocking acquisitions record
  /// lock_wait spans covering the full wait.
  void set_span_tracer(obs::SpanTracer* tracer) {
    span_tracer_.store(tracer, std::memory_order_release);
  }

  /// Attaches the continuous profiler: granted acquisitions and blocking
  /// waits report into the "lock_manager" contention site (the wait window
  /// already measured for the wait histogram is reused, so profiling adds no
  /// extra clock reads on the wait path).
  void set_profiler(obs::Profiler* profiler) {
    site_.store(profiler != nullptr
                    ? profiler->GetContentionSite("lock_manager")
                    : nullptr,
                std::memory_order_relaxed);
    profiler_.store(profiler, std::memory_order_release);
  }

  /// Invoked (outside the table latch) when `txn` is chosen as a deadlock
  /// victim, with the key whose request closed the cycle — the postmortem
  /// trigger.
  using DeadlockHook = std::function<void(TxnId, const LockKey&)>;
  void set_deadlock_hook(DeadlockHook hook);

  struct LockHolder {
    TxnId txn = kInvalidTxnId;
    LockMode mode = LockMode::kShared;
  };
  struct LockInfo {
    LockKey key;
    std::vector<LockHolder> holders;
  };
  /// Currently held locks (postmortems).
  std::vector<LockInfo> SnapshotLocks() const;

  struct WaitEdge {
    TxnId txn = kInvalidTxnId;
    LockKey key;
  };
  /// txn → requested-key edges of the waits-for graph (postmortems).
  std::vector<WaitEdge> SnapshotWaits() const;

  /// Transactions currently blocked in Acquire (waits-for-graph size) — a
  /// live lock-pileup gauge for the monitoring plane.
  std::size_t waiting_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return waiting_for_.size();
  }

  std::uint64_t wait_count() const {
    return waits_.load(std::memory_order_relaxed);
  }
  std::uint64_t deadlock_count() const {
    return deadlocks_.load(std::memory_order_relaxed);
  }
  std::uint64_t timeout_count() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  const obs::LatencyHistogram& wait_histogram() const { return wait_ns_; }

 private:
  struct LockState {
    // Granted holders. Invariant: either one exclusive holder or any number
    // of shared holders.
    std::map<TxnId, LockMode> holders;
    std::condition_variable cv;
  };

  bool CanGrantLocked(const LockState& state, TxnId txn, LockMode mode) const;
  // True if granting would deadlock and `txn` is the chosen victim.
  bool WouldDeadlockLocked(TxnId txn, const LockKey& key, LockMode mode);

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<LockKey, std::unique_ptr<LockState>> table_;
  // txn -> key it is currently waiting for (for the waits-for graph).
  std::unordered_map<TxnId, LockKey> waiting_for_;
  DeadlockHook deadlock_hook_;  // guarded by mu_

  std::atomic<obs::SpanTracer*> span_tracer_{nullptr};
  std::atomic<obs::Profiler*> profiler_{nullptr};
  std::atomic<obs::Profiler::ContentionSite*> site_{nullptr};
  std::atomic<std::uint64_t> waits_{0};
  std::atomic<std::uint64_t> deadlocks_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  obs::LatencyHistogram wait_ns_;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_LOCK_MANAGER_H_
