#ifndef SENTINEL_STORAGE_SLOTTED_PAGE_H_
#define SENTINEL_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace sentinel::storage {

using SlotId = std::uint16_t;

/// Record identifier: (page, slot). Stable across in-page compaction.
struct Rid {
  PageId page_id = kInvalidPageId;
  SlotId slot = 0;

  bool valid() const { return page_id != kInvalidPageId; }
  bool operator==(const Rid& other) const {
    return page_id == other.page_id && slot == other.slot;
  }
};

/// Slotted-page layout over a Page's payload area:
///
///   [count | free_ptr | slot0 | slot1 | ... |   free space   | recN .. rec0]
///
/// Slots grow from the front, record bytes from the back. Deleted slots are
/// tombstoned (offset 0) and reused by later inserts; compaction reclaims the
/// record space while keeping slot ids stable.
class SlottedPage {
 public:
  /// Wraps (does not own) `page`. Call Init() once on a freshly allocated page.
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats an empty slot directory.
  void Init();

  /// Inserts a record and returns its slot, or ResourceExhausted when the
  /// record does not fit even after compaction.
  Result<SlotId> Insert(const std::uint8_t* data, std::uint16_t size);

  /// Places a record into a specific slot, extending the slot directory with
  /// tombstones if needed. Used by recovery redo and abort undo, which must
  /// restore records at their original RIDs. Fails if the slot is live.
  Status InsertInto(SlotId slot, const std::uint8_t* data, std::uint16_t size);

  /// Reads the record in `slot`.
  Result<std::vector<std::uint8_t>> Read(SlotId slot) const;

  /// Replaces the record in `slot`. The new record may differ in size.
  Status Update(SlotId slot, const std::uint8_t* data, std::uint16_t size);

  /// Tombstones the record in `slot`.
  Status Delete(SlotId slot);

  /// True when the slot holds a live record.
  bool IsLive(SlotId slot) const;

  std::uint16_t slot_count() const;
  /// Bytes available for a new record (accounting for its slot entry).
  std::uint16_t FreeSpace() const;

  /// Largest record this layout can ever hold in one page.
  static constexpr std::uint16_t kMaxRecordSize =
      static_cast<std::uint16_t>(Page::kPayloadSize - 8);

 private:
  struct Slot {
    std::uint16_t offset;  // 0 == tombstone; offset into payload
    std::uint16_t size;
  };

  std::uint16_t* count_ptr() const;
  std::uint16_t* free_ptr() const;  // offset of the start of record space
  Slot* slots() const;
  void Compact();

  Page* page_;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_SLOTTED_PAGE_H_
