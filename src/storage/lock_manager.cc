#include "storage/lock_manager.h"

#include <algorithm>

#include "obs/span.h"

namespace sentinel::storage {

bool LockManager::CanGrantLocked(const LockState& state, TxnId txn,
                                 LockMode mode) const {
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == txn) continue;  // self-compatibility handled by caller
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

bool LockManager::WouldDeadlockLocked(TxnId txn, const LockKey& key,
                                      LockMode mode) {
  // Build the set of transactions `txn` would wait on.
  auto blockers = [this, mode](TxnId waiter, const LockKey& k) {
    std::vector<TxnId> result;
    auto it = table_.find(k);
    if (it == table_.end()) return result;
    for (const auto& [holder, held_mode] : it->second->holders) {
      if (holder == waiter) continue;
      if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
        result.push_back(holder);
      }
    }
    return result;
  };

  // DFS over the waits-for graph starting from the transactions blocking us;
  // a path back to `txn` is a cycle. Victim policy: the requester whose
  // request closes the cycle aborts. This always breaks the cycle (waiters
  // already blocked cannot be refused retroactively) at the cost of
  // occasionally aborting an older transaction.
  std::vector<TxnId> stack = blockers(txn, key);
  std::set<TxnId> visited;
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (cur == txn) return true;
    if (!visited.insert(cur).second) continue;
    auto wait_it = waiting_for_.find(cur);
    if (wait_it == waiting_for_.end()) continue;
    auto it = table_.find(wait_it->second);
    if (it == table_.end()) continue;
    for (const auto& [holder, held_mode] : it->second->holders) {
      (void)held_mode;
      if (holder != cur) stack.push_back(holder);
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, const LockKey& key, LockMode mode) {
  obs::Profiler* profiler = profiler_.load(std::memory_order_acquire);
  obs::Profiler::ContentionSite* site =
      (profiler != nullptr && profiler->enabled())
          ? site_.load(std::memory_order_relaxed)
          : nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  auto& state_ptr = table_[key];
  if (state_ptr == nullptr) state_ptr = std::make_unique<LockState>();
  LockState& state = *state_ptr;

  auto held = state.holders.find(txn);
  if (held != state.holders.end()) {
    if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // already held in a sufficient mode
    }
    // Upgrade S -> X: wait until we are the sole holder.
  }

  const auto deadline = std::chrono::steady_clock::now() + options_.timeout;
  obs::SpanScope wait_span;
  std::uint64_t wait_start_ns = 0;
  while (!CanGrantLocked(state, txn, mode)) {
    if (wait_start_ns == 0) {
      // First blocked iteration: open the wait window.
      wait_start_ns = obs::SpanTracer::NowNs();
      waits_.fetch_add(1, std::memory_order_relaxed);
      obs::SpanTracer* st = span_tracer_.load(std::memory_order_acquire);
      if (st != nullptr && st->enabled_for(obs::SpanKind::kLockWait)) {
        wait_span.Start(st, obs::SpanKind::kLockWait, txn, key);
      }
    }
    if (WouldDeadlockLocked(txn, key, mode)) {
      deadlocks_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t waited = obs::SpanTracer::NowNs() - wait_start_ns;
      wait_ns_.Record(waited);
      if (site != nullptr) obs::Profiler::RecordSiteWait(site, waited);
      wait_span.End();
      DeadlockHook hook = deadlock_hook_;
      lock.unlock();  // the hook snapshots this table; don't hold the latch
      if (hook) hook(txn, key);
      return Status::Deadlock("deadlock victim: txn " + std::to_string(txn) +
                              " on " + key);
    }
    waiting_for_[txn] = key;
    const auto wait_status = state.cv.wait_until(lock, deadline);
    waiting_for_.erase(txn);
    if (wait_status == std::cv_status::timeout &&
        !CanGrantLocked(state, txn, mode)) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t waited = obs::SpanTracer::NowNs() - wait_start_ns;
      wait_ns_.Record(waited);
      if (site != nullptr) obs::Profiler::RecordSiteWait(site, waited);
      return Status::LockTimeout("txn " + std::to_string(txn) +
                                 " timed out waiting for " + key);
    }
  }
  if (wait_start_ns != 0) {
    const std::uint64_t waited = obs::SpanTracer::NowNs() - wait_start_ns;
    wait_ns_.Record(waited);
    if (site != nullptr) obs::Profiler::RecordSiteWait(site, waited);
  }
  if (site != nullptr) obs::Profiler::RecordSiteAcquire(site);
  state.holders[txn] = mode;
  return Status::OK();
}

void LockManager::set_deadlock_hook(DeadlockHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  deadlock_hook_ = std::move(hook);
}

std::vector<LockManager::LockInfo> LockManager::SnapshotLocks() const {
  std::vector<LockInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(table_.size());
  for (const auto& [key, state] : table_) {
    if (state->holders.empty()) continue;
    LockInfo info;
    info.key = key;
    for (const auto& [txn, mode] : state->holders) {
      info.holders.push_back({txn, mode});
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const LockInfo& a, const LockInfo& b) { return a.key < b.key; });
  return out;
}

std::vector<LockManager::WaitEdge> LockManager::SnapshotWaits() const {
  std::vector<WaitEdge> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(waiting_for_.size());
  for (const auto& [txn, key] : waiting_for_) {
    out.push_back({txn, key});
  }
  std::sort(out.begin(), out.end(), [](const WaitEdge& a, const WaitEdge& b) {
    return a.txn < b.txn;
  });
  return out;
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  waiting_for_.erase(txn);
  for (auto it = table_.begin(); it != table_.end();) {
    LockState& state = *it->second;
    auto held = state.holders.find(txn);
    if (held != state.holders.end()) {
      state.holders.erase(held);
      state.cv.notify_all();
    }
    if (state.holders.empty()) {
      // Keep the entry only if someone may be waiting on the cv; waiters
      // re-find the entry via table_[key], so it is safe to drop empty
      // states that have no waiters. We conservatively keep the node —
      // dropping requires waiter tracking; memory is reclaimed lazily by
      // the erase below when no txn waits for this key.
      bool has_waiter = false;
      for (const auto& [wtxn, wkey] : waiting_for_) {
        (void)wtxn;
        if (wkey == it->first) {
          has_waiter = true;
          break;
        }
      }
      if (!has_waiter) {
        it = table_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

bool LockManager::Holds(TxnId txn, const LockKey& key, LockMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  auto held = it->second->holders.find(txn);
  if (held == it->second->holders.end()) return false;
  return mode == LockMode::kShared || held->second == LockMode::kExclusive;
}

std::size_t LockManager::locked_key_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& [key, state] : table_) {
    (void)key;
    if (!state->holders.empty()) ++count;
  }
  return count;
}

}  // namespace sentinel::storage
