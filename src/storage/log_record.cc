#include "storage/log_record.h"

namespace sentinel::storage {

namespace {
void PutBlob(BytesWriter* out, const std::vector<std::uint8_t>& blob) {
  out->PutU32(static_cast<std::uint32_t>(blob.size()));
  out->PutRaw(blob.data(), blob.size());
}

Result<std::vector<std::uint8_t>> ReadBlob(BytesReader* in) {
  auto len = in->ReadU32();
  if (!len.ok()) return len.status();
  std::vector<std::uint8_t> blob(*len);
  for (std::uint32_t i = 0; i < *len; ++i) {
    auto b = in->ReadU8();
    if (!b.ok()) return b.status();
    blob[i] = *b;
  }
  return blob;
}
}  // namespace

void LogRecord::Serialize(BytesWriter* out) const {
  out->PutU64(lsn);
  out->PutU64(prev_lsn);
  out->PutU64(txn_id);
  out->PutU8(static_cast<std::uint8_t>(type));
  out->PutU32(rid.page_id);
  out->PutU16(rid.slot);
  PutBlob(out, before);
  PutBlob(out, after);
  out->PutU64(undo_next_lsn);
  out->PutU8(static_cast<std::uint8_t>(undone_type));
}

Result<LogRecord> LogRecord::Deserialize(BytesReader* in) {
  LogRecord rec;
  auto lsn = in->ReadU64();
  if (!lsn.ok()) return lsn.status();
  rec.lsn = *lsn;
  auto prev = in->ReadU64();
  if (!prev.ok()) return prev.status();
  rec.prev_lsn = *prev;
  auto txn = in->ReadU64();
  if (!txn.ok()) return txn.status();
  rec.txn_id = *txn;
  auto type = in->ReadU8();
  if (!type.ok()) return type.status();
  rec.type = static_cast<LogRecordType>(*type);
  auto page_id = in->ReadU32();
  if (!page_id.ok()) return page_id.status();
  rec.rid.page_id = *page_id;
  auto slot = in->ReadU16();
  if (!slot.ok()) return slot.status();
  rec.rid.slot = *slot;
  auto before = ReadBlob(in);
  if (!before.ok()) return before.status();
  rec.before = std::move(*before);
  auto after = ReadBlob(in);
  if (!after.ok()) return after.status();
  rec.after = std::move(*after);
  auto undo_next = in->ReadU64();
  if (!undo_next.ok()) return undo_next.status();
  rec.undo_next_lsn = *undo_next;
  auto undone = in->ReadU8();
  if (!undone.ok()) return undone.status();
  rec.undone_type = static_cast<LogRecordType>(*undone);
  return rec;
}

}  // namespace sentinel::storage
