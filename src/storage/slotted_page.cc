#include "storage/slotted_page.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace sentinel::storage {

// Payload layout constants.
namespace {
constexpr std::size_t kCountOffset = 0;
constexpr std::size_t kFreePtrOffset = 2;
constexpr std::size_t kSlotsOffset = 4;
}  // namespace

std::uint16_t* SlottedPage::count_ptr() const {
  return reinterpret_cast<std::uint16_t*>(page_->payload() + kCountOffset);
}

std::uint16_t* SlottedPage::free_ptr() const {
  return reinterpret_cast<std::uint16_t*>(page_->payload() + kFreePtrOffset);
}

SlottedPage::Slot* SlottedPage::slots() const {
  return reinterpret_cast<Slot*>(page_->payload() + kSlotsOffset);
}

void SlottedPage::Init() {
  *count_ptr() = 0;
  *free_ptr() = static_cast<std::uint16_t>(Page::kPayloadSize);
}

std::uint16_t SlottedPage::slot_count() const { return *count_ptr(); }

std::uint16_t SlottedPage::FreeSpace() const {
  const std::size_t slots_end = kSlotsOffset + *count_ptr() * sizeof(Slot);
  const std::size_t free_start = *free_ptr();
  if (free_start < slots_end + sizeof(Slot)) return 0;
  return static_cast<std::uint16_t>(free_start - slots_end - sizeof(Slot));
}

bool SlottedPage::IsLive(SlotId slot) const {
  if (slot >= *count_ptr()) return false;
  return slots()[slot].offset != 0;
}

Result<SlotId> SlottedPage::Insert(const std::uint8_t* data,
                                   std::uint16_t size) {
  if (size > kMaxRecordSize) {
    return Status::InvalidArgument("record too large for page: " +
                                   std::to_string(size));
  }
  // Prefer reusing a tombstoned slot (no new slot entry needed).
  const std::uint16_t count = *count_ptr();
  SlotId reuse = count;
  for (SlotId i = 0; i < count; ++i) {
    if (slots()[i].offset == 0) {
      reuse = i;
      break;
    }
  }
  const std::size_t slots_end =
      kSlotsOffset + (reuse == count ? count + 1 : count) * sizeof(Slot);
  if (*free_ptr() < slots_end + size) {
    Compact();
    if (*free_ptr() < slots_end + size) {
      return Status::ResourceExhausted("page full");
    }
  }
  *free_ptr() = static_cast<std::uint16_t>(*free_ptr() - size);
  std::memcpy(page_->payload() + *free_ptr(), data, size);
  if (reuse == count) *count_ptr() = count + 1;
  slots()[reuse] = Slot{*free_ptr(), size};
  return reuse;
}

Status SlottedPage::InsertInto(SlotId slot, const std::uint8_t* data,
                               std::uint16_t size) {
  if (size > kMaxRecordSize) {
    return Status::InvalidArgument("record too large for page");
  }
  if (IsLive(slot)) {
    return Status::AlreadyExists("slot " + std::to_string(slot) + " is live");
  }
  const std::uint16_t count = *count_ptr();
  const std::uint16_t new_count =
      std::max<std::uint16_t>(count, static_cast<std::uint16_t>(slot + 1));
  const std::size_t slots_end = kSlotsOffset + new_count * sizeof(Slot);
  if (*free_ptr() < slots_end + size) {
    Compact();
    if (*free_ptr() < slots_end + size) {
      return Status::ResourceExhausted("page full");
    }
  }
  // Tombstone any newly created directory entries.
  for (SlotId i = count; i < new_count; ++i) slots()[i] = Slot{0, 0};
  *count_ptr() = new_count;
  *free_ptr() = static_cast<std::uint16_t>(*free_ptr() - size);
  std::memcpy(page_->payload() + *free_ptr(), data, size);
  slots()[slot] = Slot{*free_ptr(), size};
  return Status::OK();
}

Result<std::vector<std::uint8_t>> SlottedPage::Read(SlotId slot) const {
  if (!IsLive(slot)) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  const Slot& s = slots()[slot];
  return std::vector<std::uint8_t>(page_->payload() + s.offset,
                                   page_->payload() + s.offset + s.size);
}

Status SlottedPage::Update(SlotId slot, const std::uint8_t* data,
                           std::uint16_t size) {
  if (!IsLive(slot)) {
    return Status::NotFound("update of dead slot " + std::to_string(slot));
  }
  Slot& s = slots()[slot];
  if (size <= s.size) {
    // Shrink in place; the slack is reclaimed by a later compaction.
    std::memcpy(page_->payload() + s.offset, data, size);
    s.size = size;
    return Status::OK();
  }
  // Re-insert at the free pointer.
  const std::size_t slots_end = kSlotsOffset + *count_ptr() * sizeof(Slot);
  if (*free_ptr() < slots_end + size) {
    s.offset = 0;  // let compaction drop the old copy
    Compact();
    if (*free_ptr() < slots_end + size) {
      return Status::ResourceExhausted("page full on update");
    }
  }
  *free_ptr() = static_cast<std::uint16_t>(*free_ptr() - size);
  std::memcpy(page_->payload() + *free_ptr(), data, size);
  s = Slot{*free_ptr(), size};
  return Status::OK();
}

Status SlottedPage::Delete(SlotId slot) {
  if (!IsLive(slot)) {
    return Status::NotFound("delete of dead slot " + std::to_string(slot));
  }
  slots()[slot].offset = 0;
  slots()[slot].size = 0;
  return Status::OK();
}

void SlottedPage::Compact() {
  // Collect live slots ordered by descending offset and repack from the end.
  const std::uint16_t count = *count_ptr();
  std::vector<SlotId> live;
  live.reserve(count);
  for (SlotId i = 0; i < count; ++i) {
    if (slots()[i].offset != 0) live.push_back(i);
  }
  std::sort(live.begin(), live.end(), [this](SlotId a, SlotId b) {
    return slots()[a].offset > slots()[b].offset;
  });
  std::uint16_t write_end = static_cast<std::uint16_t>(Page::kPayloadSize);
  for (SlotId id : live) {
    Slot& s = slots()[id];
    write_end = static_cast<std::uint16_t>(write_end - s.size);
    std::memmove(page_->payload() + write_end, page_->payload() + s.offset,
                 s.size);
    s.offset = write_end;
  }
  *free_ptr() = write_end;
}

}  // namespace sentinel::storage
