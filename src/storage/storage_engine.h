#ifndef SENTINEL_STORAGE_STORAGE_ENGINE_H_
#define SENTINEL_STORAGE_STORAGE_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/lock_manager.h"
#include "storage/wal.h"

namespace sentinel::storage {

/// The Exodus substitute: a transactional record store providing top-level
/// transactions (strict 2PL + WAL + recovery) over heap files of records.
///
/// The OODB layer (persistence manager, name manager) and Sentinel's rule
/// persistence sit on top of this interface, exactly as Sentinel sat on
/// Exodus. Nested transactions for rule execution are handled by a separate
/// manager (`src/txn/`) layered above, as in the paper.
class StorageEngine {
 public:
  struct Options {
    std::size_t buffer_pool_pages = 256;
    LockManager::Options lock_options;
    LogManager::Options wal_options;
    /// Default durability for Commit(txn); per-call overrides via
    /// Commit(txn, durability).
    CommitDurability commit_durability = CommitDurability::kSync;
  };

  StorageEngine() = default;
  ~StorageEngine();

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Opens the database + log files under `path_prefix` ("<prefix>.db",
  /// "<prefix>.wal") and runs recovery.
  Status Open(const std::string& path_prefix, const Options& options);
  Status Open(const std::string& path_prefix);
  Status Close();

  /// Test/benchmark hook: simulates a process crash. Dirty pages are
  /// abandoned (never written), in-flight transactions stay unresolved in
  /// the WAL, and the clean-shutdown marker is NOT set — the next Open runs
  /// full recovery and auxiliary-index rebuild.
  void SimulateCrash();

  // -- Transactions --------------------------------------------------------
  Result<TxnId> Begin();
  /// Commits with the engine-wide default durability (see
  /// set_commit_durability).
  Status Commit(TxnId txn);
  Status Commit(TxnId txn, CommitDurability durability);
  Status Abort(TxnId txn);

  /// Engine-wide default commit durability. kAsync acks commits on the
  /// WAL-buffer write; the group-commit thread converges durability in the
  /// background (WaitWalDurable blocks until it catches up).
  void set_commit_durability(CommitDurability durability) {
    commit_durability_.store(durability, std::memory_order_relaxed);
  }
  CommitDurability commit_durability() const {
    return commit_durability_.load(std::memory_order_relaxed);
  }
  /// Blocks until every async-acknowledged commit is on stable storage.
  Status WaitWalDurable();
  bool IsActive(TxnId txn) const;
  /// Open top-level transactions (monitoring-plane gauge).
  std::size_t active_txn_count() const {
    std::lock_guard<std::mutex> lock(txn_mu_);
    return active_.size();
  }

  // -- Heap files -----------------------------------------------------------
  /// Creates a heap file; its head page id is the handle the caller persists.
  Result<PageId> CreateHeapFile();

  // -- Record operations (locked, logged) -----------------------------------
  Result<Rid> Insert(TxnId txn, PageId file, const std::vector<std::uint8_t>& rec);
  Result<std::vector<std::uint8_t>> Read(TxnId txn, PageId file, const Rid& rid);
  Status Update(TxnId txn, PageId file, const Rid& rid,
                const std::vector<std::uint8_t>& rec);
  Status Delete(TxnId txn, PageId file, const Rid& rid);
  /// Shared-locks the whole file and scans it.
  Status Scan(TxnId txn, PageId file,
              const std::function<Status(const Rid&,
                                         const std::vector<std::uint8_t>&)>& fn);

  /// Flushes all dirty pages and the log (checkpoint-lite).
  Status Checkpoint();

  /// Lock key protecting the record at `rid` (for layers that must take the
  /// same lock without going through Read/Update, e.g. the object cache).
  static LockKey RecordLockKey(const Rid& rid) { return RecordKey(rid); }

  LockManager* lock_manager() { return lock_manager_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  LogManager* log_manager() { return log_.get(); }
  DiskManager* disk_manager() { return disk_.get(); }

  /// True if the previous session closed cleanly (flush + marker). When
  /// false, non-WAL-logged auxiliary structures (the OID index) must be
  /// rebuilt from primary data.
  bool WasCleanShutdown() const { return was_clean_shutdown_; }

 private:
  friend class RecoveryManager;

  struct TxnState {
    Lsn last_lsn = kInvalidLsn;
  };

  static LockKey RecordKey(const Rid& rid);
  static LockKey FileKey(PageId file);

  // HeapFile handle whose chain extensions are WAL-logged under `txn`.
  HeapFile OpenHeap(TxnId txn, PageId file);

  // Advisory per-file free-space hints: the chain page where the last insert
  // into each heap file landed. Insert starts its first-fit scan there
  // instead of walking the chain from the head (O(1) amortized vs O(pages)
  // per insert); Delete lowers the hint so freed space is found again.
  // In-memory only — cleared on Open/Close/SimulateCrash, because after a
  // crash a remembered page id may belong to a different file's rebuilt
  // chain.
  PageId InsertHint(PageId file) const;
  mutable std::mutex hint_mu_;
  std::unordered_map<PageId, PageId> insert_hints_;

  // Appends a log record chained to `txn`'s last LSN and stamps the page LSN.
  Result<Lsn> Log(TxnId txn, LogRecord record);
  Status UndoTxn(TxnId txn);

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<LockManager> lock_manager_;

  mutable std::mutex txn_mu_;
  std::unordered_map<TxnId, TxnState> active_;
  std::atomic<TxnId> next_txn_{1};
  std::atomic<CommitDurability> commit_durability_{CommitDurability::kSync};
  bool was_clean_shutdown_ = false;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_STORAGE_ENGINE_H_
