#ifndef SENTINEL_STORAGE_BUFFER_POOL_H_
#define SENTINEL_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace sentinel::obs {
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::storage {

/// Fixed-capacity page cache with LRU replacement of unpinned frames.
///
/// Callers must bracket page use with Fetch/New and Unpin; a pinned frame is
/// never evicted. Thread-safe via a single pool latch (adequate for the
/// workloads Sentinel drives through it; the active layer is the hot path,
/// not the buffer pool).
class BufferPool {
 public:
  BufferPool(DiskManager* disk, std::size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the frame for `page_id`, reading it from disk on miss. The frame
  /// is returned pinned.
  Result<Page*> FetchPage(PageId page_id);

  /// Allocates a new page on disk and returns its (pinned, dirty) frame.
  Result<Page*> NewPage();

  /// Releases one pin; `dirty` marks the frame as modified.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes the frame for `page_id` to disk if present and dirty.
  Status FlushPage(PageId page_id);

  /// Writes all dirty frames to disk.
  Status FlushAll();

  std::size_t capacity() const { return capacity_; }
  /// Number of resident pages (for tests/benchmarks).
  std::size_t resident_count() const;
  /// Number of resident pages with unwritten modifications (checkpoint
  /// pressure gauge; scans the frame table under the pool latch, which is
  /// fine at watchdog sampling rates).
  std::size_t dirty_count() const;
  // Counters are written under the pool latch but read lock-free by stats
  // surfaces, so they are relaxed atomics.
  std::uint64_t hit_count() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t miss_count() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t eviction_count() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Attaches the causal span tracer; disk reads on miss record page_read
  /// spans.
  void set_span_tracer(obs::SpanTracer* tracer) {
    span_tracer_.store(tracer, std::memory_order_release);
  }

 private:
  // Picks a frame to (re)use, evicting the LRU unpinned page if needed.
  // Requires mu_ held.
  Result<std::size_t> GetFreeFrameLocked();
  void TouchLocked(std::size_t frame);

  DiskManager* disk_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, std::size_t> page_table_;
  std::list<std::size_t> lru_;  // front == most recently used
  std::unordered_map<std::size_t, std::list<std::size_t>::iterator> lru_pos_;
  std::vector<std::size_t> free_frames_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<obs::SpanTracer*> span_tracer_{nullptr};
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_BUFFER_POOL_H_
