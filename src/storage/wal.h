#ifndef SENTINEL_STORAGE_WAL_H_
#define SENTINEL_STORAGE_WAL_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/log_record.h"

namespace sentinel::obs {
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::storage {

/// Append-only write-ahead log. Each entry on disk is:
///   u32 payload_size | u32 crc32(payload) | payload (serialized LogRecord)
///
/// LSNs are assigned densely (1, 2, 3, ...) at append time. Commit records
/// force a flush + fsync (WAL rule: log hits *stable storage* before the
/// commit returns); data pages carry the LSN of their last modification so
/// recovery can skip already-applied redo.
///
/// The CRC makes a torn or corrupted tail detectable: Open() scans the log,
/// truncates the file at the first bad record (short frame, checksum
/// mismatch, or undecodable payload), and never replays garbage. A failed
/// append that may have left partial bytes wedges the log — further appends
/// are refused until reopen — so corruption can only ever be at the tail.
///
/// Failpoints: `wal.open`, `wal.append` (supports torn-write),
/// `wal.append.after`, `wal.flush`.
class LogManager {
 public:
  LogManager() = default;
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  Status Open(const std::string& path);
  Status Close();

  /// Appends `record`, assigning and returning its LSN. The record's lsn
  /// field is overwritten. Commit/abort/checkpoint records are forced to
  /// stable storage before returning.
  Result<Lsn> Append(LogRecord record);

  /// Flushes buffered log entries to stable storage (fflush + fsync).
  Status Flush();

  /// Truncates the log to empty, preserving the LSN sequence. Only valid
  /// when every logged effect is already durable in the data file
  /// (checkpoint with no active transactions). Clears a wedged log.
  Status Truncate();

  /// Replays the whole log in LSN order, invoking `fn` per record. Used by
  /// recovery; stops early on a corrupt tail (a torn final write is treated
  /// as end-of-log, matching ARIES behaviour).
  Status Scan(const std::function<Status(const LogRecord&)>& fn);

  Lsn next_lsn() const;

  /// Bytes discarded from the tail by the last Open() (0 = clean log).
  std::uint64_t truncated_bytes() const {
    return truncated_bytes_.load(std::memory_order_relaxed);
  }
  /// Completed fsync barriers (forced appends + explicit flushes).
  std::uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  /// True after a failed append left possibly-partial bytes at the tail.
  bool wedged() const {
    std::lock_guard<std::mutex> lock(mu_);
    return wedged_;
  }

  /// Latency distribution of the fsync barriers counted by sync_count().
  const obs::LatencyHistogram& fsync_histogram() const { return fsync_ns_; }

  /// Attaches the causal span tracer; each fsync barrier records a
  /// wal_fsync span.
  void set_span_tracer(obs::SpanTracer* tracer) {
    span_tracer_.store(tracer, std::memory_order_release);
  }

 private:
  /// Reads one frame at the current position; distinguishes a good record
  /// from a bad/absent tail (bad == Corruption, clean EOF == NotFound).
  Result<LogRecord> ReadFrameLocked();
  Status FlushLocked();

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  Lsn next_lsn_ = 1;
  bool wedged_ = false;
  std::atomic<std::uint64_t> truncated_bytes_{0};
  std::atomic<std::uint64_t> sync_count_{0};
  std::atomic<obs::SpanTracer*> span_tracer_{nullptr};
  obs::LatencyHistogram fsync_ns_;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_WAL_H_
