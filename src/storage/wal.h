#ifndef SENTINEL_STORAGE_WAL_H_
#define SENTINEL_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "storage/log_record.h"

namespace sentinel::obs {
class SpanTracer;
}  // namespace sentinel::obs

namespace sentinel::storage {

/// How a forced append (commit/abort/checkpoint) acknowledges durability.
enum class CommitDurability {
  /// Block until the record's LSN is covered by a completed fsync barrier.
  kSync,
  /// Acknowledge once the record is in the WAL buffer; the group-commit
  /// thread converges the durable watermark in the background. A crash may
  /// lose the tail of acknowledged-but-unsynced commits (recovery treats
  /// their records as absent), but the log itself is never corrupted.
  kAsync,
};

/// Append-only write-ahead log. Each entry on disk is:
///   u32 payload_size | u32 crc32(payload) | payload (serialized LogRecord)
///
/// LSNs are assigned densely (1, 2, 3, ...) at append time. Commit records
/// force a flush + fsync (WAL rule: log hits *stable storage* before the
/// commit returns); data pages carry the LSN of their last modification so
/// recovery can skip already-applied redo.
///
/// Group commit: with Options::group_commit (default), a forced append does
/// not fsync inline. It registers a durability request keyed by its LSN and
/// blocks on a condition variable while a dedicated group-commit thread
/// coalesces every pending request into one fflush + one fsync barrier,
/// then wakes all waiters whose LSN <= the new durable watermark. Appenders
/// keep running while the fsync is in flight (the mutex is dropped around
/// the fsync), so the next barrier absorbs everything that arrived during
/// the previous one. With group_commit=false every forced append performs
/// its own inline barrier (the pre-group-commit behaviour; benchmarks use
/// it as the per-commit-fsync baseline).
///
/// Durability watermarks: appended_lsn() is the highest LSN whose frame is
/// fully in the stdio buffer; durable_lsn() is the highest LSN covered by a
/// completed fsync barrier. A barrier is skipped entirely when its target
/// is already durable (an explicit Flush() raced in, or a concurrent
/// commit's barrier covered it), so sync_count() counts only real fsyncs.
///
/// The CRC makes a torn or corrupted tail detectable: Open() scans the log,
/// truncates the file at the first bad record (short frame, checksum
/// mismatch, or undecodable payload), and never replays garbage. A failed
/// append that may have left partial bytes wedges the log — further appends
/// are refused until reopen — so corruption can only ever be at the tail.
/// A failed fflush/fsync barrier wedges the log the same way (fsyncgate:
/// after a failed fsync the kernel may drop the dirty pages, so a later
/// "successful" fsync proves nothing). Every waiter in the failed batch
/// receives the error; the durable watermark never advances past a wedge,
/// so no waiter can be woken "durable" by a subsequent barrier.
///
/// Failpoints: `wal.open`, `wal.append` (supports torn-write),
/// `wal.append.after`, `wal.flush` (evaluated once per barrier, at the
/// barrier site — group thread or inline).
class LogManager {
 public:
  struct Options {
    /// Coalesce forced appends through the group-commit thread. When false
    /// every forced append runs its own inline fsync barrier.
    bool group_commit = true;
  };

  LogManager() = default;
  explicit LogManager(Options options) : options_(options) {}
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  Status Open(const std::string& path);
  Status Close();

  /// Appends `record`, assigning and returning its LSN. The record's lsn
  /// field is overwritten. Commit/abort/checkpoint records are forced:
  /// with kSync the call blocks until the record is on stable storage,
  /// with kAsync it returns as soon as the record is buffered and leaves
  /// the barrier to the group-commit thread.
  Result<Lsn> Append(LogRecord record,
                     CommitDurability durability = CommitDurability::kSync);

  /// Brings every appended record to stable storage. Skips the barrier when
  /// the buffer holds nothing beyond the durable watermark.
  Status Flush();

  /// Blocks until durable_lsn() >= lsn (or the log wedges/closes). Used to
  /// converge async commits before a checkpoint or shutdown.
  Status WaitDurable(Lsn lsn);

  /// Truncates the log to empty, preserving the LSN sequence. Only valid
  /// when every logged effect is already durable in the data file
  /// (checkpoint with no active transactions). Clears a wedged log.
  Status Truncate();

  /// Replays the whole log in LSN order, invoking `fn` per record. Used by
  /// recovery; stops early on a corrupt tail (a torn final write is treated
  /// as end-of-log, matching ARIES behaviour).
  Status Scan(const std::function<Status(const LogRecord&)>& fn);

  Lsn next_lsn() const;

  /// Highest LSN whose frame is fully in the WAL buffer.
  Lsn appended_lsn() const {
    return appended_lsn_.load(std::memory_order_acquire);
  }
  /// Highest LSN covered by a completed fsync barrier. Lock-free: safe to
  /// read from metrics/watchdog samplers.
  Lsn durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }

  /// Bytes discarded from the tail by the last Open() (0 = clean log).
  std::uint64_t truncated_bytes() const {
    return truncated_bytes_.load(std::memory_order_relaxed);
  }
  /// Completed fsync barriers. With group commit this counts batches, not
  /// commits; redundant barriers (target already durable) are skipped and
  /// not counted.
  std::uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  /// Forced appends that blocked for (or piggybacked on) a group barrier.
  std::uint64_t group_commit_waits() const {
    return group_commit_waits_.load(std::memory_order_relaxed);
  }
  /// Forced appends acknowledged in kAsync mode (no durability wait).
  std::uint64_t async_commits() const {
    return async_commits_.load(std::memory_order_relaxed);
  }
  /// True after a failed append or a failed fsync barrier; the log refuses
  /// further appends and barriers until reopen.
  bool wedged() const {
    std::lock_guard<std::mutex> lock(mu_);
    return wedged_;
  }

  /// Latency distribution of the fsync barriers counted by sync_count().
  const obs::LatencyHistogram& fsync_histogram() const { return fsync_ns_; }

  /// Attaches the causal span tracer; each fsync barrier records a
  /// wal_fsync span.
  void set_span_tracer(obs::SpanTracer* tracer) {
    span_tracer_.store(tracer, std::memory_order_release);
  }

  /// Attaches the continuous profiler: each completed fsync barrier records
  /// into the commit_barrier global seam, and forced appends that block for
  /// a barrier report into the "wal.barrier" contention site.
  void set_profiler(obs::Profiler* profiler) {
    site_.store(profiler != nullptr
                    ? profiler->GetContentionSite("wal.barrier")
                    : nullptr,
                std::memory_order_relaxed);
    profiler_.store(profiler, std::memory_order_release);
  }

 private:
  /// Reads one frame at the current position; distinguishes a good record
  /// from a bad/absent tail (bad == Corruption, clean EOF == NotFound).
  Result<LogRecord> ReadFrameLocked();

  /// Runs one fsync barrier covering everything appended so far. Evaluates
  /// the `wal.flush` failpoint, then fflush under the lock and fsync with
  /// the lock dropped (when `release_during_fsync`), so appenders coalesce
  /// into the next barrier. Wedges the log on any failure. Notifies
  /// durable_cv_ on completion (success or wedge).
  Status BarrierLocked(std::unique_lock<std::mutex>& lock,
                       bool release_during_fsync);
  /// Blocks until durable_lsn_ >= lsn, registering barrier demand with the
  /// group thread (or running the barrier inline without one). Returns the
  /// wedge error if the log wedges first.
  Status WaitDurableLocked(std::unique_lock<std::mutex>& lock, Lsn lsn);
  /// Marks the log wedged with `reason` and wakes every waiter.
  void WedgeLocked(const Status& reason);
  Status WedgedStatusLocked() const;
  void StartGroupThreadLocked();
  /// Stops and joins the group thread; callers must NOT hold mu_.
  void StopGroupThread();
  void GroupCommitLoop();

  const Options options_{};
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  Lsn next_lsn_ = 1;
  bool wedged_ = false;
  std::string wedge_reason_;
  std::atomic<Lsn> appended_lsn_{0};
  std::atomic<Lsn> durable_lsn_{0};
  Lsn requested_lsn_ = 0;  // highest LSN with registered barrier demand
  bool barrier_in_flight_ = false;
  bool stop_group_ = false;
  std::thread group_thread_;
  std::condition_variable work_cv_;     // wakes the group thread
  std::condition_variable durable_cv_;  // wakes commit waiters + barrier joins
  std::atomic<std::uint64_t> truncated_bytes_{0};
  std::atomic<std::uint64_t> sync_count_{0};
  std::atomic<std::uint64_t> group_commit_waits_{0};
  std::atomic<std::uint64_t> async_commits_{0};
  std::atomic<obs::SpanTracer*> span_tracer_{nullptr};
  std::atomic<obs::Profiler*> profiler_{nullptr};
  std::atomic<obs::Profiler::ContentionSite*> site_{nullptr};
  obs::LatencyHistogram fsync_ns_;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_WAL_H_
