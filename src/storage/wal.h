#ifndef SENTINEL_STORAGE_WAL_H_
#define SENTINEL_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/log_record.h"

namespace sentinel::storage {

/// Append-only write-ahead log. Each entry on disk is:
///   u32 payload_size | payload (serialized LogRecord)
///
/// LSNs are assigned densely (1, 2, 3, ...) at append time. Commit records
/// force a flush (WAL rule: log hits stable storage before the commit
/// returns); data pages carry the LSN of their last modification so recovery
/// can skip already-applied redo.
class LogManager {
 public:
  LogManager() = default;
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  Status Open(const std::string& path);
  Status Close();

  /// Appends `record`, assigning and returning its LSN. The record's lsn
  /// field is overwritten.
  Result<Lsn> Append(LogRecord record);

  /// Flushes buffered log entries to the OS.
  Status Flush();

  /// Truncates the log to empty, preserving the LSN sequence. Only valid
  /// when every logged effect is already durable in the data file
  /// (checkpoint with no active transactions).
  Status Truncate();

  /// Replays the whole log in LSN order, invoking `fn` per record. Used by
  /// recovery; stops early on a corrupt tail (a torn final write is treated
  /// as end-of-log, matching ARIES behaviour).
  Status Scan(const std::function<Status(const LogRecord&)>& fn);

  Lsn next_lsn() const;

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  Lsn next_lsn_ = 1;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_WAL_H_
