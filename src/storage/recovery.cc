#include "storage/recovery.h"

#include <map>
#include <set>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "storage/heap_file.h"
#include "storage/storage_engine.h"

namespace sentinel::storage {

Status RecoveryManager::Recover() {
  redo_count_ = undo_count_ = loser_count_ = beyond_watermark_count_ = 0;

  // Durability bound: nothing past the fsync watermark participates in
  // recovery. Open() sets the watermark to the scanned tail, so this is
  // normally every surviving record; the explicit check keeps async-commit
  // semantics honest if recovery ever runs against a live log.
  const Lsn durable = engine_->log_->durable_lsn();

  // ---- Pass 1: analysis ----------------------------------------------------
  std::set<TxnId> finished;  // committed or fully aborted
  std::map<TxnId, Lsn> last_lsn;
  std::vector<LogRecord> all;
  SENTINEL_RETURN_NOT_OK(engine_->log_->Scan([&](const LogRecord& rec) {
    if (rec.lsn > durable) {
      ++beyond_watermark_count_;
      SENTINEL_LOG(kWarn) << "recovery: skipping lsn " << rec.lsn
                          << " beyond durable watermark " << durable;
      return Status::OK();
    }
    all.push_back(rec);
    if (rec.txn_id != kInvalidTxnId) {
      last_lsn[rec.txn_id] = rec.lsn;
      if (rec.type == LogRecordType::kCommit ||
          rec.type == LogRecordType::kAbort) {
        finished.insert(rec.txn_id);
      }
    }
    // Keep txn ids monotone across restarts.
    TxnId expected = engine_->next_txn_.load();
    while (rec.txn_id >= expected &&
           !engine_->next_txn_.compare_exchange_weak(expected,
                                                     rec.txn_id + 1)) {
    }
    return Status::OK();
  }));

  std::set<TxnId> losers;
  for (const auto& [txn, lsn] : last_lsn) {
    (void)lsn;
    if (finished.find(txn) == finished.end()) losers.insert(txn);
  }
  loser_count_ = losers.size();

  // ---- Pass 2: redo (repeat history) ----------------------------------------
  for (const LogRecord& rec : all) {
    const bool is_change = rec.type == LogRecordType::kInsert ||
                           rec.type == LogRecordType::kDelete ||
                           rec.type == LogRecordType::kUpdate ||
                           rec.type == LogRecordType::kClr ||
                           rec.type == LogRecordType::kPageLink;
    if (!is_change) continue;
    // Crash/fault site per redone record: recovery must be idempotent, so a
    // crash here simply means the next recovery replays the same prefix.
    SENTINEL_FAILPOINT("recovery.redo");
    // A crash can lose the physical file extension; re-extend before reading.
    SENTINEL_RETURN_NOT_OK(engine_->disk_->EnsureAllocated(rec.rid.page_id));
    HeapFile heap(engine_->pool_.get(), rec.rid.page_id);
    // Page-LSN test: only redo changes the page has not seen.
    auto page = engine_->pool_->FetchPage(rec.rid.page_id);
    if (!page.ok()) return page.status();
    const Lsn page_lsn = (*page)->lsn();
    SENTINEL_RETURN_NOT_OK(engine_->pool_->UnpinPage(rec.rid.page_id, false));
    if (page_lsn >= rec.lsn) continue;

    Status st;
    switch (rec.type) {
      case LogRecordType::kPageLink: {
        const PageId next = static_cast<PageId>(rec.after[0]) |
                            static_cast<PageId>(rec.after[1]) << 8 |
                            static_cast<PageId>(rec.after[2]) << 16 |
                            static_cast<PageId>(rec.after[3]) << 24;
        SENTINEL_RETURN_NOT_OK(engine_->disk_->EnsureAllocated(next));
        auto parent = engine_->pool_->FetchPage(rec.rid.page_id);
        if (!parent.ok()) return parent.status();
        (*parent)->set_next_page_id(next);
        st = engine_->pool_->UnpinPage(rec.rid.page_id, /*dirty=*/true);
        break;
      }
      case LogRecordType::kInsert:
        st = heap.InsertAt(rec.rid, rec.after);
        break;
      case LogRecordType::kDelete:
        st = heap.Delete(rec.rid);
        break;
      case LogRecordType::kUpdate:
        st = heap.Update(rec.rid, rec.after);
        break;
      case LogRecordType::kClr:
        switch (rec.undone_type) {
          case LogRecordType::kInsert:
            st = heap.Delete(rec.rid);
            break;
          case LogRecordType::kDelete:
            st = heap.InsertAt(rec.rid, rec.after);
            break;
          case LogRecordType::kUpdate:
            st = heap.Update(rec.rid, rec.after);
            break;
          default:
            break;
        }
        break;
      default:
        break;
    }
    if (!st.ok()) {
      SENTINEL_LOG(kWarn) << "redo of lsn " << rec.lsn
                          << " failed: " << st.ToString();
      return st;
    }
    SENTINEL_RETURN_NOT_OK(heap.SetPageLsn(rec.rid.page_id, rec.lsn));
    ++redo_count_;
  }

  // ---- Pass 3: undo losers ---------------------------------------------------
  for (TxnId loser : losers) {
    SENTINEL_FAILPOINT("recovery.undo");
    // Register as active so UndoTxn's logging path works, then roll back.
    {
      std::lock_guard<std::mutex> lock(engine_->txn_mu_);
      engine_->active_[loser] = StorageEngine::TxnState{last_lsn[loser]};
    }
    SENTINEL_RETURN_NOT_OK(engine_->UndoTxn(loser));
    {
      std::lock_guard<std::mutex> lock(engine_->txn_mu_);
      auto it = engine_->active_.find(loser);
      LogRecord abort_rec;
      abort_rec.txn_id = loser;
      abort_rec.type = LogRecordType::kAbort;
      abort_rec.prev_lsn =
          it != engine_->active_.end() ? it->second.last_lsn : kInvalidLsn;
      SENTINEL_RETURN_NOT_OK(
          engine_->log_->Append(std::move(abort_rec)).status());
      engine_->active_.erase(loser);
    }
    ++undo_count_;
  }

  SENTINEL_RETURN_NOT_OK(engine_->pool_->FlushAll());
  return Status::OK();
}

}  // namespace sentinel::storage
