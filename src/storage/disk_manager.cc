#include "storage/disk_manager.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/failpoint.h"

namespace sentinel::storage {

namespace {
// The header page stores the allocated page count at payload offset 0.
constexpr long PageOffset(PageId page_id) {
  return static_cast<long>(page_id) * static_cast<long>(kPageSize);
}

constexpr int kMaxIoAttempts = 4;
constexpr std::chrono::milliseconds kRetryBackoffBase{1};
}  // namespace

DiskManager::~DiskManager() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status DiskManager::RetryTransientIo(const std::function<Status()>& op) {
  Status st;
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    if (attempt > 0) {
      io_retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(kRetryBackoffBase * (1 << (attempt - 1)));
      // A failed stdio op can leave the stream's error flag set, which
      // would poison the retry.
      if (file_ != nullptr) std::clearerr(file_);
    }
    st = op();
    if (st.ok() || !st.IsIOError()) return st;
  }
  return st;
}

Status DiskManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::InvalidArgument("disk manager already open: " + path_);
  }
  SENTINEL_FAILPOINT("disk.open");
  path_ = path;
  // Try existing file first, then create.
  file_ = std::fopen(path.c_str(), "r+b");
  const bool created = (file_ == nullptr);
  if (created) {
    file_ = std::fopen(path.c_str(), "w+b");
    if (file_ == nullptr) {
      return Status::IOError("cannot create database file: " + path);
    }
    page_count_ = 1;
    Page header;
    header.set_page_id(0);
    if (std::fwrite(header.data(), kPageSize, 1, file_) != 1) {
      return Status::IOError("cannot initialize header page: " + path);
    }
    SENTINEL_RETURN_NOT_OK(WritePageCountLocked());
  } else {
    SENTINEL_RETURN_NOT_OK(ReadPageCountLocked());
  }
  return Status::OK();
}

Status DiskManager::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  SENTINEL_RETURN_NOT_OK(WritePageCountLocked());
  SENTINEL_RETURN_NOT_OK(SyncLocked());
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("disk manager not open");
  SENTINEL_FAILPOINT("disk.extend");
  PageId id = page_count_++;
  // Extend the file with a zeroed page so later reads succeed.
  Page fresh;
  fresh.set_page_id(id);
  SENTINEL_RETURN_NOT_OK(RetryTransientIo([&]() -> Status {
    if (std::fseek(file_, PageOffset(id), SEEK_SET) != 0 ||
        std::fwrite(fresh.data(), kPageSize, 1, file_) != 1) {
      return Status::IOError("cannot extend database file");
    }
    return Status::OK();
  }));
  SENTINEL_RETURN_NOT_OK(WritePageCountLocked());
  return id;
}

Status DiskManager::EnsureAllocated(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("disk manager not open");
  SENTINEL_FAILPOINT("disk.extend");
  while (page_count_ <= page_id) {
    PageId id = page_count_++;
    Page fresh;
    fresh.set_page_id(id);
    SENTINEL_RETURN_NOT_OK(RetryTransientIo([&]() -> Status {
      if (std::fseek(file_, PageOffset(id), SEEK_SET) != 0 ||
          std::fwrite(fresh.data(), kPageSize, 1, file_) != 1) {
        return Status::IOError("cannot extend database file");
      }
      return Status::OK();
    }));
  }
  return WritePageCountLocked();
}

Status DiskManager::ReadPage(PageId page_id, Page* page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("disk manager not open");
  if (page_id >= page_count_) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(page_id));
  }
  SENTINEL_RETURN_NOT_OK(RetryTransientIo([&]() -> Status {
    SENTINEL_FAILPOINT("disk.read");
    if (std::fseek(file_, PageOffset(page_id), SEEK_SET) != 0 ||
        std::fread(page->data(), kPageSize, 1, file_) != 1) {
      return Status::IOError("cannot read page " + std::to_string(page_id));
    }
    return Status::OK();
  }));
  page->set_dirty(false);
  return Status::OK();
}

Status DiskManager::WritePage(const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("disk manager not open");
  if (page.page_id() >= page_count_) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(page.page_id()));
  }
  return RetryTransientIo([&]() -> Status {
    if (FailPointRegistry::AnyActive()) {
      FailPointAction action =
          FailPointRegistry::Instance().Evaluate("disk.write");
      if (action.mode == FailPointMode::kTornWrite) {
        // Write a prefix of the page, then fail — a torn page write. A
        // successful retry (or recovery redo) repairs it.
        const std::size_t n = action.torn_bytes != 0
                                  ? std::min<std::size_t>(action.torn_bytes,
                                                          kPageSize)
                                  : kPageSize / 2;
        if (std::fseek(file_, PageOffset(page.page_id()), SEEK_SET) == 0) {
          std::fwrite(page.data(), 1, n, file_);
          std::fflush(file_);
        }
        return Status::IOError("torn write injected at page " +
                               std::to_string(page.page_id()));
      }
      if (action.fired()) return action.ToStatus("disk.write");
    }
    if (std::fseek(file_, PageOffset(page.page_id()), SEEK_SET) != 0 ||
        std::fwrite(page.data(), kPageSize, 1, file_) != 1) {
      return Status::IOError("cannot write page " +
                             std::to_string(page.page_id()));
    }
    return Status::OK();
  });
}

Status DiskManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("disk manager not open");
  SENTINEL_RETURN_NOT_OK(RetryTransientIo([&]() -> Status {
    SENTINEL_FAILPOINT("disk.sync");
    return SyncLocked();
  }));
  // Crash site after the durability barrier: everything written so far must
  // survive a crash landing here.
  SENTINEL_FAILPOINT("disk.sync.after");
  return Status::OK();
}

Status DiskManager::SyncLocked() {
  const auto start = std::chrono::steady_clock::now();
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed: " + path_);
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("fsync failed: " + path_);
  }
  fsync_ns_.Record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

PageId DiskManager::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

Status DiskManager::SetCleanShutdown(bool clean) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("disk manager not open");
  SENTINEL_FAILPOINT("disk.header");
  // Flag lives just after the page count on the header page.
  const long offset =
      PageOffset(0) + static_cast<long>(Page::kPayloadOffset + sizeof(PageId));
  std::uint8_t flag = clean ? 1 : 0;
  SENTINEL_RETURN_NOT_OK(RetryTransientIo([&]() -> Status {
    if (std::fseek(file_, offset, SEEK_SET) != 0 ||
        std::fwrite(&flag, sizeof(flag), 1, file_) != 1) {
      return Status::IOError("cannot write clean-shutdown flag");
    }
    return Status::OK();
  }));
  // The marker is a durability barrier: readers trust non-WAL-logged
  // structures based on it, so it must actually be on stable storage.
  return RetryTransientIo([&]() -> Status { return SyncLocked(); });
}

Result<bool> DiskManager::GetCleanShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::IOError("disk manager not open");
  const long offset =
      PageOffset(0) + static_cast<long>(Page::kPayloadOffset + sizeof(PageId));
  std::uint8_t flag = 0;
  if (std::fseek(file_, offset, SEEK_SET) != 0 ||
      std::fread(&flag, sizeof(flag), 1, file_) != 1) {
    return Status::IOError("cannot read clean-shutdown flag");
  }
  return flag != 0;
}

Status DiskManager::ReadPageCountLocked() {
  if (std::fseek(file_, PageOffset(0) + Page::kPayloadOffset, SEEK_SET) != 0) {
    return Status::IOError("cannot seek to header page");
  }
  PageId count = 0;
  if (std::fread(&count, sizeof(count), 1, file_) != 1) {
    return Status::Corruption("cannot read page count from header page");
  }
  if (count == 0) count = 1;
  page_count_ = count;
  return Status::OK();
}

Status DiskManager::WritePageCountLocked() {
  SENTINEL_FAILPOINT("disk.header");
  return RetryTransientIo([&]() -> Status {
    if (std::fseek(file_, PageOffset(0) + Page::kPayloadOffset, SEEK_SET) !=
        0) {
      return Status::IOError("cannot seek to header page");
    }
    if (std::fwrite(&page_count_, sizeof(page_count_), 1, file_) != 1) {
      return Status::IOError("cannot persist page count");
    }
    return Status::OK();
  });
}

}  // namespace sentinel::storage
