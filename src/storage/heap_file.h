#ifndef SENTINEL_STORAGE_HEAP_FILE_H_
#define SENTINEL_STORAGE_HEAP_FILE_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/slotted_page.h"

namespace sentinel::storage {

/// Unordered record file: a singly linked chain of slotted pages. The head
/// page id is the file's identity (persisted in the catalog by the OODB
/// layer).
class HeapFile {
 public:
  /// Creates a new heap file; returns its head page id.
  static Result<PageId> Create(BufferPool* pool);

  /// Invoked when Insert appends a page to the chain, with (parent, fresh)
  /// page ids. The storage engine uses this to WAL-log the structural change
  /// so recovery can rebuild chains whose pages never reached disk.
  using LinkLogger = std::function<Status(PageId, PageId)>;

  /// Opens an existing heap file whose chain starts at `head_page_id`.
  HeapFile(BufferPool* pool, PageId head_page_id)
      : pool_(pool), head_(head_page_id) {}
  HeapFile(BufferPool* pool, PageId head_page_id, LinkLogger link_logger)
      : pool_(pool), head_(head_page_id), link_logger_(std::move(link_logger)) {}

  PageId head_page_id() const { return head_; }

  /// Inserts a record into the first page with room, appending a page to the
  /// chain when all are full. `start_hint`, when valid, names a chain page
  /// to start the first-fit scan from instead of the head — callers that
  /// remember where their last insert landed (StorageEngine keeps a per-file
  /// hint) avoid rescanning the full pages before it. Pages before the hint
  /// are never revisited, so a stale-high hint trades space for speed; pass
  /// kInvalidPageId for the exact from-the-head first-fit scan.
  Result<Rid> Insert(const std::vector<std::uint8_t>& record,
                     PageId start_hint = kInvalidPageId);

  /// Inserts into a specific slot (used by recovery redo and abort undo so
  /// that RIDs are preserved exactly).
  Status InsertAt(const Rid& rid, const std::vector<std::uint8_t>& record);

  Result<std::vector<std::uint8_t>> Read(const Rid& rid) const;
  Status Update(const Rid& rid, const std::vector<std::uint8_t>& record);
  Status Delete(const Rid& rid);

  /// Invokes `fn(rid, bytes)` for every live record; stops on non-OK.
  Status Scan(const std::function<Status(const Rid&,
                                         const std::vector<std::uint8_t>&)>& fn)
      const;

  /// Stamps `lsn` on the page holding `rid` (WAL page-LSN protocol).
  Status SetPageLsn(PageId page_id, Lsn lsn);

 private:
  BufferPool* pool_;
  PageId head_;
  LinkLogger link_logger_;
};

}  // namespace sentinel::storage

#endif  // SENTINEL_STORAGE_HEAP_FILE_H_
