#include "storage/btree.h"

#include <cstring>
#include <vector>

namespace sentinel::storage {

namespace {

// Node layout within a page's payload:
//   u8  is_leaf | u8 pad | u16 count | u32 link
//   link: next-leaf page id (leaves) or first child page id (internal)
//   entries at offset 8:
//     leaf:     { u64 key, u32 page, u16 slot, u16 pad }   (16 bytes)
//     internal: { u64 key, u32 child }                      (12 bytes)
// Internal invariant: `link` (first child) holds keys < entries[0].key;
// entries[i].child holds keys in [entries[i].key, entries[i+1].key).
constexpr std::size_t kHeaderSize = 8;
constexpr std::size_t kLeafEntrySize = 16;
constexpr std::size_t kInternalEntrySize = 12;
constexpr std::uint16_t kLeafCapacity =
    static_cast<std::uint16_t>((Page::kPayloadSize - kHeaderSize) /
                               kLeafEntrySize);
constexpr std::uint16_t kInternalCapacity =
    static_cast<std::uint16_t>((Page::kPayloadSize - kHeaderSize) /
                               kInternalEntrySize);

struct LeafEntry {
  std::uint64_t key;
  std::uint32_t page;
  std::uint16_t slot;
  std::uint16_t pad;
};
static_assert(sizeof(LeafEntry) == kLeafEntrySize);

#pragma pack(push, 1)
struct InternalEntry {
  std::uint64_t key;
  std::uint32_t child;
};
#pragma pack(pop)
static_assert(sizeof(InternalEntry) == kInternalEntrySize);

/// Typed view over a node page's payload.
struct Node {
  std::uint8_t* payload;

  bool is_leaf() const { return payload[0] != 0; }
  void set_is_leaf(bool leaf) { payload[0] = leaf ? 1 : 0; }
  std::uint16_t count() const {
    std::uint16_t c;
    std::memcpy(&c, payload + 2, sizeof(c));
    return c;
  }
  void set_count(std::uint16_t c) { std::memcpy(payload + 2, &c, sizeof(c)); }
  std::uint32_t link() const {
    std::uint32_t l;
    std::memcpy(&l, payload + 4, sizeof(l));
    return l;
  }
  void set_link(std::uint32_t l) { std::memcpy(payload + 4, &l, sizeof(l)); }

  LeafEntry* leaf_entries() {
    return reinterpret_cast<LeafEntry*>(payload + kHeaderSize);
  }
  InternalEntry* internal_entries() {
    return reinterpret_cast<InternalEntry*>(payload + kHeaderSize);
  }

  // Index of the first leaf entry with key >= k.
  std::uint16_t LeafLowerBound(std::uint64_t k) {
    std::uint16_t lo = 0, hi = count();
    while (lo < hi) {
      std::uint16_t mid = static_cast<std::uint16_t>((lo + hi) / 2);
      if (leaf_entries()[mid].key < k) {
        lo = static_cast<std::uint16_t>(mid + 1);
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Child page to descend into for key k (internal nodes).
  std::uint32_t ChildFor(std::uint64_t k) {
    std::uint32_t child = link();
    InternalEntry* entries = internal_entries();
    for (std::uint16_t i = 0; i < count(); ++i) {
      if (entries[i].key <= k) {
        child = entries[i].child;
      } else {
        break;
      }
    }
    return child;
  }
};

void InitLeaf(Page* page) {
  Node node{page->payload()};
  node.set_is_leaf(true);
  node.set_count(0);
  node.set_link(kInvalidPageId);
}

}  // namespace

Result<PageId> BTree::Create(BufferPool* pool) {
  auto page = pool->NewPage();
  if (!page.ok()) return page.status();
  InitLeaf(*page);
  PageId id = (*page)->page_id();
  SENTINEL_RETURN_NOT_OK(pool->UnpinPage(id, /*dirty=*/true));
  return id;
}

Result<PageId> BTree::FindLeaf(std::uint64_t key) const {
  PageId current = root_;
  for (;;) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    Node node{(*page)->payload()};
    if (node.is_leaf()) {
      SENTINEL_RETURN_NOT_OK(pool_->UnpinPage(current, false));
      return current;
    }
    PageId next = node.ChildFor(key);
    SENTINEL_RETURN_NOT_OK(pool_->UnpinPage(current, false));
    current = next;
  }
}

Result<Rid> BTree::Lookup(std::uint64_t key) const {
  auto leaf_id = FindLeaf(key);
  if (!leaf_id.ok()) return leaf_id.status();
  auto page = pool_->FetchPage(*leaf_id);
  if (!page.ok()) return page.status();
  Node node{(*page)->payload()};
  std::uint16_t pos = node.LeafLowerBound(key);
  Result<Rid> result = Status::NotFound("key not in index");
  if (pos < node.count() && node.leaf_entries()[pos].key == key) {
    const LeafEntry& entry = node.leaf_entries()[pos];
    result = Rid{entry.page, entry.slot};
  }
  SENTINEL_RETURN_NOT_OK(pool_->UnpinPage(*leaf_id, false));
  return result;
}

Status BTree::InsertRecursive(PageId node_id, std::uint64_t key,
                              const Rid& value, SplitResult* out) {
  out->split = false;
  auto page = pool_->FetchPage(node_id);
  if (!page.ok()) return page.status();
  Node node{(*page)->payload()};

  if (node.is_leaf()) {
    std::uint16_t pos = node.LeafLowerBound(key);
    LeafEntry* entries = node.leaf_entries();
    if (pos < node.count() && entries[pos].key == key) {
      entries[pos].page = value.page_id;
      entries[pos].slot = value.slot;
      return pool_->UnpinPage(node_id, true);
    }
    if (node.count() < kLeafCapacity) {
      std::memmove(entries + pos + 1, entries + pos,
                   (node.count() - pos) * sizeof(LeafEntry));
      entries[pos] = LeafEntry{key, value.page_id, value.slot, 0};
      node.set_count(static_cast<std::uint16_t>(node.count() + 1));
      return pool_->UnpinPage(node_id, true);
    }
    // Split the leaf.
    auto right_page = pool_->NewPage();
    if (!right_page.ok()) {
      (void)pool_->UnpinPage(node_id, false);
      return right_page.status();
    }
    InitLeaf(*right_page);
    Node right{(*right_page)->payload()};
    const std::uint16_t mid = node.count() / 2;
    const std::uint16_t moved = static_cast<std::uint16_t>(node.count() - mid);
    std::memcpy(right.leaf_entries(), entries + mid,
                moved * sizeof(LeafEntry));
    right.set_count(moved);
    right.set_link(node.link());
    node.set_link((*right_page)->page_id());
    node.set_count(mid);
    // Place the new entry.
    const std::uint64_t separator = right.leaf_entries()[0].key;
    Node* target = key < separator ? &node : &right;
    std::uint16_t tpos = target->LeafLowerBound(key);
    LeafEntry* tentries = target->leaf_entries();
    std::memmove(tentries + tpos + 1, tentries + tpos,
                 (target->count() - tpos) * sizeof(LeafEntry));
    tentries[tpos] = LeafEntry{key, value.page_id, value.slot, 0};
    target->set_count(static_cast<std::uint16_t>(target->count() + 1));
    out->split = true;
    out->separator = right.leaf_entries()[0].key;
    out->right = (*right_page)->page_id();
    SENTINEL_RETURN_NOT_OK(
        pool_->UnpinPage((*right_page)->page_id(), true));
    return pool_->UnpinPage(node_id, true);
  }

  // Internal node: descend.
  PageId child = node.ChildFor(key);
  SENTINEL_RETURN_NOT_OK(pool_->UnpinPage(node_id, false));
  SplitResult child_split;
  SENTINEL_RETURN_NOT_OK(InsertRecursive(child, key, value, &child_split));
  if (!child_split.split) return Status::OK();

  // Insert (separator, right) into this node.
  page = pool_->FetchPage(node_id);
  if (!page.ok()) return page.status();
  node = Node{(*page)->payload()};
  InternalEntry* entries = node.internal_entries();
  std::uint16_t pos = 0;
  while (pos < node.count() && entries[pos].key < child_split.separator) {
    ++pos;
  }
  if (node.count() < kInternalCapacity) {
    std::memmove(entries + pos + 1, entries + pos,
                 (node.count() - pos) * sizeof(InternalEntry));
    entries[pos] = InternalEntry{child_split.separator, child_split.right};
    node.set_count(static_cast<std::uint16_t>(node.count() + 1));
    return pool_->UnpinPage(node_id, true);
  }
  // Split the internal node. First place the new entry into a scratch copy.
  std::vector<InternalEntry> all(entries, entries + node.count());
  all.insert(all.begin() + pos,
             InternalEntry{child_split.separator, child_split.right});
  const std::uint16_t total = static_cast<std::uint16_t>(all.size());
  const std::uint16_t mid = total / 2;  // all[mid] moves up as separator
  auto right_page = pool_->NewPage();
  if (!right_page.ok()) {
    (void)pool_->UnpinPage(node_id, false);
    return right_page.status();
  }
  Node right{(*right_page)->payload()};
  right.set_is_leaf(false);
  right.set_link(all[mid].child);  // first child of the right node
  const std::uint16_t right_count = static_cast<std::uint16_t>(total - mid - 1);
  std::memcpy(right.internal_entries(), all.data() + mid + 1,
              right_count * sizeof(InternalEntry));
  right.set_count(right_count);
  std::memcpy(entries, all.data(), mid * sizeof(InternalEntry));
  node.set_count(mid);
  out->split = true;
  out->separator = all[mid].key;
  out->right = (*right_page)->page_id();
  SENTINEL_RETURN_NOT_OK(pool_->UnpinPage((*right_page)->page_id(), true));
  return pool_->UnpinPage(node_id, true);
}

Status BTree::Insert(std::uint64_t key, const Rid& value) {
  SplitResult split;
  SENTINEL_RETURN_NOT_OK(InsertRecursive(root_, key, value, &split));
  if (!split.split) return Status::OK();

  // Root split: copy the old root into a fresh left node; the root page id
  // stays stable and becomes an internal node over {left, right}.
  auto root_page = pool_->FetchPage(root_);
  if (!root_page.ok()) return root_page.status();
  auto left_page = pool_->NewPage();
  if (!left_page.ok()) {
    (void)pool_->UnpinPage(root_, false);
    return left_page.status();
  }
  std::memcpy((*left_page)->payload(), (*root_page)->payload(),
              Page::kPayloadSize);
  Node root{(*root_page)->payload()};
  root.set_is_leaf(false);
  root.set_count(1);
  root.set_link((*left_page)->page_id());
  root.internal_entries()[0] = InternalEntry{split.separator, split.right};
  SENTINEL_RETURN_NOT_OK(pool_->UnpinPage((*left_page)->page_id(), true));
  return pool_->UnpinPage(root_, true);
}

Status BTree::Clear() {
  auto page = pool_->FetchPage(root_);
  if (!page.ok()) return page.status();
  InitLeaf(*page);
  return pool_->UnpinPage(root_, true);
}

Status BTree::Delete(std::uint64_t key) {
  auto leaf_id = FindLeaf(key);
  if (!leaf_id.ok()) return leaf_id.status();
  auto page = pool_->FetchPage(*leaf_id);
  if (!page.ok()) return page.status();
  Node node{(*page)->payload()};
  std::uint16_t pos = node.LeafLowerBound(key);
  if (pos >= node.count() || node.leaf_entries()[pos].key != key) {
    (void)pool_->UnpinPage(*leaf_id, false);
    return Status::NotFound("key not in index");
  }
  LeafEntry* entries = node.leaf_entries();
  std::memmove(entries + pos, entries + pos + 1,
               (node.count() - pos - 1) * sizeof(LeafEntry));
  node.set_count(static_cast<std::uint16_t>(node.count() - 1));
  return pool_->UnpinPage(*leaf_id, true);
}

Status BTree::Scan(
    std::uint64_t from, std::uint64_t to,
    const std::function<Status(std::uint64_t, const Rid&)>& fn) const {
  auto leaf_id = FindLeaf(from);
  if (!leaf_id.ok()) return leaf_id.status();
  PageId current = *leaf_id;
  while (current != kInvalidPageId) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    Node node{(*page)->payload()};
    const std::uint16_t count = node.count();
    bool done = false;
    Status st;
    for (std::uint16_t i = node.LeafLowerBound(from); i < count; ++i) {
      const LeafEntry& entry = node.leaf_entries()[i];
      if (entry.key > to) {
        done = true;
        break;
      }
      st = fn(entry.key, Rid{entry.page, entry.slot});
      if (!st.ok()) {
        done = true;
        break;
      }
    }
    PageId next = node.link();
    SENTINEL_RETURN_NOT_OK(pool_->UnpinPage(current, false));
    SENTINEL_RETURN_NOT_OK(st);
    if (done) break;
    current = next;
  }
  return Status::OK();
}

Result<std::size_t> BTree::Size() const {
  std::size_t total = 0;
  SENTINEL_RETURN_NOT_OK(Scan(0, UINT64_MAX,
                              [&total](std::uint64_t, const Rid&) {
                                ++total;
                                return Status::OK();
                              }));
  return total;
}

Result<int> BTree::Height() const {
  int height = 1;
  PageId current = root_;
  for (;;) {
    auto page = pool_->FetchPage(current);
    if (!page.ok()) return page.status();
    Node node{(*page)->payload()};
    const bool leaf = node.is_leaf();
    PageId next = leaf ? kInvalidPageId : node.link();
    SENTINEL_RETURN_NOT_OK(pool_->UnpinPage(current, false));
    if (leaf) return height;
    ++height;
    current = next;
  }
}

}  // namespace sentinel::storage
