#include "storage/storage_engine.h"

#include "common/logging.h"
#include "storage/recovery.h"

namespace sentinel::storage {

StorageEngine::~StorageEngine() { (void)Close(); }

Status StorageEngine::Open(const std::string& path_prefix) {
  return Open(path_prefix, Options());
}

Status StorageEngine::Open(const std::string& path_prefix,
                           const Options& options) {
  {
    std::lock_guard<std::mutex> lock(hint_mu_);
    insert_hints_.clear();
  }
  disk_ = std::make_unique<DiskManager>();
  SENTINEL_RETURN_NOT_OK(disk_->Open(path_prefix + ".db"));
  pool_ = std::make_unique<BufferPool>(disk_.get(), options.buffer_pool_pages);
  log_ = std::make_unique<LogManager>(options.wal_options);
  SENTINEL_RETURN_NOT_OK(log_->Open(path_prefix + ".wal"));
  commit_durability_.store(options.commit_durability,
                           std::memory_order_relaxed);
  lock_manager_ = std::make_unique<LockManager>(options.lock_options);

  auto clean = disk_->GetCleanShutdown();
  if (!clean.ok()) return clean.status();
  was_clean_shutdown_ = *clean;
  // Pessimistically mark dirty until the next clean Close().
  SENTINEL_RETURN_NOT_OK(disk_->SetCleanShutdown(false));

  RecoveryManager recovery(this);
  SENTINEL_RETURN_NOT_OK(recovery.Recover());
  return Status::OK();
}

Status StorageEngine::Close() {
  if (disk_ == nullptr) return Status::OK();
  // Abort transactions left running (application bug or crash simulation).
  std::vector<TxnId> live;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    for (const auto& [txn, state] : active_) {
      (void)state;
      live.push_back(txn);
    }
  }
  for (TxnId txn : live) (void)Abort(txn);
  SENTINEL_RETURN_NOT_OK(pool_->FlushAll());
  SENTINEL_RETURN_NOT_OK(log_->Close());
  SENTINEL_RETURN_NOT_OK(disk_->SetCleanShutdown(true));
  SENTINEL_RETURN_NOT_OK(disk_->Close());
  disk_.reset();
  pool_.reset();
  log_.reset();
  lock_manager_.reset();
  {
    std::lock_guard<std::mutex> lock(hint_mu_);
    insert_hints_.clear();
  }
  return Status::OK();
}

void StorageEngine::SimulateCrash() {
  if (disk_ == nullptr) return;
  // The WAL's user-space tail is flushed (commit records were already
  // forced; losing an uncommitted tail is covered by the torn-tail path),
  // but data pages in the buffer pool are deliberately dropped.
  if (log_ != nullptr) (void)log_->Close();
  if (disk_ != nullptr) (void)disk_->Close();
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    active_.clear();
  }
  disk_.reset();
  pool_.reset();
  log_.reset();
  lock_manager_.reset();
  {
    // A remembered page id may belong to a different file's chain after the
    // crash rebuild: drop every hint.
    std::lock_guard<std::mutex> lock(hint_mu_);
    insert_hints_.clear();
  }
}

Result<TxnId> StorageEngine::Begin() {
  TxnId txn = next_txn_.fetch_add(1);
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kBegin;
  auto lsn = log_->Append(std::move(rec));
  if (!lsn.ok()) return lsn.status();
  std::lock_guard<std::mutex> lock(txn_mu_);
  active_[txn] = TxnState{*lsn};
  return txn;
}

Status StorageEngine::Commit(TxnId txn) {
  return Commit(txn, commit_durability_.load(std::memory_order_relaxed));
}

Status StorageEngine::Commit(TxnId txn, CommitDurability durability) {
  Lsn prev_lsn = kInvalidLsn;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::InvalidArgument("commit of unknown txn " +
                                     std::to_string(txn));
    }
    prev_lsn = it->second.last_lsn;
  }
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kCommit;
  rec.prev_lsn = prev_lsn;
  // Appended outside txn_mu_: with group commit the call blocks until the
  // barrier covers this LSN, and holding txn_mu_ across that wait would
  // serialize every Begin/Commit behind a single fsync.
  auto lsn = log_->Append(std::move(rec), durability);
  if (!lsn.ok()) return lsn.status();
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    active_.erase(txn);
  }
  lock_manager_->ReleaseAll(txn);
  return Status::OK();
}

Status StorageEngine::Abort(TxnId txn) {
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    if (active_.find(txn) == active_.end()) {
      return Status::InvalidArgument("abort of unknown txn " +
                                     std::to_string(txn));
    }
  }
  Status undo = UndoTxn(txn);
  Lsn prev_lsn = kInvalidLsn;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = active_.find(txn);
    prev_lsn = it != active_.end() ? it->second.last_lsn : kInvalidLsn;
  }
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kAbort;
  rec.prev_lsn = prev_lsn;
  auto lsn = log_->Append(std::move(rec));
  if (!lsn.ok()) return lsn.status();
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    active_.erase(txn);
  }
  lock_manager_->ReleaseAll(txn);
  return undo;
}

Status StorageEngine::WaitWalDurable() {
  if (log_ == nullptr) return Status::IOError("engine not open");
  return log_->WaitDurable(log_->appended_lsn());
}

bool StorageEngine::IsActive(TxnId txn) const {
  std::lock_guard<std::mutex> lock(txn_mu_);
  return active_.find(txn) != active_.end();
}

Result<PageId> StorageEngine::CreateHeapFile() {
  auto head = HeapFile::Create(pool_.get());
  if (!head.ok()) return head;
  // Force the formatted head page to disk: the page id is handed to the
  // caller as a durable handle, so it must survive a crash even if no record
  // is ever logged against it.
  SENTINEL_RETURN_NOT_OK(pool_->FlushPage(*head));
  SENTINEL_RETURN_NOT_OK(disk_->Sync());
  return head;
}

PageId StorageEngine::InsertHint(PageId file) const {
  std::lock_guard<std::mutex> lock(hint_mu_);
  auto it = insert_hints_.find(file);
  return it != insert_hints_.end() ? it->second : kInvalidPageId;
}

HeapFile StorageEngine::OpenHeap(TxnId txn, PageId file) {
  return HeapFile(
      pool_.get(), file, [this, txn](PageId parent, PageId next) -> Status {
        LogRecord rec;
        rec.txn_id = txn;
        rec.type = LogRecordType::kPageLink;
        rec.rid = Rid{parent, 0};
        rec.after = {static_cast<std::uint8_t>(next),
                     static_cast<std::uint8_t>(next >> 8),
                     static_cast<std::uint8_t>(next >> 16),
                     static_cast<std::uint8_t>(next >> 24)};
        auto lsn = Log(txn, std::move(rec));
        if (!lsn.ok()) return lsn.status();
        HeapFile plain(pool_.get(), parent);
        return plain.SetPageLsn(parent, *lsn);
      });
}

LockKey StorageEngine::RecordKey(const Rid& rid) {
  return "rid:" + std::to_string(rid.page_id) + ":" + std::to_string(rid.slot);
}

LockKey StorageEngine::FileKey(PageId file) {
  return "file:" + std::to_string(file);
}

Result<Lsn> StorageEngine::Log(TxnId txn, LogRecord record) {
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::TransactionAborted("txn " + std::to_string(txn) +
                                        " is not active");
    }
    record.prev_lsn = it->second.last_lsn;
  }
  auto lsn = log_->Append(std::move(record));
  if (!lsn.ok()) return lsn.status();
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = active_.find(txn);
    if (it != active_.end()) it->second.last_lsn = *lsn;
  }
  return lsn;
}

Result<Rid> StorageEngine::Insert(TxnId txn, PageId file,
                                  const std::vector<std::uint8_t>& rec) {
  SENTINEL_RETURN_NOT_OK(
      lock_manager_->Acquire(txn, FileKey(file), LockMode::kShared));
  HeapFile heap = OpenHeap(txn, file);
  auto rid = heap.Insert(rec, InsertHint(file));
  if (!rid.ok()) return rid.status();
  {
    std::lock_guard<std::mutex> lock(hint_mu_);
    insert_hints_[file] = rid->page_id;
  }
  SENTINEL_RETURN_NOT_OK(
      lock_manager_->Acquire(txn, RecordKey(*rid), LockMode::kExclusive));
  LogRecord log_rec;
  log_rec.txn_id = txn;
  log_rec.type = LogRecordType::kInsert;
  log_rec.rid = *rid;
  log_rec.after = rec;
  auto lsn = Log(txn, std::move(log_rec));
  if (!lsn.ok()) return lsn.status();
  SENTINEL_RETURN_NOT_OK(heap.SetPageLsn(rid->page_id, *lsn));
  return rid;
}

Result<std::vector<std::uint8_t>> StorageEngine::Read(TxnId txn, PageId file,
                                                      const Rid& rid) {
  (void)file;
  SENTINEL_RETURN_NOT_OK(
      lock_manager_->Acquire(txn, RecordKey(rid), LockMode::kShared));
  HeapFile heap(pool_.get(), file);
  return heap.Read(rid);
}

Status StorageEngine::Update(TxnId txn, PageId file, const Rid& rid,
                             const std::vector<std::uint8_t>& rec) {
  SENTINEL_RETURN_NOT_OK(
      lock_manager_->Acquire(txn, RecordKey(rid), LockMode::kExclusive));
  HeapFile heap(pool_.get(), file);
  auto before = heap.Read(rid);
  if (!before.ok()) return before.status();
  SENTINEL_RETURN_NOT_OK(heap.Update(rid, rec));
  LogRecord log_rec;
  log_rec.txn_id = txn;
  log_rec.type = LogRecordType::kUpdate;
  log_rec.rid = rid;
  log_rec.before = std::move(*before);
  log_rec.after = rec;
  auto lsn = Log(txn, std::move(log_rec));
  if (!lsn.ok()) return lsn.status();
  return heap.SetPageLsn(rid.page_id, *lsn);
}

Status StorageEngine::Delete(TxnId txn, PageId file, const Rid& rid) {
  SENTINEL_RETURN_NOT_OK(
      lock_manager_->Acquire(txn, RecordKey(rid), LockMode::kExclusive));
  HeapFile heap(pool_.get(), file);
  auto before = heap.Read(rid);
  if (!before.ok()) return before.status();
  SENTINEL_RETURN_NOT_OK(heap.Delete(rid));
  {
    // Freed space behind the insert hint: lower it so first-fit sees the
    // hole again (chain page ids are monotone along the chain).
    std::lock_guard<std::mutex> lock(hint_mu_);
    auto it = insert_hints_.find(file);
    if (it != insert_hints_.end() && rid.page_id < it->second) {
      it->second = rid.page_id;
    }
  }
  LogRecord log_rec;
  log_rec.txn_id = txn;
  log_rec.type = LogRecordType::kDelete;
  log_rec.rid = rid;
  log_rec.before = std::move(*before);
  auto lsn = Log(txn, std::move(log_rec));
  if (!lsn.ok()) return lsn.status();
  return heap.SetPageLsn(rid.page_id, *lsn);
}

Status StorageEngine::Scan(
    TxnId txn, PageId file,
    const std::function<Status(const Rid&, const std::vector<std::uint8_t>&)>&
        fn) {
  SENTINEL_RETURN_NOT_OK(
      lock_manager_->Acquire(txn, FileKey(file), LockMode::kShared));
  HeapFile heap(pool_.get(), file);
  return heap.Scan(fn);
}

Status StorageEngine::Checkpoint() {
  // A quiescent checkpoint: with no transaction in flight and every dirty
  // page forced, the existing log is no longer needed for recovery, so it
  // is truncated (bounding recovery time and log growth). A checkpoint
  // record carrying the continued LSN sequence seeds the fresh log.
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    if (!active_.empty()) {
      return Status::InvalidArgument(
          "checkpoint requires no active transactions (" +
          std::to_string(active_.size()) + " in flight)");
    }
  }
  SENTINEL_RETURN_NOT_OK(pool_->FlushAll());
  SENTINEL_RETURN_NOT_OK(disk_->Sync());
  SENTINEL_RETURN_NOT_OK(log_->Truncate());
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  return log_->Append(std::move(rec)).status();
}

Status StorageEngine::UndoTxn(TxnId txn) {
  // Collect this transaction's log records (newest first) and apply inverse
  // operations, writing CLRs so crash-during-abort recovers idempotently.
  std::vector<LogRecord> records;
  SENTINEL_RETURN_NOT_OK(log_->Scan([&](const LogRecord& rec) {
    if (rec.txn_id != txn) return Status::OK();
    if (rec.type == LogRecordType::kInsert ||
        rec.type == LogRecordType::kDelete ||
        rec.type == LogRecordType::kUpdate) {
      records.push_back(rec);
    } else if (rec.type == LogRecordType::kClr && !records.empty()) {
      // Undo proceeds newest-first, so each CLR compensates the newest
      // not-yet-compensated record (relevant when recovering from a crash
      // that interrupted a previous abort of this transaction).
      records.pop_back();
    }
    return Status::OK();
  }));

  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    const LogRecord& rec = *it;
    HeapFile heap(pool_.get(), rec.rid.page_id);
    LogRecord clr;
    clr.txn_id = txn;
    clr.type = LogRecordType::kClr;
    clr.rid = rec.rid;
    clr.undone_type = rec.type;
    clr.undo_next_lsn = rec.prev_lsn;
    switch (rec.type) {
      case LogRecordType::kInsert: {
        SENTINEL_RETURN_NOT_OK(heap.Delete(rec.rid));
        break;
      }
      case LogRecordType::kDelete: {
        clr.after = rec.before;
        SENTINEL_RETURN_NOT_OK(heap.InsertAt(rec.rid, rec.before));
        break;
      }
      case LogRecordType::kUpdate: {
        clr.after = rec.before;
        SENTINEL_RETURN_NOT_OK(heap.Update(rec.rid, rec.before));
        break;
      }
      default:
        break;
    }
    auto lsn = Log(txn, std::move(clr));
    if (!lsn.ok()) return lsn.status();
    SENTINEL_RETURN_NOT_OK(heap.SetPageLsn(rec.rid.page_id, *lsn));
  }
  return Status::OK();
}

}  // namespace sentinel::storage
