#ifndef SENTINEL_CORE_REACTIVE_H_
#define SENTINEL_CORE_REACTIVE_H_

#include <memory>
#include <string>
#include <utility>

#include "core/active_database.h"

namespace sentinel::core {

/// Base class for event-generating objects (the paper's global REACTIVE
/// class, §3.1/§3.2). A user class derives from Reactive and brackets each
/// event-generating method body with a MethodScope — the C++-level
/// equivalent of the wrapper the Sentinel pre/post-processors generate:
///
///   void Stock::set_price(double price) {
///     Reactive::MethodScope scope(this, "void set_price(float price)");
///     scope.Param("price", oodb::Value::Double(price));   // PARA_LIST
///     scope.EnterBody();    // Notify(..., "begin", para_list)
///     ...original method body...
///   }                        // ~MethodScope: Notify(..., "end", para_list)
///
/// Immediate rules run inside the Notify calls (the application waits).
class Reactive {
 public:
  Reactive(ActiveDatabase* db, std::string class_name,
           oodb::Oid oid = oodb::kInvalidOid)
      : db_(db), class_name_(std::move(class_name)), oid_(oid) {}
  virtual ~Reactive() = default;

  ActiveDatabase* db() const { return db_; }
  const std::string& class_name() const { return class_name_; }
  oodb::Oid oid() const { return oid_; }
  void set_oid(oodb::Oid oid) { oid_ = oid; }

  /// The transaction the object currently operates in; wrapper notifications
  /// are tagged with it.
  storage::TxnId current_txn() const { return txn_; }
  void set_current_txn(storage::TxnId txn) { txn_ = txn; }

  // -- Persistent state helpers ---------------------------------------------------

  /// Reads this object's attribute from the object store.
  Result<oodb::Value> GetAttr(const std::string& attr) const;
  /// Read-modify-writes this object's attribute in the object store.
  Status SetAttr(const std::string& attr, oodb::Value value);

  /// Wrapper scope replicating the post-processed method (paper §3.2.1).
  class MethodScope {
   public:
    MethodScope(Reactive* self, std::string signature)
        : self_(self),
          signature_(std::move(signature)),
          params_(std::make_shared<detector::ParamList>()) {}

    MethodScope(const MethodScope&) = delete;
    MethodScope& operator=(const MethodScope&) = delete;

    /// Collects one parameter into the PARA_LIST.
    MethodScope& Param(std::string name, oodb::Value value) {
      params_->Insert(std::move(name), std::move(value));
      return *this;
    }

    /// Signals the begin-method event. Call after collecting parameters,
    /// before the original method body.
    void EnterBody() {
      entered_ = true;
      self_->db()->NotifyMethod(self_->class_name(), self_->oid(),
                                detector::EventModifier::kBegin, signature_,
                                params_, self_->current_txn());
    }

    /// Signals the end-method event.
    ~MethodScope() {
      if (!entered_) return;  // begin never signalled: treat as not invoked
      self_->db()->NotifyMethod(self_->class_name(), self_->oid(),
                                detector::EventModifier::kEnd, signature_,
                                params_, self_->current_txn());
    }

   private:
    Reactive* self_;
    std::string signature_;
    std::shared_ptr<detector::ParamList> params_;
    bool entered_ = false;
  };

 private:
  ActiveDatabase* db_;
  std::string class_name_;
  oodb::Oid oid_;
  storage::TxnId txn_ = storage::kInvalidTxnId;
};

}  // namespace sentinel::core

#endif  // SENTINEL_CORE_REACTIVE_H_
