#include "core/active_database.h"

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/pool.h"
#include "obs/json.h"

namespace sentinel::core {

constexpr char ActiveDatabase::kBeginTxnEvent[];
constexpr char ActiveDatabase::kPreCommitEvent[];
constexpr char ActiveDatabase::kCommitEvent[];
constexpr char ActiveDatabase::kAbortEvent[];
constexpr char ActiveDatabase::kFlushOnCommitRule[];
constexpr char ActiveDatabase::kFlushOnAbortRule[];
constexpr char ActiveDatabase::kRuleClass[];
constexpr char ActiveDatabase::kRuleFiredMethod[];

ActiveDatabase::~ActiveDatabase() { (void)Close(); }

Status ActiveDatabase::Open(const std::string& path_prefix) {
  return Open(path_prefix, Options());
}

Status ActiveDatabase::OpenInMemory() { return OpenInMemory(Options()); }

Status ActiveDatabase::Open(const std::string& path_prefix,
                            const Options& options) {
  if (open_) return Status::InvalidArgument("already open");
  db_ = std::make_unique<oodb::Database>();
  SENTINEL_RETURN_NOT_OK(db_->Open(path_prefix, options.database));
  return OpenCommon(options);
}

Status ActiveDatabase::OpenInMemory(const Options& options) {
  if (open_) return Status::InvalidArgument("already open");
  db_ = nullptr;
  return OpenCommon(options);
}

Status ActiveDatabase::OpenCommon(const Options& options) {
  span_tracer_.set_flight_recorder(&flight_recorder_);
  detector_ = std::make_unique<detector::LocalEventDetector>();
  detector_->set_tracer(&tracer_);
  detector_->set_span_tracer(&span_tracer_);
  if (db_ != nullptr) {
    detector_->set_class_registry(db_->classes());
    cache_ = std::make_unique<oodb::ObjectCache>(db_->engine(), db_->objects(),
                                                 /*capacity=*/1024);
    // Storage-layer spans + postmortem-on-deadlock. The deadlock hook runs
    // after the lock manager released its latch, so the dump may snapshot
    // the lock table safely.
    storage::StorageEngine* engine = db_->engine();
    engine->lock_manager()->set_span_tracer(&span_tracer_);
    engine->lock_manager()->set_deadlock_hook(
        [this](storage::TxnId victim, const storage::LockKey& key) {
          (void)key;
          (void)DumpPostmortem("deadlock", victim);
        });
    engine->buffer_pool()->set_span_tracer(&span_tracer_);
    engine->log_manager()->set_span_tracer(&span_tracer_);
  }
  nested_ = std::make_unique<txn::NestedTransactionManager>(options.nested);
  nested_->set_span_tracer(&span_tracer_);
  scheduler_ = std::make_unique<rules::RuleScheduler>(nested_.get(), db_.get(),
                                                      options.scheduler);
  scheduler_->set_tracer(&tracer_);
  scheduler_->set_span_tracer(&span_tracer_);
  scheduler_->set_postmortem_hook([this](storage::TxnId doomed) {
    (void)DumpPostmortem("abort_top", doomed);
  });
  rules::RuleManager::Config config;
  config.begin_txn_event = kBeginTxnEvent;
  config.pre_commit_event = kPreCommitEvent;
  rule_manager_ =
      std::make_unique<rules::RuleManager>(detector_.get(), scheduler_.get(),
                                           config);

  // System transaction events (the REACTIVE system class, §3.2).
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kBeginTxnEvent).status());
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kPreCommitEvent).status());
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kCommitEvent).status());
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kAbortEvent).status());

  // Internal flush rules (§3.2.2 item 3). Users may disable them via the
  // rule manager to allow events to span transaction boundaries.
  detector::LocalEventDetector* det = detector_.get();
  rules::RuleManager::RuleOptions flush_options;
  flush_options.priority = -1000000;  // run after every user rule
  auto flush_action = [det](const rules::RuleContext& ctx) {
    if (ctx.occurrence != nullptr &&
        ctx.occurrence->txn != storage::kInvalidTxnId) {
      det->FlushTxn(ctx.occurrence->txn);
    }
  };
  SENTINEL_RETURN_NOT_OK(rule_manager_
                             ->DefineRule(kFlushOnCommitRule, kCommitEvent,
                                          nullptr, flush_action, flush_options)
                             .status());
  SENTINEL_RETURN_NOT_OK(rule_manager_
                             ->DefineRule(kFlushOnAbortRule, kAbortEvent,
                                          nullptr, flush_action, flush_options)
                             .status());

  // Reactive RULE class (§3.2): rule executions are method events when
  // enabled. Skipped for executions that were themselves triggered by RULE
  // events, so meta-rules cannot recurse onto their own firings.
  scheduler_->SetExecutionObserver([this](const rules::Firing& firing,
                                          bool condition_held, Status) {
    if (!rule_events_ || firing.rule == nullptr) return;
    for (const auto& constituent : firing.occurrence.constituents) {
      if (constituent->class_name == kRuleClass) return;
    }
    auto params = common::MakePooled<detector::ParamList>();
    params->Insert("rule", oodb::Value::String(firing.rule->name()));
    params->Insert("condition_held", oodb::Value::Bool(condition_held));
    params->Insert("depth", oodb::Value::Int(firing.depth));
    detector_->Notify(kRuleClass, oodb::kInvalidOid,
                      detector::EventModifier::kEnd, kRuleFiredMethod, params,
                      firing.txn);
  });
  open_ = true;
  return Status::OK();
}

Status ActiveDatabase::Close() {
  if (!open_) return Status::OK();
  if (scheduler_ != nullptr) {
    scheduler_->Drain();
    scheduler_->WaitDetached();
  }
  // Tear down in dependency order: rules reference the detector.
  rule_manager_.reset();
  scheduler_.reset();
  nested_.reset();
  detector_.reset();
  cache_.reset();
  Status st;
  if (db_ != nullptr) {
    st = db_->Close();
    db_.reset();
  }
  open_ = false;
  return st;
}

Result<storage::TxnId> ActiveDatabase::Begin() {
  storage::TxnId txn = storage::kInvalidTxnId;
  if (db_ != nullptr) {
    auto begun = db_->Begin();
    if (!begun.ok()) return begun.status();
    txn = *begun;
  } else {
    static std::atomic<storage::TxnId> fake_txn{1};
    txn = fake_txn.fetch_add(1);
  }
  // Root of this transaction's span tree; closes at Commit/Abort. The
  // anchor parents the begin-event spans raised below into it.
  if (span_tracer_.enabled_for(obs::SpanKind::kTxn)) {
    span_tracer_.BeginTxnSpan(txn);
  }
  obs::TxnAnchorScope anchor;
  anchor.Start(&span_tracer_, txn);
  // The begin_transaction event is always signalled at the beginning of a
  // transaction (§2.3).
  auto params = common::MakePooled<detector::ParamList>();
  params->Insert("txn", oodb::Value::Int(static_cast<std::int64_t>(txn)));
  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kBeginTxnEvent, params, txn));
  scheduler_->Drain();
  return txn;
}

Status ActiveDatabase::Commit(storage::TxnId txn) {
  // Parent everything the commit does (pre-commit rules, WAL fsyncs, the
  // commit event) into the transaction's span; the txn span itself closes
  // once the commit pipeline has run.
  obs::TxnAnchorScope anchor;
  anchor.Start(&span_tracer_, txn);
  auto params = common::MakePooled<detector::ParamList>();
  params->Insert("txn", oodb::Value::Int(static_cast<std::int64_t>(txn)));
  // pre_commit is signalled before the commit (§2.3): deferred rules (A*
  // terminator) execute here, inside the transaction.
  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kPreCommitEvent, params, txn));
  scheduler_->Drain();

  if (db_ != nullptr) SENTINEL_RETURN_NOT_OK(db_->Commit(txn));
  if (cache_ != nullptr) cache_->OnCommit(txn);
  nested_->EndTop(txn);

  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kCommitEvent, params, txn));
  scheduler_->Drain();
  anchor.End();
  span_tracer_.EndTxnSpan(txn);
  return Status::OK();
}

Status ActiveDatabase::Abort(storage::TxnId txn) {
  obs::TxnAnchorScope anchor;
  anchor.Start(&span_tracer_, txn);
  auto params = common::MakePooled<detector::ParamList>();
  params->Insert("txn", oodb::Value::Int(static_cast<std::int64_t>(txn)));
  Status st;
  if (db_ != nullptr) st = db_->Abort(txn);
  if (cache_ != nullptr) cache_->OnAbort(txn);
  nested_->EndTop(txn);
  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kAbortEvent, params, txn));
  scheduler_->Drain();
  anchor.End();
  span_tracer_.EndTxnSpan(txn);
  return st;
}

Result<detector::EventNode*> ActiveDatabase::DeclareEvent(
    const std::string& event_name, const std::string& class_name,
    detector::EventModifier modifier, const std::string& method_signature,
    oodb::Oid instance) {
  return detector_->DefinePrimitive(event_name, class_name, modifier,
                                    method_signature, instance);
}

void ActiveDatabase::NotifyMethod(
    const std::string& class_name, oodb::Oid oid,
    detector::EventModifier modifier, const std::string& method_signature,
    std::shared_ptr<const detector::ParamList> params, storage::TxnId txn) {
  detector_->Notify(class_name, oid, modifier, method_signature,
                    std::move(params), txn);
  // The application waits for its immediate rules (§2.3).
  scheduler_->Drain();
}

Status ActiveDatabase::RaiseEvent(
    const std::string& event_name,
    std::shared_ptr<const detector::ParamList> params, storage::TxnId txn) {
  SENTINEL_RETURN_NOT_OK(
      detector_->RaiseExplicit(event_name, std::move(params), txn));
  scheduler_->Drain();
  return Status::OK();
}

void ActiveDatabase::AdvanceTime(std::uint64_t now_ms) {
  detector_->AdvanceTime(now_ms);
  scheduler_->Drain();
}

std::string ActiveDatabase::StatsJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  if (detector_ != nullptr) {
    w.Key("detector").Raw(detector_->StatsJson());
  }
  if (scheduler_ != nullptr) {
    w.Key("scheduler").BeginObject();
    w.Field("policy", static_cast<int>(scheduler_->policy()));
    w.Field("contingency",
            rules::ContingencyPolicyToString(scheduler_->contingency()));
    w.Field("executed", scheduler_->executed_count());
    w.Field("condition_rejections", scheduler_->condition_rejections());
    w.Field("failed", scheduler_->failed_count());
    w.Field("abort_top", scheduler_->abort_top_count());
    w.Field("max_depth", scheduler_->max_depth_seen());
    w.EndObject();
  }
  if (rule_manager_ != nullptr) {
    w.Key("rules").BeginArray();
    for (const std::string& name : rule_manager_->RuleNames()) {
      auto rule = rule_manager_->Find(name);
      if (!rule.ok()) continue;
      const obs::RuleMetrics& m = (*rule)->metrics();
      w.BeginObject();
      w.Field("name", name);
      w.Field("event", (*rule)->declared_event());
      w.Field("coupling", rules::CouplingModeToString((*rule)->coupling()));
      w.Field("fired", (*rule)->fired_count());
      w.Key("condition_ns").Raw(obs::HistogramJson(m.condition_ns.TakeSnapshot()));
      w.Key("action_ns").Raw(obs::HistogramJson(m.action_ns.TakeSnapshot()));
      w.Key("commit_ns").Raw(obs::HistogramJson(m.commit_ns.TakeSnapshot()));
      w.Key("abort_ns").Raw(obs::HistogramJson(m.abort_ns.TakeSnapshot()));
      w.Key("lock_wait_ns")
          .Raw(obs::HistogramJson(m.lock_wait_ns.TakeSnapshot()));
      w.EndObject();
    }
    w.EndArray();
  }
  if (nested_ != nullptr) {
    w.Key("nested_txn").BeginObject();
    w.Field("active_subtxns", nested_->active_count());
    w.Field("locked_keys", nested_->locked_key_count());
    w.EndObject();
  }
  if (db_ != nullptr) {
    // Unified storage-layer telemetry: every cache/WAL/lock counter in one
    // place instead of scattered over component accessors.
    storage::StorageEngine* engine = db_->engine();
    w.Key("storage").BeginObject();
    storage::BufferPool* pool = engine->buffer_pool();
    w.Key("buffer_pool").BeginObject();
    w.Field("hits", pool->hit_count());
    w.Field("misses", pool->miss_count());
    w.Field("evictions", pool->eviction_count());
    w.Field("resident", pool->resident_count());
    w.Field("capacity", pool->capacity());
    w.EndObject();
    if (cache_ != nullptr) {
      w.Key("object_cache").BeginObject();
      w.Field("hits", cache_->hit_count());
      w.Field("misses", cache_->miss_count());
      w.Field("resident", cache_->size());
      w.EndObject();
    }
    storage::LogManager* wal = engine->log_manager();
    w.Key("wal").BeginObject();
    w.Field("sync_count", wal->sync_count());
    w.Field("truncated_bytes", wal->truncated_bytes());
    w.Field("wedged", wal->wedged());
    w.Key("fsync_ns").Raw(obs::HistogramJson(wal->fsync_histogram().TakeSnapshot()));
    w.EndObject();
    storage::DiskManager* disk = engine->disk_manager();
    w.Key("disk").BeginObject();
    w.Field("sync_count", disk->sync_count());
    w.Field("io_retries", disk->io_retries());
    w.Field("pages", disk->page_count());
    w.Key("fsync_ns").Raw(obs::HistogramJson(disk->fsync_histogram().TakeSnapshot()));
    w.EndObject();
    storage::LockManager* locks = engine->lock_manager();
    w.Key("lock_manager").BeginObject();
    w.Field("waits", locks->wait_count());
    w.Field("deadlocks", locks->deadlock_count());
    w.Field("timeouts", locks->timeout_count());
    w.Key("wait_ns").Raw(obs::HistogramJson(locks->wait_histogram().TakeSnapshot()));
    w.EndObject();
    w.EndObject();
  }
  w.Key("trace").BeginObject();
  w.Field("enabled", tracer_.enabled());
  w.Field("capacity", tracer_.capacity());
  w.Field("size", tracer_.size());
  w.Field("recorded", tracer_.recorded());
  w.Field("dropped", tracer_.dropped());
  w.EndObject();
  w.Key("span_trace").BeginObject();
  w.Field("mode", obs::TraceModeToString(span_tracer_.mode()));
  w.Field("recorded", span_tracer_.recorded());
  w.Field("dropped", span_tracer_.dropped());
  w.Field("flight_recorded", flight_recorder_.recorded());
  w.Field("postmortems", flight_recorder_.dumps());
  w.EndObject();
  w.EndObject();
  return w.Take();
}

Status ActiveDatabase::ExportTrace(const std::string& path) {
  return span_tracer_.ExportChromeTrace(path);
}

std::string ActiveDatabase::PostmortemJson(const std::string& reason,
                                           storage::TxnId txn) {
  const std::uint64_t now_ns = obs::SpanTracer::NowNs();
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("reason", reason);
  if (txn != storage::kInvalidTxnId) w.Field("victim_txn", txn);
  w.Field("trace_mode", obs::TraceModeToString(span_tracer_.mode()));

  // Top-level transactions still open, via their anchor spans.
  w.Key("active_txns").BeginArray();
  for (const obs::Span& span : span_tracer_.OpenTxnSpans()) {
    w.BeginObject();
    w.Field("txn", span.txn);
    w.Field("span", span.id);
    w.Field("open_ns", now_ns > span.start_ns ? now_ns - span.start_ns : 0);
    w.EndObject();
  }
  w.EndArray();

  // In-flight rule subtransactions and the nested locks they hold.
  if (nested_ != nullptr) {
    w.Key("subtxns").BeginArray();
    for (const auto& info : nested_->ActiveSubTxns()) {
      w.BeginObject();
      w.Field("id", info.id);
      w.Field("top", info.top);
      w.Field("parent", info.parent);
      w.Field("depth", info.depth);
      w.Field("lock_wait_ns", info.lock_wait_ns);
      w.Key("held_keys").BeginArray();
      for (const std::string& key : info.held_keys) w.Value(key);
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
  }

  // Storage lock table: held locks plus waits-for edges (who is blocked on
  // what — the deadlock evidence).
  if (db_ != nullptr) {
    storage::LockManager* locks = db_->engine()->lock_manager();
    w.Key("locks").BeginArray();
    for (const auto& info : locks->SnapshotLocks()) {
      w.BeginObject();
      w.Field("key", info.key);
      w.Key("holders").BeginArray();
      for (const auto& holder : info.holders) {
        w.BeginObject();
        w.Field("txn", holder.txn);
        w.Field("mode",
                holder.mode == storage::LockMode::kExclusive ? "X" : "S");
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.Key("waits_for").BeginArray();
    for (const auto& edge : locks->SnapshotWaits()) {
      w.BeginObject();
      w.Field("txn", edge.txn);
      w.Field("key", edge.key);
      w.EndObject();
    }
    w.EndArray();
  }

  // Failpoint hit counts: which injected faults were armed and firing.
  w.Key("failpoints").BeginArray();
  for (const auto& info : FailPointRegistry::Instance().List()) {
    w.BeginObject();
    w.Field("name", info.name);
    w.Field("spec", info.spec.ToString());
    w.Field("hits", info.hits);
    w.Field("fires", info.fires);
    w.EndObject();
  }
  w.EndArray();

  // The last spans the system recorded before the failure, oldest first.
  w.Key("last_spans").BeginArray();
  for (const obs::Span& span : flight_recorder_.Snapshot()) {
    w.BeginObject();
    w.Field("id", span.id);
    w.Field("parent", span.parent);
    w.Field("kind", obs::SpanKindToString(span.kind));
    if (span.txn != storage::kInvalidTxnId) w.Field("txn", span.txn);
    if (span.subtxn != 0) w.Field("subtxn", span.subtxn);
    w.Field("dur_ns", span.end_ns > span.start_ns
                          ? span.end_ns - span.start_ns
                          : 0);
    w.Field("tid", span.tid);
    w.Field("label", span.label);
    w.EndObject();
  }
  w.EndArray();

  if (scheduler_ != nullptr) {
    w.Key("scheduler").BeginObject();
    w.Field("executed", scheduler_->executed_count());
    w.Field("failed", scheduler_->failed_count());
    w.Field("abort_top", scheduler_->abort_top_count());
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

Result<std::string> ActiveDatabase::DumpPostmortem(const std::string& reason,
                                                   storage::TxnId txn,
                                                   const std::string& path) {
  return flight_recorder_.WritePostmortem(PostmortemJson(reason, txn), path);
}

Result<oodb::Oid> ActiveDatabase::CreateObject(storage::TxnId txn,
                                               const std::string& class_name,
                                               const std::string& name) {
  if (db_ == nullptr) {
    return Status::InvalidArgument("no persistent store in in-memory mode");
  }
  if (!db_->classes()->Exists(class_name)) {
    return Status::NotFound("class not registered: " + class_name);
  }
  oodb::PersistentObject obj(oodb::kInvalidOid, class_name);
  auto oid = db_->objects()->Put(txn, std::move(obj));
  if (!oid.ok()) return oid;
  if (!name.empty()) {
    SENTINEL_RETURN_NOT_OK(db_->names()->Bind(txn, name, *oid));
  }
  return oid;
}

}  // namespace sentinel::core
