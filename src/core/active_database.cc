#include "core/active_database.h"

#include "common/logging.h"
#include "common/pool.h"
#include "obs/json.h"

namespace sentinel::core {

constexpr char ActiveDatabase::kBeginTxnEvent[];
constexpr char ActiveDatabase::kPreCommitEvent[];
constexpr char ActiveDatabase::kCommitEvent[];
constexpr char ActiveDatabase::kAbortEvent[];
constexpr char ActiveDatabase::kFlushOnCommitRule[];
constexpr char ActiveDatabase::kFlushOnAbortRule[];
constexpr char ActiveDatabase::kRuleClass[];
constexpr char ActiveDatabase::kRuleFiredMethod[];

ActiveDatabase::~ActiveDatabase() { (void)Close(); }

Status ActiveDatabase::Open(const std::string& path_prefix) {
  return Open(path_prefix, Options());
}

Status ActiveDatabase::OpenInMemory() { return OpenInMemory(Options()); }

Status ActiveDatabase::Open(const std::string& path_prefix,
                            const Options& options) {
  if (open_) return Status::InvalidArgument("already open");
  db_ = std::make_unique<oodb::Database>();
  SENTINEL_RETURN_NOT_OK(db_->Open(path_prefix, options.database));
  return OpenCommon(options);
}

Status ActiveDatabase::OpenInMemory(const Options& options) {
  if (open_) return Status::InvalidArgument("already open");
  db_ = nullptr;
  return OpenCommon(options);
}

Status ActiveDatabase::OpenCommon(const Options& options) {
  detector_ = std::make_unique<detector::LocalEventDetector>();
  detector_->set_tracer(&tracer_);
  if (db_ != nullptr) {
    detector_->set_class_registry(db_->classes());
    cache_ = std::make_unique<oodb::ObjectCache>(db_->engine(), db_->objects(),
                                                 /*capacity=*/1024);
  }
  nested_ = std::make_unique<txn::NestedTransactionManager>(options.nested);
  scheduler_ = std::make_unique<rules::RuleScheduler>(nested_.get(), db_.get(),
                                                      options.scheduler);
  scheduler_->set_tracer(&tracer_);
  rules::RuleManager::Config config;
  config.begin_txn_event = kBeginTxnEvent;
  config.pre_commit_event = kPreCommitEvent;
  rule_manager_ =
      std::make_unique<rules::RuleManager>(detector_.get(), scheduler_.get(),
                                           config);

  // System transaction events (the REACTIVE system class, §3.2).
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kBeginTxnEvent).status());
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kPreCommitEvent).status());
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kCommitEvent).status());
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kAbortEvent).status());

  // Internal flush rules (§3.2.2 item 3). Users may disable them via the
  // rule manager to allow events to span transaction boundaries.
  detector::LocalEventDetector* det = detector_.get();
  rules::RuleManager::RuleOptions flush_options;
  flush_options.priority = -1000000;  // run after every user rule
  auto flush_action = [det](const rules::RuleContext& ctx) {
    if (ctx.occurrence != nullptr &&
        ctx.occurrence->txn != storage::kInvalidTxnId) {
      det->FlushTxn(ctx.occurrence->txn);
    }
  };
  SENTINEL_RETURN_NOT_OK(rule_manager_
                             ->DefineRule(kFlushOnCommitRule, kCommitEvent,
                                          nullptr, flush_action, flush_options)
                             .status());
  SENTINEL_RETURN_NOT_OK(rule_manager_
                             ->DefineRule(kFlushOnAbortRule, kAbortEvent,
                                          nullptr, flush_action, flush_options)
                             .status());

  // Reactive RULE class (§3.2): rule executions are method events when
  // enabled. Skipped for executions that were themselves triggered by RULE
  // events, so meta-rules cannot recurse onto their own firings.
  scheduler_->SetExecutionObserver([this](const rules::Firing& firing,
                                          bool condition_held, Status) {
    if (!rule_events_ || firing.rule == nullptr) return;
    for (const auto& constituent : firing.occurrence.constituents) {
      if (constituent->class_name == kRuleClass) return;
    }
    auto params = common::MakePooled<detector::ParamList>();
    params->Insert("rule", oodb::Value::String(firing.rule->name()));
    params->Insert("condition_held", oodb::Value::Bool(condition_held));
    params->Insert("depth", oodb::Value::Int(firing.depth));
    detector_->Notify(kRuleClass, oodb::kInvalidOid,
                      detector::EventModifier::kEnd, kRuleFiredMethod, params,
                      firing.txn);
  });
  open_ = true;
  return Status::OK();
}

Status ActiveDatabase::Close() {
  if (!open_) return Status::OK();
  if (scheduler_ != nullptr) {
    scheduler_->Drain();
    scheduler_->WaitDetached();
  }
  // Tear down in dependency order: rules reference the detector.
  rule_manager_.reset();
  scheduler_.reset();
  nested_.reset();
  detector_.reset();
  cache_.reset();
  Status st;
  if (db_ != nullptr) {
    st = db_->Close();
    db_.reset();
  }
  open_ = false;
  return st;
}

Result<storage::TxnId> ActiveDatabase::Begin() {
  storage::TxnId txn = storage::kInvalidTxnId;
  if (db_ != nullptr) {
    auto begun = db_->Begin();
    if (!begun.ok()) return begun.status();
    txn = *begun;
  } else {
    static std::atomic<storage::TxnId> fake_txn{1};
    txn = fake_txn.fetch_add(1);
  }
  // The begin_transaction event is always signalled at the beginning of a
  // transaction (§2.3).
  auto params = common::MakePooled<detector::ParamList>();
  params->Insert("txn", oodb::Value::Int(static_cast<std::int64_t>(txn)));
  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kBeginTxnEvent, params, txn));
  scheduler_->Drain();
  return txn;
}

Status ActiveDatabase::Commit(storage::TxnId txn) {
  auto params = common::MakePooled<detector::ParamList>();
  params->Insert("txn", oodb::Value::Int(static_cast<std::int64_t>(txn)));
  // pre_commit is signalled before the commit (§2.3): deferred rules (A*
  // terminator) execute here, inside the transaction.
  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kPreCommitEvent, params, txn));
  scheduler_->Drain();

  if (db_ != nullptr) SENTINEL_RETURN_NOT_OK(db_->Commit(txn));
  if (cache_ != nullptr) cache_->OnCommit(txn);
  nested_->EndTop(txn);

  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kCommitEvent, params, txn));
  scheduler_->Drain();
  return Status::OK();
}

Status ActiveDatabase::Abort(storage::TxnId txn) {
  auto params = common::MakePooled<detector::ParamList>();
  params->Insert("txn", oodb::Value::Int(static_cast<std::int64_t>(txn)));
  Status st;
  if (db_ != nullptr) st = db_->Abort(txn);
  if (cache_ != nullptr) cache_->OnAbort(txn);
  nested_->EndTop(txn);
  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kAbortEvent, params, txn));
  scheduler_->Drain();
  return st;
}

Result<detector::EventNode*> ActiveDatabase::DeclareEvent(
    const std::string& event_name, const std::string& class_name,
    detector::EventModifier modifier, const std::string& method_signature,
    oodb::Oid instance) {
  return detector_->DefinePrimitive(event_name, class_name, modifier,
                                    method_signature, instance);
}

void ActiveDatabase::NotifyMethod(
    const std::string& class_name, oodb::Oid oid,
    detector::EventModifier modifier, const std::string& method_signature,
    std::shared_ptr<const detector::ParamList> params, storage::TxnId txn) {
  detector_->Notify(class_name, oid, modifier, method_signature,
                    std::move(params), txn);
  // The application waits for its immediate rules (§2.3).
  scheduler_->Drain();
}

Status ActiveDatabase::RaiseEvent(
    const std::string& event_name,
    std::shared_ptr<const detector::ParamList> params, storage::TxnId txn) {
  SENTINEL_RETURN_NOT_OK(
      detector_->RaiseExplicit(event_name, std::move(params), txn));
  scheduler_->Drain();
  return Status::OK();
}

void ActiveDatabase::AdvanceTime(std::uint64_t now_ms) {
  detector_->AdvanceTime(now_ms);
  scheduler_->Drain();
}

std::string ActiveDatabase::StatsJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  if (detector_ != nullptr) {
    w.Key("detector").Raw(detector_->StatsJson());
  }
  if (scheduler_ != nullptr) {
    w.Key("scheduler").BeginObject();
    w.Field("policy", static_cast<int>(scheduler_->policy()));
    w.Field("contingency",
            rules::ContingencyPolicyToString(scheduler_->contingency()));
    w.Field("executed", scheduler_->executed_count());
    w.Field("condition_rejections", scheduler_->condition_rejections());
    w.Field("failed", scheduler_->failed_count());
    w.Field("abort_top", scheduler_->abort_top_count());
    w.Field("max_depth", scheduler_->max_depth_seen());
    w.EndObject();
  }
  if (rule_manager_ != nullptr) {
    w.Key("rules").BeginArray();
    for (const std::string& name : rule_manager_->RuleNames()) {
      auto rule = rule_manager_->Find(name);
      if (!rule.ok()) continue;
      const obs::RuleMetrics& m = (*rule)->metrics();
      w.BeginObject();
      w.Field("name", name);
      w.Field("event", (*rule)->declared_event());
      w.Field("coupling", rules::CouplingModeToString((*rule)->coupling()));
      w.Field("fired", (*rule)->fired_count());
      w.Key("condition_ns").Raw(obs::HistogramJson(m.condition_ns.TakeSnapshot()));
      w.Key("action_ns").Raw(obs::HistogramJson(m.action_ns.TakeSnapshot()));
      w.Key("commit_ns").Raw(obs::HistogramJson(m.commit_ns.TakeSnapshot()));
      w.Key("abort_ns").Raw(obs::HistogramJson(m.abort_ns.TakeSnapshot()));
      w.Key("lock_wait_ns")
          .Raw(obs::HistogramJson(m.lock_wait_ns.TakeSnapshot()));
      w.EndObject();
    }
    w.EndArray();
  }
  if (nested_ != nullptr) {
    w.Key("nested_txn").BeginObject();
    w.Field("active_subtxns", nested_->active_count());
    w.Field("locked_keys", nested_->locked_key_count());
    w.EndObject();
  }
  w.Key("trace").BeginObject();
  w.Field("enabled", tracer_.enabled());
  w.Field("capacity", tracer_.capacity());
  w.Field("size", tracer_.size());
  w.Field("recorded", tracer_.recorded());
  w.Field("dropped", tracer_.dropped());
  w.EndObject();
  w.EndObject();
  return w.Take();
}

Result<oodb::Oid> ActiveDatabase::CreateObject(storage::TxnId txn,
                                               const std::string& class_name,
                                               const std::string& name) {
  if (db_ == nullptr) {
    return Status::InvalidArgument("no persistent store in in-memory mode");
  }
  if (!db_->classes()->Exists(class_name)) {
    return Status::NotFound("class not registered: " + class_name);
  }
  oodb::PersistentObject obj(oodb::kInvalidOid, class_name);
  auto oid = db_->objects()->Put(txn, std::move(obj));
  if (!oid.ok()) return oid;
  if (!name.empty()) {
    SENTINEL_RETURN_NOT_OK(db_->names()->Bind(txn, name, *oid));
  }
  return oid;
}

}  // namespace sentinel::core
