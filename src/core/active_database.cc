#include "core/active_database.h"

#include <cstdlib>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/pool.h"
#include "net/event_bus_server.h"
#include "net/remote_client.h"
#include "obs/json.h"
#include "obs/prometheus.h"

namespace sentinel::core {

constexpr char ActiveDatabase::kBeginTxnEvent[];
constexpr char ActiveDatabase::kPreCommitEvent[];
constexpr char ActiveDatabase::kCommitEvent[];
constexpr char ActiveDatabase::kAbortEvent[];
constexpr char ActiveDatabase::kFlushOnCommitRule[];
constexpr char ActiveDatabase::kFlushOnAbortRule[];
constexpr char ActiveDatabase::kRuleClass[];
constexpr char ActiveDatabase::kRuleFiredMethod[];

ActiveDatabase::~ActiveDatabase() { (void)Close(); }

Status ActiveDatabase::Open(const std::string& path_prefix) {
  return Open(path_prefix, Options());
}

Status ActiveDatabase::OpenInMemory() { return OpenInMemory(Options()); }

Status ActiveDatabase::Open(const std::string& path_prefix,
                            const Options& options) {
  if (open_) return Status::InvalidArgument("already open");
  db_ = std::make_unique<oodb::Database>();
  SENTINEL_RETURN_NOT_OK(db_->Open(path_prefix, options.database));
  return OpenCommon(options);
}

Status ActiveDatabase::OpenInMemory(const Options& options) {
  if (open_) return Status::InvalidArgument("already open");
  db_ = nullptr;
  return OpenCommon(options);
}

Status ActiveDatabase::OpenCommon(const Options& options) {
  span_tracer_.set_flight_recorder(&flight_recorder_);
  detector_ = std::make_unique<detector::LocalEventDetector>();
  detector_->set_tracer(&tracer_);
  detector_->set_span_tracer(&span_tracer_);
  detector_->set_profiler(&profiler_);
  if (db_ != nullptr) {
    detector_->set_class_registry(db_->classes());
    cache_ = std::make_unique<oodb::ObjectCache>(db_->engine(), db_->objects(),
                                                 /*capacity=*/1024);
    // Storage-layer spans + postmortem-on-deadlock. The deadlock hook runs
    // after the lock manager released its latch, so the dump may snapshot
    // the lock table safely.
    storage::StorageEngine* engine = db_->engine();
    engine->lock_manager()->set_span_tracer(&span_tracer_);
    engine->lock_manager()->set_deadlock_hook(
        [this](storage::TxnId victim, const storage::LockKey& key) {
          (void)key;
          (void)DumpPostmortem("deadlock", victim);
        });
    engine->buffer_pool()->set_span_tracer(&span_tracer_);
    engine->log_manager()->set_span_tracer(&span_tracer_);
    engine->lock_manager()->set_profiler(&profiler_);
    engine->log_manager()->set_profiler(&profiler_);
  }
  nested_ = std::make_unique<txn::NestedTransactionManager>(options.nested);
  nested_->set_span_tracer(&span_tracer_);
  scheduler_ = std::make_unique<rules::RuleScheduler>(nested_.get(), db_.get(),
                                                      options.scheduler);
  scheduler_->set_tracer(&tracer_);
  scheduler_->set_span_tracer(&span_tracer_);
  scheduler_->set_profiler(&profiler_);
  scheduler_->set_postmortem_hook([this](storage::TxnId doomed) {
    (void)DumpPostmortem("abort_top", doomed);
  });
  rules::RuleManager::Config config;
  config.begin_txn_event = kBeginTxnEvent;
  config.pre_commit_event = kPreCommitEvent;
  rule_manager_ =
      std::make_unique<rules::RuleManager>(detector_.get(), scheduler_.get(),
                                           config);

  // System transaction events (the REACTIVE system class, §3.2).
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kBeginTxnEvent).status());
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kPreCommitEvent).status());
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kCommitEvent).status());
  SENTINEL_RETURN_NOT_OK(detector_->DefineExplicit(kAbortEvent).status());

  // Internal flush rules (§3.2.2 item 3). Users may disable them via the
  // rule manager to allow events to span transaction boundaries.
  detector::LocalEventDetector* det = detector_.get();
  rules::RuleManager::RuleOptions flush_options;
  flush_options.priority = -1000000;  // run after every user rule
  auto flush_action = [det](const rules::RuleContext& ctx) {
    if (ctx.occurrence != nullptr &&
        ctx.occurrence->txn != storage::kInvalidTxnId) {
      det->FlushTxn(ctx.occurrence->txn);
    }
  };
  SENTINEL_RETURN_NOT_OK(rule_manager_
                             ->DefineRule(kFlushOnCommitRule, kCommitEvent,
                                          nullptr, flush_action, flush_options)
                             .status());
  SENTINEL_RETURN_NOT_OK(rule_manager_
                             ->DefineRule(kFlushOnAbortRule, kAbortEvent,
                                          nullptr, flush_action, flush_options)
                             .status());

  // Reactive RULE class (§3.2): rule executions are method events when
  // enabled. Skipped for executions that were themselves triggered by RULE
  // events, so meta-rules cannot recurse onto their own firings.
  scheduler_->SetExecutionObserver([this](const rules::Firing& firing,
                                          bool condition_held, Status) {
    if (!rule_events_ || firing.rule == nullptr) return;
    for (const auto& constituent : firing.occurrence.constituents) {
      if (constituent->class_name == kRuleClass) return;
    }
    auto params = common::MakePooled<detector::ParamList>();
    params->Insert("rule", oodb::Value::String(firing.rule->name()));
    params->Insert("condition_held", oodb::Value::Bool(condition_held));
    params->Insert("depth", oodb::Value::Int(firing.depth));
    detector_->Notify(kRuleClass, oodb::kInvalidOid,
                      detector::EventModifier::kEnd, kRuleFiredMethod, params,
                      firing.txn);
  });
  // Route warn/error log lines into the flight recorder's log ring so a
  // postmortem shows the last warnings alongside the last spans. Keyed by
  // `this`; cleared in Close before the recorder could go away.
  Logger::SetSink(this, [this](LogLevel level, const std::string& message) {
    flight_recorder_.RecordLog(level, message);
  });
  open_ = true;

  // Operator opt-in profiling: SENTINEL_PROFILE=1 turns the continuous
  // profiler on from the first event (the shell's `profile start` and
  // Profiler::Start do the same at runtime).
  if (const char* prof_env = std::getenv("SENTINEL_PROFILE")) {
    if (prof_env[0] != '\0' && prof_env[0] != '0') profiler_.Start();
  }

  // Operator opt-in monitoring: SENTINEL_MONITOR_PORT starts the watchdog
  // plus the HTTP endpoint (0 = ephemeral port, logged below); a bind
  // failure degrades to a warning — monitoring must never take the
  // database down with it.
  if (const char* port_env = std::getenv("SENTINEL_MONITOR_PORT")) {
    obs::Watchdog::Options wd;
    if (const char* ms_env = std::getenv("SENTINEL_WATCHDOG_MS")) {
      const long ms = std::strtol(ms_env, nullptr, 10);
      if (ms > 0) wd.interval = std::chrono::milliseconds(ms);
    }
    auto started = StartMonitoring(
        static_cast<int>(std::strtol(port_env, nullptr, 10)), wd);
    if (started.ok()) {
      SENTINEL_LOG(kInfo) << "monitor server listening on 127.0.0.1:"
                          << *started;
    } else {
      SENTINEL_LOG(kWarn) << "SENTINEL_MONITOR_PORT set but monitoring "
                             "failed to start: "
                          << started.status().ToString();
    }
  }
  return Status::OK();
}

Status ActiveDatabase::Close() {
  if (!open_) return Status::OK();
  // Detach the log sink first: teardown below may itself log warnings, and
  // the sink writes into this database's flight recorder.
  Logger::ClearSink(this);
  // Tear down the monitoring plane next: its sampler thread and request
  // handlers read every component released below.
  StopMonitoring();
  // Join the profiler's sampler before component teardown so it never walks
  // a worker annotation mid-join. Accounts stay readable after Stop.
  profiler_.Stop();
  if (scheduler_ != nullptr) {
    scheduler_->Drain();
    scheduler_->WaitDetached();
  }
  // Tear down in dependency order: rules reference the detector.
  rule_manager_.reset();
  scheduler_.reset();
  nested_.reset();
  detector_.reset();
  cache_.reset();
  Status st;
  if (db_ != nullptr) {
    st = db_->Close();
    db_.reset();
  }
  open_ = false;
  return st;
}

Result<storage::TxnId> ActiveDatabase::Begin() {
  storage::TxnId txn = storage::kInvalidTxnId;
  if (db_ != nullptr) {
    auto begun = db_->Begin();
    if (!begun.ok()) return begun.status();
    txn = *begun;
  } else {
    static std::atomic<storage::TxnId> fake_txn{1};
    txn = fake_txn.fetch_add(1);
  }
  // Root of this transaction's span tree; closes at Commit/Abort. The
  // anchor parents the begin-event spans raised below into it.
  if (span_tracer_.enabled_for(obs::SpanKind::kTxn)) {
    span_tracer_.BeginTxnSpan(txn);
  }
  obs::TxnAnchorScope anchor;
  anchor.Start(&span_tracer_, txn);
  // The begin_transaction event is always signalled at the beginning of a
  // transaction (§2.3).
  auto params = common::MakePooled<detector::ParamList>();
  params->Insert("txn", oodb::Value::Int(static_cast<std::int64_t>(txn)));
  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kBeginTxnEvent, params, txn));
  scheduler_->Drain();
  open_txn_gauge_.fetch_add(1, std::memory_order_relaxed);
  return txn;
}

Status ActiveDatabase::Commit(storage::TxnId txn) {
  // Parent everything the commit does (pre-commit rules, WAL fsyncs, the
  // commit event) into the transaction's span; the txn span itself closes
  // once the commit pipeline has run.
  obs::TxnAnchorScope anchor;
  anchor.Start(&span_tracer_, txn);
  auto params = common::MakePooled<detector::ParamList>();
  params->Insert("txn", oodb::Value::Int(static_cast<std::int64_t>(txn)));
  // pre_commit is signalled before the commit (§2.3): deferred rules (A*
  // terminator) execute here, inside the transaction. The batch scope hands
  // every deferred firing the raise produces to the scheduler in one bulk
  // enqueue (one lock acquisition) before Drain runs them.
  {
    rules::RuleScheduler::BatchScope batch(scheduler_.get());
    SENTINEL_RETURN_NOT_OK(
        detector_->RaiseExplicit(kPreCommitEvent, params, txn));
  }
  scheduler_->Drain();

  if (db_ != nullptr) SENTINEL_RETURN_NOT_OK(db_->Commit(txn));
  if (cache_ != nullptr) cache_->OnCommit(txn);
  nested_->EndTop(txn);
  open_txn_gauge_.fetch_sub(1, std::memory_order_relaxed);

  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kCommitEvent, params, txn));
  scheduler_->Drain();
  anchor.End();
  span_tracer_.EndTxnSpan(txn);
  return Status::OK();
}

Status ActiveDatabase::Abort(storage::TxnId txn) {
  obs::TxnAnchorScope anchor;
  anchor.Start(&span_tracer_, txn);
  auto params = common::MakePooled<detector::ParamList>();
  params->Insert("txn", oodb::Value::Int(static_cast<std::int64_t>(txn)));
  Status st;
  if (db_ != nullptr) st = db_->Abort(txn);
  if (cache_ != nullptr) cache_->OnAbort(txn);
  nested_->EndTop(txn);
  open_txn_gauge_.fetch_sub(1, std::memory_order_relaxed);
  SENTINEL_RETURN_NOT_OK(detector_->RaiseExplicit(kAbortEvent, params, txn));
  scheduler_->Drain();
  anchor.End();
  span_tracer_.EndTxnSpan(txn);
  return st;
}

void ActiveDatabase::set_commit_durability(
    storage::CommitDurability durability) {
  if (db_ != nullptr) db_->engine()->set_commit_durability(durability);
}

storage::CommitDurability ActiveDatabase::commit_durability() const {
  if (db_ != nullptr) return db_->engine()->commit_durability();
  return storage::CommitDurability::kSync;
}

Status ActiveDatabase::WaitWalDurable() {
  if (db_ == nullptr) return Status::OK();
  return db_->engine()->WaitWalDurable();
}

Result<detector::EventNode*> ActiveDatabase::DeclareEvent(
    const std::string& event_name, const std::string& class_name,
    detector::EventModifier modifier, const std::string& method_signature,
    oodb::Oid instance) {
  return detector_->DefinePrimitive(event_name, class_name, modifier,
                                    method_signature, instance);
}

void ActiveDatabase::NotifyMethod(
    const std::string& class_name, oodb::Oid oid,
    detector::EventModifier modifier, const std::string& method_signature,
    std::shared_ptr<const detector::ParamList> params, storage::TxnId txn) {
  detector_->Notify(class_name, oid, modifier, method_signature,
                    std::move(params), txn);
  // The application waits for its immediate rules (§2.3).
  scheduler_->Drain();
}

Status ActiveDatabase::RaiseEvent(
    const std::string& event_name,
    std::shared_ptr<const detector::ParamList> params, storage::TxnId txn) {
  SENTINEL_RETURN_NOT_OK(
      detector_->RaiseExplicit(event_name, std::move(params), txn));
  scheduler_->Drain();
  return Status::OK();
}

void ActiveDatabase::AdvanceTime(std::uint64_t now_ms) {
  detector_->AdvanceTime(now_ms);
  scheduler_->Drain();
}

std::string ActiveDatabase::StatsJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  if (detector_ != nullptr) {
    w.Key("detector").Raw(detector_->StatsJson());
  }
  if (scheduler_ != nullptr) {
    w.Key("scheduler").BeginObject();
    w.Field("policy", static_cast<int>(scheduler_->policy()));
    w.Field("contingency",
            rules::ContingencyPolicyToString(scheduler_->contingency()));
    w.Field("executed", scheduler_->executed_count());
    w.Field("condition_rejections", scheduler_->condition_rejections());
    w.Field("failed", scheduler_->failed_count());
    w.Field("abort_top", scheduler_->abort_top_count());
    w.Field("max_depth", scheduler_->max_depth_seen());
    w.EndObject();
  }
  if (rule_manager_ != nullptr) {
    w.Key("rules").BeginArray();
    for (const std::string& name : rule_manager_->RuleNames()) {
      auto rule = rule_manager_->Find(name);
      if (!rule.ok()) continue;
      const obs::RuleMetrics& m = (*rule)->metrics();
      w.BeginObject();
      w.Field("name", name);
      w.Field("event", (*rule)->declared_event());
      w.Field("coupling", rules::CouplingModeToString((*rule)->coupling()));
      w.Field("fired", (*rule)->fired_count());
      w.Key("condition_ns").Raw(obs::HistogramJson(m.condition_ns.TakeSnapshot()));
      w.Key("action_ns").Raw(obs::HistogramJson(m.action_ns.TakeSnapshot()));
      w.Key("commit_ns").Raw(obs::HistogramJson(m.commit_ns.TakeSnapshot()));
      w.Key("abort_ns").Raw(obs::HistogramJson(m.abort_ns.TakeSnapshot()));
      w.Key("lock_wait_ns")
          .Raw(obs::HistogramJson(m.lock_wait_ns.TakeSnapshot()));
      w.EndObject();
    }
    w.EndArray();
  }
  if (nested_ != nullptr) {
    w.Key("nested_txn").BeginObject();
    w.Field("active_subtxns", nested_->active_count());
    w.Field("locked_keys", nested_->locked_key_count());
    w.EndObject();
  }
  if (db_ != nullptr) {
    // Unified storage-layer telemetry: every cache/WAL/lock counter in one
    // place instead of scattered over component accessors.
    storage::StorageEngine* engine = db_->engine();
    w.Key("storage").BeginObject();
    storage::BufferPool* pool = engine->buffer_pool();
    w.Key("buffer_pool").BeginObject();
    w.Field("hits", pool->hit_count());
    w.Field("misses", pool->miss_count());
    w.Field("evictions", pool->eviction_count());
    w.Field("resident", pool->resident_count());
    w.Field("capacity", pool->capacity());
    w.EndObject();
    if (cache_ != nullptr) {
      w.Key("object_cache").BeginObject();
      w.Field("hits", cache_->hit_count());
      w.Field("misses", cache_->miss_count());
      w.Field("resident", cache_->size());
      w.EndObject();
    }
    storage::LogManager* wal = engine->log_manager();
    w.Key("wal").BeginObject();
    w.Field("sync_count", wal->sync_count());
    w.Field("truncated_bytes", wal->truncated_bytes());
    w.Field("wedged", wal->wedged());
    w.Field("appended_lsn", wal->appended_lsn());
    w.Field("durable_lsn", wal->durable_lsn());
    w.Field("group_commit_waits", wal->group_commit_waits());
    w.Field("async_commits", wal->async_commits());
    w.Key("fsync_ns").Raw(obs::HistogramJson(wal->fsync_histogram().TakeSnapshot()));
    w.EndObject();
    storage::DiskManager* disk = engine->disk_manager();
    w.Key("disk").BeginObject();
    w.Field("sync_count", disk->sync_count());
    w.Field("io_retries", disk->io_retries());
    w.Field("pages", disk->page_count());
    w.Key("fsync_ns").Raw(obs::HistogramJson(disk->fsync_histogram().TakeSnapshot()));
    w.EndObject();
    storage::LockManager* locks = engine->lock_manager();
    w.Key("lock_manager").BeginObject();
    w.Field("waits", locks->wait_count());
    w.Field("deadlocks", locks->deadlock_count());
    w.Field("timeouts", locks->timeout_count());
    w.Key("wait_ns").Raw(obs::HistogramJson(locks->wait_histogram().TakeSnapshot()));
    w.EndObject();
    w.EndObject();
  }
  w.Key("trace").BeginObject();
  w.Field("enabled", tracer_.enabled());
  w.Field("capacity", tracer_.capacity());
  w.Field("size", tracer_.size());
  w.Field("recorded", tracer_.recorded());
  w.Field("dropped", tracer_.dropped());
  w.EndObject();
  w.Key("span_trace").BeginObject();
  w.Field("mode", obs::TraceModeToString(span_tracer_.mode()));
  w.Field("recorded", span_tracer_.recorded());
  w.Field("dropped", span_tracer_.dropped());
  w.Field("flight_recorded", flight_recorder_.recorded());
  w.Field("postmortems", flight_recorder_.dumps());
  w.EndObject();
  w.EndObject();
  return w.Take();
}

Status ActiveDatabase::ExportTrace(const std::string& path) {
  return span_tracer_.ExportChromeTrace(path);
}

std::string ActiveDatabase::PostmortemJson(const std::string& reason,
                                           storage::TxnId txn) {
  const std::uint64_t now_ns = obs::SpanTracer::NowNs();
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("reason", reason);
  if (txn != storage::kInvalidTxnId) w.Field("victim_txn", txn);
  w.Field("trace_mode", obs::TraceModeToString(span_tracer_.mode()));

  // Top-level transactions still open, via their anchor spans.
  w.Key("active_txns").BeginArray();
  for (const obs::Span& span : span_tracer_.OpenTxnSpans()) {
    w.BeginObject();
    w.Field("txn", span.txn);
    w.Field("span", span.id);
    w.Field("open_ns", now_ns > span.start_ns ? now_ns - span.start_ns : 0);
    w.EndObject();
  }
  w.EndArray();

  // In-flight rule subtransactions and the nested locks they hold.
  if (nested_ != nullptr) {
    w.Key("subtxns").BeginArray();
    for (const auto& info : nested_->ActiveSubTxns()) {
      w.BeginObject();
      w.Field("id", info.id);
      w.Field("top", info.top);
      w.Field("parent", info.parent);
      w.Field("depth", info.depth);
      w.Field("lock_wait_ns", info.lock_wait_ns);
      w.Key("held_keys").BeginArray();
      for (const std::string& key : info.held_keys) w.Value(key);
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
  }

  // Storage lock table: held locks plus waits-for edges (who is blocked on
  // what — the deadlock evidence).
  if (db_ != nullptr) {
    storage::LockManager* locks = db_->engine()->lock_manager();
    w.Key("locks").BeginArray();
    for (const auto& info : locks->SnapshotLocks()) {
      w.BeginObject();
      w.Field("key", info.key);
      w.Key("holders").BeginArray();
      for (const auto& holder : info.holders) {
        w.BeginObject();
        w.Field("txn", holder.txn);
        w.Field("mode",
                holder.mode == storage::LockMode::kExclusive ? "X" : "S");
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.Key("waits_for").BeginArray();
    for (const auto& edge : locks->SnapshotWaits()) {
      w.BeginObject();
      w.Field("txn", edge.txn);
      w.Field("key", edge.key);
      w.EndObject();
    }
    w.EndArray();
  }

  // Failpoint hit counts: which injected faults were armed and firing.
  w.Key("failpoints").BeginArray();
  for (const auto& info : FailPointRegistry::Instance().List()) {
    w.BeginObject();
    w.Field("name", info.name);
    w.Field("spec", info.spec.ToString());
    w.Field("hits", info.hits);
    w.Field("fires", info.fires);
    w.EndObject();
  }
  w.EndArray();

  // The last warn/error log lines before the failure, oldest first (the
  // Logger sink feeds the flight recorder's log ring while the database is
  // open).
  w.Key("last_logs").BeginArray();
  for (const auto& entry : flight_recorder_.SnapshotLogs()) {
    w.BeginObject();
    w.Field("at_ns", entry.at_ns);
    w.Field("level", Logger::LevelName(entry.level));
    w.Field("message", entry.message);
    w.EndObject();
  }
  w.EndArray();

  // The last spans the system recorded before the failure, oldest first.
  w.Key("last_spans").BeginArray();
  for (const obs::Span& span : flight_recorder_.Snapshot()) {
    w.BeginObject();
    w.Field("id", span.id);
    w.Field("parent", span.parent);
    w.Field("kind", obs::SpanKindToString(span.kind));
    if (span.txn != storage::kInvalidTxnId) w.Field("txn", span.txn);
    if (span.subtxn != 0) w.Field("subtxn", span.subtxn);
    w.Field("dur_ns", span.end_ns > span.start_ns
                          ? span.end_ns - span.start_ns
                          : 0);
    w.Field("tid", span.tid);
    w.Field("label", span.label);
    w.EndObject();
  }
  w.EndArray();

  if (scheduler_ != nullptr) {
    w.Key("scheduler").BeginObject();
    w.Field("executed", scheduler_->executed_count());
    w.Field("failed", scheduler_->failed_count());
    w.Field("abort_top", scheduler_->abort_top_count());
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

Result<std::string> ActiveDatabase::DumpPostmortem(const std::string& reason,
                                                   storage::TxnId txn,
                                                   const std::string& path) {
  return flight_recorder_.WritePostmortem(PostmortemJson(reason, txn), path);
}

Result<int> ActiveDatabase::StartMonitoring(
    int port, obs::Watchdog::Options watchdog_options) {
  if (!open_) return Status::InvalidArgument("database not open");
  if (watchdog_ != nullptr || monitor_ != nullptr) {
    return Status::InvalidArgument("monitoring already started");
  }
  watchdog_ = std::make_unique<obs::Watchdog>(
      [this] { return CollectMonitorSample(); }, watchdog_options);
  watchdog_->set_postmortem_hook([this](const std::string& reason) {
    (void)DumpPostmortem("watchdog: " + reason);
  });
  // On degrade, /healthz names the rule with the largest attributed cost —
  // the first suspect when the pipeline wedges under rule load.
  watchdog_->set_detail_provider([this] { return profiler_.TopCostRule(); });
  Status st = watchdog_->Start();
  if (!st.ok()) {
    watchdog_.reset();
    return st;
  }
  if (port < 0) return -1;  // watchdog-only mode

  monitor_ = std::make_unique<obs::MonitorServer>();
  monitor_->Route("/metrics", [this] {
    obs::MonitorServer::Response r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = PrometheusText();
    return r;
  });
  monitor_->Route("/stats", [this] {
    obs::MonitorServer::Response r;
    r.content_type = "application/json";
    r.body = StatsJson();
    return r;
  });
  monitor_->Route("/graph", [this] {
    obs::MonitorServer::Response r;
    r.content_type = "text/vnd.graphviz";
    r.body = detector_->DumpGraph();
    return r;
  });
  monitor_->Route("/trace", [this] {
    obs::MonitorServer::Response r;
    r.content_type = "application/json";
    r.body = span_tracer_.ChromeTraceJson();
    return r;
  });
  monitor_->Route("/postmortem", [this] {
    obs::MonitorServer::Response r;
    r.content_type = "application/json";
    r.body = PostmortemJson("manual");
    return r;
  });
  monitor_->Route("/profile", [this] {
    obs::MonitorServer::Response r;
    r.content_type = "application/json";
    r.body = profiler_.ProfileJson();
    return r;
  });
  monitor_->Route("/healthz", [this] {
    obs::MonitorServer::Response r;
    r.content_type = "application/json";
    r.body = HealthJson(&r.status);
    return r;
  });
  obs::MonitorServer::Options server_options;
  server_options.port = port;
  st = monitor_->Start(server_options);
  if (!st.ok()) {
    monitor_.reset();
    watchdog_->Stop();
    watchdog_.reset();
    return st;
  }
  return monitor_->port();
}

void ActiveDatabase::StopMonitoring() {
  // Server first: once it is down no handler can race component access
  // while the watchdog (and later Close) tears the rest down.
  if (monitor_ != nullptr) {
    monitor_->Stop();
    monitor_.reset();
  }
  if (watchdog_ != nullptr) {
    watchdog_->Stop();
    watchdog_.reset();
  }
}

obs::MonitorSample ActiveDatabase::CollectMonitorSample() {
  obs::MonitorSample s;
  s.at_ns = obs::SpanTracer::NowNs();
  if (detector_ != nullptr) {
    const auto totals = detector_->TotalsSnapshot();
    s.notifications = totals.notifications;
    s.detections = totals.detections;
    s.detector_buffered = totals.buffered;
  }
  if (scheduler_ != nullptr) {
    s.executed = scheduler_->executed_count();
    s.failed = scheduler_->failed_count();
    s.abort_top = scheduler_->abort_top_count();
    s.sched_pending = scheduler_->pending_count();
    s.sched_detached = scheduler_->detached_pending_count();
  }
  if (nested_ != nullptr) {
    s.active_subtxns = nested_->active_count();
    s.nested_waiters = nested_->waiting_count();
  }
  if (db_ != nullptr) {
    storage::StorageEngine* engine = db_->engine();
    s.open_txns = engine->active_txn_count();
    s.lock_waiters = engine->lock_manager()->waiting_count();
    s.deadlocks = engine->lock_manager()->deadlock_count();
    s.lock_wait = engine->lock_manager()->wait_histogram().TakeSnapshot();
    s.pool_resident = engine->buffer_pool()->resident_count();
    s.pool_dirty = engine->buffer_pool()->dirty_count();
    s.wal_wedged = engine->log_manager()->wedged();
    s.wal_appended_lsn = engine->log_manager()->appended_lsn();
    s.wal_durable_lsn = engine->log_manager()->durable_lsn();
    s.wal_fsync = engine->log_manager()->fsync_histogram().TakeSnapshot();
  } else {
    const std::int64_t open = open_txn_gauge_.load(std::memory_order_relaxed);
    s.open_txns = open > 0 ? static_cast<std::uint64_t>(open) : 0;
  }
  if (event_bus_ != nullptr) {
    const net::EventBusServerStats net = event_bus_->stats();
    s.net_sessions = net.open_sessions;
    s.net_admission_depth = net.admission_depth;
    s.net_sheds = net.sheds;
    s.net_frame_errors = net.frame_errors;
    s.net_overloaded = net.overloaded;
    s.net_e2e = net.e2e_delivery_ns;
  }
  return s;
}

void ActiveDatabase::AttachEventBusServer(net::EventBusServer* server) {
  event_bus_ = server;
  if (server != nullptr) server->set_span_tracer(&span_tracer_);
}

void ActiveDatabase::AttachRemoteGedClient(net::RemoteGedClient* client) {
  remote_client_ = client;
  if (client != nullptr) client->set_span_tracer(&span_tracer_);
}

std::string ActiveDatabase::HealthJson(int* http_status) {
  if (watchdog_ != nullptr) {
    const obs::HealthState state = watchdog_->health();
    if (http_status != nullptr) {
      *http_status = state == obs::HealthState::kHealthy ? 200 : 503;
    }
    return watchdog_->HealthJson();
  }
  // No watchdog: report the cheap invariants only.
  bool wedged = false;
  if (db_ != nullptr) wedged = db_->engine()->log_manager()->wedged();
  if (http_status != nullptr) *http_status = wedged ? 503 : 200;
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("status", wedged ? "unhealthy" : "healthy");
  w.Field("healthy", !wedged);
  w.Field("watchdog_running", false);
  if (wedged) {
    w.Key("reasons").BeginArray();
    w.Value("wal_wedged");
    w.EndArray();
  }
  w.EndObject();
  return w.Take();
}

std::string ActiveDatabase::PrometheusText() {
  obs::PromWriter p;
  using Labels = obs::PromWriter::Labels;

  // Pipeline totals + per-node event-graph series.
  if (detector_ != nullptr) {
    const auto totals = detector_->TotalsSnapshot();
    p.Counter("sentinel_detector_notifications_total",
              "Raw event notifications accepted by the detector.", {},
              totals.notifications);
    p.Counter("sentinel_detector_detections_total",
              "Occurrences emitted by event-graph nodes.", {},
              totals.detections);
    p.Counter("sentinel_detector_flushed_total",
              "Buffered occurrences dropped by transaction flushes.", {},
              totals.flushed);
    p.Gauge("sentinel_detector_buffered",
            "Occurrences currently buffered in the event graph.", {},
            totals.buffered);

    p.Family("sentinel_event_received_total",
             "Occurrences delivered into an event node, by context.",
             "counter");
    p.Family("sentinel_event_detected_total",
             "Occurrences emitted by an event node, by context.", "counter");
    p.Family("sentinel_event_buffered",
             "Occurrences buffered at an event node.", "gauge");
    p.Family("sentinel_event_context_refs",
             "Subscriber reference count per parameter context.", "gauge");
    for (const auto& node : detector_->SnapshotNodes()) {
      const Labels node_labels = {{"event", node.name}, {"kind", node.kind}};
      p.Sample("sentinel_event_buffered", node_labels, node.buffered);
      for (int c = 0; c < detector::kNumContexts; ++c) {
        const auto& ctx = node.contexts[c];
        if (ctx.refs == 0 && ctx.received == 0 && ctx.detected == 0) continue;
        Labels ctx_labels = node_labels;
        ctx_labels.emplace_back(
            "context",
            detector::ParamContextToString(
                static_cast<detector::ParamContext>(c)));
        p.Sample("sentinel_event_received_total", ctx_labels, ctx.received);
        p.Sample("sentinel_event_detected_total", ctx_labels, ctx.detected);
        p.Sample("sentinel_event_context_refs", ctx_labels,
                 static_cast<std::uint64_t>(ctx.refs > 0 ? ctx.refs : 0));
      }
    }
  }

  // Scheduler counters + queue-depth gauges.
  if (scheduler_ != nullptr) {
    p.Counter("sentinel_rules_executed_total",
              "Rule firings that ran to completion.", {},
              scheduler_->executed_count());
    p.Counter("sentinel_rules_condition_rejections_total",
              "Firings whose condition did not hold.", {},
              scheduler_->condition_rejections());
    p.Counter("sentinel_rules_failed_total",
              "Contained rule failures (subtransaction rolled back).", {},
              scheduler_->failed_count());
    p.Counter("sentinel_rules_abort_top_total",
              "ABORT_TOP contingencies: rule failures that doomed the "
              "top-level transaction.",
              {}, scheduler_->abort_top_count());
    p.Gauge("sentinel_scheduler_pending",
            "Prioritized firings awaiting execution.", {},
            scheduler_->pending_count());
    p.Gauge("sentinel_scheduler_detached_pending",
            "Detached firings queued or executing.", {},
            scheduler_->detached_pending_count());
    p.Gauge("sentinel_scheduler_max_depth",
            "Deepest cascaded-rule nesting observed.", {},
            scheduler_->max_depth_seen());
  }

  // Per-rule firing counters and latency histograms.
  if (rule_manager_ != nullptr) {
    p.Family("sentinel_rule_fired_total", "Firings per rule.", "counter");
    for (const std::string& name : rule_manager_->RuleNames()) {
      auto rule = rule_manager_->Find(name);
      if (!rule.ok()) continue;
      const Labels labels = {{"rule", name},
                             {"event", (*rule)->declared_event()}};
      p.Sample("sentinel_rule_fired_total", labels, (*rule)->fired_count());
      const obs::RuleMetrics& m = (*rule)->metrics();
      const Labels rl = {{"rule", name}};
      p.Histogram("sentinel_rule_condition_ns",
                  "Condition evaluation latency (ns).", rl,
                  m.condition_ns.TakeSnapshot());
      p.Histogram("sentinel_rule_action_ns", "Action execution latency (ns).",
                  rl, m.action_ns.TakeSnapshot());
      p.Histogram("sentinel_rule_commit_ns",
                  "Rule subtransaction commit latency (ns).", rl,
                  m.commit_ns.TakeSnapshot());
      p.Histogram("sentinel_rule_abort_ns",
                  "Rule subtransaction abort latency (ns).", rl,
                  m.abort_ns.TakeSnapshot());
      p.Histogram("sentinel_rule_lock_wait_ns",
                  "Time the rule's subtransaction blocked on nested locks "
                  "(ns).",
                  rl, m.lock_wait_ns.TakeSnapshot());
    }
  }

  // Transactions + nested-transaction gauges.
  if (db_ != nullptr) {
    p.Gauge("sentinel_open_txns", "Open top-level transactions.", {},
            db_->engine()->active_txn_count());
  } else {
    const std::int64_t open = open_txn_gauge_.load(std::memory_order_relaxed);
    p.Gauge("sentinel_open_txns", "Open top-level transactions.", {},
            open > 0 ? static_cast<std::uint64_t>(open) : 0);
  }
  if (nested_ != nullptr) {
    p.Gauge("sentinel_subtxns_active", "Rule subtransactions in flight.", {},
            nested_->active_count());
    p.Gauge("sentinel_nested_locked_keys",
            "Keys held in the nested lock table.", {},
            nested_->locked_key_count());
    p.Gauge("sentinel_nested_waiters",
            "Threads blocked acquiring nested locks.", {},
            nested_->waiting_count());
  }

  // Storage layer (persistent mode only).
  if (db_ != nullptr) {
    storage::StorageEngine* engine = db_->engine();
    storage::BufferPool* pool = engine->buffer_pool();
    p.Counter("sentinel_buffer_pool_hits_total", "Buffer-pool page hits.", {},
              pool->hit_count());
    p.Counter("sentinel_buffer_pool_misses_total", "Buffer-pool page misses.",
              {}, pool->miss_count());
    p.Counter("sentinel_buffer_pool_evictions_total",
              "Pages evicted from the buffer pool.", {},
              pool->eviction_count());
    p.Gauge("sentinel_buffer_pool_resident", "Resident buffer-pool pages.",
            {}, pool->resident_count());
    p.Gauge("sentinel_buffer_pool_dirty", "Dirty buffer-pool pages.", {},
            pool->dirty_count());
    p.Gauge("sentinel_buffer_pool_capacity", "Buffer-pool frame capacity.",
            {}, pool->capacity());
    if (cache_ != nullptr) {
      p.Counter("sentinel_object_cache_hits_total", "Object-cache hits.", {},
                cache_->hit_count());
      p.Counter("sentinel_object_cache_misses_total", "Object-cache misses.",
                {}, cache_->miss_count());
      p.Gauge("sentinel_object_cache_resident", "Cached objects.", {},
              cache_->size());
    }
    storage::LogManager* wal = engine->log_manager();
    p.Counter("sentinel_wal_syncs_total", "WAL fsync batches.", {},
              wal->sync_count());
    p.Counter("sentinel_wal_truncated_bytes_total",
              "Bytes of torn tail discarded during WAL recovery.", {},
              wal->truncated_bytes());
    p.Gauge("sentinel_wal_wedged",
            "1 when the WAL refused further appends after a torn write or "
            "failed fsync barrier.",
            {}, wal->wedged() ? 1 : 0);
    p.Gauge("sentinel_wal_durable_lsn",
            "Highest LSN covered by a completed fsync barrier.", {},
            wal->durable_lsn());
    p.Gauge("sentinel_wal_appended_lsn",
            "Highest LSN fully written to the WAL buffer.", {},
            wal->appended_lsn());
    p.Counter("sentinel_wal_group_commit_waits_total",
              "Commits that waited on (or piggybacked on) a group-commit "
              "barrier.",
              {}, wal->group_commit_waits());
    p.Counter("sentinel_wal_async_commits_total",
              "Commits acknowledged on WAL-buffer write (async durability).",
              {}, wal->async_commits());
    p.Histogram("sentinel_wal_fsync_ns", "WAL fsync latency (ns).", {},
                wal->fsync_histogram().TakeSnapshot());
    storage::DiskManager* disk = engine->disk_manager();
    p.Counter("sentinel_disk_syncs_total", "Data-file fsyncs.", {},
              disk->sync_count());
    p.Counter("sentinel_disk_io_retries_total",
              "Short read/write retries against the data file.", {},
              disk->io_retries());
    p.Gauge("sentinel_disk_pages", "Pages in the data file.", {},
            disk->page_count());
    p.Histogram("sentinel_disk_fsync_ns", "Data-file fsync latency (ns).", {},
                disk->fsync_histogram().TakeSnapshot());
    storage::LockManager* locks = engine->lock_manager();
    p.Counter("sentinel_lock_waits_total",
              "Lock requests that had to block.", {}, locks->wait_count());
    p.Counter("sentinel_lock_deadlocks_total",
              "Deadlocks broken by victim selection.", {},
              locks->deadlock_count());
    p.Counter("sentinel_lock_timeouts_total", "Lock waits that timed out.",
              {}, locks->timeout_count());
    p.Gauge("sentinel_lock_waiters",
            "Transactions currently blocked in the lock table.", {},
            locks->waiting_count());
    p.Histogram("sentinel_lock_wait_ns", "Storage lock wait latency (ns).",
                {}, locks->wait_histogram().TakeSnapshot());
  }

  // Tracing plane.
  p.Counter("sentinel_spans_recorded_total", "Spans recorded.", {},
            span_tracer_.recorded());
  p.Counter("sentinel_spans_dropped_total",
            "Spans dropped by full trace rings.", {}, span_tracer_.dropped());
  p.Counter("sentinel_provenance_recorded_total",
            "Provenance records captured.", {}, tracer_.recorded());
  p.Counter("sentinel_postmortems_total", "Postmortem dumps written.", {},
            flight_recorder_.dumps());

  // Watchdog verdict + rates.
  if (watchdog_ != nullptr) {
    p.Gauge("sentinel_health_state",
            "0 = healthy, 1 = degraded, 2 = unhealthy.", {},
            static_cast<std::uint64_t>(watchdog_->health()));
    p.Counter("sentinel_watchdog_ticks_total", "Watchdog sampler ticks.", {},
              watchdog_->ticks());
    p.Counter("sentinel_watchdog_transitions_total",
              "Upward health transitions.", {}, watchdog_->transitions());
    p.Counter("sentinel_watchdog_postmortems_total",
              "Automatic postmortems the watchdog triggered.", {},
              watchdog_->postmortems_triggered());
    const obs::Watchdog::Rates rates = watchdog_->rates();
    p.GaugeF("sentinel_rate_events_per_sec",
             "Notification rate over the watchdog window.", {},
             rates.events_per_sec);
    p.GaugeF("sentinel_rate_firings_per_sec",
             "Rule firing rate over the watchdog window.", {},
             rates.firings_per_sec);
    p.GaugeF("sentinel_rate_aborts_per_sec",
             "ABORT_TOP rate over the watchdog window.", {},
             rates.aborts_per_sec);
  }
  if (monitor_ != nullptr) {
    p.Counter("sentinel_monitor_requests_total",
              "HTTP requests served by the monitor endpoint.", {},
              monitor_->requests());
  }

  // Network plane: event-bus server (daemon side) and remote client.
  if (event_bus_ != nullptr) {
    const net::EventBusServerStats n = event_bus_->stats();
    p.Counter("sentinel_net_accepted_total",
              "Connections accepted by the event-bus server.", {},
              n.accepted);
    p.Counter("sentinel_net_rejected_sessions_total",
              "Connections refused at the session limit.", {},
              n.rejected_sessions);
    p.Counter("sentinel_net_superseded_sessions_total",
              "Sessions superseded by a reconnect of the same application.",
              {}, n.superseded_sessions);
    p.Gauge("sentinel_net_open_sessions", "Open event-bus sessions.", {},
            n.open_sessions);
    p.Counter("sentinel_net_notifies_received_total",
              "NOTIFY frames decoded by the event-bus server.", {},
              n.notifies_received);
    p.Counter("sentinel_net_dispatched_total",
              "Occurrences handed from the admission queue to the GED.", {},
              n.dispatched);
    p.Counter("sentinel_net_sheds_total",
              "NOTIFY frames shed by admission control (RETRY_LATER).", {},
              n.sheds);
    p.Counter("sentinel_net_frame_errors_total",
              "Framing/CRC violations observed on client streams.", {},
              n.frame_errors);
    p.Counter("sentinel_net_slow_consumer_disconnects_total",
              "Sessions dropped for exceeding their outbound byte budget.",
              {}, n.slow_consumer_disconnects);
    p.Counter("sentinel_net_idle_disconnects_total",
              "Sessions reaped by the idle/heartbeat timeout.", {},
              n.idle_disconnects);
    p.Counter("sentinel_net_pushes_sent_total",
              "EVENT_PUSH frames queued to subscribers.", {}, n.pushes_sent);
    p.Counter("sentinel_net_bytes_in_total",
              "Bytes received by the event-bus server.", {}, n.bytes_in);
    p.Counter("sentinel_net_bytes_out_total",
              "Bytes sent by the event-bus server.", {}, n.bytes_out);
    p.Gauge("sentinel_net_admission_depth",
            "Admission-control queue depth.", {}, n.admission_depth);
    p.Gauge("sentinel_net_admission_peak",
            "Deepest the admission queue has been.", {}, n.admission_peak);
    p.Gauge("sentinel_net_outbound_queued_bytes",
            "Bytes queued across all session outbound buffers.", {},
            n.outbound_queued_bytes);
    p.Gauge("sentinel_net_overloaded",
            "1 while the admission queue sits past its high-water mark.", {},
            n.overloaded ? 1 : 0);
    // Always-on end-to-end latency (client origin stamp → server-side
    // milestone; wall clock, so cross-host skew shows up here, not in the
    // steady-clock trace export).
    p.Histogram("sentinel_net_e2e_delivery_ns",
                "Origin-stamped occurrence to GED dispatch (ns).", {},
                n.e2e_delivery_ns);
    p.Histogram("sentinel_net_e2e_detect_ns",
                "Origin-stamped occurrence to global detection push (ns).", {},
                n.e2e_detect_ns);
    p.Counter("sentinel_net_rtt_samples_total",
              "Heartbeat round-trip samples collected.", {}, n.rtt_samples);
    p.Histogram("sentinel_net_rtt_us",
                "Heartbeat round-trip time across all sessions (us).", {},
                n.rtt_us);
    for (const net::SessionClockStats& sc : event_bus_->SessionClocks()) {
      const obs::PromWriter::Labels labels = {
          {"app", sc.app}, {"session", std::to_string(sc.session_id)}};
      p.Histogram("sentinel_net_session_rtt_us",
                  "Heartbeat round-trip time per session (us).", labels,
                  sc.rtt_us);
      p.GaugeF("sentinel_net_clock_offset_us",
               "EWMA steady-clock offset of the client vs this server (us; "
               "may be negative).",
               labels, static_cast<double>(sc.clock_offset_us));
    }
  }
  if (remote_client_ != nullptr) {
    const net::RemoteGedClient::Stats c = remote_client_->stats();
    p.Gauge("sentinel_net_client_connected",
            "1 while the remote GED session is established.", {},
            c.connected ? 1 : 0);
    p.Counter("sentinel_net_client_connect_attempts_total",
              "Dial attempts (including reconnects).", {},
              c.connect_attempts);
    p.Counter("sentinel_net_client_sessions_total",
              "Sessions successfully established.", {},
              c.sessions_established);
    p.Counter("sentinel_net_client_disconnects_total",
              "Established sessions that ended.", {}, c.disconnects);
    p.Counter("sentinel_net_client_notifies_sent_total",
              "NOTIFY frames written to the wire.", {}, c.notifies_sent);
    p.Counter("sentinel_net_client_notifies_dropped_total",
              "Events dropped by the bounded send buffer.", {},
              c.notifies_dropped);
    p.Counter("sentinel_net_client_pushes_received_total",
              "EVENT_PUSH frames received.", {}, c.pushes_received);
    p.Counter("sentinel_net_client_sheds_received_total",
              "RETRY_LATER shed notices received.", {}, c.sheds_received);
    p.Counter("sentinel_net_client_journal_replays_total",
              "Journal entries replayed after reconnects.", {},
              c.journal_replays);
    p.Counter("sentinel_net_client_rtt_samples_total",
              "Heartbeat round-trip samples collected by the client.", {},
              c.rtt_samples);
    p.Histogram("sentinel_net_client_rtt_us",
                "Client-observed heartbeat round-trip time (us).", {},
                c.rtt_us);
    p.GaugeF("sentinel_net_client_clock_offset_us",
             "EWMA steady-clock offset of the server vs this client (us; "
             "may be negative).",
             {}, static_cast<double>(c.clock_offset_us));
    p.Histogram("sentinel_net_client_e2e_action_ns",
                "Origin-stamped occurrence to push-handler completion (ns).",
                {}, c.e2e_action_ns);
  }

  // Continuous profiling plane (sentinel_profile_* families; the mode,
  // duration and seam families are always present, per-account families
  // appear once the profiler has attributed cost).
  profiler_.WritePrometheus(p);
  return p.Take();
}

Result<oodb::Oid> ActiveDatabase::CreateObject(storage::TxnId txn,
                                               const std::string& class_name,
                                               const std::string& name) {
  if (db_ == nullptr) {
    return Status::InvalidArgument("no persistent store in in-memory mode");
  }
  if (!db_->classes()->Exists(class_name)) {
    return Status::NotFound("class not registered: " + class_name);
  }
  oodb::PersistentObject obj(oodb::kInvalidOid, class_name);
  auto oid = db_->objects()->Put(txn, std::move(obj));
  if (!oid.ok()) return oid;
  if (!name.empty()) {
    SENTINEL_RETURN_NOT_OK(db_->names()->Bind(txn, name, *oid));
  }
  return oid;
}

}  // namespace sentinel::core
