#include "core/reactive.h"

namespace sentinel::core {

Result<oodb::Value> Reactive::GetAttr(const std::string& attr) const {
  if (db_ == nullptr || db_->object_cache() == nullptr) {
    return Status::InvalidArgument("no persistent store attached");
  }
  auto obj = db_->object_cache()->Get(txn_, oid_);
  if (!obj.ok()) return obj.status();
  return (*obj)->Get(attr);
}

Status Reactive::SetAttr(const std::string& attr, oodb::Value value) {
  if (db_ == nullptr || db_->object_cache() == nullptr) {
    return Status::InvalidArgument("no persistent store attached");
  }
  auto obj = db_->object_cache()->Get(txn_, oid_);
  if (!obj.ok()) return obj.status();
  oodb::PersistentObject copy = **obj;
  copy.Set(attr, std::move(value));
  return db_->object_cache()->Put(txn_, std::move(copy)).status();
}

}  // namespace sentinel::core
