#ifndef SENTINEL_CORE_ACTIVE_DATABASE_H_
#define SENTINEL_CORE_ACTIVE_DATABASE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "detector/local_detector.h"
#include "obs/flight_recorder.h"
#include "obs/monitor_server.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "oodb/database.h"
#include "oodb/object_cache.h"
#include "rules/rule_manager.h"
#include "rules/scheduler.h"
#include "txn/nested_txn.h"

namespace sentinel::net {
class EventBusServer;
class RemoteGedClient;
}  // namespace sentinel::net

namespace sentinel::core {

/// Sentinel: the integrated active OODBMS (paper Fig. 1). Wraps the passive
/// Database with
///   - a local composite event detector,
///   - a nested transaction manager for rule execution,
///   - a prioritized rule scheduler (threads), and
///   - a rule manager with coupling-mode support.
///
/// Transaction calls raise the system events the paper obtains by making the
/// Open OODB system class REACTIVE (§3.2): `sys_begin_transaction`,
/// `sys_pre_commit_transaction`, `sys_commit_transaction`,
/// `sys_abort_transaction`. Deferred rules piggyback on begin/pre-commit via
/// the A* rewrite; two internal rules flush the event graph on commit and
/// abort (§3.2.2 item 3) and may be disabled to let events span transactions.
class ActiveDatabase {
 public:
  struct Options {
    oodb::Database::Options database;
    rules::RuleScheduler::Options scheduler;
    txn::NestedTransactionManager::Options nested;
  };

  ActiveDatabase() = default;
  ~ActiveDatabase();

  ActiveDatabase(const ActiveDatabase&) = delete;
  ActiveDatabase& operator=(const ActiveDatabase&) = delete;

  Status Open(const std::string& path_prefix, const Options& options);
  Status Open(const std::string& path_prefix);
  /// Detector-only mode: event detection and rules without persistence
  /// (used by benchmarks and the GED's pure-event applications).
  Status OpenInMemory(const Options& options);
  Status OpenInMemory();
  Status Close();
  bool is_open() const { return open_; }

  // -- Transactions (raise system events) ---------------------------------------
  Result<storage::TxnId> Begin();
  Status Commit(storage::TxnId txn);
  Status Abort(storage::TxnId txn);

  // -- Commit durability --------------------------------------------------------

  /// Default durability for Commit: kSync blocks until the WAL group-commit
  /// barrier covers the commit record; kAsync acks on the WAL-buffer write
  /// and lets the group-commit thread converge the durable watermark behind
  /// the ack. No-op in in-memory mode.
  void set_commit_durability(storage::CommitDurability durability);
  storage::CommitDurability commit_durability() const;
  /// Blocks until every async-acknowledged commit is on stable storage
  /// (kSync/in-memory: returns immediately).
  Status WaitWalDurable();

  // -- Event interface ------------------------------------------------------------

  /// Declares a class-level primitive event (paper §3.1 `event end(e1) ...`).
  Result<detector::EventNode*> DeclareEvent(
      const std::string& event_name, const std::string& class_name,
      detector::EventModifier modifier, const std::string& method_signature,
      oodb::Oid instance = oodb::kInvalidOid);

  /// Signals a method invocation (wrapper entry; paper §3.2.1). The caller
  /// then waits for immediate rules — Drain is invoked internally.
  void NotifyMethod(const std::string& class_name, oodb::Oid oid,
                    detector::EventModifier modifier,
                    const std::string& method_signature,
                    std::shared_ptr<const detector::ParamList> params,
                    storage::TxnId txn);

  /// Raises an explicit event and waits for immediate rules.
  Status RaiseEvent(const std::string& event_name,
                    std::shared_ptr<const detector::ParamList> params,
                    storage::TxnId txn);

  /// Advances the temporal clock, firing due PLUS/P events and their rules.
  void AdvanceTime(std::uint64_t now_ms);

  // -- Reactive RULE class (meta-rules) ----------------------------------------

  /// When enabled, every rule execution raises an end-of-method event on the
  /// built-in reactive class "RULE" (method `void fired()`, parameters
  /// `rule`, `condition_held`, `depth`) — the paper's "the rule class can be
  /// both reactive and notifiable, [so] methods of the rule class can
  /// themselves be event generators" (§3.2). Meta-rules subscribe to events
  /// declared on class kRuleClass. Executions triggered by RULE events do
  /// not re-raise (no meta-meta recursion).
  void set_rule_events_enabled(bool enabled) { rule_events_ = enabled; }
  bool rule_events_enabled() const { return rule_events_; }

  // -- Object helpers ---------------------------------------------------------------

  /// Creates a persistent object of `class_name`; binds `name` when given.
  Result<oodb::Oid> CreateObject(storage::TxnId txn,
                                 const std::string& class_name,
                                 const std::string& name = "");

  // -- Components ---------------------------------------------------------------------
  oodb::Database* database() { return db_.get(); }
  /// Object cache over the persistence manager (null in in-memory mode).
  oodb::ObjectCache* object_cache() { return cache_.get(); }
  detector::LocalEventDetector* detector() { return detector_.get(); }
  rules::RuleManager* rule_manager() { return rule_manager_.get(); }
  rules::RuleScheduler* scheduler() { return scheduler_.get(); }
  txn::NestedTransactionManager* nested_txns() { return nested_.get(); }

  // -- Observability ------------------------------------------------------------

  /// Event→rule→subtransaction provenance tracer (disabled by default; the
  /// shell's `trace on` or a test enables it). Wired into the detector, the
  /// rule manager, and the scheduler on Open.
  obs::ProvenanceTracer* tracer() { return &tracer_; }

  /// Causal span tracer (flight-recorder mode by default). Wired into the
  /// detector, scheduler, nested-txn manager, and — in persistent mode —
  /// the storage engine's lock manager, WAL, and buffer pool on Open, so one
  /// top-level transaction renders as a single tree: txn → notify →
  /// composite_detect → subtxn → condition/action, with lock_wait /
  /// wal_fsync / page_read leaves.
  obs::SpanTracer* span_tracer() { return &span_tracer_; }

  /// Always-on last-N span ring consulted by postmortems.
  obs::FlightRecorder* flight_recorder() { return &flight_recorder_; }

  /// Continuous profiling plane (off by default; Start() it, use the
  /// shell's `profile start`, or set $SENTINEL_PROFILE=1). Wired into the
  /// detector, scheduler, and — in persistent mode — the lock manager and
  /// WAL on Open; /profile serves its JSON, /metrics its sentinel_profile_*
  /// families. See DESIGN.md §15.
  obs::Profiler* profiler() { return &profiler_; }

  /// Writes the buffered spans as Chrome trace-event JSON (loadable in
  /// ui.perfetto.dev / chrome://tracing). Full per-thread rings require
  /// TraceMode::kFull; in flight-recorder mode the export covers the
  /// flight ring only.
  Status ExportTrace(const std::string& path);

  /// Crash/abort postmortem: active transactions and their open spans,
  /// in-flight subtransactions with held nested locks, storage lock table
  /// with waits-for edges, failpoint hit counts, and the last spans from the
  /// flight recorder, as one JSON object.
  std::string PostmortemJson(const std::string& reason,
                             storage::TxnId txn = storage::kInvalidTxnId);

  /// Renders PostmortemJson and writes it via the flight recorder (explicit
  /// `path`, else $SENTINEL_POSTMORTEM_DIR). Returns the path written, or ""
  /// when no destination is configured. Invoked automatically when the
  /// kAbortTop contingency dooms a transaction and when the storage lock
  /// manager selects a deadlock victim.
  Result<std::string> DumpPostmortem(const std::string& reason,
                                     storage::TxnId txn = storage::kInvalidTxnId,
                                     const std::string& path = "");

  /// Pipeline-wide metrics snapshot (detector per-node counters, per-rule
  /// latency histograms, scheduler totals, nested-txn gauges, tracer
  /// counters, and — in persistent mode — the unified storage telemetry:
  /// buffer pool / object cache hit rates, WAL + disk fsync histograms,
  /// lock-manager wait/deadlock stats) as one JSON object.
  std::string StatsJson() const;

  // -- Live monitoring plane ----------------------------------------------------

  /// Starts the health watchdog and, when `port >= 0`, the embedded HTTP
  /// monitor server on 127.0.0.1:`port` (0 = ephemeral; `port < 0` runs the
  /// watchdog alone). Endpoints: /metrics (Prometheus text exposition),
  /// /healthz (200/503 + JSON detail), /stats, /graph (DOT), /trace
  /// (Perfetto JSON), /postmortem. Returns the bound port (-1 when no
  /// server was requested). Also started automatically by Open when
  /// $SENTINEL_MONITOR_PORT is set ($SENTINEL_WATCHDOG_MS overrides the
  /// sampling interval).
  Result<int> StartMonitoring(int port,
                              obs::Watchdog::Options watchdog_options = {});
  void StopMonitoring();

  /// Full metric surface in Prometheus text exposition format: every
  /// counter/gauge/histogram StatsJson reports, as sentinel_* families with
  /// rule/event/context labels (see DESIGN.md §11 for the naming scheme).
  std::string PrometheusText();

  /// Health verdict as JSON; sets `*http_status` (when non-null) to 200 for
  /// healthy, 503 for degraded/unhealthy — the /healthz contract. Without a
  /// running watchdog only cheap invariants (WAL wedged) are checked.
  std::string HealthJson(int* http_status = nullptr);

  /// One watchdog reading of the whole pipeline (also useful to tests and
  /// benches that want the gauges without JSON parsing).
  obs::MonitorSample CollectMonitorSample();

  /// Null until StartMonitoring ran with `port >= 0`.
  obs::MonitorServer* monitor_server() { return monitor_.get(); }
  /// Null until StartMonitoring ran.
  obs::Watchdog* watchdog() { return watchdog_.get(); }

  /// Wires a (non-owned) event-bus server into the monitoring plane: its
  /// session/admission gauges join CollectMonitorSample (so the watchdog's
  /// net_overload and net_e2e_p99 predicates can flip /healthz degraded),
  /// its counters join /metrics as sentinel_net_* families, and this
  /// database's span tracer is attached so the server records kNet* spans.
  /// Pass nullptr to detach; the server must outlive its attachment.
  void AttachEventBusServer(net::EventBusServer* server);
  /// Same for a client: its counters join /metrics as sentinel_net_client_*
  /// and its Notify/push paths record + adopt distributed-trace spans.
  void AttachRemoteGedClient(net::RemoteGedClient* client);

  /// Names of the built-in system events and internal flush rules.
  static constexpr char kBeginTxnEvent[] = "sys_begin_transaction";
  static constexpr char kPreCommitEvent[] = "sys_pre_commit_transaction";
  static constexpr char kCommitEvent[] = "sys_commit_transaction";
  static constexpr char kAbortEvent[] = "sys_abort_transaction";
  static constexpr char kFlushOnCommitRule[] = "__sys_flush_on_commit";
  static constexpr char kFlushOnAbortRule[] = "__sys_flush_on_abort";
  static constexpr char kRuleClass[] = "RULE";
  static constexpr char kRuleFiredMethod[] = "void fired()";

 private:
  Status OpenCommon(const Options& options);

  bool open_ = false;
  bool rule_events_ = false;
  obs::ProvenanceTracer tracer_;
  // Span tracer + flight recorder are declared before the components so they
  // outlive every component holding a pointer to them during teardown.
  obs::SpanTracer span_tracer_;
  obs::FlightRecorder flight_recorder_;
  // Like the tracers, the profiler precedes the components: nodes and
  // storage components cache account/site pointers into it, and worker
  // threads unregister from its sampler during component teardown.
  obs::Profiler profiler_;
  std::unique_ptr<oodb::Database> db_;
  std::unique_ptr<oodb::ObjectCache> cache_;
  std::unique_ptr<detector::LocalEventDetector> detector_;
  std::unique_ptr<txn::NestedTransactionManager> nested_;
  std::unique_ptr<rules::RuleScheduler> scheduler_;
  std::unique_ptr<rules::RuleManager> rule_manager_;
  // Monitoring plane. Declared last / torn down first (StopMonitoring runs
  // before component teardown in Close): the watchdog sampler and the
  // server handlers read every component above.
  std::unique_ptr<obs::Watchdog> watchdog_;
  std::unique_ptr<obs::MonitorServer> monitor_;
  // Network plane attachments (non-owning; see AttachEventBusServer).
  net::EventBusServer* event_bus_ = nullptr;
  net::RemoteGedClient* remote_client_ = nullptr;
  // Open top-level transactions in detector-only mode, where no storage
  // engine tracks them. Advisory gauge: clamped at zero on read so an
  // unmatched Commit/Abort cannot wrap it.
  std::atomic<std::int64_t> open_txn_gauge_{0};
};

}  // namespace sentinel::core

#endif  // SENTINEL_CORE_ACTIVE_DATABASE_H_
