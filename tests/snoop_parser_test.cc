#include "snoop/parser.h"

#include <gtest/gtest.h>

namespace sentinel::snoop {
namespace {

using detector::EventModifier;

TEST(SnoopParserTest, ParsesPaperStockClass) {
  // The paper's §3.1 example, in the spec syntax.
  const char* source = R"(
    class STOCK : REACTIVE {
      attr price: double;
      attr qty: int;
      event end(e1) int sell_stock(int qty);
      event begin(e2) && end(e3) void set_price(float price);
      event e4 = e1 ^ e2;   /* AND operator */
      rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW);
    }
  )";
  auto spec = Parser::Parse(source);
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->classes.size(), 1u);
  const ClassDecl& cls = spec->classes[0];
  EXPECT_EQ(cls.name, "STOCK");
  EXPECT_EQ(cls.base, "REACTIVE");
  EXPECT_TRUE(cls.is_reactive());
  ASSERT_EQ(cls.attributes.size(), 2u);
  EXPECT_EQ(cls.attributes[0].name, "price");
  EXPECT_EQ(cls.attributes[0].type, oodb::ValueType::kDouble);

  ASSERT_EQ(cls.event_interface.size(), 2u);
  EXPECT_EQ(cls.event_interface[0].bindings.size(), 1u);
  EXPECT_EQ(cls.event_interface[0].bindings[0].event_name, "e1");
  EXPECT_EQ(cls.event_interface[0].bindings[0].modifier, EventModifier::kEnd);
  EXPECT_EQ(cls.event_interface[0].method_signature, "int sell_stock(int qty)");
  ASSERT_EQ(cls.event_interface[1].bindings.size(), 2u);
  EXPECT_EQ(cls.event_interface[1].bindings[0].modifier,
            EventModifier::kBegin);
  EXPECT_EQ(cls.event_interface[1].bindings[1].modifier, EventModifier::kEnd);
  EXPECT_EQ(cls.event_interface[1].method_signature,
            "void set_price(float price)");

  ASSERT_EQ(cls.events.size(), 1u);
  EXPECT_EQ(cls.events[0].name, "e4");
  EXPECT_EQ(cls.events[0].expr->kind, EventExpr::Kind::kAnd);

  ASSERT_EQ(cls.rules.size(), 1u);
  const RuleDef& rule = cls.rules[0];
  EXPECT_EQ(rule.name, "R1");
  EXPECT_EQ(rule.event_name, "e4");
  EXPECT_EQ(rule.condition_fn, "cond1");
  EXPECT_EQ(rule.action_fn, "action1");
  EXPECT_EQ(*rule.context, detector::ParamContext::kCumulative);
  EXPECT_EQ(*rule.coupling, rules::CouplingMode::kDeferred);
  EXPECT_EQ(*rule.priority, 10);
  EXPECT_EQ(*rule.trigger, rules::TriggerMode::kNow);
}

TEST(SnoopParserTest, TopLevelPrimitiveEvents) {
  // Paper: class-level vs instance-level application events.
  const char* source = R"spec(
    event any_stk_price = begin("Stock", "void set_price(float price)");
    event set_IBM_price = begin("Stock":"IBM", "void set_price(float price)");
  )spec";
  auto spec = Parser::Parse(source);
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->events.size(), 2u);
  EXPECT_EQ(spec->events[0].expr->kind, EventExpr::Kind::kPrimitive);
  EXPECT_EQ(spec->events[0].expr->class_name, "Stock");
  EXPECT_TRUE(spec->events[0].expr->instance_name.empty());
  EXPECT_EQ(spec->events[1].expr->instance_name, "IBM");
  EXPECT_EQ(spec->events[1].expr->modifier, EventModifier::kBegin);
}

TEST(SnoopParserTest, OperatorPrecedenceAndParens) {
  auto expr = Parser::ParseExpression("a ^ b | c");
  ASSERT_TRUE(expr.ok());
  // ^ binds tighter than |
  EXPECT_EQ((*expr)->kind, EventExpr::Kind::kOr);
  EXPECT_EQ((*expr)->children[0]->kind, EventExpr::Kind::kAnd);

  auto paren = Parser::ParseExpression("a ^ (b | c)");
  ASSERT_TRUE(paren.ok());
  EXPECT_EQ((*paren)->kind, EventExpr::Kind::kAnd);
  EXPECT_EQ((*paren)->children[1]->kind, EventExpr::Kind::kOr);
}

TEST(SnoopParserTest, SequenceOperator) {
  auto expr = Parser::ParseExpression("a then b");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, EventExpr::Kind::kSeq);
}

TEST(SnoopParserTest, SnoopOperators) {
  auto not_expr = Parser::ParseExpression("NOT(b)[a, c]");
  ASSERT_TRUE(not_expr.ok());
  EXPECT_EQ((*not_expr)->kind, EventExpr::Kind::kNot);
  EXPECT_EQ((*not_expr)->children[0]->ref_name, "a");  // opener
  EXPECT_EQ((*not_expr)->children[1]->ref_name, "b");  // canceller
  EXPECT_EQ((*not_expr)->children[2]->ref_name, "c");  // closer

  auto a = Parser::ParseExpression("A(x, y, z)");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->kind, EventExpr::Kind::kAperiodic);

  auto astar = Parser::ParseExpression("A*(x, y, z)");
  ASSERT_TRUE(astar.ok());
  EXPECT_EQ((*astar)->kind, EventExpr::Kind::kAperiodicStar);

  auto p = Parser::ParseExpression("P(x, 100ms, z)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->kind, EventExpr::Kind::kPeriodic);
  EXPECT_EQ((*p)->time_ms, 100u);

  auto pstar = Parser::ParseExpression("P*(x, 250, z)");
  ASSERT_TRUE(pstar.ok());
  EXPECT_EQ((*pstar)->kind, EventExpr::Kind::kPeriodicStar);
  EXPECT_EQ((*pstar)->time_ms, 250u);

  auto plus = Parser::ParseExpression("PLUS(x, 500)");
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ((*plus)->kind, EventExpr::Kind::kPlus);
  EXPECT_EQ((*plus)->time_ms, 500u);
}

TEST(SnoopParserTest, NestedCompositeExpressions) {
  auto expr = Parser::ParseExpression("A*(begin(\"T\", \"void b()\"), a ^ b, c)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, EventExpr::Kind::kAperiodicStar);
  EXPECT_EQ((*expr)->children[0]->kind, EventExpr::Kind::kPrimitive);
  EXPECT_EQ((*expr)->children[1]->kind, EventExpr::Kind::kAnd);
}

TEST(SnoopParserTest, RuleArgumentsAreOrderFlexible) {
  auto spec = Parser::Parse("rule R(e, c, a, DETACHED, CHRONICLE);");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(*spec->rules[0].coupling, rules::CouplingMode::kDetached);
  EXPECT_EQ(*spec->rules[0].context, detector::ParamContext::kChronicle);
  EXPECT_FALSE(spec->rules[0].priority.has_value());
}

TEST(SnoopParserTest, ErrorsCarryLineNumbers) {
  auto spec = Parser::Parse("class Foo {\n  bogus;\n}");
  ASSERT_FALSE(spec.ok());
  EXPECT_TRUE(spec.status().IsParseError());
  EXPECT_NE(spec.status().message().find("line 2"), std::string::npos)
      << spec.status();
}

TEST(SnoopParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parser::Parse("event x =;").ok());
  EXPECT_FALSE(Parser::Parse("rule R(e);").ok());
  EXPECT_FALSE(Parser::Parse("class {}").ok());
  EXPECT_FALSE(Parser::Parse("event e = A(a, b);").ok());  // A needs 3 args
  EXPECT_FALSE(Parser::Parse("garbage").ok());
}

TEST(SnoopParserTest, CommentsAreIgnored) {
  const char* source = R"(
    // line comment
    /* block
       comment */
    event e = a ^ b;  // trailing
  )";
  auto spec = Parser::Parse(source);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->events.size(), 1u);
}

TEST(SnoopParserTest, ExpressionToStringRoundTrips) {
  auto expr = Parser::ParseExpression("(a ^ b) | NOT(c)[d, e]");
  ASSERT_TRUE(expr.ok());
  auto reparsed = Parser::ParseExpression((*expr)->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ((*reparsed)->ToString(), (*expr)->ToString());
}

}  // namespace
}  // namespace sentinel::snoop
